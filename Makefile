# Convenience targets (pure-Python project; no compilation involved)

.PHONY: install lint test bench examples artifacts api-docs all

install:
	pip install -e . || python setup.py develop

# ruff config lives in pyproject.toml; skip gracefully offline
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools benchmarks examples; \
	else \
		echo "ruff not installed (pip install ruff) — skipping lint"; \
	fi

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; python $$f > /dev/null && echo OK || exit 1; \
	done

# regenerate every paper artifact into benchmarks/results/
artifacts: bench

api-docs:
	python docs/gen_api.py

all: test bench examples
