#!/usr/bin/env python3
"""Static binary rewriting — Figure 1's left-hand flow.

Compiles a mutatee to an ELF file on disk, opens the *file* (not the
in-memory program), instruments every basic block of `main`, writes the
instrumented executable back to disk, and finally loads and runs the
rewritten file to prove it works and carries its counters.

Run:  python examples/static_rewriter.py
"""

import tempfile
from pathlib import Path

from repro.api import load_rewritten, open_binary
from repro.minicc import compile_to_elf, switch_source
from repro.sim import Machine
from repro.tools import count_basic_blocks


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pydyninst-"))
    original = workdir / "dispatch"
    instrumented = workdir / "dispatch.inst"

    original.write_bytes(compile_to_elf(switch_source(40)))
    print(f"wrote mutatee          : {original} "
          f"({original.stat().st_size} bytes)")

    binary = open_binary(original.read_bytes())
    print(f"ISA from .riscv.attributes: {binary.isa.arch_string()} "
          f"(source: {binary.symtab.isa_source})")
    handle = count_basic_blocks(binary, "dispatch")

    instrumented.write_bytes(binary.rewrite())
    print(f"wrote instrumented file: {instrumented} "
          f"({instrumented.stat().st_size} bytes)")

    machine = Machine()
    load_rewritten(machine, instrumented.read_bytes())
    event = machine.run(max_steps=5_000_000)
    print(f"\nrewritten binary ran: {event.reason.value}, "
          f"stdout: {bytes(machine.stdout).decode().strip()!r}")
    print(f"block executions recorded in .dyninst.data: "
          f"{handle.read(machine)}")
    assert handle.read(machine) > 0


if __name__ == "__main__":
    main()
