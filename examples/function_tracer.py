#!/usr/bin/env python3
"""A function-call tracer — the performance-tool scenario from the
paper's introduction ("if you wanted to trace every function entry and
exit ... you can easily create a modified version of your executable").

Instruments entry + every exit of user functions in a recursive program
with ring-buffer-logging snippets, runs it, and prints the call tree
reconstructed from the trace.  As a cross-check, the same call tree is
collected a second time with *zero* instrumentation from the
simulator's execution event stream (``trace_calls``) — the two must
agree.

Run:  python examples/function_tracer.py
"""

from repro.api import open_binary
from repro.minicc import compile_source
from repro.tools import trace_calls, trace_functions

SOURCE = """
long depth_work(long n) {
    if (n <= 0) { return 1; }
    return depth_work(n - 1) * 2;
}

long helper(long x) {
    return depth_work(x % 4) + x;
}

long main(void) {
    long total = 0;
    for (long i = 0; i < 3; i = i + 1) {
        total = total + helper(i);
    }
    print_long(total);
    return 0;
}
"""

FUNCTIONS = ["main", "helper", "depth_work"]


def main() -> None:
    program = compile_source(SOURCE)

    # v2 session style: the edit is a context manager, instrumentation
    # goes in one batch, committed on block exit
    with open_binary(program) as edit:
        with edit.batch() as b:
            handle = trace_functions(b, FUNCTIONS)
        machine, event = edit.run_instrumented()
    print(f"mutatee exited ({event.exit_code}); "
          f"{handle.event_count(machine)} trace events captured\n")

    depth = 0
    instrumented = []
    for ev in handle.read(machine):
        instrumented.append((ev.function, ev.kind))
        if ev.kind == "entry":
            print("  " * depth + f"-> {ev.function}")
            depth += 1
        else:
            depth -= 1
            print("  " * depth + f"<- {ev.function}")
    assert depth == 0, "unbalanced trace"

    # the observed (event-stream) trace must tell the same story
    with open_binary(program) as edit:
        observed = [(ev.function, ev.kind)
                    for ev in trace_calls(edit, FUNCTIONS)]
    assert observed == instrumented, "instrumented vs observed mismatch"
    print("\nevent-stream trace matches the instrumented trace "
          f"({len(observed)} events)")


if __name__ == "__main__":
    main()
