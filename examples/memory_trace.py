#!/usr/bin/env python3
"""Memory-access tracing — §1's literal example: "if you wanted to trace
... every memory access, or even every stack memory reference, you can
easily create a modified version of your executable".

Every load/store in the kernel is instrumented with an effective-
address-recording snippet; afterwards the trace is classified into
stack vs global accesses and summarised as an access-pattern report.

Run:  python examples/memory_trace.py
"""

from collections import Counter

from repro.api import open_binary
from repro.minicc import compile_source
from repro.sim import STACK_TOP
from repro.tools import trace_memory

SOURCE = """
long table[16];

long sum_strided(long stride) {
    long s = 0;
    for (long i = 0; i < 16; i = i + stride) {
        s = s + table[i];
    }
    return s;
}

long main(void) {
    for (long i = 0; i < 16; i = i + 1) { table[i] = i; }
    long a = sum_strided(1);
    long b = sum_strided(4);
    print_long(a + b);
    return 0;
}
"""


def main() -> None:
    binary = open_binary(compile_source(SOURCE))
    handle = trace_memory(binary, ["sum_strided"])
    machine, event = binary.run_instrumented()
    print(f"mutatee exited ({event.exit_code}); "
          f"stdout: {bytes(machine.stdout).decode().strip()}")

    events = handle.read(machine)
    table_base = binary.symtab.symbol("table").address
    kinds = Counter()
    strides = Counter()
    last_table_addr = None
    for ev in events:
        if ev.address >= STACK_TOP - (16 << 20):
            kinds["stack"] += 1
        elif table_base <= ev.address < table_base + 128:
            kinds["global (table)"] += 1
            if last_table_addr is not None:
                strides[ev.address - last_table_addr] += 1
            last_table_addr = ev.address
        else:
            kinds["other"] += 1

    print(f"\n{len(events)} memory accesses traced in sum_strided:")
    for kind, n in kinds.most_common():
        print(f"  {kind:16} {n:6}")
    print("\nobserved strides between consecutive table accesses:")
    for stride, n in strides.most_common(4):
        print(f"  {stride:+5d} bytes  x{n}")
    assert kinds["global (table)"] == 16 + 4  # stride 1 + stride 4 passes


if __name__ == "__main__":
    main()
