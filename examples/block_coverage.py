#!/usr/bin/env python3
"""Basic-block coverage — a testing/debugging tool built on the toolkit.

Instruments every basic block of a switch-dispatching function with an
executed-flag, drives it with inputs that only reach some cases, and
reports which blocks never ran (down to addresses and disassembly).

Run:  python examples/block_coverage.py
"""

from repro.api import open_binary
from repro.minicc import compile_source
from repro.tools import cover_functions

SOURCE = """
long dispatch(long op, long x) {
    long r = 0;
    switch (op) {
        case 0: r = x + 1; break;
        case 1: r = x * 2; break;
        case 2: r = x - 3; break;
        case 3: r = x / 2; break;
        case 4: r = x % 5; break;
        case 5: r = -x;    break;
        default: r = x;
    }
    return r;
}

long main(void) {
    long acc = 0;
    // only exercise cases 0..2
    for (long i = 0; i < 9; i = i + 1) {
        acc = acc + dispatch(i % 3, i);
    }
    print_long(acc);
    return 0;
}
"""


def main() -> None:
    binary = open_binary(compile_source(SOURCE))
    dispatch = binary.function("dispatch")
    print(f"dispatch has {len(dispatch.blocks)} basic blocks; "
          f"jump tables at "
          f"{[hex(a) for a in dispatch.jump_tables]}")

    handle = cover_functions(binary, ["dispatch", "main"])
    machine, _ = binary.run_instrumented()

    for name, (hit, total) in sorted(handle.report(machine).items()):
        print(f"{name}: {hit}/{total} blocks covered "
              f"({100 * hit / total:.0f}%)")

    missed = handle.uncovered(machine, "dispatch")
    print("\nuncovered blocks in dispatch:")
    for addr in missed:
        block = dispatch.blocks.get(addr) or dispatch.block_at(addr)
        first = block.insns[0].disasm() if block and block.insns else "?"
        print(f"  {addr:#x}: {first} ...")
    assert missed, "expected some uncovered switch arms"


if __name__ == "__main__":
    main()
