#!/usr/bin/env python3
"""A sampling profiler — the HPCToolkit scenario (the paper's first
citation and flagship Dyninst consumer).

No instrumentation: the mutatee runs under the simulator's execution
event stream, a quantum of simulated instructions plays the role of a
timer signal, and call stacks come from link-register call/return
events (with a StackwalkerAPI fallback for irregular control flow).
Samples aggregate into flat and call-path profiles; the same run also
yields a folded-stack flamegraph via the v2 ``BinaryEdit.trace()``
session.

Run:  python examples/sampling_profiler.py
"""

from repro.api import open_binary
from repro.minicc import compile_source, matmul_source
from repro.tools import profile_process
from repro.tracing import format_folded

def main() -> None:
    program = compile_source(matmul_source(n=14, reps=6))

    # v2 session style: open, create the process, profile it
    with open_binary(program) as edit:
        proc = edit.create_process()
        profile = profile_process(proc, edit.cfg, quantum=1000)

    print("profile of the matmul application "
          f"(sampled every 1000 simulated instructions):\n")
    print(profile.report())

    top = profile.flat.most_common(1)[0][0]
    assert top == "multiply", f"expected multiply hottest, got {top}"
    print("\nthe kernel (multiply) dominates, as expected")

    # exact (not sampled) view of the same workload: trace and fold
    with open_binary(program) as edit:
        session = edit.trace()
    folded = session.folded()
    hottest = max(folded.items(), key=lambda kv: kv[1])[0]
    assert hottest[-1] == "multiply", hottest
    print("\nfolded stacks (flamegraph.pl format):")
    print(format_folded(folded))


if __name__ == "__main__":
    main()
