#!/usr/bin/env python3
"""A sampling profiler — the HPCToolkit scenario (the paper's first
citation and flagship Dyninst consumer).

No instrumentation: ProcControlAPI periodically interrupts the mutatee
and StackwalkerAPI collects the call stack (sp-height stepping, since
RISC-V code has no frame pointer).  Samples aggregate into flat and
call-path profiles.

Run:  python examples/sampling_profiler.py
"""

from repro.minicc import compile_source, matmul_source
from repro.parse import parse_binary
from repro.proccontrol import Process
from repro.symtab import Symtab
from repro.tools import profile_process


def main() -> None:
    program = compile_source(matmul_source(n=14, reps=6))
    symtab = Symtab.from_program(program)
    cfg = parse_binary(symtab)

    proc = Process.create(symtab)
    profile = profile_process(proc, cfg, quantum=1000)

    print("profile of the matmul application "
          f"(sampled every 1000 simulated instructions):\n")
    print(profile.report())

    top = profile.flat.most_common(1)[0][0]
    assert top == "multiply", f"expected multiply hottest, got {top}"
    print("\nthe kernel (multiply) dominates, as expected")


if __name__ == "__main__":
    main()
