#!/usr/bin/env python3
"""Hot-patching: replace a buggy function in a compiled binary.

The retrofit scenario from the paper's introduction (binary rewriting
for security/repair of COTS software, §1): the source of the buggy
program is *not* consulted — a replacement function is injected and the
binary is statically rewritten so every call lands in the fix.

Here the "vulnerable" function divides without checking for zero; the
patched binary returns a safe default instead of faulting.

Run:  python examples/hotpatch.py
"""

from repro.api import load_rewritten, open_binary
from repro.minicc import compile_source
from repro.sim import Machine, StopReason

BUGGY_PROGRAM = """
long average_rate(long total, long n) {
    return total / n;           // BUG: no n == 0 guard... on RISC-V
}                                // div-by-zero yields -1, corrupting
                                 // downstream math silently.

long average_rate_fixed(long total, long n) {
    if (n == 0) { return 0; }
    return total / n;
}

long main(void) {
    long good = average_rate(100, 4);     // 25
    long bad = average_rate(100, 0);      // -1 without the fix, 0 with
    print_long(good);
    print_long(bad);
    return 0;
}
"""


def main() -> None:
    program = compile_source(BUGGY_PROGRAM)

    # demonstrate the bug
    m = Machine()
    from repro.symtab import Symtab
    Symtab.from_program(program).load_into(m)
    m.run(max_steps=1_000_000)
    print(f"unpatched output : {bytes(m.stdout).decode().split()}")

    # hot-patch: divert every entry of the buggy function into the fix
    binary = open_binary(program)
    binary.replace_function("average_rate", "average_rate_fixed")
    patched_elf = binary.rewrite()

    m2 = Machine()
    load_rewritten(m2, patched_elf)
    ev = m2.run(max_steps=1_000_000)
    out = bytes(m2.stdout).decode().split()
    print(f"patched output   : {out}")
    assert ev.reason is StopReason.EXITED
    assert out == ["25", "0"], out
    print("\nthe zero-divisor case now returns the safe default — "
          "no source, no recompile.")


if __name__ == "__main__":
    main()
