#!/usr/bin/env python3
"""Analysis-only example: extract and print a program's call graph.

No instrumentation at all — just SymtabAPI + ParseAPI (including
tail-call classification, §3.2.3) feeding the call-graph tool, with DOT
output for graphviz.

Run:  python examples/callgraph_dump.py
"""

from repro.api import open_binary
from repro.minicc import Options, compile_source, tailcall_source
from repro.tools import build_callgraph


def main() -> None:
    binary = open_binary(compile_source(
        tailcall_source(50), Options(tail_calls=True)))
    graph = build_callgraph(binary.cfg)

    print("call graph (-> direct call, ~> tail call):")
    for fn in sorted(binary.cfg.functions.values(), key=lambda f: f.name):
        for callee in sorted(graph.calls.get(fn.name, ())):
            print(f"  {fn.name} -> {callee}")
        for callee in sorted(graph.tail_calls.get(fn.name, ())):
            print(f"  {fn.name} ~> {callee}")

    print(f"\nreachable from main: "
          f"{', '.join(sorted(graph.reachable_from('main')))}")

    assert "even_step" in graph.tail_calls.get("odd_step", set())
    assert "odd_step" in graph.tail_calls.get("even_step", set())

    print("\nDOT output:\n")
    print(graph.to_dot())


if __name__ == "__main__":
    main()
