#!/usr/bin/env python3
"""A mini-debugger: ProcControlAPI + StackwalkerAPI (the STAT-style
debugging scenario from the paper's §2).

Creates a stopped process, plants a breakpoint in a recursive function,
and at every stop walks and prints the call stack — using the sp-height
frame stepper, since RISC-V code generally has no frame pointer
(§3.2.7).  Also demonstrates breakpoint-emulated single-stepping
(§3.2.6: RISC-V ptrace has no hardware single-step).

Run:  python examples/debugger.py
"""

from repro.minicc import compile_source, fib_source
from repro.parse import parse_binary
from repro.proccontrol import EventType, Process
from repro.stackwalk import StackWalker
from repro.symtab import Symtab


def main() -> None:
    program = compile_source(fib_source(6))
    symtab = Symtab.from_program(program)
    cfg = parse_binary(symtab)

    proc = Process.create(symtab)
    fib = cfg.function_by_name("fib")
    proc.insert_breakpoint(fib.entry)
    walker = StackWalker(proc, cfg)

    deepest: list = []
    hits = 0
    while True:
        event = proc.continue_to_event()
        if event.type is EventType.EXITED:
            print(f"\nmutatee exited with code {event.exit_code} "
                  f"after {hits} breakpoint stops")
            break
        hits += 1
        frames = walker.walk()
        if len(frames) > len(deepest):
            deepest = frames

    print(f"\ndeepest stack observed ({len(deepest)} frames):")
    print(walker.format(deepest))

    # single-step demo on a fresh process
    print("\nbreakpoint-emulated single-step through _start:")
    proc2 = Process.create(symtab)
    for _ in range(3):
        ev = proc2.step()
        print(f"  stepped to {proc2.pc:#x} ({ev.type.value})")


if __name__ == "__main__":
    main()
