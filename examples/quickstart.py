#!/usr/bin/env python3
"""Quickstart: compile a mutatee, analyze it, instrument it, run it.

This walks the whole toolkit in ~40 lines:

1. build the paper's matmul application with the bundled MiniC compiler
   (standing in for GCC);
2. open it with the BPatch-style facade — SymtabAPI discovers the ISA
   extensions, ParseAPI builds the CFG;
3. insert a counter-increment snippet at the entry of `multiply`
   (exactly the paper's §4.1 experiment 1);
4. run on the RV64GC simulator and read the counter back.

Run:  python examples/quickstart.py
"""

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source, matmul_source
from repro.patch import PointType

REPS = 5


def main() -> None:
    # 1. compile the mutatee (16x16 double matmul, called 5 times)
    program = compile_source(matmul_source(n=16, reps=REPS))

    # 2. open and analyze
    binary = open_binary(program)
    print(f"ISA discovered by SymtabAPI : {binary.isa.arch_string()}")
    print(f"functions parsed by ParseAPI: "
          f"{', '.join(f.name for f in binary.functions())}")
    multiply = binary.function("multiply")
    print(f"multiply: {len(multiply.blocks)} basic blocks, "
          f"{multiply.size} bytes")

    # 3. instrument: increment a counter at every call of multiply
    counter = binary.allocate_variable("calls")
    binary.insert(binary.points(multiply, PointType.FUNC_ENTRY),
                  IncrementVar(counter))

    # 4. run instrumented and inspect
    machine, event = binary.run_instrumented()
    print(f"\nmutatee finished: {event.reason.value}, "
          f"stdout:\n{bytes(machine.stdout).decode().rstrip()}")
    calls = binary.read_variable(machine, counter)
    print(f"\ninstrumentation counter: multiply was called "
          f"{calls} times (expected {REPS})")
    assert calls == REPS


if __name__ == "__main__":
    main()
