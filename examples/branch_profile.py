#!/usr/bin/env python3
"""Branch profiling with edge instrumentation.

Uses the paper's CFG-level points ("branch-taken and branch-not-taken
edges", §2) to build a branch-bias profile of a program: for every
conditional branch, how often each direction was taken — the raw
material for profile-guided optimisation or branch-predictor studies.

Run:  python examples/branch_profile.py
"""

from repro.api import open_binary
from repro.codegen import IncrementVar
from repro.minicc import compile_source
from repro.patch import edge_point

SOURCE = """
long collatz_steps(long n) {
    long steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; }
        else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;
}

long main(void) {
    long total = 0;
    for (long i = 1; i <= 30; i = i + 1) {
        total = total + collatz_steps(i);
    }
    print_long(total);
    return 0;
}
"""


def main() -> None:
    binary = open_binary(compile_source(SOURCE))
    fn = binary.function("collatz_steps")

    profile = []  # (branch insn, taken var, not-taken var)
    for block in sorted(fn.blocks.values(), key=lambda b: b.start):
        term = block.last
        if term is None or not term.is_conditional_branch:
            continue
        t = binary.allocate_variable(f"t{term.address:x}")
        n = binary.allocate_variable(f"n{term.address:x}")
        binary.insert(edge_point(fn, block, True), IncrementVar(t))
        binary.insert(edge_point(fn, block, False), IncrementVar(n))
        profile.append((term, t, n))

    machine, event = binary.run_instrumented()
    print(f"mutatee exited ({event.exit_code}); "
          f"stdout: {bytes(machine.stdout).decode().strip()}\n")
    print(f"branch profile of collatz_steps "
          f"({len(profile)} conditional branches):\n")
    print(f"{'address':>12}  {'instruction':24} {'taken':>7} "
          f"{'not-taken':>10}  bias")
    for term, t, n in profile:
        vt = binary.read_variable(machine, t)
        vn = binary.read_variable(machine, n)
        total = vt + vn
        bias = f"{100 * vt / total:.0f}% taken" if total else "never run"
        print(f"{term.address:#12x}  {term.disasm():24} {vt:>7} "
              f"{vn:>10}  {bias}")


if __name__ == "__main__":
    main()
