"""Content-addressed analysis artifact store.

The expensive pipeline stages — traversal parse, gap/jump-table
recovery, jal/jalr classification, interprocedural liveness — are pure
functions of (binary bytes, analysis options).  This module stores
their serialized results keyed by a **content hash** so a byte-identical
mutatee never pays for them twice, across processes and across
machines sharing a cache directory:

    key = sha256(schema version | sha256(ELF bytes) |
                 analysis-relevant InstrumentOptions fields)

Layout (one directory per key)::

    <root>/<key>/analysis.json      # CFG + liveness snapshot
    <root>/<key>/traces-<img>.json  # compiled-trace snapshots (sim.persist)

The store is a dumb, safe key/value layer: it knows nothing about CFGs
or liveness (serialization lives with the analyses that own the data —
:mod:`repro.parse.serialize`, :mod:`repro.dataflow.liveness`); it owns
key derivation, atomic writes, and rejection.

Safety model
------------
* **Atomic writes**: every store is a write to a temp file in the same
  directory followed by ``os.replace`` — concurrent writers of one key
  race benignly (last writer wins, readers never observe a torn file).
* **Corruption**: unreadable/truncated/non-JSON entries are a miss
  (counted under ``artifacts.stale``), never an error.
* **Version skew**: entries written under a different
  ``SCHEMA_VERSION`` or whose recorded key disagrees with their path
  are rejected the same way.  The schema version participates in the
  key too, so skew only arises from hand-edited or downgraded stores.

Telemetry: ``artifacts.hits`` / ``artifacts.misses`` /
``artifacts.stale`` / ``artifacts.stores`` (see docs/TELEMETRY.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

from . import telemetry
from .errors import ReproError

#: artifact container format identifier
MAGIC = "repro.artifacts/1"

#: bump on any incompatible change to the payload schemas the store
#: carries (CFG snapshot shape, liveness masks, ...).  Participates in
#: key derivation, so a bump silently invalidates every old entry.
SCHEMA_VERSION = 1

#: environment variable naming a default store directory
ENV_STORE = "REPRO_ARTIFACTS"


class ArtifactError(ReproError, RuntimeError):
    """The artifact store was misused (bad key, unwritable root...)."""


def content_digest(data: bytes) -> str:
    """sha256 hex digest of a binary's bytes (the content half of a
    key)."""
    return hashlib.sha256(data).hexdigest()


def artifact_key(digest: str, options_fields: Mapping[str, Any],
                 schema_version: int = SCHEMA_VERSION) -> str:
    """Derive the store key for one (binary, analysis options) pair.

    *digest* is the binary's :func:`content_digest`;
    *options_fields* are the **analysis-relevant** option fields only
    (see :meth:`repro.api.InstrumentOptions.analysis_fields` — patch
    placement and session-level knobs deliberately do not participate,
    so sessions with different patch bases share one analysis).
    """
    h = hashlib.sha256()
    h.update(f"{MAGIC}|v{schema_version}|{digest}".encode())
    for name in sorted(options_fields):
        h.update(f"|{name}={options_fields[name]!r}".encode())
    return h.hexdigest()[:40]


class ArtifactStore:
    """Directory-backed content-addressed store, one directory per key.

    Thread- and process-safe by construction: keys are content hashes
    (writers of one key write identical bytes modulo metadata) and all
    writes are atomic renames.
    """

    #: file name of the analysis artifact inside a key's directory
    ANALYSIS = "analysis.json"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @classmethod
    def default(cls) -> "ArtifactStore | None":
        """The process-default store: ``$REPRO_ARTIFACTS`` when set
        (the directory is created on first write), else ``None`` —
        no caching."""
        root = os.environ.get(ENV_STORE)
        return cls(root) if root else None

    # -- paths -----------------------------------------------------------

    def dir_for(self, key: str) -> Path:
        """The per-key directory (also the root for that key's
        compiled-trace snapshots, see :mod:`repro.sim.persist`)."""
        if not key or "/" in key or key.startswith("."):
            raise ArtifactError(f"malformed artifact key: {key!r}")
        return self.root / key

    def path_for(self, key: str) -> Path:
        return self.dir_for(key) / self.ANALYSIS

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> list[str]:
        """Keys with a readable analysis entry (no validation)."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if (p / self.ANALYSIS).is_file())

    # -- load / store ----------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The payload stored under *key*, or ``None`` on a miss.

        A corrupt, truncated, version-skewed, or mis-keyed entry is a
        miss (``artifacts.stale``); an absent one is a plain
        ``artifacts.misses``.
        """
        rec = telemetry.current()
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            rec.count("artifacts.misses")
            return None
        try:
            data = json.loads(raw)
        except ValueError:
            rec.count("artifacts.stale")
            return None
        if (not isinstance(data, dict)
                or data.get("magic") != MAGIC
                or data.get("schema_version") != SCHEMA_VERSION
                or data.get("key") != key
                or not isinstance(data.get("payload"), dict)):
            rec.count("artifacts.stale")
            return None
        rec.count("artifacts.hits")
        return data["payload"]

    def meta(self, key: str) -> dict:
        """Stored metadata for *key* (source paths seen, timestamps...);
        empty on a miss.  Metadata is advisory and does not participate
        in validation."""
        try:
            data = json.loads(self.path_for(key).read_bytes())
        except (OSError, ValueError):
            return {}
        if isinstance(data, dict) and isinstance(data.get("meta"), dict):
            return data["meta"]
        return {}

    def store(self, key: str, payload: dict,
              meta: dict | None = None) -> Path:
        """Atomically write *payload* under *key* (last writer wins).

        The temp file lives in the destination directory so the final
        ``os.replace`` is a same-filesystem rename — readers see either
        the old entry or the new one, never a torn file.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({
            "magic": MAGIC,
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "meta": meta or {},
            "payload": payload,
        }).encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                   suffix=".json")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        telemetry.current().count("artifacts.stores")
        return path

    def evict(self, key: str) -> bool:
        """Drop one key's entire directory.  Returns True if anything
        was removed."""
        d = self.dir_for(key)
        if not d.is_dir():
            return False
        for p in sorted(d.iterdir()):
            try:
                p.unlink()
            except OSError:
                pass
        try:
            d.rmdir()
        except OSError:
            return False
        return True


__all__ = [
    "ENV_STORE", "MAGIC", "SCHEMA_VERSION", "ArtifactError",
    "ArtifactStore", "artifact_key", "content_digest",
]
