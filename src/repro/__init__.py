"""pydyninst-riscv: a Dyninst-style binary analysis and instrumentation
toolkit for RV64GC, in pure Python.

Reproduction of "Dyninst on the RISC-V" (He et al., SC Workshops '25).
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Toolkit layout (mirrors the paper's Figure 2):

- :mod:`repro.symtab`       — SymtabAPI (binary structure, extensions)
- :mod:`repro.instruction`  — InstructionAPI (decoded operands, categories)
- :mod:`repro.parse`        — ParseAPI (CFG construction)
- :mod:`repro.dataflow`     — DataflowAPI (liveness, slicing, stack height)
- :mod:`repro.codegen`      — CodeGenAPI (snippet AST -> machine code)
- :mod:`repro.patch`        — PatchAPI (snippet insertion, rewriting)
- :mod:`repro.proccontrol`  — ProcControlAPI (debugger-style process control)
- :mod:`repro.stackwalk`    — StackwalkerAPI (call-stack walking)

Substrates: :mod:`repro.riscv` (ISA), :mod:`repro.elf` (object format),
:mod:`repro.sim` (RV64GC simulator standing in for hardware),
:mod:`repro.minicc` (small C compiler standing in for GCC),
:mod:`repro.semantics` (SAIL-pipeline instruction semantics).

The high-level entry point is :mod:`repro.api` (a BPatch analogue).
"""

__version__ = "0.1.0"
