"""Cross-worker snapshot aggregation and metric exposition.

The session service runs N forked workers, each with its own
:class:`~repro.telemetry.core.Recorder` — a worker's counters die with
its process and the ``stats`` op only ever sees the worker that
accepted the connection.  This module is the fleet-wide view:

* **flush files** — each worker periodically writes its snapshot to
  ``<metrics_dir>/worker-<pid>.json`` with the same atomic-rename
  discipline as :mod:`repro.artifacts` (temp file in the destination
  directory + ``os.replace``), so concurrent flushes race benignly and
  readers never observe a torn file;
* **merge** — :func:`merge_snapshots` folds any number of
  ``repro.telemetry/1`` snapshots into one: counters summed, gauges
  last-write-wins (by flush order), spans combined (counts/totals
  summed, min-of-mins, max-of-maxes), and power-of-two histograms
  merged **bucket-wise**, so percentile estimates over the merged
  histogram remain exact at the bucket resolution;
* **exposition** — :func:`to_prometheus` renders a snapshot in the
  Prometheus text format (dots become underscores; pow2 histograms
  become cumulative ``_bucket{le="..."}`` series plus ``_sum`` /
  ``_count``), the format every scraping stack already speaks.

The ``metrics`` protocol op (see :mod:`repro.service.server`) flushes
the accepting worker's own snapshot, reads every sibling's flush file,
and serves the merged result as JSON and as exposition text;
``tools/repro_top.py`` is the human consumer.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

#: schema identifier for one worker's flush file
FLUSH_SCHEMA = "repro.service.metrics/1"

#: flush files are named worker-<pid>.json inside the metrics dir
FLUSH_PREFIX = "worker-"


def _empty_snapshot() -> dict:
    return {"schema": "repro.telemetry/1", "enabled": True,
            "counters": {}, "gauges": {}, "spans": {},
            "histograms": {}}


def merge_histograms(a: dict, b: dict) -> dict:
    """Bucket-wise merge of two snapshot-form pow2 histograms.

    Either side may be ``{}`` (identity).  Bucket keys are the snapshot
    form ``"le_2^<b>"``; sets may differ — the union is taken, counts
    summed per exponent.
    """
    if not a.get("count"):
        return dict(b) if b else {}
    if not b.get("count"):
        return dict(a)
    buckets = dict(a.get("buckets", {}))
    for key, n in b.get("buckets", {}).items():
        buckets[key] = buckets.get(key, 0) + n
    return {
        "count": a["count"] + b["count"],
        "sum": a.get("sum", 0) + b.get("sum", 0),
        "min": min(a.get("min", 0), b.get("min", 0)),
        "max": max(a.get("max", 0), b.get("max", 0)),
        "buckets": buckets,
    }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold ``repro.telemetry/1`` snapshots into one fleet-wide view.

    Counters sum, spans combine (count/total summed, min/max of the
    extremes), histograms merge bucket-wise, and gauges are
    last-write-wins in list order — callers pass snapshots ordered by
    flush time so the newest observation survives.  Disabled or empty
    snapshots contribute nothing.
    """
    out = _empty_snapshot()
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, n in snap.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + n
        out["gauges"].update(snap.get("gauges", {}))
        for name, s in snap.get("spans", {}).items():
            cur = out["spans"].get(name)
            if cur is None:
                out["spans"][name] = dict(s)
            else:
                cur["count"] += s.get("count", 0)
                cur["total_s"] += s.get("total_s", 0.0)
                cur["min_s"] = min(cur["min_s"], s.get("min_s", cur["min_s"]))
                cur["max_s"] = max(cur["max_s"], s.get("max_s", cur["max_s"]))
        for name, h in snap.get("histograms", {}).items():
            out["histograms"][name] = merge_histograms(
                out["histograms"].get(name, {}), h)
    return out


# -- Prometheus text exposition --------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{safe}" if prefix else safe


def _bucket_exponent(key) -> int:
    # snapshot form "le_2^<b>" or recorder-internal int
    if isinstance(key, str):
        return int(key.rsplit("^", 1)[1])
    return int(key)


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; spans become ``_seconds_total`` /
    ``_count`` pairs; pow2 histograms become cumulative
    ``_bucket{le="2^b"}`` series (upper bound ``2^b``, as floats) with
    the standard ``+Inf`` terminator, ``_sum``, and ``_count``.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} counter")
        lines.append(f"{pn} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} gauge")
        lines.append(f"{pn} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("spans", {})):
        s = snapshot["spans"][name]
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn}_seconds_total counter")
        lines.append(f"{pn}_seconds_total {s.get('total_s', 0.0)}")
        lines.append(f"# TYPE {pn}_count counter")
        lines.append(f"{pn}_count {s.get('count', 0)}")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} histogram")
        cum = 0
        for exp, n in sorted(
                (_bucket_exponent(k), v)
                for k, v in h.get("buckets", {}).items()):
            cum += n
            lines.append(f'{pn}_bucket{{le="{float(1 << exp)}"}} {cum}')
        lines.append(f'{pn}_bucket{{le="+Inf"}} {h.get("count", 0)}')
        lines.append(f"{pn}_sum {h.get('sum', 0)}")
        lines.append(f"{pn}_count {h.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back to ``{series: value}`` (labels kept
    verbatim in the series name).  Used by CI to assert the output is
    well-formed; raises ``ValueError`` on a malformed sample line."""
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise ValueError(f"malformed sample on line {lineno}: {line!r}")
        out[parts[0]] = float(parts[1])
    return out


# -- worker flush files ----------------------------------------------------

def flush_path(metrics_dir: str | os.PathLike, pid: int) -> Path:
    return Path(metrics_dir) / f"{FLUSH_PREFIX}{pid}.json"


def write_worker_snapshot(metrics_dir: str | os.PathLike, *,
                          worker_id: int, snapshot: dict,
                          sessions: int = 0,
                          slow: list | None = None,
                          pid: int | None = None) -> Path:
    """Atomically publish one worker's snapshot (mkstemp + os.replace,
    the :mod:`repro.artifacts` discipline — concurrent flushes of one
    file race benignly, readers never see a torn write)."""
    pid = os.getpid() if pid is None else pid
    path = flush_path(metrics_dir, pid)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps({
        "schema": FLUSH_SCHEMA,
        "pid": pid,
        "worker": worker_id,
        "ts": time.time(),
        "sessions": sessions,
        "slow": slow or [],
        "snapshot": snapshot,
    }).encode()
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                               suffix=".json")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_worker_snapshots(metrics_dir: str | os.PathLike) -> list[dict]:
    """Every readable worker flush record in *metrics_dir*, sorted by
    flush timestamp (oldest first, so gauge merges keep the newest
    observation).  Corrupt/torn/foreign files are skipped, never an
    error — the same degrade-to-miss rule as the artifact store."""
    root = Path(metrics_dir)
    if not root.is_dir():
        return []
    records = []
    for path in sorted(root.iterdir()):
        if not path.name.startswith(FLUSH_PREFIX) or \
                path.suffix != ".json":
            continue
        try:
            data = json.loads(path.read_bytes())
        except (OSError, ValueError):
            continue
        if not isinstance(data, dict) or \
                data.get("schema") != FLUSH_SCHEMA or \
                not isinstance(data.get("snapshot"), dict):
            continue
        records.append(data)
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records


__all__ = [
    "FLUSH_PREFIX", "FLUSH_SCHEMA", "flush_path", "merge_histograms",
    "merge_snapshots", "parse_prometheus", "read_worker_snapshots",
    "to_prometheus", "write_worker_snapshot",
]
