"""Mutatee execution events: the bounded ring-buffer ``EventStream``.

While :mod:`repro.telemetry.core` observes the *pipeline* (what the
toolkit did), this module carries what the *mutatee* did over time: the
simulator emits control-flow events — calls, returns, taken branches,
block entries, memory faults, patch-site hits — into attached
:class:`EventStream` observers, timestamped with the retired-instruction
count and the simulated micro-cycle clock.

Design rules (see docs/INTERNALS.md, "Execution event streams"):

* events are plain 5-tuples ``(kind, pc, target, instret, ucycles)``
  so the emitting hot loop allocates one tuple and performs one bound
  ``push`` call per event — no objects, no dict churn;
* the stream is a **bounded ring**: when full, the oldest event is
  overwritten and ``dropped`` is incremented (consumers that need full
  fidelity size the ring to the run, or drain it incrementally);
* this module is a telemetry *leaf*: it imports nothing from the
  toolkit, so any layer (including the simulator substrate) may emit
  into it.

The export schema identifier is :data:`EVENT_SCHEMA`
(``repro.telemetry.events/1``); the documented JSON shape lives in
docs/TELEMETRY.md.
"""

from __future__ import annotations

from typing import Iterator

#: JSON/event schema identifier (bump on incompatible change).
EVENT_SCHEMA = "repro.telemetry.events/1"

# -- event kinds (small ints: tuple slot 0) -------------------------------

#: jal/jalr that writes a link register: pc = call site, target = callee
CALL = 1
#: jalr x0 consuming a link register: pc = return site, target = return-to
RET = 2
#: other jal/jalr x0 (direct jump, tail call, indirect jump)
JUMP = 3
#: conditional branch that was taken (fall-throughs are not emitted)
BRANCH = 4
#: block entry: first pc executed after any control transfer (and the
#: entry of every compiled superblock in block-granularity mode)
BLOCK = 5
#: memory/architectural fault; pc = faulting pc
FAULT = 6
#: patch-site hit: a trap springboard redirected pc -> target
PATCH = 7

KIND_NAMES = {
    CALL: "call", RET: "return", JUMP: "jump", BRANCH: "branch-taken",
    BLOCK: "block-enter", FAULT: "memory-fault", PATCH: "patch-site-hit",
}

#: RISC-V psABI link registers (ra=x1, t0=x5) — the §3.2.3 convention
#: the emitter classifies jal/jalr against.  Kept here (not imported
#: from the instruction toolkit) so this module stays a leaf.
LINK_REGS = (1, 5)

#: default ring capacity (events, not bytes)
DEFAULT_CAPACITY = 1 << 20


class EventStream:
    """Bounded ring buffer of mutatee execution events.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events are overwritten (and
        counted in :attr:`dropped`) once the ring is full.
    granularity:
        ``"instruction"`` (default) asks the machine for the full event
        vocabulary; the simulator deoptimises to its per-pc closure
        interpreter while such a stream is attached.  ``"block"`` asks
        only for block-enter events; the superblock trace compiler
        stays engaged and emits one event per compiled-block execution.
    """

    __slots__ = ("capacity", "granularity", "dropped", "_buf", "_next")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 granularity: str = "instruction"):
        if capacity <= 0:
            raise ValueError("EventStream capacity must be positive")
        if granularity not in ("instruction", "block"):
            raise ValueError(
                f"granularity must be 'instruction' or 'block', "
                f"not {granularity!r}")
        self.capacity = capacity
        self.granularity = granularity
        self.dropped = 0
        self._buf: list[tuple] = []
        self._next = 0  # overwrite cursor once the ring is full

    # -- producer side (the machine binds this method) -------------------

    def push(self, event: tuple) -> None:
        """Append one ``(kind, pc, target, instret, ucycles)`` tuple."""
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(event)
        else:
            buf[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    # -- consumer side ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[tuple]:
        """Events oldest -> newest."""
        buf = self._buf
        n = self._next
        if n:
            yield from buf[n:]
            yield from buf[:n]
        else:
            yield from buf

    def events(self) -> list[tuple]:
        """The retained events, oldest first, as a new list."""
        return list(self)

    def drain(self) -> list[tuple]:
        """Return the retained events and empty the ring (incremental
        consumption keeps long runs inside a small ring)."""
        out = list(self)
        self.clear()
        return out

    def clear(self) -> None:
        self._buf = []
        self._next = 0

    # -- export ----------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """Schema-shaped (``repro.telemetry.events/1``) event records."""
        return [
            {"kind": KIND_NAMES.get(k, str(k)), "pc": pc,
             "target": target, "instret": instret, "ucycles": ucycles}
            for k, pc, target, instret, ucycles in self
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventStream({len(self._buf)}/{self.capacity} events, "
                f"granularity={self.granularity!r}, "
                f"dropped={self.dropped})")
