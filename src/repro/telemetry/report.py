"""Human-readable rendering of telemetry snapshots.

A snapshot (see :meth:`repro.telemetry.Recorder.snapshot`) is a flat
dict of dotted metric names; the report groups them into pipeline
phases by first name component (``parse.*``, ``liveness.*``,
``patch.*``, ``sim.*``, anything else) and prints a fixed-width table
per phase — the per-stage evidence the §4.3 evaluation is built on.
"""

from __future__ import annotations

import math

#: phase display order; unknown prefixes sort after these
PHASE_ORDER = ("parse", "liveness", "patch", "sim", "trace",
               "artifacts", "service")


def _parse_buckets(buckets: dict) -> list[tuple[int, int]]:
    """Normalise histogram buckets to sorted (exponent, count) pairs.

    Accepts either the snapshot form (``{"le_2^b": count}``) or the
    recorder-internal form (``{b: count}``).
    """
    out = []
    for key, count in buckets.items():
        if isinstance(key, str):
            exp = int(key.rsplit("^", 1)[1])
        else:
            exp = int(key)
        out.append((exp, count))
    out.sort()
    return out


def estimate_percentile(hist: dict, q: float) -> float:
    """Estimate the *q*-th percentile of a power-of-two histogram.

    *hist* is one snapshot histogram entry (``{"count", "sum", "min",
    "max", "buckets"}``).  Bucket ``b`` holds values ``v`` with
    ``int(v).bit_length() == b``, i.e. ``2^(b-1) <= v < 2^b`` (bucket 0
    holds zeros).  Within the located bucket the value is interpolated
    **geometrically** (the natural assumption for exponentially sized
    buckets), then clamped to the histogram's exact observed min/max —
    so ``q=0``/``q=100`` return the true extremes, and single-value
    histograms return that value for every *q*.
    """
    total = hist.get("count", 0)
    if not total:
        return 0.0
    q = min(100.0, max(0.0, q))
    pairs = _parse_buckets(hist.get("buckets", {}))
    lo_clamp = hist.get("min", 0.0)
    hi_clamp = hist.get("max", lo_clamp)
    # rank in [1, total]: the smallest rank covering fraction q
    target = max(1, math.ceil(q / 100.0 * total))
    if target == 1:
        return lo_clamp  # the rank-1 statistic is the exact minimum
    if target == total:
        return hi_clamp  # ... and rank-n the exact maximum
    cum = 0
    for exp, count in pairs:
        if cum + count >= target:
            if exp == 0:
                return min(max(0.0, lo_clamp), hi_clamp)  # zeros only
            lo = float(1 << (exp - 1))
            hi = float(1 << exp)
            frac = (target - cum) / count
            value = lo * (hi / lo) ** frac  # geometric interpolation
            return min(max(value, lo_clamp), hi_clamp)
        cum += count
    return hi_clamp  # pragma: no cover - counts always sum to total


def percentiles(hist: dict, qs=(50, 90, 99)) -> dict[str, float]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` estimates for *hist*."""
    return {f"p{int(q)}": estimate_percentile(hist, q) for q in qs}


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def _phase_key(phase: str):
    try:
        return (PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(PHASE_ORDER), phase)


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"


def phases_of(snapshot: dict) -> list[str]:
    """Every phase named by any instrument, in display order."""
    names = set()
    for family in ("counters", "gauges", "spans", "histograms"):
        names.update(_phase_of(n) for n in snapshot.get(family, {}))
    return sorted(names, key=_phase_key)


def format_report(snapshot: dict) -> str:
    """Render a snapshot as per-phase tables."""
    if not snapshot.get("enabled", False):
        return ("telemetry disabled — enable with REPRO_TELEMETRY=1 or "
                "repro.telemetry.enabled()\n")
    out: list[str] = []
    for phase in phases_of(snapshot):
        out.append(f"== {phase}")
        spans = {n: v for n, v in snapshot["spans"].items()
                 if _phase_of(n) == phase}
        for name in sorted(spans):
            s = spans[name]
            out.append(
                f"  {name:<40}{s['count']:>10}x"
                f"  total {_fmt_seconds(s['total_s']):>12}"
                f"  max {_fmt_seconds(s['max_s']):>12}")
        counters = {n: v for n, v in snapshot["counters"].items()
                    if _phase_of(n) == phase}
        for name in sorted(counters):
            out.append(f"  {name:<40}{counters[name]:>11,}")
        gauges = {n: v for n, v in snapshot["gauges"].items()
                  if _phase_of(n) == phase}
        for name in sorted(gauges):
            out.append(f"  {name:<40}{gauges[name]:>11.2f}")
        hists = {n: v for n, v in snapshot["histograms"].items()
                 if _phase_of(n) == phase}
        for name in sorted(hists):
            h = hists[name]
            # merged/edge-case histograms may be empty or partial —
            # render zeros rather than raise
            count = h.get("count", 0)
            mean = h.get("sum", 0) / count if count else 0.0
            pct = percentiles(h)
            out.append(
                f"  {name:<40}{count:>10}x"
                f"  mean {mean:>8.1f}"
                f"  p50 {pct['p50']:>8.1f}  p90 {pct['p90']:>8.1f}"
                f"  p99 {pct['p99']:>8.1f}  max {h.get('max', 0):>8.1f}")
        out.append("")
    return "\n".join(out) + ("\n" if out else "")
