"""Human-readable rendering of telemetry snapshots.

A snapshot (see :meth:`repro.telemetry.Recorder.snapshot`) is a flat
dict of dotted metric names; the report groups them into pipeline
phases by first name component (``parse.*``, ``liveness.*``,
``patch.*``, ``sim.*``, anything else) and prints a fixed-width table
per phase — the per-stage evidence the §4.3 evaluation is built on.
"""

from __future__ import annotations

#: phase display order; unknown prefixes sort after these
PHASE_ORDER = ("parse", "liveness", "patch", "sim")


def _phase_of(name: str) -> str:
    return name.split(".", 1)[0]


def _phase_key(phase: str):
    try:
        return (PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(PHASE_ORDER), phase)


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"


def phases_of(snapshot: dict) -> list[str]:
    """Every phase named by any instrument, in display order."""
    names = set()
    for family in ("counters", "gauges", "spans", "histograms"):
        names.update(_phase_of(n) for n in snapshot.get(family, {}))
    return sorted(names, key=_phase_key)


def format_report(snapshot: dict) -> str:
    """Render a snapshot as per-phase tables."""
    if not snapshot.get("enabled", False):
        return ("telemetry disabled — enable with REPRO_TELEMETRY=1 or "
                "repro.telemetry.enabled()\n")
    out: list[str] = []
    for phase in phases_of(snapshot):
        out.append(f"== {phase}")
        spans = {n: v for n, v in snapshot["spans"].items()
                 if _phase_of(n) == phase}
        for name in sorted(spans):
            s = spans[name]
            out.append(
                f"  {name:<40}{s['count']:>10}x"
                f"  total {_fmt_seconds(s['total_s']):>12}"
                f"  max {_fmt_seconds(s['max_s']):>12}")
        counters = {n: v for n, v in snapshot["counters"].items()
                    if _phase_of(n) == phase}
        for name in sorted(counters):
            out.append(f"  {name:<40}{counters[name]:>11,}")
        gauges = {n: v for n, v in snapshot["gauges"].items()
                  if _phase_of(n) == phase}
        for name in sorted(gauges):
            out.append(f"  {name:<40}{gauges[name]:>11.2f}")
        hists = {n: v for n, v in snapshot["histograms"].items()
                 if _phase_of(n) == phase}
        for name in sorted(hists):
            h = hists[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            out.append(
                f"  {name:<40}{h['count']:>10}x"
                f"  mean {mean:>8.1f}  max {h['max']:>8.1f}")
        out.append("")
    return "\n".join(out) + ("\n" if out else "")
