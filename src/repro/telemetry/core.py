"""Zero-dependency tracing/metrics core.

The toolkit observes its own pipeline — parse spans, springboard ladder
choices, dead-register hit rates, trace-cache behaviour, simulator
throughput — through one process-wide *recorder*.  Two implementations
share the interface:

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented call sites pay exactly one
  attribute check (``if rec.enabled:``) on their hot paths;
* :class:`Recorder` — a thread-safe in-memory registry of monotonic
  counters, gauges, wall-time spans, and power-of-two histograms, with
  JSON export.

Enable telemetry either for a scope::

    with telemetry.enabled() as rec:
        edit = open_binary(program)
        ...
    print(rec.to_json())

or process-wide with ``REPRO_TELEMETRY=1`` in the environment (read
once at import), or imperatively via :func:`enable` / :func:`disable`.

Instrumented modules follow two patterns:

* cold paths call ``telemetry.current().count(...)`` / ``.span(...)``
  directly — the null recorder absorbs the call;
* hot paths accumulate into locals and flush once behind a single
  ``if rec.enabled:`` check (see ``sim.machine`` and
  ``dataflow.liveness``), keeping the disabled-mode overhead below the
  2% budget asserted by ``tests/test_telemetry.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

#: JSON snapshot schema identifier (bump on incompatible change).
SCHEMA = "repro.telemetry/1"


class _NullSpan:
    """Reusable no-op context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Disabled telemetry: every operation is a no-op.

    A single shared instance backs the module default, so the cost of
    disabled telemetry at an instrumented call site is one attribute
    check (``rec.enabled``) or one trivially-inlined method call.
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> "_NullSpan":
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float) -> None:
        pass

    def record_interval(self, name: str, start_s: float,
                        end_s: float) -> None:
        pass

    def counters(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"schema": SCHEMA, "enabled": False, "counters": {},
                "gauges": {}, "spans": {}, "histograms": {}}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def clear(self) -> None:
        pass


class _Span:
    """One live wall-time span (context manager)."""

    __slots__ = ("_rec", "_name", "_t0")

    def __init__(self, rec: "Recorder", name: str):
        self._rec = rec
        self._name = name
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._rec.record_interval(
            self._name, self._t0, time.perf_counter())
        return False


class Recorder:
    """Thread-safe in-memory metrics registry.

    Four instrument families, all keyed by dotted string names
    (``layer.subsystem.metric``):

    * **counters** — monotonic integers (:meth:`count`);
    * **gauges** — last-value-wins floats (:meth:`gauge`);
    * **spans** — wall-time aggregates: count, total/min/max seconds
      (:meth:`span` as a context manager, or :meth:`record_span` for
      externally measured durations);
    * **histograms** — count/sum/min/max plus power-of-two buckets
      (:meth:`observe`).

    With ``timeline=True`` the recorder additionally keeps every span
    *instance* as ``(name, start_s, end_s)`` on the perf_counter clock
    (bounded by *timeline_limit*) — the raw material the Perfetto
    exporter places pipeline spans with.  Aggregate-only recording (the
    default) stays allocation-light.
    """

    enabled = True

    def __init__(self, timeline: bool = False,
                 timeline_limit: int = 100_000):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> [count, total_s, min_s, max_s]
        self._spans: dict[str, list] = {}
        #: name -> [count, sum, min, max, {bucket_exp: count}]
        self._hists: dict[str, list] = {}
        #: span instances (name, start_s, end_s), when timeline=True
        self._timeline: list[tuple] | None = [] if timeline else None
        self._timeline_limit = timeline_limit

    # -- instruments -----------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        with self._lock:
            s = self._spans.get(name)
            if s is None:
                self._spans[name] = [1, seconds, seconds, seconds]
            else:
                s[0] += 1
                s[1] += seconds
                if seconds < s[2]:
                    s[2] = seconds
                if seconds > s[3]:
                    s[3] = seconds

    def record_interval(self, name: str, start_s: float,
                        end_s: float) -> None:
        """Record one concrete span occurrence (start/end on the
        perf_counter clock); feeds both the aggregate and, when enabled,
        the timeline."""
        self.record_span(name, end_s - start_s)
        tl = self._timeline
        if tl is not None and len(tl) < self._timeline_limit:
            with self._lock:
                tl.append((name, start_s, end_s))

    def observe(self, name: str, value: float) -> None:
        bucket = max(0, int(value).bit_length())  # 2^(b-1) < v <= 2^b... ~
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = [1, value, value, value, {bucket: 1}]
            else:
                h[0] += 1
                h[1] += value
                if value < h[2]:
                    h[2] = value
                if value > h[3]:
                    h[3] = value
                h[4][bucket] = h[4].get(bucket, 0) + 1

    # -- export ----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """A copy of just the counter family — the cheap view request
        tracing uses to compute per-request deltas without paying for a
        full :meth:`snapshot`."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """A point-in-time copy of every instrument, JSON-serialisable.

        When timeline recording is on, the snapshot carries an extra
        ``"timeline"`` key: a list of ``{"name", "start_s", "end_s"}``
        span instances (perf_counter clock).
        """
        with self._lock:
            snap = {
                "schema": SCHEMA,
                "enabled": True,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "spans": {
                    name: {"count": s[0], "total_s": s[1],
                           "min_s": s[2], "max_s": s[3]}
                    for name, s in self._spans.items()
                },
                "histograms": {
                    name: {"count": h[0], "sum": h[1], "min": h[2],
                           "max": h[3],
                           "buckets": {f"le_2^{b}": c
                                       for b, c in sorted(h[4].items())}}
                    for name, h in self._hists.items()
                },
            }
            if self._timeline is not None:
                snap["timeline"] = [
                    {"name": n, "start_s": a, "end_s": b}
                    for n, a, b in self._timeline
                ]
            return snap

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._spans.clear()
            self._hists.clear()
            if self._timeline is not None:
                self._timeline.clear()


# -- module-level state ---------------------------------------------------

_null = NullRecorder()


def _env_default():
    if os.environ.get("REPRO_TELEMETRY", "0") not in ("", "0"):
        return Recorder()
    return _null


_recorder = _env_default()


def current() -> Recorder | NullRecorder:
    """The recorder instrumented code reports to right now."""
    return _recorder


def active() -> bool:
    """Is telemetry currently collecting?"""
    return _recorder.enabled


def enable(recorder: Recorder | None = None) -> Recorder:
    """Install *recorder* (or a fresh one) as the process recorder."""
    global _recorder
    _recorder = recorder if recorder is not None else Recorder()
    return _recorder


def disable() -> None:
    """Restore the no-op null recorder."""
    global _recorder
    _recorder = _null


@contextmanager
def enabled(recorder: Recorder | None = None):
    """Collect telemetry for a ``with`` scope, then restore the previous
    recorder.  Yields the active :class:`Recorder`."""
    global _recorder
    previous = _recorder
    rec = recorder if recorder is not None else Recorder()
    _recorder = rec
    try:
        yield rec
    finally:
        _recorder = previous
