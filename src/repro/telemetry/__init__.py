"""Toolkit-wide telemetry: spans, counters, gauges, histograms, and
mutatee execution event streams.

See :mod:`repro.telemetry.core` for the recorder model,
:mod:`repro.telemetry.events` for the mutatee :class:`EventStream`, and
:mod:`repro.telemetry.report` for rendering; ``tools/stats.py`` is the
pipeline reporter and ``tools/profile.py`` the mutatee profiler.
Metric names and the event schema are catalogued in
``docs/TELEMETRY.md``.
"""

from .aggregate import (
    merge_snapshots, read_worker_snapshots, to_prometheus,
    write_worker_snapshot,
)
from .core import (
    SCHEMA, NullRecorder, Recorder, active, current, disable, enable,
    enabled,
)
from .events import EVENT_SCHEMA, EventStream
from .report import estimate_percentile, format_report, percentiles

__all__ = [
    "SCHEMA", "NullRecorder", "Recorder", "active", "current",
    "disable", "enable", "enabled", "format_report",
    "EVENT_SCHEMA", "EventStream", "estimate_percentile", "percentiles",
    "merge_snapshots", "read_worker_snapshots", "to_prometheus",
    "write_worker_snapshot",
]
