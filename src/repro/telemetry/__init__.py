"""Toolkit-wide telemetry: spans, counters, gauges, histograms.

See :mod:`repro.telemetry.core` for the recorder model and
:mod:`repro.telemetry.report` for rendering; ``tools/stats.py`` is the
command-line reporter.  Metric names are catalogued in
``docs/TELEMETRY.md``.
"""

from .core import (
    SCHEMA, NullRecorder, Recorder, active, current, disable, enable,
    enabled,
)
from .report import format_report

__all__ = [
    "SCHEMA", "NullRecorder", "Recorder", "active", "current",
    "disable", "enable", "enabled", "format_report",
]
