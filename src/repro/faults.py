"""Deterministic fault injection: named sites, seeded enumeration.

Recovery claims are only credible when the failure paths are actually
exercised (HolBA, formal-ISA symbolic execution): this module lets a
test *walk* every failure point of the instrumentation commit path and
check the recovery contract at each one.

The toolkit threads named **injection sites** through its commit-path
layers (``elf.reader``, ``patch.patcher``, ``patch.springboard``,
``patch.relocate``, ``sim.memory``, ``sim.trace``).  A site is one
cheap call::

    from .. import faults
    ...
    faults.site("patch.txn.write_text")        # may raise InjectedFault

or, for *pressure* sites where the product response is graceful
degradation rather than an abort::

    if faults.pressure("patch.springboard.ladder"):
        ...fall back to the trap tier...

With no plan armed (the default, and always in production) a site costs
one module-global load and one ``is None`` test.

Arming and enumeration
----------------------
A :class:`FaultPlan` records every site crossing in order and can be
told to fire at exactly one of them::

    with faults.active(FaultPlan()) as plan:    # recording pass
        run_pipeline()
    n_sites = len(plan.hits)

    for k in range(n_sites):                    # the injection matrix
        with faults.active(FaultPlan(fire_at=k)):
            try:
                run_pipeline()
            except InjectedFault:
                check_rollback_contract()

Because the simulator and the commit path are deterministic, the k-th
crossing of the recording pass is the k-th crossing of the injection
pass: "inject at site k of N" is exhaustive and reproducible.  A plan
fires **at most once** (rollback code re-crosses sites; those hits are
logged but never fire again).

This module is a cross-cutting dependency leaf: any layer may import it
because it imports nothing from the toolkit except the shared exception
base.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .errors import ReproError


class InjectedFault(ReproError, RuntimeError):
    """The deterministic failure raised at an armed injection site."""

    def __init__(self, site: str, index: int):
        super().__init__(
            f"injected fault at site {site!r} (crossing #{index})")
        self.site = site
        self.index = index


class FaultPlan:
    """One injection schedule: record every site crossing, optionally
    fire at one of them.

    Parameters
    ----------
    fire_at:
        Global crossing index to fire at (0-based over *all* site
        crossings, in order), or ``None`` to only record.
    site:
        Fire at a *named* site instead; combined with *occurrence* (the
        n-th crossing of that name, 0-based).  Mutually composable with
        ``fire_at`` — whichever matches first fires; after one firing
        the plan is spent.
    token:
        Optional path to a *firing token* file.  Before firing, the
        plan tries to create it exclusively (``O_CREAT | O_EXCL``);
        if the file already exists the firing is skipped and the plan
        is spent without firing.  This makes a schedule fire **once
        per fleet** even when several processes (e.g. the session
        service's forked — and respawned — workers) arm the same spec:
        the first worker to reach the site claims the token, every
        later worker and every respawned generation stays quiet.
    """

    def __init__(self, fire_at: int | None = None, *,
                 site: str | None = None, occurrence: int = 0,
                 token: str | os.PathLike | None = None):
        self.fire_at = fire_at
        self.site = site
        self.occurrence = occurrence
        self.token = os.fspath(token) if token is not None else None
        #: every site crossing, in order (survives across scopes so one
        #: plan can span build and apply phases)
        self.hits: list[str] = []
        #: the fault this plan fired, if any
        self.fired: InjectedFault | None = None

    def _hit(self, name: str, raising: bool) -> bool:
        idx = len(self.hits)
        occ = self.hits.count(name)
        self.hits.append(name)
        if self.fired is not None:
            return False
        fire = (self.fire_at == idx
                or (self.site == name and self.occurrence == occ))
        if not fire:
            return False
        if self.token is not None and not self._claim_token():
            # another process already fired this fleet-wide schedule;
            # mark the plan spent without raising
            self.fired = InjectedFault(name, idx)
            return False
        self.fired = InjectedFault(name, idx)
        if raising:
            raise self.fired
        return True

    def _claim_token(self) -> bool:
        try:
            fd = os.open(self.token,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unreachable token dir: stay quiet
        os.close(fd)
        return True


#: the armed plan (None in production: sites are near-free)
_plan: FaultPlan | None = None


def site(name: str) -> None:
    """An abort-style injection site: raises :class:`InjectedFault`
    when the armed plan schedules this crossing."""
    plan = _plan
    if plan is None:
        return
    plan._hit(name, raising=True)


def pressure(name: str) -> bool:
    """A degradation-style injection site: returns ``True`` when the
    armed plan schedules this crossing (the caller degrades gracefully
    instead of aborting), ``False`` otherwise."""
    plan = _plan
    if plan is None:
        return False
    return plan._hit(name, raising=False)


def current() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _plan


@contextmanager
def active(plan: FaultPlan | None = None):
    """Arm *plan* (or a fresh recording-only plan) for a ``with``
    scope, then restore the previous plan.  One plan may be armed in
    several consecutive scopes; its hit log and firing state carry
    over, which lets an injection schedule span the build phase and the
    machine phase of one pipeline."""
    global _plan
    previous = _plan
    armed = plan if plan is not None else FaultPlan()
    _plan = armed
    try:
        yield armed
    finally:
        _plan = previous


def arm(plan: FaultPlan | None) -> FaultPlan | None:
    """Arm *plan* for the rest of the process lifetime (no scope).

    The scoped :func:`active` context manager is right for tests; a
    long-lived serving process (a forked session-service worker armed
    from ``REPRO_SERVICE_FAULTS``) has no enclosing scope — it arms
    once at startup and stays armed.  Returns the previous plan.
    """
    global _plan
    previous = _plan
    _plan = plan
    return previous


def plan_from_spec(spec: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from a compact text spec.

    Grammar: ``<site>[@<occurrence>][:<token-path>]`` — a named site,
    the 0-based crossing of that name to fire at (default 0), and an
    optional fleet-once token file (see :class:`FaultPlan`)::

        service.worker.abort            # first crossing, every process
        service.worker.abort@3          # fourth crossing
        service.conn.drop@1:/tmp/tok    # once per fleet, via the token

    Used by the session service's chaos harness to arm forked workers
    through the environment.  Raises ``ValueError`` on an empty site
    name or a non-integer occurrence.
    """
    body, sep, token = spec.partition(":")
    name, _, occ = body.partition("@")
    name = name.strip()
    if not name:
        raise ValueError(f"fault spec has no site name: {spec!r}")
    try:
        occurrence = int(occ) if occ else 0
    except ValueError:
        raise ValueError(
            f"fault spec occurrence is not an integer: {spec!r}"
        ) from None
    return FaultPlan(site=name, occurrence=occurrence,
                     token=token if sep and token else None)


def enumerate_sites(fn) -> list[str]:
    """Run *fn* under a recording-only plan and return the ordered site
    crossings — the domain of the injection matrix."""
    with active(FaultPlan()) as plan:
        fn()
    return list(plan.hits)


__all__ = [
    "FaultPlan", "InjectedFault", "active", "arm", "current",
    "enumerate_sites", "plan_from_spec", "pressure", "site",
]
