"""CodeGenAPI: machine-independent snippet ASTs lowered to RV64GC."""

from .generator import (
    ExtensionUnavailable, GeneratedCode, SnippetGenerator,
    fold_constants, fold_snippet, required_scratch, snippet_calls,
)
from .regalloc import (
    AllocationError, ScratchPlan, SpillArea, allocate_scratch,
)
from .snippets import (
    BinExpr, CSR_CYCLE, CSR_INSTRET, CSR_TIME, CallFunc, Const, CsrExpr,
    DataArea, Expr, If, IncrementVar, LoadExpr,
    Nop, NotExpr, ParamExpr, RegExpr, RetValExpr, Sequence, SetReg,
    SetVar, Snippet, SnippetError, StoreSnippet, VarExpr, Variable,
)

__all__ = [
    "ExtensionUnavailable", "GeneratedCode", "SnippetGenerator",
    "fold_constants", "fold_snippet", "required_scratch",
    "snippet_calls",
    "AllocationError", "ScratchPlan", "SpillArea", "allocate_scratch",
    "BinExpr", "CSR_CYCLE", "CSR_INSTRET", "CSR_TIME", "CallFunc",
    "Const", "CsrExpr", "DataArea", "Expr", "If",
    "IncrementVar", "LoadExpr", "Nop", "NotExpr", "ParamExpr",
    "RegExpr", "RetValExpr", "Sequence",
    "SetReg", "SetVar", "Snippet", "SnippetError", "StoreSnippet",
    "VarExpr", "Variable",
]
