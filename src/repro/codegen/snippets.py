"""Snippet AST: the machine-independent instrumentation language
(paper §2: "a snippet is an abstract representation of the code to be
inserted into the binary ... specified by a machine independent abstract
syntax tree").

Mirrors Dyninst's BPatch_snippet vocabulary: constants, variables
(allocated in the mutatee's instrumentation data area), register and
memory accesses, arithmetic/logical/relational operators, sequences,
conditionals, and function calls.  Tools build these trees;
CodeGenAPI lowers them to RV64GC (:mod:`repro.codegen.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as Seq

from ..errors import ReproError
from ..riscv.registers import Register


@dataclass(frozen=True)
class Variable:
    """An 8-byte slot in the instrumentation data area."""

    name: str
    address: int
    size: int = 8


class SnippetError(ReproError, ValueError):
    """Raised for malformed snippet trees or lowering failures."""


# -- expressions -----------------------------------------------------------

class Expr:
    """Base class for value-producing snippet nodes."""


@dataclass(frozen=True)
class Const(Expr):
    """64-bit integer constant."""

    value: int


@dataclass(frozen=True)
class VarExpr(Expr):
    """Read an instrumentation variable."""

    var: Variable


@dataclass(frozen=True)
class RegExpr(Expr):
    """Read a mutatee register (its original, pre-snippet value when the
    patcher spilled it; otherwise the live value)."""

    reg: Register


def ParamExpr(index: int) -> "RegExpr":
    """The i-th integer argument of the instrumented function — valid at
    function-entry points (Dyninst's BPatch_paramExpr)."""
    from ..riscv.registers import ARG_REGS

    if not 0 <= index < len(ARG_REGS):
        raise SnippetError(f"parameter index {index} out of range 0..7")
    return RegExpr(ARG_REGS[index])


def RetValExpr() -> "RegExpr":
    """The function's integer return value — valid at function-exit
    points (Dyninst's BPatch_retExpr)."""
    from ..riscv.registers import A0

    return RegExpr(A0)


@dataclass(frozen=True)
class CsrExpr(Expr):
    """Read a control/status register (e.g. ``cycle`` = 0xC00) — lets
    instrumentation self-time the mutatee (requires Zicsr)."""

    csr: int


#: well-known CSR addresses for snippets
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02


@dataclass(frozen=True)
class LoadExpr(Expr):
    """Load *size* bytes from the address an expression computes."""

    addr: Expr
    size: int = 8
    signed: bool = False


@dataclass(frozen=True)
class BinExpr(Expr):
    """Binary operation.  op in OPS."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class NotExpr(Expr):
    """Logical negation (0 -> 1, nonzero -> 0)."""

    operand: Expr


#: Supported binary operators.
OPS = frozenset({
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
})


# -- statements ----------------------------------------------------------------

class Snippet:
    """Base class for effect-producing snippet nodes."""


@dataclass(frozen=True)
class Nop(Snippet):
    """The null snippet."""


@dataclass(frozen=True)
class SetVar(Snippet):
    """var = expr"""

    var: Variable
    value: Expr


@dataclass(frozen=True)
class IncrementVar(Snippet):
    """var = var + step — the canonical counter snippet the paper's
    benchmarks insert (§4.1: "simply increments a counter in memory")."""

    var: Variable
    step: int = 1


@dataclass(frozen=True)
class StoreSnippet(Snippet):
    """Store *size* bytes of value to the address an expression computes."""

    addr: Expr
    value: Expr
    size: int = 8


@dataclass(frozen=True)
class SetReg(Snippet):
    """Write a mutatee register (takes effect when the trampoline
    returns to the original code)."""

    reg: Register
    value: Expr


@dataclass(frozen=True)
class If(Snippet):
    """Conditional execution."""

    cond: Expr
    then: Snippet
    otherwise: Snippet | None = None


@dataclass(frozen=True)
class Sequence(Snippet):
    """Execute snippets in order."""

    items: tuple[Snippet, ...]

    def __init__(self, items: Seq[Snippet]):
        object.__setattr__(self, "items", tuple(items))


@dataclass(frozen=True)
class CallFunc(Snippet):
    """Call a mutatee function with up to 8 integer arguments.

    The generator saves/restores what the call clobbers; still, calling
    into the mutatee from instrumentation is the heavyweight path (the
    paper's benchmarks deliberately avoid it)."""

    target: int
    args: tuple[Expr, ...] = ()

    def __init__(self, target: int, args: Seq[Expr] = ()):
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "args", tuple(args))


# -- data area -------------------------------------------------------------------

class DataArea:
    """Bump allocator for instrumentation variables in the mutatee's
    address space."""

    def __init__(self, base: int, size: int):
        self.base = base
        self.size = size
        self._next = base
        self.variables: dict[str, Variable] = {}

    def allocate(self, name: str, size: int = 8,
                 align: int = 8) -> Variable:
        if name in self.variables:
            raise SnippetError(f"variable {name!r} already allocated")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > self.base + self.size:
            raise SnippetError("instrumentation data area exhausted")
        self._next = addr + size
        var = Variable(name, addr, size)
        self.variables[name] = var
        return var

    def var(self, name: str) -> Variable:
        return self.variables[name]

    @property
    def used(self) -> int:
        return self._next - self.base
