"""Scratch-register allocation for instrumentation (paper §4.3).

"When instrumentation needs registers, we attempt to use dead registers
(ones that do not contain values used later in the execution).  If such
registers are available, spilling the contents can be avoided."

:func:`allocate_scratch` asks liveness for dead registers at the
instrumentation point and tops up with spill-backed registers when not
enough are dead.  The returned plan tells the trampoline builder which
registers to save/restore.

``use_dead_registers=False`` reproduces the *legacy* behaviour (the
paper's pre-optimisation x86 engine): everything is spilled — the knob
behind the x86proxy column of the §4.3 table and the dead-register
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..dataflow.liveness import LivenessResult
from ..riscv.registers import Register, SCRATCH_CANDIDATES


@dataclass(frozen=True)
class ScratchPlan:
    """Registers the snippet may use, and which of them must be
    saved/restored by the trampoline."""

    regs: tuple[Register, ...]
    spilled: tuple[Register, ...]

    @property
    def n_dead(self) -> int:
        return len(self.regs) - len(self.spilled)

    @property
    def spill_bytes(self) -> int:
        return 8 * len(self.spilled)


class AllocationError(ReproError, RuntimeError):
    pass


def allocate_scratch(
    needed: int,
    liveness: LivenessResult | None = None,
    point: int | None = None,
    *,
    use_dead_registers: bool = True,
    candidates: tuple[Register, ...] = SCRATCH_CANDIDATES,
    extra_avoid: frozenset[Register] = frozenset(),
) -> ScratchPlan:
    """Build a scratch plan for *needed* registers at *point*.

    With liveness available and ``use_dead_registers``, dead registers
    are claimed first (zero save/restore cost); the remainder are
    spill-backed.  Without liveness (or with the optimisation off),
    every scratch register is spilled — correct but slower.
    """
    if needed <= 0:
        raise AllocationError("needed must be positive")
    pool = [r for r in candidates if r not in extra_avoid]
    if needed > len(pool):
        raise AllocationError(
            f"requested {needed} scratch registers; only {len(pool)} "
            f"candidates exist")

    dead: list[Register] = []
    if use_dead_registers and liveness is not None and point is not None:
        dead = [r for r in liveness.dead_before(point, tuple(pool))]

    chosen: list[Register] = dead[:needed]
    spilled: list[Register] = []
    for r in pool:
        if len(chosen) >= needed:
            break
        if r not in chosen:
            chosen.append(r)
            spilled.append(r)
    return ScratchPlan(tuple(chosen), tuple(spilled))


@dataclass
class SpillArea:
    """Stack-based spill protocol for trampolines.

    RISC-V has no red zone, but the trampoline runs synchronously in
    the mutatee thread, so a classic push/pop below sp is safe:
    ``addi sp, sp, -N`` / saves / payload / restores / ``addi sp, sp, N``.
    """

    plan: ScratchPlan
    extra: tuple[Register, ...] = ()
    _slots: dict[Register, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        regs = list(self.plan.spilled) + [
            r for r in self.extra if r not in self.plan.spilled]
        for i, r in enumerate(regs):
            self._slots[r] = 8 * i

    @property
    def frame_bytes(self) -> int:
        n = 8 * len(self._slots)
        return (n + 15) & ~15  # keep sp 16-aligned per the psABI

    def save_instructions(self) -> list[tuple[str, dict[str, int]]]:
        if not self._slots:
            return []
        out = [("addi", {"rd": 2, "rs1": 2, "imm": -self.frame_bytes})]
        for reg, off in self._slots.items():
            mn = "sd" if reg.regclass.value == "int" else "fsd"
            out.append((mn, {"rs2": reg.number, "rs1": 2, "imm": off}))
        return out

    def restore_instructions(self) -> list[tuple[str, dict[str, int]]]:
        if not self._slots:
            return []
        out = []
        for reg, off in self._slots.items():
            mn = "ld" if reg.regclass.value == "int" else "fld"
            out.append((mn, {"rd": reg.number, "rs1": 2, "imm": off}))
        out.append(("addi", {"rd": 2, "rs1": 2, "imm": self.frame_bytes}))
        return out
