"""CodeGenAPI: lower snippet ASTs to RV64GC instruction sequences
(paper §3.2.5).

Extension-aware: the generator is constructed with the mutatee's
:class:`~repro.riscv.extensions.ISASubset` (from SymtabAPI) and refuses
to emit instructions from extensions the target may not implement —
``mul`` needs M, FP moves need D, and so on.  Immediates are
materialised with the shared ``lui``/``addi``/``slli`` logic
(:mod:`repro.riscv.materialize`).

The generator works with whatever scratch registers the register
allocator hands it (dead registers when liveness found some — the §4.3
optimisation — or spilled ones otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..riscv.encoder import encode_fields
from ..riscv.encoding import sign_extend, to_unsigned
from ..riscv.extensions import ISASubset
from ..riscv.materialize import materialize_imm
from ..riscv.opcodes import by_mnemonic
from ..riscv.registers import Register
from ..semantics.evaluate import _binop
from . import snippets as S

#: snippet operator -> semantics-kernel operator (RISC-V semantics,
#: signed where the lowering is signed)
_FOLD_OPS = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "divs",
    "rem": "rems", "and": "and", "or": "or", "xor": "xor",
    "shl": "sll", "shr": "srl",
    "eq": "eq", "ne": "ne", "lt": "lts", "le": None, "gt": None,
    "ge": "ges",
}


def fold_constants(expr: S.Expr) -> S.Expr:
    """Constant-fold a snippet expression (paper §2: Dyninst will
    "optimize the code when possible").  Folding uses the same
    evaluation kernel as the instruction semantics, so folded and
    lowered results agree bit-for-bit."""
    if isinstance(expr, S.BinExpr):
        lhs = fold_constants(expr.lhs)
        rhs = fold_constants(expr.rhs)
        if isinstance(lhs, S.Const) and isinstance(rhs, S.Const):
            a = to_unsigned(lhs.value, 64)
            b = to_unsigned(rhs.value, 64)
            op = expr.op
            if op == "le":
                v = int(sign_extend(a, 64) <= sign_extend(b, 64))
            elif op == "gt":
                v = int(sign_extend(a, 64) > sign_extend(b, 64))
            elif _FOLD_OPS.get(op):
                v = _binop(_FOLD_OPS[op], a, b)
            else:
                return S.BinExpr(expr.op, lhs, rhs)
            return S.Const(sign_extend(v, 64))
        # algebraic identities that shorten the lowering
        if isinstance(rhs, S.Const) and rhs.value == 0 and \
                expr.op in ("add", "sub", "or", "xor", "shl", "shr"):
            return lhs
        if isinstance(lhs, S.Const) and lhs.value == 0 and \
                expr.op in ("add", "or", "xor"):
            return rhs
        if isinstance(rhs, S.Const) and rhs.value == 1 and \
                expr.op in ("mul", "div"):
            return lhs
        return S.BinExpr(expr.op, lhs, rhs)
    if isinstance(expr, S.NotExpr):
        inner = fold_constants(expr.operand)
        if isinstance(inner, S.Const):
            return S.Const(int(inner.value == 0))
        return S.NotExpr(inner)
    if isinstance(expr, S.LoadExpr):
        return S.LoadExpr(fold_constants(expr.addr), expr.size,
                          expr.signed)
    return expr


def fold_snippet(snippet: S.Snippet) -> S.Snippet:
    """Apply constant folding through a snippet tree (If with a constant
    condition drops the dead branch entirely)."""
    if isinstance(snippet, S.SetVar):
        return S.SetVar(snippet.var, fold_constants(snippet.value))
    if isinstance(snippet, S.StoreSnippet):
        return S.StoreSnippet(fold_constants(snippet.addr),
                              fold_constants(snippet.value),
                              snippet.size)
    if isinstance(snippet, S.SetReg):
        return S.SetReg(snippet.reg, fold_constants(snippet.value))
    if isinstance(snippet, S.If):
        cond = fold_constants(snippet.cond)
        then = fold_snippet(snippet.then)
        other = (fold_snippet(snippet.otherwise)
                 if snippet.otherwise is not None else None)
        if isinstance(cond, S.Const):
            if cond.value:
                return then
            return other if other is not None else S.Nop()
        return S.If(cond, then, other)
    if isinstance(snippet, S.Sequence):
        items = [fold_snippet(x) for x in snippet.items]
        items = [x for x in items if not isinstance(x, S.Nop)]
        if not items:
            return S.Nop()
        if len(items) == 1:
            return items[0]
        return S.Sequence(items)
    if isinstance(snippet, S.CallFunc):
        return S.CallFunc(snippet.target,
                          [fold_constants(a) for a in snippet.args])
    return snippet

#: (mnemonic, fields) — one lowered instruction.
Lowered = tuple[str, dict[str, int]]


class ExtensionUnavailable(S.SnippetError):
    """The snippet requires an ISA extension the mutatee lacks."""

    def __init__(self, mnemonic: str, extension: str, isa: ISASubset):
        super().__init__(
            f"snippet needs {mnemonic!r} ({extension!r} extension) but the "
            f"mutatee only supports {isa.arch_string()}")
        self.extension = extension


@dataclass
class GeneratedCode:
    """Lowered snippet payload."""

    instructions: list[Lowered]

    def encode(self) -> bytes:
        out = bytearray()
        for mn, fields in self.instructions:
            out += encode_fields(by_mnemonic(mn), fields).to_bytes(
                4, "little")
        return bytes(out)

    @property
    def size(self) -> int:
        return 4 * len(self.instructions)


def _expr_depth(e: S.Expr) -> int:
    if isinstance(e, (S.Const, S.VarExpr, S.RegExpr)):
        return 1
    if isinstance(e, S.LoadExpr):
        return _expr_depth(e.addr)
    if isinstance(e, S.NotExpr):
        return _expr_depth(e.operand)
    if isinstance(e, S.BinExpr):
        return max(_expr_depth(e.lhs), 1 + _expr_depth(e.rhs))
    return 1


def required_scratch(snippet: S.Snippet) -> int:
    """How many scratch registers lowering this snippet needs (drives
    the register allocator's request)."""
    if isinstance(snippet, S.Nop):
        return 2
    if isinstance(snippet, S.IncrementVar):
        return 2 if -2048 <= snippet.step <= 2047 else 3
    if isinstance(snippet, S.SetVar):
        # value lands in reg 0; the address materialises in reg 1
        return max(2, _expr_depth(snippet.value))
    if isinstance(snippet, S.StoreSnippet):
        return max(2, _expr_depth(snippet.value),
                   1 + _expr_depth(snippet.addr))
    if isinstance(snippet, S.SetReg):
        return max(2, _expr_depth(snippet.value))
    if isinstance(snippet, S.If):
        n = max(2, _expr_depth(snippet.cond),
                required_scratch(snippet.then))
        if snippet.otherwise is not None:
            n = max(n, required_scratch(snippet.otherwise))
        return n
    if isinstance(snippet, S.Sequence):
        return max([2] + [required_scratch(x) for x in snippet.items])
    if isinstance(snippet, S.CallFunc):
        return max([2] + [_expr_depth(a) for a in snippet.args])
    return 2


def snippet_calls(snippet: S.Snippet) -> bool:
    """Does the snippet contain a CallFunc (needs full caller-saved
    spill in the trampoline)?"""
    if isinstance(snippet, S.CallFunc):
        return True
    if isinstance(snippet, S.Sequence):
        return any(snippet_calls(x) for x in snippet.items)
    if isinstance(snippet, S.If):
        return snippet_calls(snippet.then) or (
            snippet.otherwise is not None and snippet_calls(snippet.otherwise))
    return False


class SnippetGenerator:
    """Lowers one snippet with a fixed set of scratch registers.

    ``sp_adjustment`` compensates register reads of sp when the payload
    executes inside a trampoline spill frame: the mutatee's sp at the
    instrumentation point is the live sp *plus* the spill frame size.
    The patcher passes the active frame size; RegExpr(sp) then lowers to
    ``addi dst, sp, adjustment`` so snippets observe the original value.
    """

    def __init__(self, isa: ISASubset, scratch: list[Register],
                 sp_adjustment: int = 0):
        if len(scratch) < 2:
            raise S.SnippetError("snippet generation needs >= 2 scratch "
                                 "registers")
        self.isa = isa
        self.scratch = scratch
        self.sp_adjustment = sp_adjustment
        self._out: list = []     # ('i', mn, fields) | ('lbl', id) |
        #                          ('br', mn, fields, lbl)
        self._label_n = 0

    # -- public ------------------------------------------------------------

    def generate(self, snippet: S.Snippet,
                 optimize: bool = True) -> GeneratedCode:
        self._out = []
        self._stmt(fold_snippet(snippet) if optimize else snippet)
        return GeneratedCode(self._resolve())

    # -- helpers ---------------------------------------------------------------

    def _emit(self, mn: str, **fields: int) -> None:
        spec = by_mnemonic(mn)
        if not self.isa.supports(spec.extension):
            raise ExtensionUnavailable(mn, spec.extension, self.isa)
        self._out.append(("i", mn, fields))

    def _label(self) -> int:
        self._label_n += 1
        return self._label_n

    def _place(self, label: int) -> None:
        self._out.append(("lbl", label))

    def _branch(self, mn: str, fields: dict[str, int], label: int) -> None:
        self._out.append(("br", mn, fields, label))

    def _materialize(self, rd: int, value: int) -> None:
        for mn, fields in materialize_imm(rd, value):
            self._emit(mn, **fields)

    def _resolve(self) -> list[Lowered]:
        # assign offsets (every instruction is 4 bytes)
        offsets: dict[int, int] = {}
        pc = 0
        for item in self._out:
            if item[0] == "lbl":
                offsets[item[1]] = pc
            else:
                pc += 4
        out: list[Lowered] = []
        pc = 0
        for item in self._out:
            if item[0] == "lbl":
                continue
            if item[0] == "br":
                _, mn, fields, label = item
                fields = dict(fields)
                fields["imm"] = offsets[label] - pc
                out.append((mn, fields))
            else:
                out.append((item[1], item[2]))
            pc += 4
        return out

    # -- statements ----------------------------------------------------------------

    def _stmt(self, s: S.Snippet) -> None:
        if isinstance(s, S.Nop):
            return
        if isinstance(s, S.Sequence):
            for item in s.items:
                self._stmt(item)
            return
        if isinstance(s, S.IncrementVar):
            self._gen_increment(s)
            return
        if isinstance(s, S.SetVar):
            val = self._expr(s.value, 0)
            addr = self._addr_of(s.var, 1)
            self._emit("sd", rs2=val, rs1=addr, imm=0)
            return
        if isinstance(s, S.StoreSnippet):
            val = self._expr(s.value, 0)
            addr = self._expr(s.addr, 1)
            mn = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}[s.size]
            self._emit(mn, rs2=val, rs1=addr, imm=0)
            return
        if isinstance(s, S.SetReg):
            if s.reg.number in (0, 2):
                raise S.SnippetError(
                    f"SetReg cannot target {s.reg.abi_name} (the "
                    f"trampoline depends on it)")
            val = self._expr(s.value, 0)
            self._emit("addi", rd=s.reg.number, rs1=val, imm=0)
            return
        if isinstance(s, S.If):
            self._gen_if(s)
            return
        if isinstance(s, S.CallFunc):
            self._gen_call(s)
            return
        raise S.SnippetError(f"unknown snippet node {s!r}")

    def _gen_increment(self, s: S.IncrementVar) -> None:
        """The hot path: addr-materialise, load, add, store — 5-6
        instructions with a 2-register footprint."""
        addr = self._addr_of(s.var, 0)
        tmp = self._reg(1)
        self._emit("ld", rd=tmp, rs1=addr, imm=0)
        if -2048 <= s.step <= 2047:
            self._emit("addi", rd=tmp, rs1=tmp, imm=s.step)
        else:
            step = self._reg(2)
            self._materialize(step, s.step)
            self._emit("add", rd=tmp, rs1=tmp, rs2=step)
        self._emit("sd", rs2=tmp, rs1=addr, imm=0)

    def _gen_if(self, s: S.If) -> None:
        cond = self._expr(s.cond, 0)
        else_l = self._label()
        end_l = self._label()
        self._branch("beq", {"rs1": cond, "rs2": 0}, else_l)
        self._stmt(s.then)
        if s.otherwise is not None:
            self._branch("jal", {"rd": 0}, end_l)
            self._place(else_l)
            self._stmt(s.otherwise)
            self._place(end_l)
        else:
            self._place(else_l)

    def _gen_call(self, s: S.CallFunc) -> None:
        if len(s.args) > 8:
            raise S.SnippetError("CallFunc supports at most 8 arguments")
        for i, arg in enumerate(s.args):
            r = self._expr(arg, 0)
            self._emit("addi", rd=10 + i, rs1=r, imm=0)
        target = self._reg(0)
        self._materialize(target, s.target)
        self._emit("jalr", rd=1, rs1=target, imm=0)

    # -- expressions ------------------------------------------------------------------

    def _reg(self, depth: int) -> int:
        if depth >= len(self.scratch):
            raise S.SnippetError(
                f"snippet expression needs more than {len(self.scratch)} "
                f"scratch registers")
        return self.scratch[depth].number

    def _addr_of(self, var: S.Variable, depth: int) -> int:
        r = self._reg(depth)
        self._materialize(r, var.address)
        return r

    def _expr(self, e: S.Expr, depth: int) -> int:
        """Evaluate into scratch[depth]; returns the register number."""
        dst = self._reg(depth)
        if isinstance(e, S.Const):
            self._materialize(dst, e.value)
            return dst
        if isinstance(e, S.VarExpr):
            self._materialize(dst, e.var.address)
            mn = {1: "lbu", 2: "lhu", 4: "lwu", 8: "ld"}[e.var.size]
            self._emit(mn, rd=dst, rs1=dst, imm=0)
            return dst
        if isinstance(e, S.RegExpr):
            adj = self.sp_adjustment if e.reg.number == 2 else 0
            self._emit("addi", rd=dst, rs1=e.reg.number, imm=adj)
            return dst
        if isinstance(e, S.CsrExpr):
            self._emit("csrrs", rd=dst, csr=e.csr, rs1=0)
            return dst
        if isinstance(e, S.LoadExpr):
            addr = self._expr(e.addr, depth)
            if e.signed:
                mn = {1: "lb", 2: "lh", 4: "lw", 8: "ld"}[e.size]
            else:
                mn = {1: "lbu", 2: "lhu", 4: "lwu", 8: "ld"}[e.size]
            self._emit(mn, rd=dst, rs1=addr, imm=0)
            return dst
        if isinstance(e, S.NotExpr):
            v = self._expr(e.operand, depth)
            self._emit("sltiu", rd=dst, rs1=v, imm=1)
            return dst
        if isinstance(e, S.BinExpr):
            return self._bin(e, depth, dst)
        raise S.SnippetError(f"unknown expression node {e!r}")

    def _bin(self, e: S.BinExpr, depth: int, dst: int) -> int:
        if e.op not in S.OPS:
            raise S.SnippetError(f"unknown operator {e.op!r}")
        a = self._expr(e.lhs, depth)
        b = self._expr(e.rhs, depth + 1)
        table = {
            "add": "add", "sub": "sub", "mul": "mul", "div": "div",
            "rem": "rem", "and": "and", "or": "or", "xor": "xor",
            "shl": "sll", "shr": "srl",
        }
        if e.op in table:
            self._emit(table[e.op], rd=dst, rs1=a, rs2=b)
            return dst
        if e.op == "lt":
            self._emit("slt", rd=dst, rs1=a, rs2=b)
        elif e.op == "gt":
            self._emit("slt", rd=dst, rs1=b, rs2=a)
        elif e.op == "le":
            self._emit("slt", rd=dst, rs1=b, rs2=a)
            self._emit("xori", rd=dst, rs1=dst, imm=1)
        elif e.op == "ge":
            self._emit("slt", rd=dst, rs1=a, rs2=b)
            self._emit("xori", rd=dst, rs1=dst, imm=1)
        elif e.op == "eq":
            self._emit("sub", rd=dst, rs1=a, rs2=b)
            self._emit("sltiu", rd=dst, rs1=dst, imm=1)
        elif e.op == "ne":
            self._emit("sub", rd=dst, rs1=a, rs2=b)
            self._emit("sltu", rd=dst, rs1=0, rs2=dst)
        return dst
