"""Concrete evaluator for the semantics IR.

Executes an instruction's :class:`~repro.semantics.ir.Semantics` against
an abstract machine-state interface and returns the concrete writes.
Two uses:

* cross-checking the SAIL-derived semantics against the hand-written
  fast simulator (a pipeline-correctness property test), and
* constant evaluation inside backward slicing (DataflowAPI).

All values are 64-bit unsigned integers; signed interpretations happen
at operator granularity, exactly as in the IR definition.
"""

from __future__ import annotations

from typing import Protocol

from ..riscv.encoding import sign_extend, to_unsigned
from ..riscv.instr import Instruction
from .ir import (
    BinOp, CondEffect, Const, Effect, Expr, Extend, ILen, ITE, MemRead,
    MemWrite, OperandRef, PC, PCWrite, RegRef, RegWrite, Semantics, UnOp,
)

_M64 = (1 << 64) - 1


class EvalState(Protocol):
    """Machine state the evaluator reads from."""

    pc: int

    def read_xreg(self, n: int) -> int: ...

    def read_freg(self, n: int) -> int: ...

    def read_mem(self, addr: int, size: int) -> int: ...


#: A concrete write produced by evaluation: one of
#: ("x", regnum, value), ("f", regnum, value),
#: ("mem", addr, size, value), ("pc", value).
Write = tuple


def _signed(v: int) -> int:
    return sign_extend(v, 64)


def _unop(op: str, v: int) -> int:
    if op == "neg":
        return (-v) & _M64
    if op == "not":
        return v ^ _M64
    if op == "clz":
        return 64 - v.bit_length()
    if op == "ctz":
        return 64 if v == 0 else (v & -v).bit_length() - 1
    if op == "cpop":
        return v.bit_count()
    raise ValueError(f"unknown unary op {op!r}")


def _binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return (a + b) & _M64
    if op == "sub":
        return (a - b) & _M64
    if op == "mul":
        return (a * b) & _M64
    if op == "mulh":
        return to_unsigned((_signed(a) * _signed(b)) >> 64, 64)
    if op == "mulhu":
        return (a * b) >> 64
    if op == "mulhsu":
        return to_unsigned((_signed(a) * b) >> 64, 64)
    if op == "divs":
        # RISC-V: div by zero -> -1; INT64_MIN / -1 -> INT64_MIN.
        if b == 0:
            return _M64
        sa, sb = _signed(a), _signed(b)
        if sa == -(1 << 63) and sb == -1:
            return to_unsigned(sa, 64)
        q = abs(sa) // abs(sb)
        return to_unsigned(-q if (sa < 0) != (sb < 0) else q, 64)
    if op == "divu":
        return _M64 if b == 0 else a // b
    if op == "rems":
        if b == 0:
            return a
        sa, sb = _signed(a), _signed(b)
        if sa == -(1 << 63) and sb == -1:
            return 0
        r = abs(sa) % abs(sb)
        return to_unsigned(-r if sa < 0 else r, 64)
    if op == "remu":
        return a if b == 0 else a % b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return (a << (b & 63)) & _M64
    if op == "srl":
        return a >> (b & 63)
    if op == "sra":
        return to_unsigned(_signed(a) >> (b & 63), 64)
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "lts":
        return int(_signed(a) < _signed(b))
    if op == "ltu":
        return int(a < b)
    if op == "ges":
        return int(_signed(a) >= _signed(b))
    if op == "geu":
        return int(a >= b)
    raise ValueError(f"unknown binary op {op!r}")


def eval_expr(e: Expr, instr: Instruction, state: EvalState) -> int:
    """Evaluate one IR expression to a 64-bit unsigned value."""
    if isinstance(e, Const):
        return to_unsigned(e.value, 64)
    if isinstance(e, PC):
        return to_unsigned(state.pc, 64)
    if isinstance(e, ILen):
        return instr.length
    if isinstance(e, OperandRef):
        v = instr.fields.get(e.name)
        if v is None:
            raise ValueError(
                f"{instr.mnemonic}: semantics reference missing operand "
                f"{e.name!r}")
        return to_unsigned(v, 64)
    if isinstance(e, RegRef):
        n = instr.fields.get(e.operand)
        if n is None:
            raise ValueError(
                f"{instr.mnemonic}: semantics reference missing register "
                f"operand {e.operand!r}")
        if e.regfile == "x":
            return 0 if n == 0 else to_unsigned(state.read_xreg(n), 64)
        return to_unsigned(state.read_freg(n), 64)
    if isinstance(e, BinOp):
        return _binop(e.op, eval_expr(e.lhs, instr, state),
                      eval_expr(e.rhs, instr, state))
    if isinstance(e, UnOp):
        return _unop(e.op, eval_expr(e.operand, instr, state))
    if isinstance(e, Extend):
        v = eval_expr(e.operand, instr, state)
        if e.kind == "sext":
            return to_unsigned(sign_extend(v, e.width), 64)
        return v & ((1 << e.width) - 1)
    if isinstance(e, MemRead):
        addr = eval_expr(e.addr, instr, state)
        return to_unsigned(state.read_mem(addr, e.size), 64)
    if isinstance(e, ITE):
        return (eval_expr(e.then, instr, state)
                if eval_expr(e.cond, instr, state)
                else eval_expr(e.otherwise, instr, state))
    raise TypeError(f"unknown expression {e!r}")


def _eval_effect(eff: Effect, instr: Instruction, state: EvalState,
                 out: list[Write]) -> None:
    if isinstance(eff, RegWrite):
        n = instr.fields[eff.operand]
        v = eval_expr(eff.value, instr, state)
        if not (eff.regfile == "x" and n == 0):
            out.append((eff.regfile, n, v))
    elif isinstance(eff, MemWrite):
        addr = eval_expr(eff.addr, instr, state)
        v = eval_expr(eff.value, instr, state) & ((1 << (8 * eff.size)) - 1)
        out.append(("mem", addr, eff.size, v))
    elif isinstance(eff, PCWrite):
        out.append(("pc", eval_expr(eff.value, instr, state)))
    elif isinstance(eff, CondEffect):
        branch = eff.then if eval_expr(eff.cond, instr, state) else eff.otherwise
        for sub in branch:
            _eval_effect(sub, instr, state, out)
    else:
        raise TypeError(f"unknown effect {eff!r}")


def evaluate(sem: Semantics, instr: Instruction,
             state: EvalState) -> list[Write]:
    """Evaluate semantics, returning the concrete writes.

    A ``("pc", value)`` write is always present (the implicit
    fall-through is materialised when the semantics do not set pc).
    """
    out: list[Write] = []
    for eff in sem.effects:
        _eval_effect(eff, instr, state, out)
    if not any(w[0] == "pc" for w in out):
        out.append(("pc", to_unsigned(state.pc + instr.length, 64)))
    return out
