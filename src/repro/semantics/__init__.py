"""Instruction semantics for dataflow analysis (DataflowAPI substrate).

Semantics are produced by the SAIL-substitute pipeline in
:mod:`repro.semantics.sail` and consumed through the registry
(:func:`semantics_for`, :func:`register_uses`, :func:`register_defs`).
"""

from .evaluate import evaluate, eval_expr
from .ir import (
    BinOp, CondEffect, Const, Effect, Expr, Extend, ILen, ITE, MemRead,
    MemWrite, OperandRef, PC, PCWrite, RegRef, RegWrite, Semantics, UnOp,
)
from .registry import (
    coverage_report, has_precise_semantics, reads_memory, register_defs,
    register_uses, sail_semantics, semantics_for, writes_memory, writes_pc,
)

__all__ = [
    "BinOp", "CondEffect", "Const", "Effect", "Expr", "Extend", "ILen",
    "ITE", "MemRead", "MemWrite", "OperandRef", "PC", "PCWrite", "RegRef",
    "RegWrite", "Semantics", "UnOp",
    "evaluate", "eval_expr",
    "coverage_report", "has_precise_semantics", "reads_memory",
    "register_defs", "register_uses", "sail_semantics", "semantics_for",
    "writes_memory", "writes_pc",
]
