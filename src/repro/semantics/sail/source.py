"""Mini-SAIL semantic definitions for the RV64 integer instructions.

This file plays the role of the *official RISC-V SAIL model* in the
paper's pipeline (§3.2.4): a high-level, declarative description of what
each instruction computes, written in a small SAIL-flavoured DSL.  The
pipeline is::

    DSL text (this file)
      --[sail.parser]-->  simplified JSON IR     (paper: OCaml -> JSON)
      --[sail.gen]------>  Python semantic classes (paper: JSON -> C++)

Adding a new extension = appending clauses here and re-running the
pipeline; nothing else in the toolkit changes.

DSL cheat sheet
---------------
* ``X(rs1)`` — integer register named by the decoded ``rs1`` field
  (reads of x0 yield 0, writes to x0 vanish).
* ``pc`` / ``ilen`` — instruction address / encoded length.
* ``imm`` / ``shamt`` — decoded immediate fields.
* ``mem(addr, n)`` — n-byte little-endian load (zero-extended);
  assignment to ``mem(addr, n)`` is a store.
* ``sext(e, w)`` / ``zext(e, w)`` — extend the low w bits.
* Signedness-explicit operators: ``/s /u %s %u <s <u >=s >=u >>a >>l``.
* ``if cond { ... } else { ... }``; statements separated by ``;``.
* An instruction without a ``pc = ...`` assignment falls through.

Coverage: the I and M extensions (everything integer dataflow analysis
slices over).  A/F/D/Zicsr instructions use the conservative
operand-derived def/use fallback (the paper's "hand-crafted semantic
descriptions" third source) — see :mod:`repro.semantics.registry`.
"""

SAIL_SOURCE = r"""
// ---- RV64I: computational, register-immediate ----
addi  { X(rd) = X(rs1) + imm }
slti  { X(rd) = ite(X(rs1) <s imm, 1, 0) }
sltiu { X(rd) = ite(X(rs1) <u imm, 1, 0) }
xori  { X(rd) = X(rs1) ^ imm }
ori   { X(rd) = X(rs1) | imm }
andi  { X(rd) = X(rs1) & imm }
slli  { X(rd) = X(rs1) << shamt }
srli  { X(rd) = X(rs1) >>l shamt }
srai  { X(rd) = X(rs1) >>a shamt }
addiw { X(rd) = sext(X(rs1) + imm, 32) }
slliw { X(rd) = sext(X(rs1) << shamt, 32) }
srliw { X(rd) = sext(zext(X(rs1), 32) >>l shamt, 32) }
sraiw { X(rd) = sext(sext(X(rs1), 32) >>a shamt, 32) }

// ---- RV64I: computational, register-register ----
add  { X(rd) = X(rs1) + X(rs2) }
sub  { X(rd) = X(rs1) - X(rs2) }
sll  { X(rd) = X(rs1) << (X(rs2) & 63) }
slt  { X(rd) = ite(X(rs1) <s X(rs2), 1, 0) }
sltu { X(rd) = ite(X(rs1) <u X(rs2), 1, 0) }
xor  { X(rd) = X(rs1) ^ X(rs2) }
srl  { X(rd) = X(rs1) >>l (X(rs2) & 63) }
sra  { X(rd) = X(rs1) >>a (X(rs2) & 63) }
or   { X(rd) = X(rs1) | X(rs2) }
and  { X(rd) = X(rs1) & X(rs2) }
addw { X(rd) = sext(X(rs1) + X(rs2), 32) }
subw { X(rd) = sext(X(rs1) - X(rs2), 32) }
sllw { X(rd) = sext(X(rs1) << (X(rs2) & 31), 32) }
srlw { X(rd) = sext(zext(X(rs1), 32) >>l (X(rs2) & 31), 32) }
sraw { X(rd) = sext(sext(X(rs1), 32) >>a (X(rs2) & 31), 32) }

// ---- RV64I: upper-immediate ----
lui   { X(rd) = sext(imm << 12, 32) }
auipc { X(rd) = pc + sext(imm << 12, 32) }

// ---- RV64I: loads (zero- or sign-extended) ----
lb  { X(rd) = sext(mem(X(rs1) + imm, 1), 8) }
lh  { X(rd) = sext(mem(X(rs1) + imm, 2), 16) }
lw  { X(rd) = sext(mem(X(rs1) + imm, 4), 32) }
ld  { X(rd) = mem(X(rs1) + imm, 8) }
lbu { X(rd) = mem(X(rs1) + imm, 1) }
lhu { X(rd) = mem(X(rs1) + imm, 2) }
lwu { X(rd) = mem(X(rs1) + imm, 4) }

// ---- RV64I: stores ----
sb { mem(X(rs1) + imm, 1) = X(rs2) }
sh { mem(X(rs1) + imm, 2) = X(rs2) }
sw { mem(X(rs1) + imm, 4) = X(rs2) }
sd { mem(X(rs1) + imm, 8) = X(rs2) }

// ---- RV64I: control transfer ----
jal  { X(rd) = pc + ilen ; pc = pc + imm }
jalr { X(rd) = pc + ilen ; pc = (X(rs1) + imm) & ~1 }
beq  { if X(rs1) == X(rs2)   { pc = pc + imm } }
bne  { if X(rs1) != X(rs2)   { pc = pc + imm } }
blt  { if X(rs1) <s X(rs2)   { pc = pc + imm } }
bge  { if X(rs1) >=s X(rs2)  { pc = pc + imm } }
bltu { if X(rs1) <u X(rs2)   { pc = pc + imm } }
bgeu { if X(rs1) >=u X(rs2)  { pc = pc + imm } }

// ---- RV64I: fences (no dataflow-visible effect) ----
fence   { skip }
fence.i { skip }

// ---- M extension ----
mul    { X(rd) = X(rs1) * X(rs2) }
mulh   { X(rd) = mulh(X(rs1), X(rs2)) }
mulhu  { X(rd) = mulhu(X(rs1), X(rs2)) }
mulhsu { X(rd) = mulhsu(X(rs1), X(rs2)) }
div    { X(rd) = X(rs1) /s X(rs2) }
divu   { X(rd) = X(rs1) /u X(rs2) }
rem    { X(rd) = X(rs1) %s X(rs2) }
remu   { X(rd) = X(rs1) %u X(rs2) }
mulw   { X(rd) = sext(X(rs1) * X(rs2), 32) }
divw   { X(rd) = sext(sext(X(rs1), 32) /s sext(X(rs2), 32), 32) }
divuw  { X(rd) = sext(zext(X(rs1), 32) /u zext(X(rs2), 32), 32) }
remw   { X(rd) = sext(sext(X(rs1), 32) %s sext(X(rs2), 32), 32) }
remuw  { X(rd) = sext(zext(X(rs1), 32) %u zext(X(rs2), 32), 32) }

// ---- Zicond (RVA23 future-work sample, §3.4) ----
czero.eqz { X(rd) = ite(X(rs2) == 0, 0, X(rs1)) }
czero.nez { X(rd) = ite(X(rs2) != 0, 0, X(rs1)) }

// ---- Zba (RVA23 future-work sample) ----
add.uw { X(rd) = X(rs2) + zext(X(rs1), 32) }
sh1add { X(rd) = X(rs2) + (X(rs1) << 1) }
sh2add { X(rd) = X(rs2) + (X(rs1) << 2) }
sh3add { X(rd) = X(rs2) + (X(rs1) << 3) }

// ---- Zbb (RVA23 future-work sample): added per 3.4's recipe — new
// ---- clauses here, rerun the pipeline, nothing else changes ----
andn   { X(rd) = X(rs1) & ~X(rs2) }
orn    { X(rd) = X(rs1) | ~X(rs2) }
xnor   { X(rd) = ~(X(rs1) ^ X(rs2)) }
min    { X(rd) = ite(X(rs1) <s X(rs2), X(rs1), X(rs2)) }
minu   { X(rd) = ite(X(rs1) <u X(rs2), X(rs1), X(rs2)) }
max    { X(rd) = ite(X(rs1) <s X(rs2), X(rs2), X(rs1)) }
maxu   { X(rd) = ite(X(rs1) <u X(rs2), X(rs2), X(rs1)) }
rol    { X(rd) = (X(rs1) << (X(rs2) & 63)) | (X(rs1) >>l ((0 - X(rs2)) & 63)) }
ror    { X(rd) = (X(rs1) >>l (X(rs2) & 63)) | (X(rs1) << ((0 - X(rs2)) & 63)) }
rori   { X(rd) = (X(rs1) >>l shamt) | (X(rs1) << ((0 - shamt) & 63)) }
clz    { X(rd) = clz(X(rs1)) }
ctz    { X(rd) = ctz(X(rs1)) }
cpop   { X(rd) = cpop(X(rs1)) }
sext.b { X(rd) = sext(X(rs1), 8) }
sext.h { X(rd) = sext(X(rs1), 16) }
zext.h { X(rd) = zext(X(rs1), 16) }
"""
