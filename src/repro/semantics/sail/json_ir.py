"""Stage 1.5 of the semantics pipeline: the JSON interchange format.

In the paper, an OCaml script parses the official SAIL model and emits a
simplified JSON representation; a second script consumes that JSON and
generates C++ semantic classes.  Here the analogous JSON document is the
contract between :mod:`repro.semantics.sail.parser` and
:mod:`repro.semantics.sail.gen` — it can be dumped to disk, inspected,
and versioned independently of either end.
"""

from __future__ import annotations

import json

from ..ir import Semantics, semantics_from_json, semantics_to_json


def to_json_document(sems: dict[str, Semantics]) -> str:
    """Serialise parsed semantics to the pipeline's JSON document."""
    doc = {
        "format": "repro-sail-ir",
        "version": 1,
        "instructions": [
            semantics_to_json(s) for _, s in sorted(sems.items())
        ],
    }
    return json.dumps(doc, indent=1, sort_keys=True)


def from_json_document(text: str) -> dict[str, Semantics]:
    """Load semantics back from a JSON document."""
    doc = json.loads(text)
    if doc.get("format") != "repro-sail-ir":
        raise ValueError("not a repro-sail-ir document")
    out: dict[str, Semantics] = {}
    for j in doc["instructions"]:
        s = semantics_from_json(j)
        out[s.mnemonic] = s
    return out
