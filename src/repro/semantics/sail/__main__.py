"""CLI for the semantics pipeline: dump the JSON IR or the generated
Python module.

Usage::

    python -m repro.semantics.sail json > sail_ir.json
    python -m repro.semantics.sail gen  > generated.py
"""

import sys

from .gen import generate_source
from .json_ir import to_json_document
from .parser import parse_sail
from .source import SAIL_SOURCE


def main(argv: list[str]) -> int:
    mode = argv[0] if argv else "json"
    doc = to_json_document(parse_sail(SAIL_SOURCE))
    if mode == "json":
        print(doc)
    elif mode == "gen":
        print(generate_source(doc))
    else:
        print(f"unknown mode {mode!r}; use 'json' or 'gen'", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
