"""The SAIL-substitute pipeline: mini-SAIL DSL -> JSON IR -> generated
semantic classes (paper §3.2.4)."""

from .gen import generate_source, load_generated, run_pipeline
from .json_ir import from_json_document, to_json_document
from .parser import SailParseError, parse_sail
from .source import SAIL_SOURCE

__all__ = [
    "SAIL_SOURCE", "SailParseError", "from_json_document",
    "generate_source", "load_generated", "parse_sail", "run_pipeline",
    "to_json_document",
]
