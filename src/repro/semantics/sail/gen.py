"""Stage 2 of the semantics pipeline: generate semantic classes.

Mirrors the paper's JSON -> C++ generator (§3.2.4): consumes the JSON IR
document and emits Python source text defining one semantic class per
instruction.  The generated module is self-contained — re-running the
pipeline after adding an extension regenerates it without touching any
other code.

The generated classes expose:

* ``SEMANTICS`` — the :class:`~repro.semantics.ir.Semantics` effect list;
* ``register_uses()`` / ``register_defs()`` — operand-level def/use;
* ``reads_memory`` / ``writes_memory`` / ``writes_pc`` flags.
"""

from __future__ import annotations

import json
from types import ModuleType

from .json_ir import from_json_document

_HEADER = '''\
"""AUTO-GENERATED semantic classes — do not edit.

Produced by repro.semantics.sail.gen from the repro-sail-ir JSON
document (itself derived from the mini-SAIL source).  Regenerate with
``python -m repro.semantics.sail``.
"""

from repro.semantics.ir import Semantics, semantics_from_json


class SemanticClass:
    """Base for generated per-instruction semantic classes."""

    MNEMONIC: str = ""
    SEMANTICS: Semantics | None = None

    @classmethod
    def register_uses(cls):
        return cls.SEMANTICS.register_uses()

    @classmethod
    def register_defs(cls):
        return cls.SEMANTICS.register_defs()

    @classmethod
    def reads_memory(cls):
        return cls.SEMANTICS.reads_memory()

    @classmethod
    def writes_memory(cls):
        return cls.SEMANTICS.writes_memory()

    @classmethod
    def writes_pc(cls):
        return cls.SEMANTICS.writes_pc()


SEMANTIC_CLASSES = {}


def _register(cls):
    SEMANTIC_CLASSES[cls.MNEMONIC] = cls
    return cls

'''


def _class_name(mnemonic: str) -> str:
    return "Sem_" + mnemonic.replace(".", "_").upper()


def generate_source(json_document: str) -> str:
    """Generate the Python module source from a JSON IR document."""
    sems = from_json_document(json_document)
    parts = [_HEADER]
    for mnemonic, sem in sorted(sems.items()):
        from ..ir import semantics_to_json

        payload = json.dumps(semantics_to_json(sem), sort_keys=True)
        parts.append(
            f"@_register\n"
            f"class {_class_name(mnemonic)}(SemanticClass):\n"
            f"    MNEMONIC = {mnemonic!r}\n"
            f"    SEMANTICS = semantics_from_json({payload})\n\n"
        )
    return "\n".join(parts)


def load_generated(source: str, module_name: str = "repro.semantics.generated"
                   ) -> ModuleType:
    """Execute generated source into a fresh module object."""
    mod = ModuleType(module_name)
    mod.__dict__["__builtins__"] = __builtins__
    exec(compile(source, f"<{module_name}>", "exec"), mod.__dict__)
    return mod


def run_pipeline() -> ModuleType:
    """Run the full pipeline: DSL -> JSON -> generated module."""
    from .parser import parse_sail
    from .source import SAIL_SOURCE
    from .json_ir import to_json_document

    sems = parse_sail(SAIL_SOURCE)
    doc = to_json_document(sems)
    return load_generated(generate_source(doc))
