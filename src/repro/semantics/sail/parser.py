"""Stage 1 of the semantics pipeline: parse the mini-SAIL DSL into the
simplified IR (the paper's OCaml-script-to-JSON stage, §3.2.4).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..ir import (
    BinOp, CondEffect, Const, Effect, Expr, Extend, ILen, ITE, MemRead,
    MemWrite, OperandRef, PC, PCWrite, RegRef, RegWrite, Semantics, UnOp,
)


class SailParseError(ValueError):
    """Raised for malformed DSL text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<op> >=s | >=u | >>l | >>a | <s | <u | == | != | << | /s | /u | %s | %u
        | [-+*&|^~(){},;=] )
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    out: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise SailParseError(f"bad character {text[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        out.append(m.group())
    return out


@dataclass
class _Stream:
    tokens: list[str]
    pos: int = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise SailParseError("unexpected end of input")
        t = self.tokens[self.pos]
        self.pos += 1
        return t

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise SailParseError(f"expected {tok!r}, got {got!r}")

    def accept(self, tok: str) -> bool:
        if self.peek() == tok:
            self.pos += 1
            return True
        return False


#: Binary operator precedence, low to high.  Each level lists
#: (token, IR op).
_PRECEDENCE: tuple[tuple[tuple[str, str], ...], ...] = (
    (("|", "or"),),
    (("^", "xor"),),
    (("&", "and"),),
    (("==", "eq"), ("!=", "ne"), ("<s", "lts"), ("<u", "ltu"),
     (">=s", "ges"), (">=u", "geu")),
    (("<<", "sll"), (">>l", "srl"), (">>a", "sra")),
    (("+", "add"), ("-", "sub")),
    (("*", "mul"), ("/s", "divs"), ("/u", "divu"),
     ("%s", "rems"), ("%u", "remu")),
)

_BUILTIN_BINOPS = {"mulh", "mulhu", "mulhsu", "divs", "divu", "rems", "remu"}
_BUILTIN_UNOPS = {"clz", "ctz", "cpop"}

#: Immediate-like operand field names usable bare in expressions.
_OPERAND_NAMES = {"imm", "shamt", "csr", "zimm"}


def _parse_expr(s: _Stream, level: int = 0) -> Expr:
    if level >= len(_PRECEDENCE):
        return _parse_unary(s)
    expr = _parse_expr(s, level + 1)
    table = dict(_PRECEDENCE[level])
    while s.peek() in table:
        tok = s.next()
        rhs = _parse_expr(s, level + 1)
        expr = BinOp(table[tok], expr, rhs)
    return expr


def _parse_unary(s: _Stream) -> Expr:
    tok = s.peek()
    if tok == "-":
        s.next()
        return UnOp("neg", _parse_unary(s))
    if tok == "~":
        s.next()
        return UnOp("not", _parse_unary(s))
    return _parse_primary(s)


def _parse_primary(s: _Stream) -> Expr:
    tok = s.next()
    if tok == "(":
        e = _parse_expr(s)
        s.expect(")")
        return e
    if re.fullmatch(r"0x[0-9a-fA-F]+|\d+", tok):
        return Const(int(tok, 0))
    if tok in ("X", "F"):
        s.expect("(")
        name = s.next()
        s.expect(")")
        return RegRef("x" if tok == "X" else "f", name)
    if tok == "pc":
        return PC()
    if tok == "ilen":
        return ILen()
    if tok in ("sext", "zext"):
        s.expect("(")
        e = _parse_expr(s)
        s.expect(",")
        w = int(s.next(), 0)
        s.expect(")")
        return Extend(tok, e, w)
    if tok == "mem":
        s.expect("(")
        addr = _parse_expr(s)
        s.expect(",")
        size = int(s.next(), 0)
        s.expect(")")
        return MemRead(addr, size)
    if tok == "ite":
        s.expect("(")
        c = _parse_expr(s)
        s.expect(",")
        t = _parse_expr(s)
        s.expect(",")
        f = _parse_expr(s)
        s.expect(")")
        return ITE(c, t, f)
    if tok in _BUILTIN_BINOPS:
        s.expect("(")
        a = _parse_expr(s)
        s.expect(",")
        b = _parse_expr(s)
        s.expect(")")
        return BinOp(tok, a, b)
    if tok in _BUILTIN_UNOPS:
        s.expect("(")
        a = _parse_expr(s)
        s.expect(")")
        return UnOp(tok, a)
    if tok in _OPERAND_NAMES:
        return OperandRef(tok)
    raise SailParseError(f"unexpected token {tok!r} in expression")


def _parse_statement(s: _Stream) -> Effect | None:
    tok = s.peek()
    if tok == "skip":
        s.next()
        return None
    if tok == "if":
        s.next()
        cond = _parse_expr(s)
        then = _parse_block(s)
        otherwise: tuple[Effect, ...] = ()
        if s.accept("else"):
            otherwise = _parse_block(s)
        return CondEffect(cond, then, otherwise)
    if tok == "pc":
        s.next()
        s.expect("=")
        return PCWrite(_parse_expr(s))
    if tok in ("X", "F"):
        s.next()
        s.expect("(")
        name = s.next()
        s.expect(")")
        s.expect("=")
        return RegWrite("x" if tok == "X" else "f", name, _parse_expr(s))
    if tok == "mem":
        s.next()
        s.expect("(")
        addr = _parse_expr(s)
        s.expect(",")
        size = int(s.next(), 0)
        s.expect(")")
        s.expect("=")
        return MemWrite(addr, size, _parse_expr(s))
    raise SailParseError(f"unexpected token {tok!r} at statement start")


def _parse_block(s: _Stream) -> tuple[Effect, ...]:
    s.expect("{")
    effects: list[Effect] = []
    while not s.accept("}"):
        eff = _parse_statement(s)
        if eff is not None:
            effects.append(eff)
        if s.peek() == ";":
            s.next()
    return tuple(effects)


def parse_sail(text: str) -> dict[str, Semantics]:
    """Parse a whole DSL document into {mnemonic: Semantics}."""
    s = _Stream(_tokenize(text))
    out: dict[str, Semantics] = {}
    while s.peek() is not None:
        mnemonic = s.next()
        if not re.fullmatch(r"[a-z][a-z0-9_.]*", mnemonic):
            raise SailParseError(f"bad mnemonic {mnemonic!r}")
        effects = _parse_block(s)
        if mnemonic in out:
            raise SailParseError(f"duplicate clause for {mnemonic!r}")
        out[mnemonic] = Semantics(mnemonic, effects)
    return out
