"""Instruction-semantics intermediate representation.

The paper derives instruction semantics from the official RISC-V SAIL
specification through a two-stage pipeline (SAIL -> simplified JSON ->
generated semantic classes, §3.2.4).  This module defines the *simplified
IR* those stages produce: a small expression language over 64-bit
bitvectors plus an effect list per instruction.

The IR deliberately omits the error-handling detail of full SAIL
(alignment checks, trap causes) — exactly the simplification the paper
describes — keeping what dataflow analysis needs: which locations an
instruction reads and writes, and how values flow between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

# -- expression nodes ---------------------------------------------------


class Expr:
    """Base class for IR expressions (64-bit bitvector valued)."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for c in self.children():
            yield from c.walk()


@dataclass(frozen=True)
class Const(Expr):
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class PC(Expr):
    """The address of the executing instruction."""


@dataclass(frozen=True)
class ILen(Expr):
    """Encoded length of the executing instruction (2 or 4)."""


@dataclass(frozen=True)
class OperandRef(Expr):
    """Placeholder for a decoded operand field (``imm``, ``shamt``...).

    Register operands use :class:`RegRef` instead; an OperandRef always
    denotes an immediate-like value.
    """

    name: str


@dataclass(frozen=True)
class RegRef(Expr):
    """Read of the register named by a decoded operand field.

    ``regfile`` is ``"x"`` or ``"f"``; ``operand`` names the field
    (``rs1``...).  Reads of ``x0`` evaluate to zero.
    """

    regfile: str
    operand: str


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation.  ``op`` is one of the OPS table keys."""

    op: str
    lhs: Expr
    rhs: Expr

    def children(self):
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operation: ``neg``, ``not``."""

    op: str
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Extend(Expr):
    """Sign- or zero-extend the low *width* bits of *operand*."""

    kind: str  # 'sext' | 'zext'
    operand: Expr
    width: int

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class MemRead(Expr):
    """Little-endian memory read of *size* bytes, zero-extended."""

    addr: Expr
    size: int

    def children(self):
        return (self.addr,)


@dataclass(frozen=True)
class ITE(Expr):
    """If-then-else expression."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self):
        return (self.cond, self.then, self.otherwise)


#: Binary operators with RISC-V semantics.  The u/s suffix selects
#: unsigned/signed interpretation where it matters.  divs/divu/rems/remu
#: implement the architectural division-by-zero and overflow results.
OPS = frozenset({
    "add", "sub", "mul", "mulh", "mulhu", "mulhsu",
    "divs", "divu", "rems", "remu",
    "and", "or", "xor", "sll", "srl", "sra",
    "eq", "ne", "lts", "ltu", "ges", "geu",
})

UNOPS = frozenset({"neg", "not", "clz", "ctz", "cpop"})


# -- effects ------------------------------------------------------------


class Effect:
    """Base class for instruction effects."""


@dataclass(frozen=True)
class RegWrite(Effect):
    """Write *value* to the register named by operand field *operand* of
    register file *regfile*.  Writes to ``x0`` are discarded."""

    regfile: str
    operand: str
    value: Expr


@dataclass(frozen=True)
class MemWrite(Effect):
    """Store the low *size* bytes of *value* at *addr* (little-endian)."""

    addr: Expr
    size: int
    value: Expr


@dataclass(frozen=True)
class PCWrite(Effect):
    """Unconditional control transfer: next pc = *value*."""

    value: Expr


@dataclass(frozen=True)
class CondEffect(Effect):
    """Guarded effects (conditional branches)."""

    cond: Expr
    then: tuple[Effect, ...]
    otherwise: tuple[Effect, ...] = ()


@dataclass(frozen=True)
class Semantics:
    """Complete semantics of one instruction: an ordered effect list.

    An instruction with no :class:`PCWrite` (even conditionally)
    implicitly falls through to ``pc + ilen``.
    """

    mnemonic: str
    effects: tuple[Effect, ...]

    def all_exprs(self) -> Iterator[Expr]:
        """Every expression appearing anywhere in the effects."""
        def from_effect(e: Effect) -> Iterator[Expr]:
            if isinstance(e, RegWrite):
                yield from e.value.walk()
            elif isinstance(e, MemWrite):
                yield from e.addr.walk()
                yield from e.value.walk()
            elif isinstance(e, PCWrite):
                yield from e.value.walk()
            elif isinstance(e, CondEffect):
                yield from e.cond.walk()
                for sub in e.then + e.otherwise:
                    yield from from_effect(sub)

        for eff in self.effects:
            yield from from_effect(eff)

    def flat_effects(self) -> Iterator[Effect]:
        """Effects including those nested under conditions."""
        def rec(e: Effect) -> Iterator[Effect]:
            yield e
            if isinstance(e, CondEffect):
                for sub in e.then + e.otherwise:
                    yield from rec(sub)

        for eff in self.effects:
            yield from rec(eff)

    def register_uses(self) -> set[tuple[str, str]]:
        """(regfile, operand) pairs read anywhere."""
        return {
            (e.regfile, e.operand)
            for e in self.all_exprs()
            if isinstance(e, RegRef)
        }

    def register_defs(self) -> set[tuple[str, str]]:
        """(regfile, operand) pairs written anywhere."""
        return {
            (e.regfile, e.operand)
            for e in self.flat_effects()
            if isinstance(e, RegWrite)
        }

    def reads_memory(self) -> bool:
        return any(isinstance(e, MemRead) for e in self.all_exprs())

    def writes_memory(self) -> bool:
        return any(isinstance(e, MemWrite) for e in self.flat_effects())

    def writes_pc(self) -> bool:
        return any(isinstance(e, PCWrite) for e in self.flat_effects())


# -- JSON (de)serialisation: the pipeline's interchange format -----------

def expr_to_json(e: Expr) -> Any:
    if isinstance(e, Const):
        return {"k": "const", "v": e.value}
    if isinstance(e, PC):
        return {"k": "pc"}
    if isinstance(e, ILen):
        return {"k": "ilen"}
    if isinstance(e, OperandRef):
        return {"k": "op", "name": e.name}
    if isinstance(e, RegRef):
        return {"k": "reg", "rf": e.regfile, "name": e.operand}
    if isinstance(e, BinOp):
        return {"k": "bin", "op": e.op,
                "l": expr_to_json(e.lhs), "r": expr_to_json(e.rhs)}
    if isinstance(e, UnOp):
        return {"k": "un", "op": e.op, "e": expr_to_json(e.operand)}
    if isinstance(e, Extend):
        return {"k": e.kind, "e": expr_to_json(e.operand), "w": e.width}
    if isinstance(e, MemRead):
        return {"k": "mem", "addr": expr_to_json(e.addr), "size": e.size}
    if isinstance(e, ITE):
        return {"k": "ite", "c": expr_to_json(e.cond),
                "t": expr_to_json(e.then), "f": expr_to_json(e.otherwise)}
    raise TypeError(f"unknown expr {e!r}")


def expr_from_json(j: Any) -> Expr:
    k = j["k"]
    if k == "const":
        return Const(j["v"])
    if k == "pc":
        return PC()
    if k == "ilen":
        return ILen()
    if k == "op":
        return OperandRef(j["name"])
    if k == "reg":
        return RegRef(j["rf"], j["name"])
    if k == "bin":
        return BinOp(j["op"], expr_from_json(j["l"]), expr_from_json(j["r"]))
    if k == "un":
        return UnOp(j["op"], expr_from_json(j["e"]))
    if k in ("sext", "zext"):
        return Extend(k, expr_from_json(j["e"]), j["w"])
    if k == "mem":
        return MemRead(expr_from_json(j["addr"]), j["size"])
    if k == "ite":
        return ITE(expr_from_json(j["c"]), expr_from_json(j["t"]),
                   expr_from_json(j["f"]))
    raise ValueError(f"unknown expr kind {k!r}")


def effect_to_json(e: Effect) -> Any:
    if isinstance(e, RegWrite):
        return {"k": "regw", "rf": e.regfile, "name": e.operand,
                "v": expr_to_json(e.value)}
    if isinstance(e, MemWrite):
        return {"k": "memw", "addr": expr_to_json(e.addr), "size": e.size,
                "v": expr_to_json(e.value)}
    if isinstance(e, PCWrite):
        return {"k": "pcw", "v": expr_to_json(e.value)}
    if isinstance(e, CondEffect):
        return {"k": "cond", "c": expr_to_json(e.cond),
                "t": [effect_to_json(x) for x in e.then],
                "f": [effect_to_json(x) for x in e.otherwise]}
    raise TypeError(f"unknown effect {e!r}")


def effect_from_json(j: Any) -> Effect:
    k = j["k"]
    if k == "regw":
        return RegWrite(j["rf"], j["name"], expr_from_json(j["v"]))
    if k == "memw":
        return MemWrite(expr_from_json(j["addr"]), j["size"],
                        expr_from_json(j["v"]))
    if k == "pcw":
        return PCWrite(expr_from_json(j["v"]))
    if k == "cond":
        return CondEffect(
            expr_from_json(j["c"]),
            tuple(effect_from_json(x) for x in j["t"]),
            tuple(effect_from_json(x) for x in j["f"]),
        )
    raise ValueError(f"unknown effect kind {k!r}")


def semantics_to_json(s: Semantics) -> Any:
    return {"mnemonic": s.mnemonic,
            "effects": [effect_to_json(e) for e in s.effects]}


def semantics_from_json(j: Any) -> Semantics:
    return Semantics(j["mnemonic"],
                     tuple(effect_from_json(e) for e in j["effects"]))
