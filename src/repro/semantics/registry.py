"""Semantic-class registry: one lookup point for instruction semantics.

Dataflow analysis sources instruction semantics from (in the paper's
terms, §3.2.4) three places: ROSE-derived classes, SAIL-derived classes,
and hand-crafted descriptions.  Here:

* SAIL-derived: the generated module from the mini-SAIL pipeline covers
  the I/M (and sample RVA23) instructions.
* Hand-crafted fallback: every other instruction in the spec table gets
  conservative operand-derived def/use information (rd written, rs*
  read, loads read memory, stores write memory) — sufficient for
  liveness, too coarse for value-tracking slices, which is exactly how
  Dyninst degrades when precise semantics are unavailable.
"""

from __future__ import annotations

from functools import lru_cache

from ..riscv.instr import Instruction
from ..riscv.opcodes import (
    InstrSpec, OP_BRANCH, OP_JAL, OP_JALR, all_specs,
)
from .ir import Semantics


@lru_cache(maxsize=1)
def _generated():
    from .sail.gen import run_pipeline

    return run_pipeline()


@lru_cache(maxsize=1)
def sail_semantics() -> dict[str, Semantics]:
    """Mnemonic -> Semantics for all SAIL-pipeline covered instructions."""
    mod = _generated()
    return {
        mn: cls.SEMANTICS for mn, cls in mod.SEMANTIC_CLASSES.items()
    }


def semantics_for(instr_or_mnemonic: Instruction | str) -> Semantics | None:
    """Precise semantics for an instruction, or None when only the
    conservative fallback is available."""
    mn = (instr_or_mnemonic if isinstance(instr_or_mnemonic, str)
          else instr_or_mnemonic.mnemonic)
    return sail_semantics().get(mn)


def has_precise_semantics(mnemonic: str) -> bool:
    return mnemonic in sail_semantics()


# -- def/use extraction (with fallback) ---------------------------------

_LOAD_OPCODES = (0x03, 0x07)
_STORE_OPCODES = (0x23, 0x27)


def _fallback_uses(spec: InstrSpec) -> set[tuple[str, str]]:
    uses = set()
    for op in spec.operands:
        if op in ("rs1", "rs2", "rs3"):
            uses.add(("x", op))
        elif op in ("frs1", "frs2", "frs3"):
            uses.add(("f", op[1:]))
    return uses


def _fallback_defs(spec: InstrSpec) -> set[tuple[str, str]]:
    defs = set()
    for op in spec.operands:
        if op == "rd":
            defs.add(("x", "rd"))
        elif op == "frd":
            defs.add(("f", "rd"))
    return defs


def register_uses(instr: Instruction) -> set[tuple[str, int]]:
    """Registers read by *instr* as (regfile, regnum) pairs.

    Reads of x0 are dropped (it is constant).
    """
    sem = semantics_for(instr)
    pairs = (sem.register_uses() if sem is not None
             else _fallback_uses(instr.spec))
    out = set()
    for rf, opname in pairs:
        n = instr.fields.get(opname)
        if n is None:
            continue
        if rf == "x" and n == 0:
            continue
        out.add((rf, n))
    return out


def register_defs(instr: Instruction) -> set[tuple[str, int]]:
    """Registers written by *instr* as (regfile, regnum) pairs.

    Writes to x0 are dropped (they vanish architecturally).
    """
    sem = semantics_for(instr)
    pairs = (sem.register_defs() if sem is not None
             else _fallback_defs(instr.spec))
    out = set()
    for rf, opname in pairs:
        n = instr.fields.get(opname)
        if n is None:
            continue
        if rf == "x" and n == 0:
            continue
        out.add((rf, n))
    return out


def reads_memory(instr: Instruction) -> bool:
    sem = semantics_for(instr)
    if sem is not None:
        return sem.reads_memory()
    opc = instr.spec.match & 0x7F
    return opc in _LOAD_OPCODES or (opc == 0x2F)  # AMO reads


def writes_memory(instr: Instruction) -> bool:
    sem = semantics_for(instr)
    if sem is not None:
        return sem.writes_memory()
    opc = instr.spec.match & 0x7F
    if opc in _STORE_OPCODES:
        return True
    if opc == 0x2F:  # AMOs (except lr) write memory
        return not instr.mnemonic.startswith("lr.")
    return False


def writes_pc(instr: Instruction) -> bool:
    sem = semantics_for(instr)
    if sem is not None:
        return sem.writes_pc()
    opc = instr.spec.match & 0x7F
    return opc in (OP_BRANCH, OP_JAL, OP_JALR)


def coverage_report() -> dict[str, bool]:
    """Which spec-table instructions have precise SAIL-derived semantics
    (useful for pipeline-completeness tests and docs)."""
    table = sail_semantics()
    return {s.mnemonic: s.mnemonic in table for s in all_specs()}
