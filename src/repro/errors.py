"""The toolkit-wide exception hierarchy.

Every error the toolkit raises for *user-facing* conditions — bad API
arguments, malformed binaries, impossible patches, simulator faults —
derives from :class:`ReproError`, so tools can catch one base class
instead of enumerating layer-specific types::

    from repro.errors import ReproError

    try:
        edit = open_binary(blob)
        edit.insert(points, snippet)
        edit.commit()
    except ReproError as e:
        sys.exit(f"instrumentation failed: {e}")

For backward compatibility the concrete subclasses keep their historic
builtin bases as mixins (``ApiError`` remains a ``RuntimeError``,
``DecodeError`` remains a ``ValueError``, ...), so pre-existing
``except RuntimeError`` / ``except ValueError`` callers keep working.

This module is a dependency leaf: it imports nothing from the toolkit,
so any layer (ELF, ISA, sim, parse, patch, api) may import it freely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every toolkit-raised error.

    Layer bases (all defined in their home modules, all deriving from
    this class):

    * ``repro.api.bpatch.ApiError`` — BPatch-facade misuse
    * ``repro.riscv.decoder.DecodeError`` — undecodable instruction bytes
    * ``repro.parse.points.PointError`` — invalid instrumentation point
    * ``repro.patch.patcher.PatchError`` — uncommittable instrumentation
    * ``repro.patch.springboard.SpringboardError`` — no springboard fits
    * ``repro.elf.structs.ElfFormatError`` — malformed ELF input
      (``repro.elf.riscv_attrs.AttributesError`` derives from it)
    * ``repro.patch.transaction.TransactionError`` — commit/rollback
      consistency failure (``RollbackVerifyError`` derives from it)
    * ``repro.sim.executor.SimFault`` — architectural simulator fault
    * ``repro.sim.memory.MemoryFault`` — unmapped-address access
    * ``repro.sim.machine.InstructionBudgetExceeded`` — hard
      ``max_instructions`` budget exhausted
    * ``repro.proccontrol.process.ProcControlError`` — debugger misuse
    * ``repro.faults.InjectedFault`` — deterministic fault injection
      (tests only; see :mod:`repro.faults`)
    """


__all__ = ["ReproError"]
