"""Immediate materialization: loading constants into registers.

RISC-V has no load-immediate instruction; a 64-bit constant must be
synthesised from ``lui``/``addi``/``addiw``/``slli`` sequences (paper
§3.2.5 calls this "one of the more error-prone aspects of code
generation" — hence this module is small, isolated, and property-tested
against the simulator for random 64-bit values).

Shared by the assembler's ``li`` pseudo-instruction and by CodeGenAPI.
"""

from __future__ import annotations

from .encoding import fits_signed, sign_extend, to_unsigned

#: One emitted instruction: (mnemonic, field dict).
Emitted = tuple[str, dict[str, int]]


def split_hi_lo(value: int) -> tuple[int, int]:
    """Split a 32-bit-signed value into (hi20 field, lo12) such that
    ``sext32((hi20 << 12) + lo12) == value``.

    The +0x800 rounding compensates for the sign-extension of the low
    12-bit immediate.
    """
    if not fits_signed(value, 32):
        raise ValueError(f"{value} does not fit in 32 signed bits")
    hi = (value + 0x800) >> 12
    lo = value - (hi << 12)
    # hi is used as a U-type *field*: reduce mod 2^20 and sign-extend so
    # the encoder accepts it; the addiw below re-normalises to 32 bits.
    return sign_extend(hi, 20), lo


def materialize_imm(rd: int, value: int) -> list[Emitted]:
    """Instruction sequence leaving the 64-bit constant *value* in x{rd}.

    Uses the standard recursive construction: a 32-bit core built with
    ``lui``/``addiw``, then ``slli``/``addi`` steps for wider values.
    Worst case is 8 instructions for a general 64-bit constant.
    """
    value = sign_extend(to_unsigned(value, 64), 64)
    out: list[Emitted] = []
    _materialize(rd, value, out)
    return out


def _materialize(rd: int, value: int, out: list[Emitted]) -> None:
    if fits_signed(value, 12):
        out.append(("addi", {"rd": rd, "rs1": 0, "imm": value}))
        return
    if fits_signed(value, 32):
        hi, lo = split_hi_lo(value)
        if hi == 0:
            # Only possible when value fits 12 bits, handled above; kept
            # for safety against rounding corner cases.
            out.append(("addi", {"rd": rd, "rs1": 0, "imm": lo}))
            return
        out.append(("lui", {"rd": rd, "imm": hi}))
        if lo != 0:
            out.append(("addiw", {"rd": rd, "rs1": rd, "imm": lo}))
        return
    # Wide value: peel the low 12 bits, recurse on the upper part,
    # shift it up, then add the peeled bits back.
    lo12 = sign_extend(value, 12)
    upper = (value - lo12) >> 12
    shift = 12
    # Absorb trailing zero bits of `upper` into a larger shift to
    # shorten the sequence (matches what GNU as does for e.g. 1<<40).
    while upper % 2 == 0 and shift < 63:
        upper >>= 1
        shift += 1
    _materialize(rd, upper, out)
    out.append(("slli", {"rd": rd, "rs1": rd, "shamt": shift}))
    if lo12 != 0:
        out.append(("addi", {"rd": rd, "rs1": rd, "imm": lo12}))


def materialize_length(value: int) -> int:
    """Number of instructions :func:`materialize_imm` will emit."""
    return len(materialize_imm(5, value))


def pcrel_hi_lo(target: int, pc: int) -> tuple[int, int]:
    """(hi20 field, lo12) for an ``auipc``+``addi``/``jalr`` pair at *pc*
    reaching absolute *target*.

    ``auipc rd, hi`` computes ``pc + sext(hi << 12)``; the following
    instruction adds ``lo``.
    """
    offset = target - pc
    if not fits_signed(offset, 32):
        raise ValueError(
            f"pc-relative offset {offset:#x} exceeds +-2GiB (auipc range)")
    return split_hi_lo(offset)
