"""Declarative instruction specification tables for RV64GC (+ samples of
RVA23 extensions).

Every standard (32-bit) instruction the toolkit understands is described
by one :class:`InstrSpec` row: mnemonic, owning extension, format,
match/mask pair, and operand descriptors.  The decoder, encoder,
assembler, InstructionAPI, semantics pipeline and simulator are all
driven by this single table — adding an extension means adding rows here
(plus semantics), which is the modularity property the paper calls for
(§3.1.1).

Compressed (16-bit) instructions live in :mod:`repro.riscv.compressed`;
they decode to an *expansion* in terms of these specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

# --- major opcode map (bits [6:0]) -------------------------------------
OP_LOAD = 0x03
OP_LOAD_FP = 0x07
OP_MISC_MEM = 0x0F
OP_IMM = 0x13
OP_AUIPC = 0x17
OP_IMM_32 = 0x1B
OP_STORE = 0x23
OP_STORE_FP = 0x27
OP_AMO = 0x2F
OP_OP = 0x33
OP_LUI = 0x37
OP_OP_32 = 0x3B
OP_MADD = 0x43
OP_MSUB = 0x47
OP_NMSUB = 0x4B
OP_NMADD = 0x4F
OP_FP = 0x53
OP_BRANCH = 0x63
OP_JALR = 0x67
OP_JAL = 0x6F
OP_SYSTEM = 0x73


@dataclass(frozen=True)
class InstrSpec:
    """Specification of one 32-bit instruction encoding.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic (``add``, ``fcvt.d.l``...).
    extension:
        Owning extension name in the :mod:`repro.riscv.extensions`
        registry.
    fmt:
        Encoding format tag: one of ``R I S B U J R4 AMO SHIFT64 SHIFT32
        CSR CSRI FENCE SYS``.
    match / mask:
        ``word & mask == match`` identifies this instruction.
    operands:
        Ordered operand descriptors.  Register operands are ``rd rs1 rs2
        rs3`` with an ``f`` prefix for FP register file (``frd`` ...);
        immediates are ``imm`` (format-implied placement), ``shamt``,
        ``csr``, ``zimm`` (CSR immediate), ``rm`` (rounding mode, only
        when free), ``aqrl``.
    """

    mnemonic: str
    extension: str
    fmt: str
    match: int
    mask: int
    operands: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.match & ~self.mask:
            raise ValueError(f"{self.mnemonic}: match bits outside mask")

    @property
    def has_rm(self) -> bool:
        """True when funct3 is a free rounding-mode field."""
        return (self.mask & 0x7000) == 0 and self.fmt in ("R", "R4") and (
            self.match & 0x7F
        ) in (OP_FP, OP_MADD, OP_MSUB, OP_NMSUB, OP_NMADD)


_SPECS: list[InstrSpec] = []
_BY_MNEMONIC: dict[str, InstrSpec] = {}


def _add(spec: InstrSpec) -> InstrSpec:
    if spec.mnemonic in _BY_MNEMONIC:
        raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
    _SPECS.append(spec)
    _BY_MNEMONIC[spec.mnemonic] = spec
    return spec


_F3 = 0x0000_7000  # funct3 mask
_F7 = 0xFE00_0000  # funct7 mask
_RS2 = 0x01F0_0000
_OPC = 0x0000_007F
_F12 = 0xFFF0_0000  # full imm12 / funct12


def _r(mn: str, ext: str, opcode: int, f3: int, f7: int,
       ops: tuple[str, ...] = ("rd", "rs1", "rs2")) -> InstrSpec:
    return _add(InstrSpec(mn, ext, "R",
                          (f7 << 25) | (f3 << 12) | opcode,
                          _F7 | _F3 | _OPC, ops))


def _i(mn: str, ext: str, opcode: int, f3: int,
       ops: tuple[str, ...] = ("rd", "rs1", "imm")) -> InstrSpec:
    return _add(InstrSpec(mn, ext, "I", (f3 << 12) | opcode, _F3 | _OPC, ops))


def _s(mn: str, ext: str, f3: int, ops: tuple[str, ...]) -> InstrSpec:
    return _add(InstrSpec(mn, ext, "S", (f3 << 12) | OP_STORE, _F3 | _OPC, ops))


def _sfp(mn: str, ext: str, f3: int, ops: tuple[str, ...]) -> InstrSpec:
    return _add(InstrSpec(mn, ext, "S", (f3 << 12) | OP_STORE_FP, _F3 | _OPC, ops))


def _b(mn: str, f3: int) -> InstrSpec:
    return _add(InstrSpec(mn, "i", "B", (f3 << 12) | OP_BRANCH, _F3 | _OPC,
                          ("rs1", "rs2", "imm")))


def _u(mn: str, opcode: int) -> InstrSpec:
    return _add(InstrSpec(mn, "i", "U", opcode, _OPC, ("rd", "imm")))


def _shift64(mn: str, opcode: int, f3: int, f6: int,
             ext: str = "i") -> InstrSpec:
    # RV64 shifts: 6-bit shamt, funct6 in word[31:26].
    return _add(InstrSpec(mn, ext, "SHIFT64",
                          (f6 << 26) | (f3 << 12) | opcode,
                          0xFC00_0000 | _F3 | _OPC, ("rd", "rs1", "shamt")))


def _shift32(mn: str, opcode: int, f3: int, f7: int) -> InstrSpec:
    # *W shifts: 5-bit shamt, funct7 in word[31:25].
    return _add(InstrSpec(mn, "i", "SHIFT32",
                          (f7 << 25) | (f3 << 12) | opcode,
                          _F7 | _F3 | _OPC, ("rd", "rs1", "shamt")))


def _amo(mn: str, f5: int, f3: int, ops: tuple[str, ...]) -> InstrSpec:
    # aq/rl (word[26:25]) are free bits.  lr.* has no rs2 operand: the
    # field is architecturally zero, so it joins the mask.
    mask = 0xF800_0000 | _F3 | _OPC
    if "rs2" not in ops:
        mask |= _RS2
    return _add(InstrSpec(mn, "a", "AMO",
                          (f5 << 27) | (f3 << 12) | OP_AMO, mask, ops))


def _csr(mn: str, f3: int, ops: tuple[str, ...]) -> InstrSpec:
    return _add(InstrSpec(mn, "zicsr", "CSR" if "rs1" in ops else "CSRI",
                          (f3 << 12) | OP_SYSTEM, _F3 | _OPC, ops))


def _fp_r(mn: str, ext: str, f7: int, f3: int | None,
          ops: tuple[str, ...]) -> InstrSpec:
    """OP-FP R-type; f3=None means funct3 is a free rounding-mode field."""
    mask = _F7 | _OPC
    match = (f7 << 25) | OP_FP
    if f3 is not None:
        mask |= _F3
        match |= f3 << 12
    return _add(InstrSpec(mn, ext, "R", match, mask, ops))


def _fp_unary(mn: str, ext: str, f7: int, rs2val: int, f3: int | None,
              ops: tuple[str, ...]) -> InstrSpec:
    """OP-FP with rs2 fixed (fsqrt, fcvt, fmv, fclass)."""
    mask = _F7 | _RS2 | _OPC
    match = (f7 << 25) | (rs2val << 20) | OP_FP
    if f3 is not None:
        mask |= _F3
        match |= f3 << 12
    return _add(InstrSpec(mn, ext, "R", match, mask, ops))


def _r4(mn: str, ext: str, opcode: int, fmt2: int) -> InstrSpec:
    # FMA: rs3 in word[31:27], fmt in word[26:25], rm free.
    return _add(InstrSpec(mn, ext, "R4",
                          (fmt2 << 25) | opcode,
                          0x0600_007F, ("frd", "frs1", "frs2", "frs3")))


# =======================================================================
# RV64I base
# =======================================================================
_u("lui", OP_LUI)
_u("auipc", OP_AUIPC)
_add(InstrSpec("jal", "i", "J", OP_JAL, _OPC, ("rd", "imm")))
_i("jalr", "i", OP_JALR, 0)
_b("beq", 0); _b("bne", 1); _b("blt", 4); _b("bge", 5); _b("bltu", 6); _b("bgeu", 7)
_i("lb", "i", OP_LOAD, 0); _i("lh", "i", OP_LOAD, 1); _i("lw", "i", OP_LOAD, 2)
_i("ld", "i", OP_LOAD, 3); _i("lbu", "i", OP_LOAD, 4); _i("lhu", "i", OP_LOAD, 5)
_i("lwu", "i", OP_LOAD, 6)
_s("sb", "i", 0, ("rs2", "rs1", "imm"))
_s("sh", "i", 1, ("rs2", "rs1", "imm"))
_s("sw", "i", 2, ("rs2", "rs1", "imm"))
_s("sd", "i", 3, ("rs2", "rs1", "imm"))
_i("addi", "i", OP_IMM, 0)
_i("slti", "i", OP_IMM, 2)
_i("sltiu", "i", OP_IMM, 3)
_i("xori", "i", OP_IMM, 4)
_i("ori", "i", OP_IMM, 6)
_i("andi", "i", OP_IMM, 7)
_shift64("slli", OP_IMM, 1, 0x00)
_shift64("srli", OP_IMM, 5, 0x00)
_shift64("srai", OP_IMM, 5, 0x10)
_r("add", "i", OP_OP, 0, 0x00); _r("sub", "i", OP_OP, 0, 0x20)
_r("sll", "i", OP_OP, 1, 0x00); _r("slt", "i", OP_OP, 2, 0x00)
_r("sltu", "i", OP_OP, 3, 0x00); _r("xor", "i", OP_OP, 4, 0x00)
_r("srl", "i", OP_OP, 5, 0x00); _r("sra", "i", OP_OP, 5, 0x20)
_r("or", "i", OP_OP, 6, 0x00); _r("and", "i", OP_OP, 7, 0x00)
_i("addiw", "i", OP_IMM_32, 0)
_shift32("slliw", OP_IMM_32, 1, 0x00)
_shift32("srliw", OP_IMM_32, 5, 0x00)
_shift32("sraiw", OP_IMM_32, 5, 0x20)
_r("addw", "i", OP_OP_32, 0, 0x00); _r("subw", "i", OP_OP_32, 0, 0x20)
_r("sllw", "i", OP_OP_32, 1, 0x00); _r("srlw", "i", OP_OP_32, 5, 0x00)
_r("sraw", "i", OP_OP_32, 5, 0x20)
_add(InstrSpec("fence", "i", "FENCE", OP_MISC_MEM, _F3 | _OPC, ("pred", "succ")))
_add(InstrSpec("ecall", "i", "SYS", OP_SYSTEM, 0xFFFF_FFFF, ()))
_add(InstrSpec("ebreak", "i", "SYS", (1 << 20) | OP_SYSTEM, 0xFFFF_FFFF, ()))

# Zifencei
_add(InstrSpec("fence.i", "zifencei", "FENCE", (1 << 12) | OP_MISC_MEM,
               _F3 | _OPC, ()))

# Zicsr
_csr("csrrw", 1, ("rd", "csr", "rs1"))
_csr("csrrs", 2, ("rd", "csr", "rs1"))
_csr("csrrc", 3, ("rd", "csr", "rs1"))
_csr("csrrwi", 5, ("rd", "csr", "zimm"))
_csr("csrrsi", 6, ("rd", "csr", "zimm"))
_csr("csrrci", 7, ("rd", "csr", "zimm"))

# =======================================================================
# M extension
# =======================================================================
for _name, _f3 in (("mul", 0), ("mulh", 1), ("mulhsu", 2), ("mulhu", 3),
                   ("div", 4), ("divu", 5), ("rem", 6), ("remu", 7)):
    _r(_name, "m", OP_OP, _f3, 0x01)
for _name, _f3 in (("mulw", 0), ("divw", 4), ("divuw", 5),
                   ("remw", 6), ("remuw", 7)):
    _r(_name, "m", OP_OP_32, _f3, 0x01)

# =======================================================================
# A extension (aq/rl bits left free in the mask)
# =======================================================================
for _suffix, _f3 in ((".w", 2), (".d", 3)):
    _amo("lr" + _suffix, 0x02, _f3, ("rd", "rs1"))
    _amo("sc" + _suffix, 0x03, _f3, ("rd", "rs2", "rs1"))
    for _name, _f5 in (("amoswap", 0x01), ("amoadd", 0x00), ("amoxor", 0x04),
                       ("amoand", 0x0C), ("amoor", 0x08), ("amomin", 0x10),
                       ("amomax", 0x14), ("amominu", 0x18), ("amomaxu", 0x1C)):
        _amo(_name + _suffix, _f5, _f3, ("rd", "rs2", "rs1"))

# =======================================================================
# F / D extensions
# =======================================================================
_i("flw", "f", OP_LOAD_FP, 2, ("frd", "rs1", "imm"))
_i("fld", "d", OP_LOAD_FP, 3, ("frd", "rs1", "imm"))
_sfp("fsw", "f", 2, ("frs2", "rs1", "imm"))
_sfp("fsd", "d", 3, ("frs2", "rs1", "imm"))

for _sfx, _ext, _fbit in ((".s", "f", 0), (".d", "d", 1)):
    _fp_r("fadd" + _sfx, _ext, 0x00 | _fbit, None, ("frd", "frs1", "frs2"))
    _fp_r("fsub" + _sfx, _ext, 0x04 | _fbit, None, ("frd", "frs1", "frs2"))
    _fp_r("fmul" + _sfx, _ext, 0x08 | _fbit, None, ("frd", "frs1", "frs2"))
    _fp_r("fdiv" + _sfx, _ext, 0x0C | _fbit, None, ("frd", "frs1", "frs2"))
    _fp_unary("fsqrt" + _sfx, _ext, 0x2C | _fbit, 0, None, ("frd", "frs1"))
    _fp_r("fsgnj" + _sfx, _ext, 0x10 | _fbit, 0, ("frd", "frs1", "frs2"))
    _fp_r("fsgnjn" + _sfx, _ext, 0x10 | _fbit, 1, ("frd", "frs1", "frs2"))
    _fp_r("fsgnjx" + _sfx, _ext, 0x10 | _fbit, 2, ("frd", "frs1", "frs2"))
    _fp_r("fmin" + _sfx, _ext, 0x14 | _fbit, 0, ("frd", "frs1", "frs2"))
    _fp_r("fmax" + _sfx, _ext, 0x14 | _fbit, 1, ("frd", "frs1", "frs2"))
    _fp_r("fle" + _sfx, _ext, 0x50 | _fbit, 0, ("rd", "frs1", "frs2"))
    _fp_r("flt" + _sfx, _ext, 0x50 | _fbit, 1, ("rd", "frs1", "frs2"))
    _fp_r("feq" + _sfx, _ext, 0x50 | _fbit, 2, ("rd", "frs1", "frs2"))
    # int <- fp conversions: rs2 selects w/wu/l/lu
    _fp_unary(f"fcvt.w{_sfx}", _ext, 0x60 | _fbit, 0, None, ("rd", "frs1"))
    _fp_unary(f"fcvt.wu{_sfx}", _ext, 0x60 | _fbit, 1, None, ("rd", "frs1"))
    _fp_unary(f"fcvt.l{_sfx}", _ext, 0x60 | _fbit, 2, None, ("rd", "frs1"))
    _fp_unary(f"fcvt.lu{_sfx}", _ext, 0x60 | _fbit, 3, None, ("rd", "frs1"))
    # fp <- int conversions
    _fp_unary(f"fcvt{_sfx}.w", _ext, 0x68 | _fbit, 0, None, ("frd", "rs1"))
    _fp_unary(f"fcvt{_sfx}.wu", _ext, 0x68 | _fbit, 1, None, ("frd", "rs1"))
    _fp_unary(f"fcvt{_sfx}.l", _ext, 0x68 | _fbit, 2, None, ("frd", "rs1"))
    _fp_unary(f"fcvt{_sfx}.lu", _ext, 0x68 | _fbit, 3, None, ("frd", "rs1"))
    _fp_unary("fclass" + _sfx, _ext, 0x70 | _fbit, 0, 1, ("rd", "frs1"))

_fp_unary("fmv.x.w", "f", 0x70, 0, 0, ("rd", "frs1"))
_fp_unary("fmv.w.x", "f", 0x78, 0, 0, ("frd", "rs1"))
_fp_unary("fmv.x.d", "d", 0x71, 0, 0, ("rd", "frs1"))
_fp_unary("fmv.d.x", "d", 0x79, 0, 0, ("frd", "rs1"))
_fp_unary("fcvt.s.d", "d", 0x20, 1, None, ("frd", "frs1"))
_fp_unary("fcvt.d.s", "d", 0x21, 0, None, ("frd", "frs1"))

for _sfx, _ext, _fmt2 in ((".s", "f", 0), (".d", "d", 1)):
    _r4("fmadd" + _sfx, _ext, OP_MADD, _fmt2)
    _r4("fmsub" + _sfx, _ext, OP_MSUB, _fmt2)
    _r4("fnmsub" + _sfx, _ext, OP_NMSUB, _fmt2)
    _r4("fnmadd" + _sfx, _ext, OP_NMADD, _fmt2)

# =======================================================================
# RVA23 samples: Zicond, Zba, Zbb (future-work hook, paper §3.4).
# Demonstrates the port's extensibility claim: a new extension is rows
# here + semantics clauses in the SAIL DSL + (for execution) simulator
# op lambdas — nothing else changes.
# =======================================================================
_r("czero.eqz", "zicond", OP_OP, 5, 0x07)
_r("czero.nez", "zicond", OP_OP, 7, 0x07)
_r("add.uw", "zba", OP_OP_32, 0, 0x04)
_r("sh1add", "zba", OP_OP, 2, 0x10)
_r("sh2add", "zba", OP_OP, 4, 0x10)
_r("sh3add", "zba", OP_OP, 6, 0x10)


def _zbb_unary(mn: str, opcode: int, f3: int, funct12: int) -> InstrSpec:
    """Zbb unary ops: the whole imm12 field selects the operation."""
    return _add(InstrSpec(mn, "zbb", "R",
                          (funct12 << 20) | (f3 << 12) | opcode,
                          _F12 | _F3 | _OPC, ("rd", "rs1")))


# logic-with-negate
_r("andn", "zbb", OP_OP, 7, 0x20)
_r("orn", "zbb", OP_OP, 6, 0x20)
_r("xnor", "zbb", OP_OP, 4, 0x20)
# integer min/max
_r("min", "zbb", OP_OP, 4, 0x05)
_r("minu", "zbb", OP_OP, 5, 0x05)
_r("max", "zbb", OP_OP, 6, 0x05)
_r("maxu", "zbb", OP_OP, 7, 0x05)
# rotates
_r("rol", "zbb", OP_OP, 1, 0x30)
_r("ror", "zbb", OP_OP, 5, 0x30)
_shift64("rori", OP_IMM, 5, 0x18, ext="zbb")
# count leading/trailing zeros, popcount, sign/zero extension
_zbb_unary("clz", OP_IMM, 1, 0x600)
_zbb_unary("ctz", OP_IMM, 1, 0x601)
_zbb_unary("cpop", OP_IMM, 1, 0x602)
_zbb_unary("sext.b", OP_IMM, 1, 0x604)
_zbb_unary("sext.h", OP_IMM, 1, 0x605)
# zext.h on RV64: OP-32 opcode with rs2 = 0
_add(InstrSpec("zext.h", "zbb", "R",
               (0x04 << 25) | (4 << 12) | OP_OP_32,
               _F7 | _RS2 | _F3 | _OPC, ("rd", "rs1")))


# =======================================================================
# Lookup structures
# =======================================================================

#: Specs bucketed by major opcode, most-specific mask first, so linear
#: scan within a bucket finds the unique match.
_BY_OPCODE: dict[int, tuple[InstrSpec, ...]] = {}
for _spec in _SPECS:
    _BY_OPCODE.setdefault(_spec.match & 0x7F, [])  # type: ignore[arg-type]
_tmp: dict[int, list[InstrSpec]] = {k: [] for k in _BY_OPCODE}
for _spec in _SPECS:
    _tmp[_spec.match & 0x7F].append(_spec)
for _k, _v in _tmp.items():
    _BY_OPCODE[_k] = tuple(
        sorted(_v, key=lambda s: bin(s.mask).count("1"), reverse=True)
    )


def lookup_word(word: int) -> InstrSpec | None:
    """Find the spec matching a 32-bit instruction word, or None."""
    bucket = _BY_OPCODE.get(word & 0x7F)
    if bucket is None:
        return None
    for spec in bucket:
        if word & spec.mask == spec.match:
            return spec
    return None


def by_mnemonic(mnemonic: str) -> InstrSpec:
    """Look up a spec by mnemonic; raises KeyError for unknown names."""
    try:
        return _BY_MNEMONIC[mnemonic]
    except KeyError:
        raise KeyError(f"unknown instruction mnemonic: {mnemonic!r}") from None


def all_specs() -> Iterator[InstrSpec]:
    """Iterate all registered instruction specs."""
    return iter(_SPECS)


def specs_for_extension(ext: str) -> list[InstrSpec]:
    """All specs owned by one extension."""
    return [s for s in _SPECS if s.extension == ext]
