"""Instruction decoder: bytes -> :class:`~repro.riscv.instr.Instruction`.

The decoder is table-driven from :mod:`repro.riscv.opcodes` for standard
32-bit encodings and delegates 16-bit encodings to
:mod:`repro.riscv.compressed` (which expands them).  This pair of modules
is the Capstone substitute described in DESIGN.md.
"""

from __future__ import annotations

from typing import Iterator

from . import encoding as enc
from .compressed import IllegalCompressed, decode_compressed
from ..errors import ReproError
from .instr import Instruction
from .opcodes import InstrSpec, lookup_word


class DecodeError(ReproError, ValueError):
    """Raised when bytes do not form a known instruction."""

    def __init__(self, message: str, address: int | None = None):
        super().__init__(
            message if address is None else f"{message} at {address:#x}")
        self.address = address


def _extract_fields(spec: InstrSpec, word: int) -> dict[str, int]:
    fmt = spec.fmt
    f: dict[str, int] = {}
    ops = {op if op[0] != "f" else op[1:] for op in spec.operands}
    if fmt in ("R", "R4", "SHIFT64", "SHIFT32", "AMO", "I", "U", "J",
               "CSR", "CSRI"):
        if "rd" in ops or fmt in ("I", "U", "J", "CSR", "CSRI"):
            f["rd"] = enc.field_rd(word)
    if fmt in ("R", "R4", "SHIFT64", "SHIFT32", "AMO", "I", "S", "B", "CSR"):
        f["rs1"] = enc.field_rs1(word)
    if fmt in ("S", "B") or ("rs2" in ops and fmt in ("R", "R4", "AMO")):
        f["rs2"] = enc.field_rs2(word)
    if fmt == "R4":
        f["rs3"] = enc.field_rs3(word)
        f["rm"] = enc.field_funct3(word)
    if fmt == "R" and spec.has_rm:
        f["rm"] = enc.field_funct3(word)
    if fmt == "I":
        f["imm"] = enc.decode_imm_i(word)
    elif fmt == "S":
        f["imm"] = enc.decode_imm_s(word)
    elif fmt == "B":
        f["imm"] = enc.decode_imm_b(word)
    elif fmt == "U":
        f["imm"] = enc.decode_imm_u(word)
    elif fmt == "J":
        f["imm"] = enc.decode_imm_j(word)
    elif fmt == "SHIFT64":
        f["shamt"] = enc.bits(word, 25, 20)
    elif fmt == "SHIFT32":
        f["shamt"] = enc.bits(word, 24, 20)
    elif fmt == "AMO":
        f["aq"] = enc.bit(word, 26)
        f["rl"] = enc.bit(word, 25)
    elif fmt == "CSR":
        f["csr"] = enc.field_csr(word)
    elif fmt == "CSRI":
        f["csr"] = enc.field_csr(word)
        f["zimm"] = enc.field_rs1(word)
    elif fmt == "FENCE":
        f["rd"] = enc.field_rd(word)
        f["rs1"] = enc.field_rs1(word)
        if spec.operands:
            f["fm"] = enc.bits(word, 31, 28)
            f["pred"] = enc.bits(word, 27, 24)
            f["succ"] = enc.bits(word, 23, 20)
        else:
            f["imm"] = enc.bits(word, 31, 20)
    return f


# Decode memoization: identical encodings decode to the *same*
# Instruction object across parsing, patching, and simulation.  Safe
# because Instruction is a frozen dataclass and no caller mutates its
# fields dict (audited: semantics/evaluate.py and all dataflow/patch
# users only read).  Only successful decodes are cached — errors carry
# a per-call-site address annotation.  The caps bound memory under
# adversarial input (fuzzed byte soup); real programs use a few hundred
# distinct encodings.
_WORD_CACHE: dict[int, Instruction] = {}
_HALF_CACHE: dict[int, Instruction] = {}
_CACHE_CAP = 1 << 16


def clear_decode_cache() -> None:
    """Drop the memoized decodes (test isolation hook)."""
    _WORD_CACHE.clear()
    _HALF_CACHE.clear()


def decode_word(word: int) -> Instruction:
    """Decode a 32-bit standard instruction word."""
    word &= enc.MASK32
    ins = _WORD_CACHE.get(word)
    if ins is not None:
        return ins
    spec = lookup_word(word)
    if spec is None:
        raise DecodeError(f"unknown instruction word {word:#010x}")
    ins = Instruction(
        spec=spec,
        fields=_extract_fields(spec, word),
        length=4,
        raw=word,
    )
    if len(_WORD_CACHE) >= _CACHE_CAP:
        _WORD_CACHE.clear()
    _WORD_CACHE[word] = ins
    return ins


def _decode_half(hw: int) -> Instruction:
    ins = _HALF_CACHE.get(hw)
    if ins is not None:
        return ins
    ins = decode_compressed(hw)
    if len(_HALF_CACHE) >= _CACHE_CAP:
        _HALF_CACHE.clear()
    _HALF_CACHE[hw] = ins
    return ins


def decode(data: bytes | memoryview, offset: int = 0,
           address: int | None = None) -> Instruction:
    """Decode one instruction (2 or 4 bytes) at *offset* in *data*.

    *address* is only used to annotate errors.
    """
    if offset + 2 > len(data):
        raise DecodeError("truncated instruction", address)
    hw = data[offset] | (data[offset + 1] << 8)
    if enc.is_compressed(hw):
        try:
            return _decode_half(hw)
        except IllegalCompressed as e:
            raise DecodeError(str(e), address) from e
    if offset + 4 > len(data):
        raise DecodeError("truncated 4-byte instruction", address)
    word = int.from_bytes(data[offset:offset + 4], "little")
    try:
        return decode_word(word)
    except DecodeError as e:
        raise DecodeError(str(e), address) from e


def decode_all(data: bytes | memoryview, base_address: int = 0
               ) -> Iterator[tuple[int, Instruction]]:
    """Linearly decode a byte region, yielding ``(address, instruction)``.

    Stops at the first undecodable location by raising
    :class:`DecodeError` (traversal parsing in ParseAPI handles gaps; this
    helper is for known-pure code regions).
    """
    off = 0
    n = len(data)
    while off + 2 <= n:
        ins = decode(data, off, base_address + off)
        yield base_address + off, ins
        off += ins.length
