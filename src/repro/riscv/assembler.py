"""Two-pass RISC-V assembler with layout (a minimal as+ld).

Supports the RV64GC standard mnemonics from the spec table, the usual
pseudo-instructions (``li``, ``la``, ``mv``, ``call``, ``ret``,
branches-against-zero, ...), an encodable subset of compressed ``c.*``
mnemonics, labels, and the data directives the MiniC compiler emits.

The assembler also performs layout: ``.text`` is placed at ``text_base``,
``.data``/``.rodata`` on the next page, ``.bss`` after that, and all
symbols are resolved to absolute virtual addresses.  The result is a
:class:`Program` that the ELF writer serialises and the simulator loads
directly.

Pseudo-instructions whose expansion length depends on a *label* value
(``call``/``tail``/``la``) have deterministic fixed-size expansions so
that pass 1 can do exact layout without relaxation:

* ``call``/``tail``  -> single ``jal`` (error if target out of range)
* ``call.far``/``tail.far`` -> ``auipc`` + ``jalr`` pair (paper §3.2.3's
  multi-instruction jump idiom, emitted explicitly to exercise ParseAPI)
* ``la`` -> ``auipc`` + ``addi`` pair
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from . import compressed as cmod
from .encoder import encode_fields
from .encoding import EncodingError, fits_signed
from .extensions import ISASubset, RV64GC, get_extension
from .materialize import materialize_imm, pcrel_hi_lo
from .opcodes import (
    OP_JALR, OP_LOAD, OP_LOAD_FP, by_mnemonic,
)
from .registers import lookup as reg_lookup


class AsmError(ValueError):
    """Assembly-time error, annotated with the source line."""

    def __init__(self, message: str, line_no: int | None = None,
                 line: str | None = None):
        loc = f" (line {line_no}: {line!r})" if line_no is not None else ""
        super().__init__(message + loc)
        self.line_no = line_no


@dataclass(frozen=True)
class Symbol:
    """A resolved program symbol."""

    name: str
    address: int
    size: int = 0
    kind: str = "notype"  # 'func' | 'object' | 'notype'
    section: str = ".text"
    is_global: bool = False


@dataclass
class Program:
    """A fully laid-out freestanding program image."""

    text_base: int
    text: bytes
    data_base: int
    data: bytes
    bss_base: int
    bss_size: int
    symbols: dict[str, Symbol]
    entry: int
    arch: ISASubset = RV64GC
    #: optional debug line table: text address -> source line (from
    #: ``.loc`` directives, the DWARF .debug_line stand-in)
    line_map: dict[int, int] = field(default_factory=dict)

    def symbol(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no such symbol: {name!r}") from None

    def function_symbols(self) -> list[Symbol]:
        return sorted(
            (s for s in self.symbols.values() if s.kind == "func"),
            key=lambda s: s.address,
        )


_NAMED_CSRS = {
    "fflags": 0x001, "frm": 0x002, "fcsr": 0x003,
    "cycle": 0xC00, "time": 0xC01, "instret": 0xC02,
}

_SYM_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(?P<off>[^()]*)\((?P<base>[^()]+)\)$")

#: Pseudo-instruction fixed sizes in bytes (label-safe expansions).
_PSEUDO_SIZES = {
    "nop": 4, "mv": 4, "not": 4, "neg": 4, "negw": 4, "sext.w": 4,
    "seqz": 4, "snez": 4, "sltz": 4, "sgtz": 4,
    "beqz": 4, "bnez": 4, "blez": 4, "bgez": 4, "bltz": 4, "bgtz": 4,
    "bgt": 4, "ble": 4, "bgtu": 4, "bleu": 4,
    "j": 4, "jr": 4, "ret": 4,
    "call": 4, "tail": 4, "call.far": 8, "tail.far": 8, "la": 8,
    "fmv.s": 4, "fmv.d": 4, "fabs.s": 4, "fabs.d": 4,
    "fneg.s": 4, "fneg.d": 4,
    "csrr": 4, "csrw": 4, "csrs": 4, "csrc": 4,
    "rdcycle": 4, "rdtime": 4, "rdinstret": 4,
}

_COMPRESSED_ENCODERS = {
    "c.nop": lambda ops, ctx: cmod.encode_c_nop(),
    "c.ebreak": lambda ops, ctx: cmod.encode_c_ebreak(),
    "c.addi": lambda ops, ctx: cmod.encode_c_addi(
        ctx.reg(ops[0]), ctx.imm(ops[1])),
    "c.li": lambda ops, ctx: cmod.encode_c_li(
        ctx.reg(ops[0]), ctx.imm(ops[1])),
    "c.mv": lambda ops, ctx: cmod.encode_c_mv(
        ctx.reg(ops[0]), ctx.reg(ops[1])),
    "c.jr": lambda ops, ctx: cmod.encode_c_jr(ctx.reg(ops[0])),
    "c.j": lambda ops, ctx: cmod.encode_cj(ctx.imm(ops[0]) - ctx.pc),
}


@dataclass
class _Item:
    """One statement placed during pass 1."""

    section: str
    offset: int
    size: int
    kind: str              # 'instr' | 'data' | 'align'
    mnemonic: str = ""
    operands: tuple[str, ...] = ()
    payload: bytes = b""
    data_expr: tuple[str, str] | None = None  # (directive, expr) for late eval
    line_no: int = 0
    line: str = ""


class Assembler:
    """Two-pass assembler + layout engine.

    Parameters
    ----------
    text_base:
        Virtual address of the ``.text`` section.
    arch:
        ISA subset recorded in the produced :class:`Program` (and checked
        against the extensions actually used).
    page:
        Alignment between sections.
    """

    def __init__(self, text_base: int = 0x1_0000,
                 arch: ISASubset = RV64GC, page: int = 0x1000,
                 compress: bool = False):
        self.text_base = text_base
        self.arch = arch
        self.page = page
        #: auto-compress eligible instructions to RV64C forms.  Only
        #: operand-determined forms are compressed (never anything whose
        #: encoding depends on a label value), so sizes are known in
        #: pass 1 and no relaxation is needed.
        self.compress = compress and arch.supports("c")

    # -- public API ----------------------------------------------------

    def assemble(self, source: str) -> Program:
        self._loc_marks: list[tuple[int, int]] = []
        items, labels, meta = self._pass1(source)
        sizes = meta["sizes"]
        data_base = _align(self.text_base + sizes[".text"], self.page)
        bss_base = _align(data_base + sizes[".data"], self.page)
        bases = {".text": self.text_base, ".data": data_base, ".bss": bss_base}

        symbols: dict[str, Symbol] = {}
        for name, (section, offset) in labels.items():
            symbols[name] = Symbol(
                name=name,
                address=bases[section] + offset,
                size=meta["sym_sizes"].get(name, 0),
                kind=meta["sym_kinds"].get(name, "notype"),
                section=section,
                is_global=name in meta["globals"],
            )

        text = bytearray(sizes[".text"])
        data = bytearray(sizes[".data"])
        buffers = {".text": text, ".data": data}
        for item in items:
            if item.section == ".bss":
                continue
            buf = buffers[item.section]
            addr = bases[item.section] + item.offset
            blob = self._emit(item, symbols, addr)
            if len(blob) != item.size:
                raise AsmError(
                    f"size drift: planned {item.size}, emitted {len(blob)}",
                    item.line_no, item.line)
            buf[item.offset:item.offset + len(blob)] = blob

        # Infer function sizes for 'func' symbols without explicit .size:
        # distance to the next non-local symbol in .text (or end of
        # .text).  ``.L*`` labels are assembler-local and never terminate
        # a function.
        text_syms = sorted(
            (s for s in symbols.values()
             if s.section == ".text" and not s.name.startswith(".L")),
            key=lambda s: s.address)
        text_end = self.text_base + sizes[".text"]
        for i, s in enumerate(text_syms):
            if s.size == 0 and s.kind == "func":
                nxt = next(
                    (t.address for t in text_syms[i + 1:]
                     if t.address > s.address), text_end)
                symbols[s.name] = Symbol(
                    s.name, s.address, nxt - s.address, s.kind, s.section,
                    s.is_global)

        entry = symbols["_start"].address if "_start" in symbols else self.text_base
        line_map = {self.text_base + off: line
                    for off, line in self._loc_marks}
        return Program(
            text_base=self.text_base, text=bytes(text),
            data_base=data_base, data=bytes(data),
            bss_base=bss_base, bss_size=sizes[".bss"],
            symbols=symbols, entry=entry, arch=self.arch,
            line_map=line_map,
        )

    # -- pass 1: sizing & labels ----------------------------------------

    def _pass1(self, source: str):
        items: list[_Item] = []
        labels: dict[str, tuple[str, int]] = {}
        offsets = {".text": 0, ".data": 0, ".bss": 0}
        meta = {
            "globals": set(), "sym_kinds": {}, "sym_sizes": {},
            "sizes": offsets,
        }
        section = ".text"
        for line_no, raw in enumerate(source.splitlines(), 1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            # Labels (possibly several) at line start.
            while True:
                m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*", line)
                if not m:
                    break
                name = m.group(1)
                if name in labels:
                    raise AsmError(f"duplicate label {name!r}", line_no, raw)
                labels[name] = (section, offsets[section])
                line = line[m.end():]
            if not line:
                continue
            if line.startswith("."):
                section = self._directive_pass1(
                    line, section, offsets, items, meta, labels, line_no, raw)
                continue
            mn, ops = _split_instr(line)
            size = self._instr_size(mn, ops, line_no, raw)
            items.append(_Item(section, offsets[section], size, "instr",
                               mn, ops, line_no=line_no, line=raw))
            offsets[section] += size
        return items, labels, meta

    def _instr_size(self, mn: str, ops: tuple[str, ...],
                    line_no: int, raw: str) -> int:
        if mn in _COMPRESSED_ENCODERS:
            return 2
        if mn == "li":
            if len(ops) != 2:
                raise AsmError("li takes rd, imm", line_no, raw)
            try:
                value = _parse_int(ops[1])
            except ValueError:
                raise AsmError(
                    "li requires a literal immediate (use `la` for symbols)",
                    line_no, raw) from None
            return 4 * len(materialize_imm(5, value))
        if mn in _PSEUDO_SIZES:
            if self.compress and self._pseudo_compressible(mn, ops):
                return 2  # c.nop / c.mv / c.jr ra
            return _PSEUDO_SIZES[mn]
        try:
            by_mnemonic(mn)
        except KeyError:
            raise AsmError(f"unknown mnemonic {mn!r}", line_no, raw) from None
        if self.compress and self._literal_compress(mn, ops) is not None:
            return 2
        return 4

    def _directive_pass1(self, line, section, offsets, items, meta,
                         labels, line_no, raw):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        if name in (".text",):
            return ".text"
        if name in (".data", ".rodata"):
            return ".data"
        if name == ".section":
            sec = rest.split(",")[0].strip()
            if sec in (".text",):
                return ".text"
            if sec in (".data", ".rodata", ".srodata", ".sdata"):
                return ".data"
            if sec == ".bss":
                return ".bss"
            raise AsmError(f"unsupported section {sec!r}", line_no, raw)
        if name == ".bss":
            return ".bss"
        if name in (".globl", ".global"):
            meta["globals"].add(rest.strip())
            return section
        if name == ".type":
            sym, _, kind = [p.strip() for p in rest.partition(",")]
            meta["sym_kinds"][sym] = (
                "func" if "function" in kind else "object")
            return section
        if name == ".size":
            sym, _, expr = [p.strip() for p in rest.partition(",")]
            try:
                meta["sym_sizes"][sym] = _parse_int(expr)
            except ValueError:
                pass  # `.size sym, .-sym` style: inferred instead
            return section
        if name == ".align" or name == ".p2align":
            n = 1 << _parse_int(rest.split(",")[0])
            pad = (-offsets[section]) % n
            if pad:
                items.append(_Item(section, offsets[section], pad, "align",
                                   payload=b"\x00" * pad,
                                   line_no=line_no, line=raw))
                offsets[section] += pad
            return section
        if name == ".balign":
            n = _parse_int(rest.split(",")[0])
            pad = (-offsets[section]) % n
            if pad:
                items.append(_Item(section, offsets[section], pad, "align",
                                   payload=b"\x00" * pad,
                                   line_no=line_no, line=raw))
                offsets[section] += pad
            return section
        if name == ".zero" or name == ".skip":
            n = _parse_int(rest)
            if section != ".bss":
                items.append(_Item(section, offsets[section], n, "data",
                                   payload=b"\x00" * n,
                                   line_no=line_no, line=raw))
            offsets[section] += n
            return section
        if name in (".byte", ".half", ".word", ".dword", ".quad"):
            width = {".byte": 1, ".half": 2, ".word": 4,
                     ".dword": 8, ".quad": 8}[name]
            exprs = [e.strip() for e in rest.split(",") if e.strip()]
            for e in exprs:
                items.append(_Item(section, offsets[section], width, "data",
                                   data_expr=(name, e),
                                   line_no=line_no, line=raw))
                offsets[section] += width
            return section
        if name in (".double", ".float"):
            width = 8 if name == ".double" else 4
            fmt = "<d" if width == 8 else "<f"
            for e in rest.split(","):
                blob = struct.pack(fmt, float(e.strip()))
                items.append(_Item(section, offsets[section], width, "data",
                                   payload=blob, line_no=line_no, line=raw))
                offsets[section] += width
            return section
        if name in (".asciz", ".string", ".ascii"):
            m = re.match(r'^"(.*)"$', rest.strip())
            if not m:
                raise AsmError("string directive needs a quoted string",
                               line_no, raw)
            blob = m.group(1).encode().decode("unicode_escape").encode("latin-1")
            if name != ".ascii":
                blob += b"\x00"
            items.append(_Item(section, offsets[section], len(blob), "data",
                               payload=blob, line_no=line_no, line=raw))
            offsets[section] += len(blob)
            return section
        if name == ".loc":
            # `.loc <file> <line>`: record source line for the current
            # text offset (a simplified DWARF .debug_line)
            parts2 = rest.split()
            if len(parts2) < 2:
                raise AsmError(".loc needs file and line", line_no, raw)
            if section == ".text":
                self._loc_marks.append(
                    (offsets[".text"], int(parts2[1], 0)))
            return section
        if name in (".option", ".attribute", ".file", ".ident", ".cfi_startproc",
                    ".cfi_endproc", ".comm"):
            return section  # accepted & ignored
        raise AsmError(f"unknown directive {name!r}", line_no, raw)

    # -- pass 2: emission -----------------------------------------------

    def _emit(self, item: _Item, symbols: dict[str, Symbol],
              addr: int) -> bytes:
        if item.kind in ("data", "align"):
            if item.data_expr is not None:
                directive, expr = item.data_expr
                width = {".byte": 1, ".half": 2, ".word": 4,
                         ".dword": 8, ".quad": 8}[directive]
                value = _eval_expr(expr, symbols)
                return (value & ((1 << (8 * width)) - 1)).to_bytes(
                    width, "little")
            return item.payload
        ctx = _OperandContext(symbols, addr, item)
        try:
            return self._emit_instr(item.mnemonic, item.operands, ctx)
        except (EncodingError, AsmError, KeyError, ValueError) as e:
            if isinstance(e, AsmError):
                raise
            raise AsmError(str(e), item.line_no, item.line) from e

    @staticmethod
    def _pseudo_compressible(mn: str, ops: tuple[str, ...]) -> bool:
        if mn in ("nop", "ret"):
            return True
        if mn == "mv":
            try:
                return (reg_lookup(ops[0]).number != 0
                        and reg_lookup(ops[1]).number != 0)
            except (KeyError, IndexError):
                return False
        return False

    def _literal_compress(self, mn: str, ops: tuple[str, ...]
                          ) -> int | None:
        """Try compressing a standard instruction whose operands are all
        literal (registers / integer immediates); returns the halfword
        or None.  Deterministic across passes by construction."""
        from .compressed import try_compress

        try:
            fields: dict[str, int] = {}
            if mn in ("add", "sub", "xor", "or", "and", "subw", "addw"):
                fields = {"rd": reg_lookup(ops[0]).number,
                          "rs1": reg_lookup(ops[1]).number,
                          "rs2": reg_lookup(ops[2]).number}
            elif mn in ("addi", "addiw", "andi"):
                fields = {"rd": reg_lookup(ops[0]).number,
                          "rs1": reg_lookup(ops[1]).number,
                          "imm": _parse_int(ops[2])}
            elif mn == "lui":
                fields = {"rd": reg_lookup(ops[0]).number,
                          "imm": _parse_int(ops[1])}
            elif mn in ("slli", "srli", "srai"):
                fields = {"rd": reg_lookup(ops[0]).number,
                          "rs1": reg_lookup(ops[1]).number,
                          "shamt": _parse_int(ops[2])}
            elif mn in ("ld", "lw", "fld", "sd", "sw", "fsd"):
                m = _MEM_RE.match(ops[1])
                if m is None:
                    return None
                base = reg_lookup(m.group("base").strip()).number
                off = _parse_int(m.group("off").strip() or "0")
                first = reg_lookup(ops[0]).number
                key = "rd" if mn in ("ld", "lw", "fld") else "rs2"
                fields = {key: first, "rs1": base, "imm": off}
            else:
                return None
            return try_compress(mn, fields)
        except (KeyError, ValueError, IndexError):
            return None

    def _emit_instr(self, mn: str, ops: tuple[str, ...],
                    ctx: "_OperandContext") -> bytes:
        if mn in _COMPRESSED_ENCODERS:
            return _COMPRESSED_ENCODERS[mn](ops, ctx).to_bytes(2, "little")
        if self.compress:
            if self._pseudo_compressible(mn, ops):
                if mn == "nop":
                    return cmod.encode_c_nop().to_bytes(2, "little")
                if mn == "mv":
                    return cmod.encode_c_mv(
                        ctx.reg(ops[0]),
                        ctx.reg(ops[1])).to_bytes(2, "little")
                if mn == "ret":
                    return cmod.encode_c_jr(1).to_bytes(2, "little")
            hw = self._literal_compress(mn, ops)
            if hw is not None:
                return hw.to_bytes(2, "little")
        expanded = self._expand_pseudo(mn, ops, ctx)
        if expanded is None:
            expanded = [(mn, self._parse_standard(mn, ops, ctx))]
        blob = bytearray()
        pc = ctx.pc
        for sub_mn, fields in expanded:
            spec = by_mnemonic(sub_mn)
            self._check_extension(spec.extension, ctx)
            blob += encode_fields(spec, fields).to_bytes(4, "little")
            pc += 4
        return bytes(blob)

    def _check_extension(self, ext: str, ctx: "_OperandContext") -> None:
        get_extension(ext)  # must be known
        if not self.arch.supports(ext):
            raise AsmError(
                f"instruction requires extension {ext!r} not in "
                f"{self.arch.arch_string()}", ctx.item.line_no, ctx.item.line)

    # pseudo expansion -------------------------------------------------

    def _expand_pseudo(self, mn, ops, ctx):
        r, i = ctx.reg, ctx.imm
        if mn == "nop":
            return [("addi", dict(rd=0, rs1=0, imm=0))]
        if mn == "li":
            return materialize_imm(r(ops[0]), _parse_int(ops[1]))
        if mn == "mv":
            return [("addi", dict(rd=r(ops[0]), rs1=r(ops[1]), imm=0))]
        if mn == "not":
            return [("xori", dict(rd=r(ops[0]), rs1=r(ops[1]), imm=-1))]
        if mn == "neg":
            return [("sub", dict(rd=r(ops[0]), rs1=0, rs2=r(ops[1])))]
        if mn == "negw":
            return [("subw", dict(rd=r(ops[0]), rs1=0, rs2=r(ops[1])))]
        if mn == "sext.w":
            return [("addiw", dict(rd=r(ops[0]), rs1=r(ops[1]), imm=0))]
        if mn == "seqz":
            return [("sltiu", dict(rd=r(ops[0]), rs1=r(ops[1]), imm=1))]
        if mn == "snez":
            return [("sltu", dict(rd=r(ops[0]), rs1=0, rs2=r(ops[1])))]
        if mn == "sltz":
            return [("slt", dict(rd=r(ops[0]), rs1=r(ops[1]), rs2=0))]
        if mn == "sgtz":
            return [("slt", dict(rd=r(ops[0]), rs1=0, rs2=r(ops[1])))]
        if mn in ("beqz", "bnez", "blez", "bgez", "bltz", "bgtz"):
            off = ctx.branch_offset(ops[1])
            rs = r(ops[0])
            table = {
                "beqz": ("beq", rs, 0), "bnez": ("bne", rs, 0),
                "blez": ("bge", 0, rs), "bgez": ("bge", rs, 0),
                "bltz": ("blt", rs, 0), "bgtz": ("blt", 0, rs),
            }
            base, rs1, rs2 = table[mn]
            return [(base, dict(rs1=rs1, rs2=rs2, imm=off))]
        if mn in ("bgt", "ble", "bgtu", "bleu"):
            off = ctx.branch_offset(ops[2])
            base = {"bgt": "blt", "ble": "bge",
                    "bgtu": "bltu", "bleu": "bgeu"}[mn]
            return [(base, dict(rs1=r(ops[1]), rs2=r(ops[0]), imm=off))]
        if mn == "j":
            return [("jal", dict(rd=0, imm=ctx.branch_offset(ops[0])))]
        if mn == "jr":
            return [("jalr", dict(rd=0, rs1=r(ops[0]), imm=0))]
        if mn == "ret":
            return [("jalr", dict(rd=0, rs1=1, imm=0))]
        if mn in ("call", "tail"):
            rd = 1 if mn == "call" else 0
            off = ctx.branch_offset(ops[0])
            if not fits_signed(off, 21):
                raise AsmError(
                    f"{mn} target out of jal range; use {mn}.far",
                    ctx.item.line_no, ctx.item.line)
            return [("jal", dict(rd=rd, imm=off))]
        if mn in ("call.far", "tail.far"):
            target = _eval_expr(ops[0], ctx.symbols)
            hi, lo = pcrel_hi_lo(target, ctx.pc)
            if mn == "call.far":
                # auipc ra, hi ; jalr ra, lo(ra)
                return [("auipc", dict(rd=1, imm=hi)),
                        ("jalr", dict(rd=1, rs1=1, imm=lo))]
            # tail: uses t1 as scratch (GNU convention)
            return [("auipc", dict(rd=6, imm=hi)),
                    ("jalr", dict(rd=0, rs1=6, imm=lo))]
        if mn == "la":
            target = _eval_expr(ops[1], ctx.symbols)
            rd = r(ops[0])
            hi, lo = pcrel_hi_lo(target, ctx.pc)
            return [("auipc", dict(rd=rd, imm=hi)),
                    ("addi", dict(rd=rd, rs1=rd, imm=lo))]
        if mn in ("fmv.s", "fmv.d", "fabs.s", "fabs.d", "fneg.s", "fneg.d"):
            op = {"fmv": "fsgnj", "fabs": "fsgnjx", "fneg": "fsgnjn"}[
                mn.split(".")[0]]
            sfx = mn.split(".")[1]
            rd_, rs_ = r(ops[0]), r(ops[1])
            return [(f"{op}.{sfx}", dict(rd=rd_, rs1=rs_, rs2=rs_))]
        if mn == "csrr":
            return [("csrrs", dict(rd=r(ops[0]), csr=ctx.csr(ops[1]), rs1=0))]
        if mn == "csrw":
            return [("csrrw", dict(rd=0, csr=ctx.csr(ops[0]), rs1=r(ops[1])))]
        if mn == "csrs":
            return [("csrrs", dict(rd=0, csr=ctx.csr(ops[0]), rs1=r(ops[1])))]
        if mn == "csrc":
            return [("csrrc", dict(rd=0, csr=ctx.csr(ops[0]), rs1=r(ops[1])))]
        if mn in ("rdcycle", "rdtime", "rdinstret"):
            csr = {"rdcycle": 0xC00, "rdtime": 0xC01, "rdinstret": 0xC02}[mn]
            return [("csrrs", dict(rd=r(ops[0]), csr=csr, rs1=0))]
        return None

    # standard operand parsing ------------------------------------------

    def _parse_standard(self, mn: str, ops: tuple[str, ...],
                        ctx: "_OperandContext") -> dict[str, int]:
        spec = by_mnemonic(mn)
        descrs = spec.operands
        fields: dict[str, int] = {}
        opcode = spec.match & 0x7F
        mem_style = spec.fmt in ("I", "S") and opcode in (
            OP_LOAD, OP_LOAD_FP, 0x23, 0x27, OP_JALR)

        # jalr accepts: `jalr rd, imm(rs1)`, `jalr rd, rs1, imm`,
        # and one-operand pseudo-ish `jalr rs1`.
        if mn == "jalr" and len(ops) == 1 and _MEM_RE.match(ops[0]) is None:
            return dict(rd=1, rs1=ctx.reg(ops[0]), imm=0)

        texts = list(ops)
        if mem_style and texts and _MEM_RE.match(texts[-1]):
            m = _MEM_RE.match(texts[-1])
            off = m.group("off").strip()
            texts[-1:] = [m.group("base").strip(), off if off else "0"]
        if spec.fmt == "AMO":
            # `lr.w rd, (rs1)` / `amoadd.w rd, rs2, (rs1)`
            texts = [t.strip("()") for t in texts]

        # Optional explicit rounding mode on FP ops: `fcvt.l.d a0, fa0, rtz`
        if spec.has_rm and len(texts) == len(descrs) + 1:
            rm_names = {"rne": 0, "rtz": 1, "rdn": 2, "rup": 3,
                        "rmm": 4, "dyn": 7}
            rm = rm_names.get(texts[-1].lower())
            if rm is not None:
                fields["rm"] = rm
                texts = texts[:-1]

        if len(texts) != len(descrs):
            raise AsmError(
                f"{mn} expects {len(descrs)} operands "
                f"({', '.join(descrs)}), got {len(ops)}",
                ctx.item.line_no, ctx.item.line)
        for descr, text in zip(descrs, texts):
            key = descr[1:] if descr.startswith("f") else descr
            if key in ("rd", "rs1", "rs2", "rs3"):
                fields[key] = ctx.reg(text)
            elif key == "imm":
                if spec.fmt in ("B", "J"):
                    fields["imm"] = ctx.branch_offset(text)
                else:
                    fields["imm"] = ctx.imm(text)
            elif key == "shamt":
                fields["shamt"] = ctx.imm(text)
            elif key == "csr":
                fields["csr"] = ctx.csr(text)
            elif key == "zimm":
                fields["zimm"] = ctx.imm(text)
            elif key in ("pred", "succ"):
                fields[key] = 0xF
        return fields


class _OperandContext:
    """Operand evaluation helpers bound to one instruction's site."""

    def __init__(self, symbols: dict[str, Symbol], pc: int, item: _Item):
        self.symbols = symbols
        self.pc = pc
        self.item = item

    def reg(self, text: str) -> int:
        return reg_lookup(text.strip()).number

    def imm(self, text: str) -> int:
        t = text.strip()
        # GNU-style absolute relocation operators: %hi(sym)/%lo(sym)
        m = re.match(r"^%(hi|lo)\((.+)\)$", t)
        if m:
            value = _eval_expr(m.group(2), self.symbols)
            hi = (value + 0x800) >> 12
            if m.group(1) == "hi":
                from .encoding import sign_extend

                return sign_extend(hi, 20)
            return value - (hi << 12)
        return _eval_expr(t, self.symbols)

    def csr(self, text: str) -> int:
        t = text.strip().lower()
        if t in _NAMED_CSRS:
            return _NAMED_CSRS[t]
        return _parse_int(t)

    def branch_offset(self, text: str) -> int:
        """A branch/jal target: label -> pc-relative, int -> literal offset."""
        t = text.strip()
        try:
            return _parse_int(t)
        except ValueError:
            return _eval_expr(t, self.symbols) - self.pc


# ---------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------

def _align(v: int, a: int) -> int:
    return (v + a - 1) & ~(a - 1)


def _strip_comment(line: str) -> str:
    for marker in ("#", "//", ";"):
        idx = _find_outside_quotes(line, marker)
        if idx >= 0:
            line = line[:idx]
    return line


def _find_outside_quotes(line: str, marker: str) -> int:
    in_q = False
    i = 0
    while i < len(line):
        c = line[i]
        if c == '"':
            in_q = not in_q
        elif not in_q and line.startswith(marker, i):
            return i
        i += 1
    return -1


def _split_instr(line: str) -> tuple[str, tuple[str, ...]]:
    parts = line.split(None, 1)
    mn = parts[0].lower()
    if len(parts) == 1:
        return mn, ()
    ops = tuple(o.strip() for o in _split_operands(parts[1]))
    return mn, ops


def _split_operands(text: str) -> list[str]:
    out, depth, cur = [], 0, []
    for c in text:
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        out.append("".join(cur))
    return [o for o in (s.strip() for s in out) if o]


def _parse_int(text: str) -> int:
    t = text.strip().lower().replace("_", "")
    neg = t.startswith("-")
    if neg:
        t = t[1:]
    if t.startswith("0x"):
        v = int(t, 16)
    elif t.startswith("0b"):
        v = int(t, 2)
    elif t.isdigit():
        v = int(t, 10)
    else:
        raise ValueError(f"not an integer literal: {text!r}")
    return -v if neg else v


def _eval_expr(text: str, symbols: dict[str, Symbol]) -> int:
    """Evaluate ``int``, ``sym``, ``sym+int`` or ``sym-int``."""
    t = text.strip()
    try:
        return _parse_int(t)
    except ValueError:
        pass
    m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*([+-])?\s*(.*)$", t)
    if not m or not _SYM_RE.match(m.group(1)):
        raise ValueError(f"cannot evaluate expression {text!r}")
    name, sign, rest = m.groups()
    if name not in symbols:
        raise ValueError(f"undefined symbol {name!r}")
    base = symbols[name].address
    if not sign:
        return base
    delta = _parse_int(rest)
    return base + delta if sign == "+" else base - delta


def assemble(source: str, text_base: int = 0x1_0000,
             arch: ISASubset = RV64GC, compress: bool = False) -> Program:
    """Convenience one-shot assembly."""
    return Assembler(text_base=text_base, arch=arch,
                     compress=compress).assemble(source)
