"""RISC-V extension and profile registry.

RISC-V is a modular ISA: a minimal base (RV64I here) plus ratified
extensions (paper §3.1.1).  Dyninst must (a) know which extensions the
*mutatee* was built for, so instrumentation never emits instructions the
target processor may lack, and (b) be organised so adding an extension is
a table edit, not a cross-cutting change.

This module is that table.  Each :class:`Extension` is registered once;
instruction specs (``opcodes.py``) reference extensions by name; the code
generator consults an :class:`ISASubset` derived from the binary's
``.riscv.attributes`` arch string or ELF ``e_flags`` before emitting
anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Extension:
    """One ISA extension.

    Attributes
    ----------
    name:
        Canonical lower-case name as used in ISA strings (``i``, ``m``,
        ``zicsr``...).
    description:
        Human-readable summary.
    implies:
        Extensions transitively required by this one (e.g. ``d`` implies
        ``f``).
    version:
        Default (major, minor) version used when emitting arch strings.
    """

    name: str
    description: str
    implies: tuple[str, ...] = ()
    version: tuple[int, int] = (2, 0)


_REGISTRY: dict[str, Extension] = {}


def register_extension(ext: Extension) -> Extension:
    """Add an extension to the global registry (idempotent for identical
    re-registration; conflicting re-registration is an error)."""
    existing = _REGISTRY.get(ext.name)
    if existing is not None:
        if existing != ext:
            raise ValueError(f"extension {ext.name!r} already registered differently")
        return existing
    _REGISTRY[ext.name] = ext
    return ext


def get_extension(name: str) -> Extension:
    """Look up a registered extension by canonical name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(f"unknown extension: {name!r}") from None


def all_extensions() -> tuple[Extension, ...]:
    """All registered extensions, in registration order."""
    return tuple(_REGISTRY.values())


# --- the standard extensions this toolkit knows about -----------------

EXT_I = register_extension(Extension("i", "base integer ISA"))
EXT_M = register_extension(Extension("m", "integer multiplication and division"))
EXT_A = register_extension(Extension("a", "atomic instructions"))
EXT_F = register_extension(
    Extension("f", "single-precision floating point", implies=("zicsr",))
)
EXT_D = register_extension(
    Extension("d", "double-precision floating point", implies=("f",))
)
EXT_C = register_extension(Extension("c", "compressed 16-bit instructions"))
EXT_ZICSR = register_extension(
    Extension("zicsr", "control and status register instructions")
)
EXT_ZIFENCEI = register_extension(Extension("zifencei", "instruction-fetch fence"))
# Future-work extensions from the paper's RVA23 discussion.  Registered so
# the registry demonstrates the "adding an extension is a table edit"
# property; only a representative handful of Zicond/Zba instructions are
# given encodings in opcodes.py.
EXT_ZICOND = register_extension(
    Extension("zicond", "integer conditional operations (RVA23)", version=(1, 0))
)
EXT_ZBA = register_extension(
    Extension("zba", "address-generation bit manipulation (RVA23)", version=(1, 0))
)
EXT_ZBB = register_extension(
    Extension("zbb", "basic bit manipulation (RVA23)", version=(1, 0))
)

#: The single-letter extensions making up "G".
G_PARTS: tuple[str, ...] = ("i", "m", "a", "f", "d", "zicsr", "zifencei")

#: Canonical ordering of single-letter extensions in ISA strings.
_CANON_ORDER = "iemafdqlcbkjtpvnh"


def _canon_key(name: str) -> tuple[int, int | str]:
    if len(name) == 1:
        idx = _CANON_ORDER.find(name)
        return (0, idx if idx >= 0 else len(_CANON_ORDER))
    return (1, name)


@dataclass(frozen=True)
class ISASubset:
    """The set of extensions a particular binary / hart supports.

    This is what SymtabAPI extracts from a binary and what CodeGenAPI
    consults before emitting an instruction (paper §3.1.1, §3.2.5).
    """

    xlen: int = 64
    extensions: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.xlen not in (32, 64):
            raise ValueError(f"unsupported XLEN: {self.xlen}")
        # Close the set under `implies`.
        closed = set(self.extensions)
        work = list(closed)
        while work:
            ext = _REGISTRY.get(work.pop())
            if ext is None:
                continue
            for dep in ext.implies:
                if dep not in closed:
                    closed.add(dep)
                    work.append(dep)
        object.__setattr__(self, "extensions", frozenset(closed))

    def supports(self, ext_name: str) -> bool:
        """True if this subset includes *ext_name* (case-insensitive)."""
        return ext_name.lower() in self.extensions

    def supports_all(self, ext_names: tuple[str, ...]) -> bool:
        return all(self.supports(e) for e in ext_names)

    def without(self, *ext_names: str) -> "ISASubset":
        """A copy with the given extensions removed (no implies re-closure:
        removing ``f`` from rv64gc intentionally leaves ``d`` unsupported
        because ``d``'s dependency is broken)."""
        drop = {e.lower() for e in ext_names}
        drop |= {
            e.name
            for e in all_extensions()
            if any(dep in drop for dep in e.implies)
        }
        return ISASubset(self.xlen, frozenset(self.extensions - drop))

    def arch_string(self) -> str:
        """Canonical ISA string, e.g. ``rv64imafdc_zicsr_zifencei``."""
        singles = sorted(
            (e for e in self.extensions if len(e) == 1), key=_canon_key
        )
        multis = sorted(e for e in self.extensions if len(e) > 1)
        base = f"rv{self.xlen}" + "".join(singles)
        for m in multis:
            ver = _REGISTRY[m].version if m in _REGISTRY else (1, 0)
            base += f"_{m}{ver[0]}p{ver[1]}"
        return base

    def __contains__(self, ext_name: str) -> bool:
        return self.supports(ext_name)


class ArchStringError(ValueError):
    """Raised for unparseable ISA strings."""


def parse_arch_string(s: str) -> ISASubset:
    """Parse an ISA string like ``rv64imafdc_zicsr2p0_zifencei2p0``.

    Handles the ``g`` shorthand, optional ``<major>p<minor>`` version
    suffixes, and underscore-separated multi-letter extensions.  Unknown
    multi-letter extensions are kept verbatim (a binary may use extensions
    newer than this toolkit; analysis should not hard-fail, mirroring
    Dyninst's opportunistic behaviour).
    """
    text = s.strip().lower()
    if not text.startswith("rv"):
        raise ArchStringError(f"ISA string must start with 'rv': {s!r}")
    rest = text[2:]
    if rest.startswith("64"):
        xlen = 64
    elif rest.startswith("32"):
        xlen = 32
    else:
        raise ArchStringError(f"ISA string missing XLEN: {s!r}")
    rest = rest[2:]

    exts: set[str] = set()
    chunks = rest.split("_")
    head = chunks[0]
    i = 0
    while i < len(head):
        ch = head[i]
        i += 1
        # Optional version digits: <major>[p<minor>]
        j = i
        while j < len(head) and head[j].isdigit():
            j += 1
        if j > i and j < len(head) and head[j] == "p" and j + 1 < len(head) and head[j + 1].isdigit():
            j += 1
            while j < len(head) and head[j].isdigit():
                j += 1
        i = j
        if ch == "g":
            exts.update(G_PARTS)
        elif ch.isalpha():
            exts.add(ch)
        else:
            raise ArchStringError(f"bad character {ch!r} in ISA string {s!r}")
    for chunk in chunks[1:]:
        if not chunk:
            continue
        name = chunk.rstrip("0123456789")
        if name.endswith("p") and chunk != name:
            name = name[:-1].rstrip("0123456789")
        if not name:
            raise ArchStringError(f"bad extension chunk {chunk!r} in {s!r}")
        exts.add(name)
    if not exts:
        raise ArchStringError(f"ISA string has no base extension: {s!r}")
    return ISASubset(xlen=xlen, extensions=frozenset(exts))


#: RV64I bare base.
RV64I = ISASubset(64, frozenset({"i"}))
#: RV64G = IMAFD + Zicsr + Zifencei.
RV64G = ISASubset(64, frozenset(G_PARTS))
#: RV64GC — the profile the paper's port (and Capstone v6) targets.
RV64GC = ISASubset(64, frozenset(G_PARTS + ("c",)))
#: Representative slice of the RVA23 mandatory set (future work, §3.4).
RVA23_SUBSET = ISASubset(
    64, frozenset(G_PARTS + ("c", "zicond", "zba", "zbb")))

PROFILES: dict[str, ISASubset] = {
    "rv64i": RV64I,
    "rv64g": RV64G,
    "rv64gc": RV64GC,
    "rva23-subset": RVA23_SUBSET,
}
