"""RISC-V register model: architectural names, ABI names, and calling
convention register classes.

This is the substrate shared by the decoder, the code generator, the
liveness analysis and the simulator.  Registers are represented by small
immutable :class:`Register` records; module-level constants (``X0`` ..
``X31``, ``F0`` .. ``F31``) and lookup helpers are provided.

The RISC-V integer register file has 32 registers ``x0``..``x31`` with the
standard ABI mnemonics (``zero``, ``ra``, ``sp``, ...).  ``x0`` is
hard-wired to zero.  The F/D extensions add 32 floating point registers
``f0``..``f31``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable


class RegClass(Enum):
    """Architectural register file a register belongs to."""

    INT = "int"
    FP = "fp"
    CSR = "csr"


@dataclass(frozen=True, order=True)
class Register:
    """One architectural register.

    Attributes
    ----------
    regclass:
        Which register file (integer, floating point, CSR).
    number:
        Architectural register number (0-31 for INT/FP, CSR address for
        CSRs).
    name:
        Architectural name, e.g. ``x5`` or ``f10``.
    abi_name:
        Standard ABI mnemonic, e.g. ``t0`` or ``fa0``.
    """

    regclass: RegClass
    number: int
    name: str
    abi_name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.abi_name}>"

    @property
    def is_zero(self) -> bool:
        """True for the hard-wired zero register ``x0``."""
        return self.regclass is RegClass.INT and self.number == 0


_INT_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_FP_ABI_NAMES = (
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
    "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
    "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
)

INT_REGS: tuple[Register, ...] = tuple(
    Register(RegClass.INT, i, f"x{i}", _INT_ABI_NAMES[i]) for i in range(32)
)
FP_REGS: tuple[Register, ...] = tuple(
    Register(RegClass.FP, i, f"f{i}", _FP_ABI_NAMES[i]) for i in range(32)
)

# Common aliases, exported for convenience.
ZERO, RA, SP, GP, TP = INT_REGS[0], INT_REGS[1], INT_REGS[2], INT_REGS[3], INT_REGS[4]
T0, T1, T2 = INT_REGS[5], INT_REGS[6], INT_REGS[7]
S0, S1 = INT_REGS[8], INT_REGS[9]
FP = S0  # frame pointer alias (x8); see paper 3.2.7 for caveats
A0, A1, A2, A3, A4, A5, A6, A7 = INT_REGS[10:18]
S2, S3, S4, S5, S6, S7, S8, S9, S10, S11 = INT_REGS[18:28]
T3, T4, T5, T6 = INT_REGS[28:32]

FA0, FA1 = FP_REGS[10], FP_REGS[11]

#: Callee-saved integer registers per the RISC-V psABI (sp is handled
#: separately by prologue analysis).
CALLEE_SAVED: frozenset[Register] = frozenset(
    {SP, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10, S11}
)

#: Caller-saved (volatile) integer registers.
CALLER_SAVED: frozenset[Register] = frozenset(
    {RA, T0, T1, T2, A0, A1, A2, A3, A4, A5, A6, A7, T3, T4, T5, T6}
)

#: Integer argument registers in order.
ARG_REGS: tuple[Register, ...] = (A0, A1, A2, A3, A4, A5, A6, A7)

#: FP argument registers in order.
FP_ARG_REGS: tuple[Register, ...] = tuple(FP_REGS[10:18])

#: Registers the code generator may consider for scratch use inside
#: instrumentation (never sp/gp/tp/zero).
SCRATCH_CANDIDATES: tuple[Register, ...] = (
    T0, T1, T2, T3, T4, T5, T6, A0, A1, A2, A3, A4, A5, A6, A7, RA,
)

_BY_NAME: dict[str, Register] = {}
for _r in INT_REGS + FP_REGS:
    _BY_NAME[_r.name] = _r
    _BY_NAME[_r.abi_name] = _r
_BY_NAME["fp"] = S0
_BY_NAME["s0"] = S0


def lookup(name: str) -> Register:
    """Resolve a register by architectural (``x8``) or ABI (``s0``/``fp``)
    name.

    Raises
    ------
    KeyError
        If the name does not denote a register.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(f"unknown register name: {name!r}") from None


def xreg(n: int) -> Register:
    """Integer register ``x{n}``."""
    return INT_REGS[n]


def freg(n: int) -> Register:
    """FP register ``f{n}``."""
    return FP_REGS[n]


def names(regs: Iterable[Register]) -> list[str]:
    """ABI names for a collection of registers (sorted, for stable output)."""
    return sorted(r.abi_name for r in regs)


#: Registers encodable in the compressed (C extension) 3-bit register
#: fields: x8-x15 / f8-f15.
C_REG_INT: tuple[Register, ...] = INT_REGS[8:16]
C_REG_FP: tuple[Register, ...] = FP_REGS[8:16]


def is_c_encodable(reg: Register) -> bool:
    """True if *reg* fits a compressed 3-bit register field (x8-x15/f8-f15)."""
    return 8 <= reg.number <= 15
