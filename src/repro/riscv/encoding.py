"""Bit-level encoding helpers for RISC-V instruction formats.

RISC-V standard (32-bit) instructions use six core formats (R/I/S/B/U/J)
plus a few variants (R4 for FMA, AMO, shifts with 6-bit shamt, CSR).
Immediates are scattered across the word in format-specific ways; this
module centralises the scatter/gather logic so the encoder, decoder and
assembler never hand-roll bit twiddling.

All functions operate on Python ints holding the 32-bit (or 16-bit, for
the C extension) little-endian instruction word.
"""

from __future__ import annotations


MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def bits(word: int, hi: int, lo: int) -> int:
    """Extract bits ``word[hi:lo]`` inclusive."""
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def bit(word: int, idx: int) -> int:
    """Extract a single bit."""
    return (word >> idx) & 1


def sign_extend(value: int, width: int) -> int:
    """Interpret the low *width* bits of *value* as two's-complement."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        value -= 1 << width
    return value


def fits_signed(value: int, width: int) -> bool:
    """True if *value* is representable as a *width*-bit signed immediate."""
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    return 0 <= value < (1 << width)


def to_unsigned(value: int, width: int = 64) -> int:
    """Two's complement representation of *value* in *width* bits."""
    return value & ((1 << width) - 1)


class EncodingError(ValueError):
    """Raised when an operand cannot be encoded in the requested format."""


def _check_signed(value: int, width: int, what: str) -> None:
    if not fits_signed(value, width):
        raise EncodingError(f"{what} {value} does not fit in {width} signed bits")


# ---------------------------------------------------------------------
# Immediate scatter (encode) / gather (decode) for each format.
# ---------------------------------------------------------------------

def encode_imm_i(imm: int) -> int:
    """I-type: imm[11:0] -> word[31:20]."""
    _check_signed(imm, 12, "I-immediate")
    return (imm & 0xFFF) << 20


def decode_imm_i(word: int) -> int:
    return sign_extend(bits(word, 31, 20), 12)


def encode_imm_s(imm: int) -> int:
    """S-type: imm[11:5] -> word[31:25], imm[4:0] -> word[11:7]."""
    _check_signed(imm, 12, "S-immediate")
    imm &= 0xFFF
    return ((imm >> 5) << 25) | ((imm & 0x1F) << 7)


def decode_imm_s(word: int) -> int:
    return sign_extend((bits(word, 31, 25) << 5) | bits(word, 11, 7), 12)


def encode_imm_b(imm: int) -> int:
    """B-type: 13-bit signed, bit 0 must be zero.

    imm[12] -> word[31], imm[10:5] -> word[30:25],
    imm[4:1] -> word[11:8], imm[11] -> word[7].
    """
    _check_signed(imm, 13, "B-immediate")
    if imm & 1:
        raise EncodingError(f"B-immediate {imm} must be even")
    imm &= 0x1FFF
    return (
        (bit(imm, 12) << 31)
        | (bits(imm, 10, 5) << 25)
        | (bits(imm, 4, 1) << 8)
        | (bit(imm, 11) << 7)
    )


def decode_imm_b(word: int) -> int:
    imm = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(imm, 13)


def encode_imm_u(imm: int) -> int:
    """U-type: imm[31:12] -> word[31:12].  *imm* is the 20-bit field value
    (i.e. already shifted right by 12), signed or unsigned-20 accepted."""
    if not (fits_signed(imm, 20) or fits_unsigned(imm, 20)):
        raise EncodingError(f"U-immediate field {imm} does not fit in 20 bits")
    return (imm & 0xFFFFF) << 12


def decode_imm_u(word: int) -> int:
    """Returns the 20-bit field sign-extended (matching how lui/auipc
    contribute ``imm << 12`` sign-extended to XLEN)."""
    return sign_extend(bits(word, 31, 12), 20)


def encode_imm_j(imm: int) -> int:
    """J-type: 21-bit signed, bit 0 zero.

    imm[20] -> word[31], imm[10:1] -> word[30:21],
    imm[11] -> word[20], imm[19:12] -> word[19:12].
    """
    _check_signed(imm, 21, "J-immediate")
    if imm & 1:
        raise EncodingError(f"J-immediate {imm} must be even")
    imm &= 0x1FFFFF
    return (
        (bit(imm, 20) << 31)
        | (bits(imm, 10, 1) << 21)
        | (bit(imm, 11) << 20)
        | (bits(imm, 19, 12) << 12)
    )


def decode_imm_j(word: int) -> int:
    imm = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(imm, 21)


# ---------------------------------------------------------------------
# Register field placement.
# ---------------------------------------------------------------------

def place_rd(n: int) -> int:
    return (n & 0x1F) << 7


def place_rs1(n: int) -> int:
    return (n & 0x1F) << 15


def place_rs2(n: int) -> int:
    return (n & 0x1F) << 20


def place_rs3(n: int) -> int:
    return (n & 0x1F) << 27


def field_rd(word: int) -> int:
    return bits(word, 11, 7)


def field_rs1(word: int) -> int:
    return bits(word, 19, 15)


def field_rs2(word: int) -> int:
    return bits(word, 24, 20)


def field_rs3(word: int) -> int:
    return bits(word, 31, 27)


def field_opcode(word: int) -> int:
    return bits(word, 6, 0)


def field_funct3(word: int) -> int:
    return bits(word, 14, 12)


def field_funct7(word: int) -> int:
    return bits(word, 31, 25)


def field_csr(word: int) -> int:
    return bits(word, 31, 20)


def is_compressed(first_byte_or_word: int) -> bool:
    """A standard 32-bit instruction has the two low bits ``11``; anything
    else in the low 2 bits marks a 16-bit compressed instruction."""
    return (first_byte_or_word & 0b11) != 0b11


def instruction_length(halfword: int) -> int:
    """Length in bytes implied by the low bits of the first halfword
    (2 for compressed, 4 for standard; wider encodings unsupported)."""
    return 2 if is_compressed(halfword) else 4
