"""The C (compressed) extension: 16-bit encodings for RV64GC.

Compressed instructions are 2-byte encodings of a subset of the standard
instructions (paper §3.1.2).  Decoding *expands* each compressed
instruction into its standard equivalent — the resulting
:class:`~repro.riscv.instr.Instruction` carries ``length == 2`` and the
originating ``c.*`` mnemonic, so analysis operates on one uniform
instruction vocabulary while patching still knows the true byte size.

A small encode surface is provided for the compressed instructions the
instrumentation engine emits itself (``c.j`` springboards, ``c.nop``
padding, ``c.ebreak`` traps, and the common ALU moves).
"""

from __future__ import annotations

from .encoding import EncodingError, bit, bits, sign_extend
from .instr import Instruction
from .opcodes import by_mnemonic


def _expand(c_mnemonic: str, raw: int, std_mnemonic: str,
            **fields: int) -> Instruction:
    return Instruction(
        spec=by_mnemonic(std_mnemonic),
        fields=fields,
        length=2,
        raw=raw & 0xFFFF,
        compressed_mnemonic=c_mnemonic,
    )


def _rc(field3: int) -> int:
    """Map a 3-bit compressed register field to x8..x15 / f8..f15."""
    return 8 + (field3 & 0x7)


class IllegalCompressed(ValueError):
    """Raised for halfwords that are not valid RV64C encodings."""


# ---------------------------------------------------------------------
# Decode
# ---------------------------------------------------------------------

def decode_compressed(hw: int) -> Instruction:
    """Decode a 16-bit halfword into its expanded Instruction.

    Raises :class:`IllegalCompressed` for illegal/unsupported encodings
    (including the all-zero halfword, which is defined illegal and is a
    common parse-gap marker).
    """
    hw &= 0xFFFF
    op = hw & 0b11
    funct3 = bits(hw, 15, 13)
    if op == 0b00:
        return _decode_q0(hw, funct3)
    if op == 0b01:
        return _decode_q1(hw, funct3)
    if op == 0b10:
        return _decode_q2(hw, funct3)
    raise IllegalCompressed(f"not a compressed encoding: {hw:#06x}")


def _decode_q0(hw: int, f3: int) -> Instruction:
    if hw == 0:
        raise IllegalCompressed("defined-illegal all-zero halfword")
    rdc = _rc(bits(hw, 4, 2))
    rs1c = _rc(bits(hw, 9, 7))
    if f3 == 0b000:  # c.addi4spn
        uimm = (
            (bits(hw, 12, 11) << 4)
            | (bits(hw, 10, 7) << 6)
            | (bit(hw, 6) << 2)
            | (bit(hw, 5) << 3)
        )
        if uimm == 0:
            raise IllegalCompressed("c.addi4spn with zero immediate")
        return _expand("c.addi4spn", hw, "addi", rd=rdc, rs1=2, imm=uimm)
    if f3 == 0b001:  # c.fld
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 6, 5) << 6)
        return _expand("c.fld", hw, "fld", rd=rdc, rs1=rs1c, imm=uimm)
    if f3 == 0b010:  # c.lw
        uimm = (bits(hw, 12, 10) << 3) | (bit(hw, 6) << 2) | (bit(hw, 5) << 6)
        return _expand("c.lw", hw, "lw", rd=rdc, rs1=rs1c, imm=uimm)
    if f3 == 0b011:  # c.ld (RV64)
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 6, 5) << 6)
        return _expand("c.ld", hw, "ld", rd=rdc, rs1=rs1c, imm=uimm)
    if f3 == 0b101:  # c.fsd
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 6, 5) << 6)
        return _expand("c.fsd", hw, "fsd", rs2=rdc, rs1=rs1c, imm=uimm)
    if f3 == 0b110:  # c.sw
        uimm = (bits(hw, 12, 10) << 3) | (bit(hw, 6) << 2) | (bit(hw, 5) << 6)
        return _expand("c.sw", hw, "sw", rs2=rdc, rs1=rs1c, imm=uimm)
    if f3 == 0b111:  # c.sd (RV64)
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 6, 5) << 6)
        return _expand("c.sd", hw, "sd", rs2=rdc, rs1=rs1c, imm=uimm)
    raise IllegalCompressed(f"reserved Q0 encoding: {hw:#06x}")


def _imm6(hw: int) -> int:
    return sign_extend((bit(hw, 12) << 5) | bits(hw, 6, 2), 6)


def _decode_q1(hw: int, f3: int) -> Instruction:
    rd = bits(hw, 11, 7)
    if f3 == 0b000:
        imm = _imm6(hw)
        if rd == 0:
            # c.nop (hint space when imm != 0; treated as nop)
            return _expand("c.nop", hw, "addi", rd=0, rs1=0, imm=0)
        return _expand("c.addi", hw, "addi", rd=rd, rs1=rd, imm=imm)
    if f3 == 0b001:  # c.addiw (RV64)
        if rd == 0:
            raise IllegalCompressed("c.addiw with rd=x0")
        return _expand("c.addiw", hw, "addiw", rd=rd, rs1=rd, imm=_imm6(hw))
    if f3 == 0b010:  # c.li
        return _expand("c.li", hw, "addi", rd=rd, rs1=0, imm=_imm6(hw))
    if f3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sign_extend(
                (bit(hw, 12) << 9)
                | (bit(hw, 6) << 4)
                | (bit(hw, 5) << 6)
                | (bits(hw, 4, 3) << 7)
                | (bit(hw, 2) << 5),
                10,
            )
            if imm == 0:
                raise IllegalCompressed("c.addi16sp with zero immediate")
            return _expand("c.addi16sp", hw, "addi", rd=2, rs1=2, imm=imm)
        imm = _imm6(hw)
        if imm == 0 or rd == 0:
            raise IllegalCompressed("c.lui reserved encoding")
        return _expand("c.lui", hw, "lui", rd=rd, imm=imm)
    if f3 == 0b100:
        sub = bits(hw, 11, 10)
        rdc = _rc(bits(hw, 9, 7))
        if sub == 0b00:  # c.srli
            shamt = (bit(hw, 12) << 5) | bits(hw, 6, 2)
            return _expand("c.srli", hw, "srli", rd=rdc, rs1=rdc, shamt=shamt)
        if sub == 0b01:  # c.srai
            shamt = (bit(hw, 12) << 5) | bits(hw, 6, 2)
            return _expand("c.srai", hw, "srai", rd=rdc, rs1=rdc, shamt=shamt)
        if sub == 0b10:  # c.andi
            return _expand("c.andi", hw, "andi", rd=rdc, rs1=rdc, imm=_imm6(hw))
        rs2c = _rc(bits(hw, 4, 2))
        hi = bit(hw, 12)
        mid = bits(hw, 6, 5)
        table = {
            (0, 0b00): ("c.sub", "sub"),
            (0, 0b01): ("c.xor", "xor"),
            (0, 0b10): ("c.or", "or"),
            (0, 0b11): ("c.and", "and"),
            (1, 0b00): ("c.subw", "subw"),
            (1, 0b01): ("c.addw", "addw"),
        }
        try:
            cmn, mn = table[(hi, mid)]
        except KeyError:
            raise IllegalCompressed(
                f"reserved Q1 ALU encoding: {hw:#06x}") from None
        return _expand(cmn, hw, mn, rd=rdc, rs1=rdc, rs2=rs2c)
    if f3 == 0b101:  # c.j
        imm = _decode_cj_imm(hw)
        return _expand("c.j", hw, "jal", rd=0, imm=imm)
    if f3 in (0b110, 0b111):  # c.beqz / c.bnez
        rs1c = _rc(bits(hw, 9, 7))
        imm = sign_extend(
            (bit(hw, 12) << 8)
            | (bits(hw, 11, 10) << 3)
            | (bits(hw, 6, 5) << 6)
            | (bits(hw, 4, 3) << 1)
            | (bit(hw, 2) << 5),
            9,
        )
        if f3 == 0b110:
            return _expand("c.beqz", hw, "beq", rs1=rs1c, rs2=0, imm=imm)
        return _expand("c.bnez", hw, "bne", rs1=rs1c, rs2=0, imm=imm)
    raise IllegalCompressed(f"reserved Q1 encoding: {hw:#06x}")


def _decode_cj_imm(hw: int) -> int:
    return sign_extend(
        (bit(hw, 12) << 11)
        | (bit(hw, 11) << 4)
        | (bits(hw, 10, 9) << 8)
        | (bit(hw, 8) << 10)
        | (bit(hw, 7) << 6)
        | (bit(hw, 6) << 7)
        | (bits(hw, 5, 3) << 1)
        | (bit(hw, 2) << 5),
        12,
    )


def _decode_q2(hw: int, f3: int) -> Instruction:
    rd = bits(hw, 11, 7)
    rs2 = bits(hw, 6, 2)
    if f3 == 0b000:  # c.slli
        shamt = (bit(hw, 12) << 5) | bits(hw, 6, 2)
        return _expand("c.slli", hw, "slli", rd=rd, rs1=rd, shamt=shamt)
    if f3 == 0b001:  # c.fldsp
        uimm = (bit(hw, 12) << 5) | (bits(hw, 6, 5) << 3) | (bits(hw, 4, 2) << 6)
        return _expand("c.fldsp", hw, "fld", rd=rd, rs1=2, imm=uimm)
    if f3 == 0b010:  # c.lwsp
        if rd == 0:
            raise IllegalCompressed("c.lwsp with rd=x0")
        uimm = (bit(hw, 12) << 5) | (bits(hw, 6, 4) << 2) | (bits(hw, 3, 2) << 6)
        return _expand("c.lwsp", hw, "lw", rd=rd, rs1=2, imm=uimm)
    if f3 == 0b011:  # c.ldsp (RV64)
        if rd == 0:
            raise IllegalCompressed("c.ldsp with rd=x0")
        uimm = (bit(hw, 12) << 5) | (bits(hw, 6, 5) << 3) | (bits(hw, 4, 2) << 6)
        return _expand("c.ldsp", hw, "ld", rd=rd, rs1=2, imm=uimm)
    if f3 == 0b100:
        if bit(hw, 12) == 0:
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise IllegalCompressed("c.jr with rs1=x0")
                return _expand("c.jr", hw, "jalr", rd=0, rs1=rd, imm=0)
            return _expand("c.mv", hw, "add", rd=rd, rs1=0, rs2=rs2)
        if rs2 == 0:
            if rd == 0:  # c.ebreak
                return _expand("c.ebreak", hw, "ebreak")
            return _expand("c.jalr", hw, "jalr", rd=1, rs1=rd, imm=0)
        return _expand("c.add", hw, "add", rd=rd, rs1=rd, rs2=rs2)
    if f3 == 0b101:  # c.fsdsp
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 9, 7) << 6)
        return _expand("c.fsdsp", hw, "fsd", rs2=rs2, rs1=2, imm=uimm)
    if f3 == 0b110:  # c.swsp
        uimm = (bits(hw, 12, 9) << 2) | (bits(hw, 8, 7) << 6)
        return _expand("c.swsp", hw, "sw", rs2=rs2, rs1=2, imm=uimm)
    if f3 == 0b111:  # c.sdsp (RV64)
        uimm = (bits(hw, 12, 10) << 3) | (bits(hw, 9, 7) << 6)
        return _expand("c.sdsp", hw, "sd", rs2=rs2, rs1=2, imm=uimm)
    raise IllegalCompressed(f"reserved Q2 encoding: {hw:#06x}")


# ---------------------------------------------------------------------
# Encode (instrumentation-emitted subset)
# ---------------------------------------------------------------------

#: Range of the c.j target offset (paper §3.1.2): [-2^11, 2^11) bytes...
#: The paper text says [-2^12, 2^12); the architectural field is an
#: 11-bit signed offset in units of 2 bytes, i.e. [-2048, 2046] byte
#: displacements — we use the architectural value.
CJ_RANGE = (-(1 << 11), (1 << 11) - 2)


def encode_cj(offset: int) -> int:
    """Encode ``c.j offset`` (offset relative to the instruction)."""
    if not CJ_RANGE[0] <= offset <= CJ_RANGE[1] or offset & 1:
        raise EncodingError(f"c.j offset {offset} out of range / misaligned")
    imm = offset & 0xFFF
    return (
        0b101 << 13
        | (bit(imm, 11) << 12)
        | (bit(imm, 4) << 11)
        | (bits(imm, 9, 8) << 9)
        | (bit(imm, 10) << 8)
        | (bit(imm, 6) << 7)
        | (bit(imm, 7) << 6)
        | (bits(imm, 3, 1) << 3)
        | (bit(imm, 5) << 2)
        | 0b01
    )


def encode_c_nop() -> int:
    """The canonical c.nop encoding."""
    return 0x0001


def encode_c_ebreak() -> int:
    """The c.ebreak trap encoding (worst-case springboard, §3.1.2)."""
    return 0x9002


def encode_c_addi(rd: int, imm: int) -> int:
    if rd == 0 or not -32 <= imm <= 31 or imm == 0:
        raise EncodingError(f"c.addi rd={rd} imm={imm} not encodable")
    return (
        (bit(imm & 0x3F, 5) << 12) | (rd << 7) | ((imm & 0x1F) << 2) | 0b01
    )


def encode_c_li(rd: int, imm: int) -> int:
    if rd == 0 or not -32 <= imm <= 31:
        raise EncodingError(f"c.li rd={rd} imm={imm} not encodable")
    return (
        (0b010 << 13)
        | (bit(imm & 0x3F, 5) << 12)
        | (rd << 7)
        | ((imm & 0x1F) << 2)
        | 0b01
    )


def encode_c_mv(rd: int, rs2: int) -> int:
    if rd == 0 or rs2 == 0:
        raise EncodingError("c.mv requires rd!=x0 and rs2!=x0")
    return (0b100 << 13) | (rd << 7) | (rs2 << 2) | 0b10


def encode_c_jr(rs1: int) -> int:
    if rs1 == 0:
        raise EncodingError("c.jr requires rs1!=x0")
    return (0b100 << 13) | (rs1 << 7) | 0b10


def _in_window(*regs: int) -> bool:
    return all(8 <= r <= 15 for r in regs)


def try_compress(mnemonic: str, fields: dict[str, int]) -> int | None:
    """Return a 16-bit encoding equivalent to the given standard
    instruction, or ``None`` when no compressed form applies.

    Covers the operand-determined RV64C forms (everything whose
    compressibility does not depend on a label value): ALU ops, loads
    and stores (both sp-based and x8-x15-based), shifts, and register
    moves.  This is what lets the assembler's auto-compression pass
    produce realistically dense RV64GC binaries without relaxation.
    """
    f = fields
    try:
        if mnemonic == "addi":
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            if rd == 0 and rs1 == 0 and imm == 0:
                return encode_c_nop()
            if rd != 0 and rs1 == 0 and -32 <= imm <= 31:
                return encode_c_li(rd, imm)
            if rd != 0 and rd == rs1 and imm != 0 and -32 <= imm <= 31:
                return encode_c_addi(rd, imm)
            if rd == 2 and rs1 == 2 and imm != 0 and imm % 16 == 0 \
                    and -512 <= imm <= 496:
                # c.addi16sp
                i = imm & 0x3FF
                return ((0b011 << 13) | (bit(i, 9) << 12) | (2 << 7)
                        | (bit(i, 4) << 6) | (bit(i, 6) << 5)
                        | (bits(i, 8, 7) << 3) | (bit(i, 5) << 2) | 0b01)
            if _in_window(rd) and rs1 == 2 and imm > 0 and imm % 4 == 0 \
                    and imm < 1024:
                # c.addi4spn
                return ((bits(imm, 5, 4) << 11) | (bits(imm, 9, 6) << 7)
                        | (bit(imm, 2) << 6) | (bit(imm, 3) << 5)
                        | ((rd - 8) << 2) | 0b00)
        elif mnemonic == "addiw":
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            if rd != 0 and rd == rs1 and -32 <= imm <= 31:
                return ((0b001 << 13) | (bit(imm & 0x3F, 5) << 12)
                        | (rd << 7) | ((imm & 0x1F) << 2) | 0b01)
        elif mnemonic == "andi":
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            if rd == rs1 and _in_window(rd) and -32 <= imm <= 31:
                return ((0b100 << 13) | (bit(imm & 0x3F, 5) << 12)
                        | (0b10 << 10) | ((rd - 8) << 7)
                        | ((imm & 0x1F) << 2) | 0b01)
        elif mnemonic == "lui":
            rd, imm = f["rd"], f["imm"]
            if rd not in (0, 2) and imm != 0 and -32 <= imm <= 31:
                return ((0b011 << 13) | (bit(imm & 0x3F, 5) << 12)
                        | (rd << 7) | ((imm & 0x1F) << 2) | 0b01)
        elif mnemonic == "add":
            rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
            if rd != 0 and rs1 == 0 and rs2 != 0:
                return encode_c_mv(rd, rs2)
            if rd != 0 and rd == rs1 and rs2 != 0:
                return (0b100 << 13) | (1 << 12) | (rd << 7) | (rs2 << 2) | 0b10
            if rd != 0 and rd == rs2 and rs1 != 0:
                return (0b100 << 13) | (1 << 12) | (rd << 7) | (rs1 << 2) | 0b10
        elif mnemonic in ("sub", "xor", "or", "and", "subw", "addw"):
            rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
            commutative = mnemonic in ("xor", "or", "and", "addw")
            if rd == rs2 and rd != rs1 and commutative:
                rs1, rs2 = rs2, rs1
            if rd == rs1 and _in_window(rd, rs2):
                hi = 1 if mnemonic in ("subw", "addw") else 0
                mid = {"sub": 0b00, "xor": 0b01, "or": 0b10, "and": 0b11,
                       "subw": 0b00, "addw": 0b01}[mnemonic]
                return ((0b100 << 13) | (hi << 12) | (0b11 << 10)
                        | ((rd - 8) << 7) | (mid << 5)
                        | ((rs2 - 8) << 2) | 0b01)
        elif mnemonic == "slli":
            rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
            if rd != 0 and rd == rs1 and 0 < sh <= 63:
                return ((bit(sh, 5) << 12) | (rd << 7)
                        | ((sh & 0x1F) << 2) | 0b10)
        elif mnemonic in ("srli", "srai"):
            rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
            if rd == rs1 and _in_window(rd) and 0 < sh <= 63:
                sub = 0b00 if mnemonic == "srli" else 0b01
                return ((0b100 << 13) | (bit(sh, 5) << 12) | (sub << 10)
                        | ((rd - 8) << 7) | ((sh & 0x1F) << 2) | 0b01)
        elif mnemonic in ("ld", "lw", "fld"):
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            scale = 4 if mnemonic == "lw" else 8
            if imm >= 0 and imm % scale == 0:
                if rs1 == 2 and (rd != 0 or mnemonic == "fld"):
                    # sp-based: c.ldsp / c.lwsp / c.fldsp
                    if mnemonic == "lw" and imm < 256:
                        return ((0b010 << 13) | (bit(imm, 5) << 12)
                                | (rd << 7) | (bits(imm, 4, 2) << 4)
                                | (bits(imm, 7, 6) << 2) | 0b10)
                    if mnemonic in ("ld", "fld") and imm < 512:
                        f3 = 0b011 if mnemonic == "ld" else 0b001
                        return ((f3 << 13) | (bit(imm, 5) << 12)
                                | (rd << 7) | (bits(imm, 4, 3) << 5)
                                | (bits(imm, 8, 6) << 2) | 0b10)
                if _in_window(rd, rs1):
                    if mnemonic == "lw" and imm < 128:
                        return ((0b010 << 13) | (bits(imm, 5, 3) << 10)
                                | ((rs1 - 8) << 7) | (bit(imm, 2) << 6)
                                | (bit(imm, 6) << 5) | ((rd - 8) << 2)
                                | 0b00)
                    if mnemonic in ("ld", "fld") and imm < 256:
                        f3 = 0b011 if mnemonic == "ld" else 0b001
                        return ((f3 << 13) | (bits(imm, 5, 3) << 10)
                                | ((rs1 - 8) << 7) | (bits(imm, 7, 6) << 5)
                                | ((rd - 8) << 2) | 0b00)
        elif mnemonic in ("sd", "sw", "fsd"):
            rs2, rs1, imm = f["rs2"], f["rs1"], f["imm"]
            scale = 4 if mnemonic == "sw" else 8
            if imm >= 0 and imm % scale == 0:
                if rs1 == 2:
                    if mnemonic == "sw" and imm < 256:
                        return ((0b110 << 13) | (bits(imm, 5, 2) << 9)
                                | (bits(imm, 7, 6) << 7) | (rs2 << 2)
                                | 0b10)
                    if mnemonic in ("sd", "fsd") and imm < 512:
                        f3 = 0b111 if mnemonic == "sd" else 0b101
                        return ((f3 << 13) | (bits(imm, 5, 3) << 10)
                                | (bits(imm, 8, 6) << 7) | (rs2 << 2)
                                | 0b10)
                if _in_window(rs2, rs1):
                    if mnemonic == "sw" and imm < 128:
                        return ((0b110 << 13) | (bits(imm, 5, 3) << 10)
                                | ((rs1 - 8) << 7) | (bit(imm, 2) << 6)
                                | (bit(imm, 6) << 5) | ((rs2 - 8) << 2)
                                | 0b00)
                    if mnemonic in ("sd", "fsd") and imm < 256:
                        f3 = 0b111 if mnemonic == "sd" else 0b101
                        return ((f3 << 13) | (bits(imm, 5, 3) << 10)
                                | ((rs1 - 8) << 7) | (bits(imm, 7, 6) << 5)
                                | ((rs2 - 8) << 2) | 0b00)
        elif mnemonic == "jalr":
            rd, rs1, imm = f.get("rd"), f.get("rs1", 0), f.get("imm", 0)
            if imm == 0 and rs1 != 0:
                if rd == 0:
                    return encode_c_jr(rs1)
                if rd == 1:
                    return (0b100 << 13) | (1 << 12) | (rs1 << 7) | 0b10
        elif mnemonic == "ebreak":
            return encode_c_ebreak()
    except (EncodingError, KeyError):
        return None
    return None
