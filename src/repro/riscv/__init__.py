"""RISC-V ISA substrate: registers, extensions, encodings, decode/encode,
assembly.

This subpackage is the ISA-specific foundation under every Dyninst-style
toolkit in :mod:`repro` (the role Capstone + hand-written encoders play in
the paper's C++ port).
"""

from .assembler import AsmError, Assembler, Program, Symbol, assemble
from .decoder import DecodeError, decode, decode_all, decode_word
from .encoder import encode, encode_bytes, instruction_bytes, make
from .encoding import EncodingError
from .extensions import (
    ISASubset, PROFILES, RV64G, RV64GC, RV64I, RVA23_SUBSET,
    parse_arch_string,
)
from .instr import Instruction
from .materialize import materialize_imm, pcrel_hi_lo
from .opcodes import InstrSpec, all_specs, by_mnemonic, lookup_word
from .registers import (
    CALLEE_SAVED, CALLER_SAVED, RA, Register, SP, ZERO, freg, lookup, xreg,
)

__all__ = [
    "AsmError", "Assembler", "Program", "Symbol", "assemble",
    "DecodeError", "decode", "decode_all", "decode_word",
    "encode", "encode_bytes", "instruction_bytes", "make",
    "EncodingError",
    "ISASubset", "PROFILES", "RV64G", "RV64GC", "RV64I", "RVA23_SUBSET",
    "parse_arch_string",
    "Instruction", "InstrSpec", "all_specs", "by_mnemonic", "lookup_word",
    "materialize_imm", "pcrel_hi_lo",
    "CALLEE_SAVED", "CALLER_SAVED", "RA", "Register", "SP", "ZERO",
    "freg", "lookup", "xreg",
]
