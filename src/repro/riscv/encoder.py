"""Instruction encoder: mnemonic + fields -> machine-code bytes.

Used by the assembler and by CodeGenAPI.  The encoder is the write-side
twin of :mod:`repro.riscv.decoder`; a hypothesis round-trip test pins the
two together for every instruction in the spec table.
"""

from __future__ import annotations

from . import encoding as enc
from .encoding import EncodingError
from .instr import Instruction
from .opcodes import InstrSpec, by_mnemonic

_DYNAMIC_RM = 0b111


def _require(fields: dict[str, int], name: str, mn: str) -> int:
    try:
        return fields[name]
    except KeyError:
        raise EncodingError(f"{mn}: missing operand {name!r}") from None


def _check_reg(n: int, mn: str, what: str) -> int:
    if not 0 <= n <= 31:
        raise EncodingError(f"{mn}: {what} register number {n} out of range")
    return n


def encode_fields(spec: InstrSpec, fields: dict[str, int]) -> int:
    """Encode a 32-bit word from an :class:`InstrSpec` and a field dict.

    Fields use the canonical keys ``rd rs1 rs2 rs3 imm shamt csr zimm rm
    aq rl pred succ``; register fields hold register numbers.
    """
    mn = spec.mnemonic
    word = spec.match
    fmt = spec.fmt
    ops = {op if op[0] != "f" else op[1:] for op in spec.operands}

    if fmt == "R":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        if "rs2" in ops:
            word |= enc.place_rs2(
                _check_reg(_require(fields, "rs2", mn), mn, "rs2"))
        if spec.has_rm:
            word |= (fields.get("rm", _DYNAMIC_RM) & 0x7) << 12
    elif fmt == "R4":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= enc.place_rs2(_check_reg(_require(fields, "rs2", mn), mn, "rs2"))
        word |= enc.place_rs3(_check_reg(_require(fields, "rs3", mn), mn, "rs3"))
        word |= (fields.get("rm", _DYNAMIC_RM) & 0x7) << 12
    elif fmt == "I":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= enc.encode_imm_i(_require(fields, "imm", mn))
    elif fmt == "S":
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= enc.place_rs2(_check_reg(_require(fields, "rs2", mn), mn, "rs2"))
        word |= enc.encode_imm_s(_require(fields, "imm", mn))
    elif fmt == "B":
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= enc.place_rs2(_check_reg(_require(fields, "rs2", mn), mn, "rs2"))
        word |= enc.encode_imm_b(_require(fields, "imm", mn))
    elif fmt == "U":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.encode_imm_u(_require(fields, "imm", mn))
    elif fmt == "J":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.encode_imm_j(_require(fields, "imm", mn))
    elif fmt == "SHIFT64":
        shamt = _require(fields, "shamt", mn)
        if not 0 <= shamt <= 63:
            raise EncodingError(f"{mn}: shamt {shamt} out of range 0..63")
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= shamt << 20
    elif fmt == "SHIFT32":
        shamt = _require(fields, "shamt", mn)
        if not 0 <= shamt <= 31:
            raise EncodingError(f"{mn}: shamt {shamt} out of range 0..31")
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        word |= shamt << 20
    elif fmt == "AMO":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        if "rs2" in ops:
            word |= enc.place_rs2(
                _check_reg(_require(fields, "rs2", mn), mn, "rs2"))
        word |= (fields.get("aq", 0) & 1) << 26
        word |= (fields.get("rl", 0) & 1) << 25
    elif fmt == "CSR":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        word |= enc.place_rs1(_check_reg(_require(fields, "rs1", mn), mn, "rs1"))
        csr = _require(fields, "csr", mn)
        if not enc.fits_unsigned(csr, 12):
            raise EncodingError(f"{mn}: CSR address {csr} out of range")
        word |= csr << 20
    elif fmt == "CSRI":
        word |= enc.place_rd(_check_reg(_require(fields, "rd", mn), mn, "rd"))
        zimm = _require(fields, "zimm", mn)
        if not enc.fits_unsigned(zimm, 5):
            raise EncodingError(f"{mn}: zimm {zimm} out of range 0..31")
        word |= zimm << 15
        csr = _require(fields, "csr", mn)
        if not enc.fits_unsigned(csr, 12):
            raise EncodingError(f"{mn}: CSR address {csr} out of range")
        word |= csr << 20
    elif fmt == "FENCE":
        # rd/rs1 are reserved-zero fields but architecturally free; keep
        # whatever the decoder captured so re-encoding is lossless.
        word |= enc.place_rd(fields.get("rd", 0))
        word |= enc.place_rs1(fields.get("rs1", 0))
        if spec.operands:
            word |= (fields.get("fm", 0) & 0xF) << 28
            word |= (fields.get("pred", 0xF) & 0xF) << 24
            word |= (fields.get("succ", 0xF) & 0xF) << 20
        else:
            word |= (fields.get("imm", 0) & 0xFFF) << 20
    elif fmt == "SYS":
        pass
    else:  # pragma: no cover - table invariant
        raise EncodingError(f"{mn}: unknown format {fmt}")
    return word & enc.MASK32


def encode(mnemonic: str, **fields: int) -> int:
    """Encode one instruction to its 32-bit word."""
    return encode_fields(by_mnemonic(mnemonic), dict(fields))


def encode_bytes(mnemonic: str, **fields: int) -> bytes:
    """Encode one instruction to little-endian bytes."""
    return encode(mnemonic, **fields).to_bytes(4, "little")


def make(mnemonic: str, **fields: int) -> Instruction:
    """Construct an :class:`Instruction` (validating the encoding)."""
    spec = by_mnemonic(mnemonic)
    word = encode_fields(spec, dict(fields))
    return Instruction(spec=spec, fields=dict(fields), length=4, raw=word)


def instruction_bytes(instr: Instruction) -> bytes:
    """Re-encode an :class:`Instruction` to bytes.

    Standard instructions re-encode through the spec table.  Instructions
    decoded from a compressed encoding are emitted back as their original
    2-byte form.
    """
    if instr.length == 2:
        return instr.raw.to_bytes(2, "little")
    return encode_fields(instr.spec, instr.fields).to_bytes(4, "little")
