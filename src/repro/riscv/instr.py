"""The decoded machine instruction record.

:class:`Instruction` is the low-level, ISA-faithful decode result: a spec
reference plus a field dictionary.  The higher-level abstraction with
operand read/write sets and semantic categories (Dyninst's
InstructionAPI) wraps this in :mod:`repro.instruction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import InstrSpec
from .registers import Register, freg, xreg

#: Field-name aliases: operand descriptor -> field dict key.
_FIELD_KEY = {
    "rd": "rd", "frd": "rd",
    "rs1": "rs1", "frs1": "rs1",
    "rs2": "rs2", "frs2": "rs2",
    "rs3": "rs3", "frs3": "rs3",
}


@dataclass(frozen=True)
class Instruction:
    """One decoded (or constructed) machine instruction.

    Attributes
    ----------
    spec:
        The :class:`InstrSpec` row describing the encoding.
    fields:
        Field name -> integer value.  Register fields hold register
        *numbers*; immediates hold signed Python ints (for U-type, the
        20-bit field value before the ``<< 12``).
    length:
        Encoded length in bytes: 4, or 2 when this instruction was
        decoded from a compressed encoding.
    raw:
        The original encoded halfword/word (the *compressed* encoding
        when ``length == 2``).
    compressed_mnemonic:
        The ``c.*`` mnemonic this instruction was expanded from, or
        ``None`` for a standard encoding.
    """

    spec: InstrSpec
    fields: dict[str, int] = field(default_factory=dict)
    length: int = 4
    raw: int = 0
    compressed_mnemonic: str | None = None

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def extension(self) -> str:
        # A compressed encoding belongs to the C extension even though it
        # expands to a base-ISA spec.
        return "c" if self.compressed_mnemonic else self.spec.extension

    def get(self, name: str, default: int | None = None) -> int | None:
        return self.fields.get(name, default)

    def _reg(self, descr_prefix: str, key: str) -> Register | None:
        if key not in self.fields:
            return None
        n = self.fields[key]
        for op in self.spec.operands:
            if _FIELD_KEY.get(op) == key:
                return freg(n) if op.startswith("f") else xreg(n)
        # Field present but not a declared operand (e.g. implicit zero).
        return xreg(n)

    @property
    def rd(self) -> Register | None:
        return self._reg("rd", "rd")

    @property
    def rs1(self) -> Register | None:
        return self._reg("rs1", "rs1")

    @property
    def rs2(self) -> Register | None:
        return self._reg("rs2", "rs2")

    @property
    def rs3(self) -> Register | None:
        return self._reg("rs3", "rs3")

    @property
    def imm(self) -> int | None:
        if "imm" in self.fields:
            return self.fields["imm"]
        if "shamt" in self.fields:
            return self.fields["shamt"]
        return None

    def disasm(self) -> str:
        """Human-readable assembly text (canonical operand order)."""
        parts: list[str] = []
        mem_fmt = self.spec.fmt in ("I", "S") and self.mnemonic[0] in "lsf" and (
            self.spec.match & 0x7F
        ) in (0x03, 0x07, 0x23, 0x27, 0x67)
        for op in self.spec.operands:
            key = _FIELD_KEY.get(op)
            if key is not None:
                n = self.fields.get(key, 0)
                name = freg(n).abi_name if op.startswith("f") else xreg(n).abi_name
                parts.append(name)
            elif op == "imm":
                parts.append(str(self.fields.get("imm", 0)))
            elif op == "shamt":
                parts.append(str(self.fields.get("shamt", 0)))
            elif op == "csr":
                parts.append(hex(self.fields.get("csr", 0)))
            elif op == "zimm":
                parts.append(str(self.fields.get("zimm", 0)))
            elif op in ("pred", "succ"):
                parts.append(str(self.fields.get(op, 0xF)))
        if mem_fmt and len(parts) == 3:
            # ld rd, imm(rs1) / sd rs2, imm(rs1) / jalr rd, imm(rs1)
            parts = [parts[0], f"{parts[2]}({parts[1]})"]
        mn = self.compressed_mnemonic or self.mnemonic
        return mn if not parts else f"{mn} {', '.join(parts)}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.disasm()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instruction({self.disasm()!r})"
