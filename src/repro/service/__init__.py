"""Instrumentation-as-a-service: a concurrent session server.

The Analysis/BinaryEdit split makes analysis state immutable and the
artifact store makes it content-addressed; this package serves both
over a socket so *many processes* — the paper's tool ecosystem scaled
to a service workload — share one analysis of one binary:

* :class:`~repro.service.server.SessionServer` — a multi-process
  worker pool behind one ``AF_UNIX`` socket.  Workers share the
  listening socket (the kernel load-balances ``accept``), so client
  sessions shard across processes with no dispatcher; every worker
  revives analyses from the shared content-addressed store
  (:mod:`repro.artifacts`) and keeps an in-memory cache so its own
  sessions share one :class:`~repro.api.Analysis` object.
* :class:`~repro.service.client.ServiceClient` — the client: open a
  binary, enumerate points, insert snippets, run, rewrite — the
  ``BinaryEdit`` vocabulary over the wire, with bit-identical results
  to the in-process API.
* :mod:`repro.service.protocol` — the length-prefixed JSON protocol
  both ends speak.

Run a server from the command line::

    python -m repro.service --socket /tmp/repro.sock \
        --store /tmp/repro-artifacts --workers 4

See docs/SERVICE.md for the protocol reference and store layout.
"""

from .client import RemoteSession, ServiceClient
from .protocol import ProtocolError, ServiceError
from .server import SessionServer

__all__ = [
    "ProtocolError", "RemoteSession", "ServiceClient", "ServiceError",
    "SessionServer",
]
