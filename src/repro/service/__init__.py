"""Instrumentation-as-a-service: a concurrent session server.

The Analysis/BinaryEdit split makes analysis state immutable and the
artifact store makes it content-addressed; this package serves both
over a socket so *many processes* — the paper's tool ecosystem scaled
to a service workload — share one analysis of one binary:

* :class:`~repro.service.server.SessionServer` — a multi-process
  worker pool behind one ``AF_UNIX`` socket.  Workers share the
  listening socket (the kernel load-balances ``accept``), so client
  sessions shard across processes with no dispatcher; every worker
  revives analyses from the shared content-addressed store
  (:mod:`repro.artifacts`) and keeps an in-memory cache so its own
  sessions share one :class:`~repro.api.Analysis` object.
* :class:`~repro.service.client.ServiceClient` — the client: open a
  binary, enumerate points, insert snippets, run, rewrite — the
  ``BinaryEdit`` vocabulary over the wire, with bit-identical results
  to the in-process API.
* :mod:`repro.service.protocol` — the length-prefixed JSON protocol
  both ends speak.

The server also carries an opt-in observability plane (armed with
``metrics_dir=`` / ``--metrics-dir`` / ``REPRO_SERVICE_METRICS``):
request ids and client trace contexts on every response, per-op
latency histograms, a slow-request ring linked to pipeline counter
deltas, periodic per-worker snapshot flushes merged fleet-wide by the
``metrics`` op (JSON and Prometheus exposition), a ``healthz`` op,
and structured JSON request logs (``REPRO_SERVICE_LOG``).  The live
console over it is ``tools/repro_top.py``.  Unobserved servers record
nothing.

Run a server from the command line::

    python -m repro.service --socket /tmp/repro.sock \
        --store /tmp/repro-artifacts --workers 4 \
        --metrics-dir /tmp/repro-metrics

See docs/SERVICE.md for the protocol reference, store layout, and the
monitoring guide.
"""

from .client import RemoteSession, ServiceClient
from .protocol import (
    RETRYABLE_KINDS, DeadlineExceeded, Overloaded, ProtocolError,
    ServiceError, ShuttingDown,
)
from .server import SessionServer

__all__ = [
    "DeadlineExceeded", "Overloaded", "ProtocolError",
    "RETRYABLE_KINDS", "RemoteSession", "ServiceClient",
    "ServiceError", "SessionServer", "ShuttingDown",
]
