"""The concurrent session server.

One :class:`SessionServer` owns an ``AF_UNIX`` listening socket and a
pool of worker *processes* that all ``accept`` on it — the kernel
load-balances incoming connections, so sessions shard across workers
with no dispatcher process.  Each worker serves its connections with a
thread per connection and keeps an in-memory ``{artifact key ->
Analysis}`` cache: the first session for a binary revives (or computes
and stores) the analysis via the shared content-addressed store, and
every later session in that worker borrows the same frozen
:class:`~repro.api.analysis.Analysis` object.  Sessions landing on
*other* workers revive from the store — warm-path cost, never a
re-parse.

``workers=0`` serves in a daemon thread of the calling process — the
mode tests use (one address space, full introspection) — with the
identical protocol and dispatch code.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import threading

from .. import telemetry
from ..api.analysis import Analysis, analyze
from ..api.bpatch import BinaryEdit
from ..api.options import InstrumentOptions
from ..artifacts import ArtifactStore, artifact_key, content_digest
from ..patch.points import PointType
from .protocol import (
    PROTOCOL, ProtocolError, decode_bytes, encode_bytes, error_response,
    recv_message, send_message, snippet_from_spec,
)


def options_from_wire(data: dict | None) -> InstrumentOptions:
    """Rebuild an :class:`InstrumentOptions` from its wire dict,
    rejecting unknown fields loudly."""
    if not data:
        return InstrumentOptions()
    names = {f.name for f in dataclasses.fields(InstrumentOptions)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ProtocolError(
            f"unknown InstrumentOptions field(s): {', '.join(unknown)}")
    return InstrumentOptions(**data)


class _Session:
    """Mutable per-session state: the BinaryEdit and its variables."""

    def __init__(self, edit: BinaryEdit):
        self.edit = edit
        self.variables = {}

    def resolve_points(self, req: dict):
        fn = req["function"]
        try:
            ptype = PointType[req.get("point", "FUNC_ENTRY")]
        except KeyError:
            raise ProtocolError(
                f"unknown point type {req.get('point')!r}") from None
        return self.edit.points(fn, ptype)


class SessionServer:
    """Serve BinaryEdit sessions over an ``AF_UNIX`` socket.

    Parameters
    ----------
    socket_path:
        Filesystem path to bind; unlinked on :meth:`close`.
    store:
        Shared :class:`~repro.artifacts.ArtifactStore` (or a path for
        one).  ``None`` uses the process default.
    workers:
        Worker processes to fork.  ``0`` serves from a daemon thread in
        this process (tests); ``N >= 1`` forks N accept-looping workers
        sharing the listener.
    """

    BACKLOG = 64

    def __init__(self, socket_path: str | os.PathLike,
                 store: ArtifactStore | str | os.PathLike | None = None,
                 workers: int = 0):
        self.socket_path = os.fspath(socket_path)
        if isinstance(store, ArtifactStore):
            self.store = store
        elif store is None:
            self.store = ArtifactStore.default()  # None without env
        else:
            self.store = ArtifactStore(store)
        self.workers = workers
        self._procs: list[multiprocessing.Process] = []
        self._thread: threading.Thread | None = None
        self._closed = False
        # worker-local state (each forked worker gets its own copies)
        self._analyses: dict[str, Analysis] = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0

        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(self.BACKLOG)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SessionServer":
        if self.workers:
            ctx = multiprocessing.get_context("fork")
            for idx in range(self.workers):
                p = ctx.Process(target=self._worker_main, args=(idx,),
                                daemon=True, name=f"repro-svc-{idx}")
                p.start()
                self._procs.append(p)
        else:
            self._thread = threading.Thread(
                target=self._serve_forever, args=(0,), daemon=True,
                name="repro-svc")
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for p in self._procs:
            p.terminate()
        for p in self._procs:
            p.join(timeout=5)
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def __enter__(self) -> "SessionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- worker side -------------------------------------------------------

    def _worker_main(self, worker_id: int) -> None:
        # the parent may trap SIGTERM/SIGINT for its own shutdown
        # loop; workers must stay terminable by Process.terminate()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        # fresh post-fork state: caches must not alias the parent's
        self._analyses = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0
        self._serve_forever(worker_id)

    def _serve_forever(self, worker_id: int) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            t = threading.Thread(
                target=self._serve_connection, args=(conn, worker_id),
                daemon=True)
            t.start()

    def _serve_connection(self, conn: socket.socket,
                          worker_id: int) -> None:
        sessions: dict[str, _Session] = {}
        try:
            while True:
                try:
                    req = recv_message(conn)
                except ProtocolError:
                    return  # unframeable peer: drop the connection
                if req is None:
                    return
                try:
                    resp = self._dispatch(req, sessions, worker_id)
                except ProtocolError as exc:
                    resp = error_response(exc)
                except Exception as exc:  # noqa: BLE001 — wire boundary
                    resp = error_response(exc)
                try:
                    send_message(conn, resp)
                except OSError:
                    return
        finally:
            conn.close()

    # -- request dispatch --------------------------------------------------

    def _dispatch(self, req: dict, sessions: dict[str, _Session],
                  worker_id: int) -> dict:
        op = req.get("op")
        telemetry.current().count(f"service.op.{op}")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL,
                    "pid": os.getpid(), "worker": worker_id}
        if op == "open":
            return self._op_open(req, sessions)
        if op == "stats":
            return {"ok": True, "pid": os.getpid(),
                    "worker": worker_id,
                    "sessions": len(sessions),
                    "analyses": sorted(self._analyses),
                    "store": (str(self.store.root)
                              if self.store else None)}
        if op not in ("points", "allocate", "insert", "commit", "run",
                      "rewrite", "close"):
            raise ProtocolError(f"unknown op {op!r}")
        # every remaining op addresses a session
        session = sessions.get(req.get("session"))
        if session is None:
            raise ProtocolError(
                f"unknown session {req.get('session')!r}")
        if op == "points":
            pts = session.resolve_points(req)
            return {"ok": True, "addresses": [p.address for p in pts]}
        if op == "allocate":
            var = session.edit.allocate_variable(
                req["name"], int(req.get("size", 8)))
            session.variables[req["name"]] = var
            return {"ok": True, "address": var.address}
        if op == "insert":
            pts = session.resolve_points(req)
            snip = snippet_from_spec(req["snippet"], session.variables)
            session.edit.insert(pts, snip)
            return {"ok": True, "points": len(pts)}
        if op == "commit":
            session.edit.commit()
            return {"ok": True}
        if op == "run":
            return self._op_run(req, session)
        if op == "rewrite":
            blob = session.edit.rewrite()
            return {"ok": True, "elf": encode_bytes(blob)}
        # op == "close"
        session.edit.close()
        del sessions[req["session"]]
        return {"ok": True}

    def _op_open(self, req: dict,
                 sessions: dict[str, _Session]) -> dict:
        if "elf" in req:
            data = decode_bytes(req["elf"])
            path = req.get("path")
        elif "path" in req:
            path = req["path"]
            with open(path, "rb") as fh:
                data = fh.read()
        else:
            raise ProtocolError("open needs 'elf' (base64) or 'path'")
        opts = options_from_wire(req.get("options"))
        key = artifact_key(content_digest(data), opts.analysis_fields())
        with self._cache_lock:
            analysis = self._analyses.get(key)
        if analysis is None:
            analysis = analyze(
                data, opts,
                store=self.store if self.store is not None else False)
            with self._cache_lock:
                analysis = self._analyses.setdefault(key, analysis)
            telemetry.current().count("service.analyses")
        source = path if path else "<bytes>"
        with self._cache_lock:
            self._session_seq += 1
            sid = f"s{self._session_seq}"
        sessions[sid] = _Session(BinaryEdit(analysis, opts))
        telemetry.current().count("service.sessions")
        return {"ok": True, "session": sid, "key": analysis.key,
                "revived": analysis.revived, "source": source,
                "functions": sorted(
                    f.name for f in analysis.cfg.functions.values()
                    if f.name)}

    def _op_run(self, req: dict, session: _Session) -> dict:
        machine, event = session.edit.run_instrumented(
            max_steps=req.get("max_steps"))
        values = {name: session.edit.read_variable(machine, var)
                  for name, var in session.variables.items()}
        reads = {}
        for name in req.get("read", []):
            var = session.variables.get(name)
            if var is None:
                raise ProtocolError(f"unknown variable {name!r}")
            reads[name] = session.edit.read_variable(machine, var)
        return {"ok": True, "reason": event.reason.name,
                "pc": event.pc, "x": list(machine.x),
                "variables": values, "read": reads}


__all__ = ["SessionServer", "options_from_wire"]
