"""The concurrent session server.

One :class:`SessionServer` owns an ``AF_UNIX`` listening socket and a
pool of worker *processes* that all ``accept`` on it — the kernel
load-balances incoming connections, so sessions shard across workers
with no dispatcher process.  Each worker serves its connections with a
thread per connection and keeps an in-memory ``{artifact key ->
Analysis}`` cache: the first session for a binary revives (or computes
and stores) the analysis via the shared content-addressed store, and
every later session in that worker borrows the same frozen
:class:`~repro.api.analysis.Analysis` object.  Sessions landing on
*other* workers revive from the store — warm-path cost, never a
re-parse.

``workers=0`` serves in a daemon thread of the calling process — the
mode tests use (one address space, full introspection) — with the
identical protocol and dispatch code.

Observability plane (docs/SERVICE.md, "Monitoring the service"):

* every request gets a request id (``w<worker>-<seq>``, echoed as
  ``rid``) and may carry a client-propagated ``trace`` context that is
  echoed back and stamped onto logs and slow-request records;
* with a recorder active, each dispatch is timed into the pow2
  histogram ``service.op.<op>.us`` and requests slower than
  *slow_threshold_us* land in a bounded ring together with the delta
  of pipeline counters (``parse.*``/``liveness.*``/``patch.*``/
  ``sim.*``/``artifacts.*``) produced while serving them;
* with *metrics_dir* set (or ``REPRO_SERVICE_METRICS``), each worker
  enables its own recorder and periodically flushes its snapshot to
  ``worker-<pid>.json`` (atomic rename); the ``metrics`` op merges all
  live flush files into a fleet-wide snapshot + Prometheus exposition,
  and ``healthz`` reports per-worker liveness;
* ``REPRO_SERVICE_LOG`` (or ``log=``) emits one structured JSON line
  per request: timestamp, rid, trace, worker, pid, op, session,
  duration, error kind.

With none of that configured the dispatch path stays on the null
recorder — the zero-cost-when-unobserved rule the bench_guard floors
assume.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import json
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time

from .. import telemetry
from ..api.analysis import Analysis, analyze
from ..api.bpatch import BinaryEdit
from ..api.options import InstrumentOptions
from ..artifacts import ArtifactStore, artifact_key, content_digest
from ..patch.points import PointType
from ..telemetry import aggregate
from .protocol import (
    PROTOCOL, ProtocolError, decode_bytes, encode_bytes, error_response,
    recv_message, send_message, snippet_from_spec,
)

#: environment variables configuring the observability plane
ENV_METRICS = "REPRO_SERVICE_METRICS"
ENV_LOG = "REPRO_SERVICE_LOG"
ENV_SLOW_US = "REPRO_SERVICE_SLOW_US"


def options_from_wire(data: dict | None) -> InstrumentOptions:
    """Rebuild an :class:`InstrumentOptions` from its wire dict,
    rejecting unknown fields loudly."""
    if not data:
        return InstrumentOptions()
    names = {f.name for f in dataclasses.fields(InstrumentOptions)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ProtocolError(
            f"unknown InstrumentOptions field(s): {', '.join(unknown)}")
    return InstrumentOptions(**data)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class _Session:
    """Mutable per-session state: the BinaryEdit and its variables."""

    def __init__(self, edit: BinaryEdit):
        self.edit = edit
        self.variables = {}

    def resolve_points(self, req: dict):
        fn = req["function"]
        try:
            ptype = PointType[req.get("point", "FUNC_ENTRY")]
        except KeyError:
            raise ProtocolError(
                f"unknown point type {req.get('point')!r}") from None
        return self.edit.points(fn, ptype)


class SessionServer:
    """Serve BinaryEdit sessions over an ``AF_UNIX`` socket.

    Parameters
    ----------
    socket_path:
        Filesystem path to bind; unlinked on :meth:`close`.
    store:
        Shared :class:`~repro.artifacts.ArtifactStore` (or a path for
        one).  ``None`` uses the process default.
    workers:
        Worker processes to fork.  ``0`` serves from a daemon thread in
        this process (tests); ``N >= 1`` forks N accept-looping workers
        sharing the listener.
    metrics_dir:
        Run directory for per-worker snapshot flush files.  Setting it
        (or ``REPRO_SERVICE_METRICS``) arms the observability plane:
        each serving process installs a :class:`~repro.telemetry.core.
        Recorder` (if none is active) and flushes its snapshot every
        *flush_interval* seconds; the ``metrics``/``healthz`` ops
        aggregate the files.  ``None`` leaves telemetry untouched.
    flush_interval:
        Seconds between periodic worker snapshot flushes.
    slow_threshold_us:
        Requests slower than this land in the slow-request ring
        (default 10 000 µs, override with ``REPRO_SERVICE_SLOW_US``).
    log:
        Structured request-log target: a path to append JSON lines to,
        or ``"stderr"``/``"-"``/``"1"`` for stderr.  Defaults to
        ``REPRO_SERVICE_LOG``; ``None``/unset disables logging.
    """

    BACKLOG = 64

    #: the complete op vocabulary; anything else counts once under
    #: ``service.op.unknown`` (bounded counter cardinality) and fails
    KNOWN_OPS = frozenset({
        "ping", "open", "points", "allocate", "insert", "commit",
        "run", "rewrite", "close", "stats", "metrics", "healthz",
    })

    #: ops that address an existing session
    SESSION_OPS = frozenset({
        "points", "allocate", "insert", "commit", "run", "rewrite",
        "close",
    })

    #: bounded slow-request ring capacity (per worker)
    SLOW_RING = 64

    def __init__(self, socket_path: str | os.PathLike,
                 store: ArtifactStore | str | os.PathLike | None = None,
                 workers: int = 0,
                 metrics_dir: str | os.PathLike | None = None,
                 flush_interval: float = 2.0,
                 slow_threshold_us: float | None = None,
                 log: str | os.PathLike | None = None):
        self.socket_path = os.fspath(socket_path)
        if isinstance(store, ArtifactStore):
            self.store = store
        elif store is None:
            self.store = ArtifactStore.default()  # None without env
        else:
            self.store = ArtifactStore(store)
        self.workers = workers
        if metrics_dir is None:
            metrics_dir = os.environ.get(ENV_METRICS) or None
        self.metrics_dir = (os.fspath(metrics_dir)
                            if metrics_dir else None)
        self.flush_interval = flush_interval
        if slow_threshold_us is None:
            slow_threshold_us = float(
                os.environ.get(ENV_SLOW_US, 10_000.0))
        self.slow_threshold_us = slow_threshold_us
        if log is None:
            log = os.environ.get(ENV_LOG) or None
        self._log_target = os.fspath(log) if log is not None else None
        self._log_fh = None
        self._log_lock = threading.Lock()
        self._procs: list[multiprocessing.Process] = []
        self._thread: threading.Thread | None = None
        self._closed = False
        # worker-local state (each forked worker gets its own copies)
        self._worker_id = 0
        self._analyses: dict[str, Analysis] = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0
        self._rid_seq = itertools.count(1)
        self._live_sessions = 0
        self._slow: collections.deque = collections.deque(
            maxlen=self.SLOW_RING)
        self._started_at = time.time()

        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(self.BACKLOG)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SessionServer":
        if self.metrics_dir:
            self._clear_stale_flushes()
        if self.workers:
            ctx = multiprocessing.get_context("fork")
            for idx in range(self.workers):
                p = ctx.Process(target=self._worker_main, args=(idx,),
                                daemon=True, name=f"repro-svc-{idx}")
                p.start()
                self._procs.append(p)
        else:
            self._thread = threading.Thread(
                target=self._serve_forever, args=(0,), daemon=True,
                name="repro-svc")
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for p in self._procs:
            p.terminate()
        for p in self._procs:
            p.join(timeout=5)
        with self._log_lock:
            if self._log_fh is not None and self._log_fh is not sys.stderr:
                try:
                    self._log_fh.close()
                except OSError:
                    pass
            self._log_fh = None
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def __enter__(self) -> "SessionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- worker side -------------------------------------------------------

    def _worker_main(self, worker_id: int) -> None:
        # the parent may trap SIGTERM/SIGINT for its own shutdown
        # loop; workers must stay terminable by Process.terminate()
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        # fresh post-fork state: caches must not alias the parent's
        self._analyses = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0
        self._rid_seq = itertools.count(1)
        self._live_sessions = 0
        self._slow = collections.deque(maxlen=self.SLOW_RING)
        self._log_fh = None
        self._log_lock = threading.Lock()
        self._serve_forever(worker_id)

    def _serve_forever(self, worker_id: int) -> None:
        self._worker_id = worker_id
        self._observability_init()
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            t = threading.Thread(
                target=self._serve_connection, args=(conn, worker_id),
                daemon=True)
            t.start()

    def _serve_connection(self, conn: socket.socket,
                          worker_id: int) -> None:
        sessions: dict[str, _Session] = {}
        try:
            while True:
                try:
                    req = recv_message(conn)
                except ProtocolError:
                    return  # unframeable peer: drop the connection
                if req is None:
                    return
                resp = self._handle(req, sessions, worker_id)
                try:
                    send_message(conn, resp)
                except OSError:
                    return
        finally:
            conn.close()
            if sessions:  # connection died with sessions still open
                self._session_closed(len(sessions))

    # -- observability plane ----------------------------------------------

    def _observability_init(self) -> None:
        """Arm per-worker metrics: install a recorder (unless one is
        already active), publish a first flush so ``healthz`` sees the
        worker immediately, and start the periodic flusher."""
        if not self.metrics_dir:
            return
        os.makedirs(self.metrics_dir, exist_ok=True)
        if not telemetry.active():
            telemetry.enable(telemetry.Recorder())
        self._flush_snapshot()
        threading.Thread(target=self._flush_loop, daemon=True,
                         name=f"repro-svc-flush-{self._worker_id}"
                         ).start()

    def _flush_loop(self) -> None:
        while not self._closed:
            time.sleep(self.flush_interval)
            try:
                self._flush_snapshot()
            except OSError:
                pass  # disk hiccup: retry next round

    def _flush_snapshot(self) -> None:
        if not self.metrics_dir:
            return
        rec = telemetry.current()
        aggregate.write_worker_snapshot(
            self.metrics_dir, worker_id=self._worker_id,
            snapshot=rec.snapshot(), sessions=self._live_sessions,
            slow=list(self._slow))
        rec.count("service.flushes")
        rec.gauge("service.flush.last_ts", time.time())

    def _clear_stale_flushes(self) -> None:
        """Drop flush files left by a previous run sharing this
        metrics dir, so aggregation only ever sees this run's fleet."""
        root = self.metrics_dir
        try:
            names = os.listdir(root)
        except OSError:
            return
        for name in names:
            if name.startswith(aggregate.FLUSH_PREFIX) and \
                    name.endswith(".json"):
                try:
                    os.unlink(os.path.join(root, name))
                except OSError:
                    pass

    def _session_opened(self) -> None:
        with self._cache_lock:
            self._live_sessions += 1
            live = self._live_sessions
        telemetry.current().gauge("service.sessions.live", live)

    def _session_closed(self, n: int = 1) -> None:
        with self._cache_lock:
            self._live_sessions = max(0, self._live_sessions - n)
            live = self._live_sessions
        telemetry.current().gauge("service.sessions.live", live)

    def _log_line(self, entry: dict) -> None:
        target = self._log_target
        if target is None:
            return
        try:
            with self._log_lock:
                if self._log_fh is None:
                    if target in ("1", "-", "stderr"):
                        self._log_fh = sys.stderr
                    else:
                        self._log_fh = open(target, "a", buffering=1)
                self._log_fh.write(
                    json.dumps(entry, separators=(",", ":")) + "\n")
        except OSError:
            pass  # logging must never take a request down

    # -- request dispatch --------------------------------------------------

    def _handle(self, req: dict, sessions: dict[str, _Session],
                worker_id: int) -> dict:
        """Tracing wrapper around :meth:`_dispatch`: request id, op
        validation, per-op latency histogram, slow-request ring, and
        the structured request log."""
        op = req.get("op")
        known = op in self.KNOWN_OPS
        opname = op if known else "unknown"
        rid = f"w{worker_id}-{next(self._rid_seq)}"
        trace = req.get("trace")
        rec = telemetry.current()
        observed = rec.enabled
        logging = self._log_target is not None
        rec.count(f"service.op.{opname}")
        t0 = time.perf_counter() if (observed or logging) else 0.0
        before = rec.counters() if observed else None
        err_kind = None
        try:
            if not known:
                raise ProtocolError(f"unknown op {op!r}")
            resp = self._dispatch(op, req, sessions, worker_id)
        except Exception as exc:  # noqa: BLE001 — wire boundary
            err_kind = type(exc).__name__
            resp = error_response(exc)
        resp["rid"] = rid
        if trace is not None:
            resp["trace"] = trace
        if observed or logging:
            dt_us = (time.perf_counter() - t0) * 1e6
            if observed:
                rec.observe(f"service.op.{opname}.us", dt_us)
                rec.count("service.requests")
                if err_kind:
                    rec.count("service.errors")
                if dt_us >= self.slow_threshold_us:
                    after = rec.counters()
                    delta = {
                        name: value - before.get(name, 0)
                        for name, value in after.items()
                        if value != before.get(name, 0)
                        and not name.startswith("service.")
                    }
                    self._slow.append({
                        "rid": rid, "trace": trace, "op": opname,
                        "session": req.get("session"),
                        "duration_us": round(dt_us, 1),
                        "error": err_kind,
                        "counters_delta": delta,
                    })
            if logging:
                self._log_line({
                    "ts": round(time.time(), 6), "rid": rid,
                    "trace": trace, "worker": worker_id,
                    "pid": os.getpid(), "op": opname,
                    "session": req.get("session"),
                    "duration_us": round(dt_us, 1),
                    "ok": err_kind is None, "error": err_kind,
                })
        return resp

    def _dispatch(self, op: str, req: dict,
                  sessions: dict[str, _Session],
                  worker_id: int) -> dict:
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL,
                    "pid": os.getpid(), "worker": worker_id}
        if op == "open":
            return self._op_open(req, sessions)
        if op == "stats":
            return self._op_stats(sessions, worker_id)
        if op == "metrics":
            return self._op_metrics(worker_id)
        if op == "healthz":
            return self._op_healthz(worker_id)
        # every remaining op addresses a session
        session = sessions.get(req.get("session"))
        if session is None:
            raise ProtocolError(
                f"unknown session {req.get('session')!r}")
        if op == "points":
            pts = session.resolve_points(req)
            return {"ok": True, "addresses": [p.address for p in pts]}
        if op == "allocate":
            var = session.edit.allocate_variable(
                req["name"], int(req.get("size", 8)))
            session.variables[req["name"]] = var
            return {"ok": True, "address": var.address}
        if op == "insert":
            pts = session.resolve_points(req)
            snip = snippet_from_spec(req["snippet"], session.variables)
            session.edit.insert(pts, snip)
            return {"ok": True, "points": len(pts)}
        if op == "commit":
            session.edit.commit()
            return {"ok": True}
        if op == "run":
            return self._op_run(req, session)
        if op == "rewrite":
            blob = session.edit.rewrite()
            return {"ok": True, "elf": encode_bytes(blob)}
        # op == "close"
        session.edit.close()
        del sessions[req["session"]]
        self._session_closed()
        return {"ok": True}

    def _op_stats(self, sessions: dict[str, _Session],
                  worker_id: int) -> dict:
        """Per-accepting-worker statistics.  Deliberately *not* the
        fleet view — this reports only the worker this connection
        landed on (see the ``metrics`` op for cross-worker numbers) —
        but honest about it: it now says so and carries the worker's
        own live telemetry snapshot."""
        return {"ok": True, "pid": os.getpid(),
                "worker": worker_id,
                "scope": "worker",
                "sessions": len(sessions),
                "worker_sessions": self._live_sessions,
                "analyses": sorted(self._analyses),
                "store": (str(self.store.root)
                          if self.store else None),
                "telemetry": telemetry.current().snapshot()}

    def _op_metrics(self, worker_id: int) -> dict:
        """Fleet-wide aggregation: flush this worker's snapshot, read
        every live flush file, and merge (counters summed, histograms
        bucket-wise, gauges last-write)."""
        if self.metrics_dir:
            self._flush_snapshot()
            records = aggregate.read_worker_snapshots(self.metrics_dir)
        else:
            # no run directory: the accepting worker is the fleet
            records = [{
                "pid": os.getpid(), "worker": worker_id,
                "ts": time.time(), "sessions": self._live_sessions,
                "slow": list(self._slow),
                "snapshot": telemetry.current().snapshot(),
            }]
        merged = aggregate.merge_snapshots(
            [r["snapshot"] for r in records])
        slow = sorted(
            (entry for r in records for entry in r.get("slow", [])),
            key=lambda e: e.get("duration_us", 0), reverse=True,
        )[: self.SLOW_RING]
        return {"ok": True, "pid": os.getpid(), "worker": worker_id,
                "merged": merged,
                "workers": [
                    {"pid": r["pid"], "worker": r.get("worker"),
                     "ts": r.get("ts"),
                     "sessions": r.get("sessions", 0),
                     "snapshot": r["snapshot"]}
                    for r in records
                ],
                "slow": slow,
                "exposition": aggregate.to_prometheus(merged)}

    def _op_healthz(self, worker_id: int) -> dict:
        """Worker liveness: every flush file's age and whether its pid
        still exists.  Without a metrics dir, reports just the
        accepting worker (trivially alive)."""
        now = time.time()
        workers = []
        if self.metrics_dir:
            for r in aggregate.read_worker_snapshots(self.metrics_dir):
                workers.append({
                    "pid": r["pid"], "worker": r.get("worker"),
                    "sessions": r.get("sessions", 0),
                    "age_s": round(max(0.0, now - r.get("ts", now)), 3),
                    "alive": _pid_alive(r["pid"]),
                })
        else:
            workers.append({"pid": os.getpid(), "worker": worker_id,
                            "sessions": self._live_sessions,
                            "age_s": 0.0, "alive": True})
        healthy = bool(workers) and all(w["alive"] for w in workers)
        return {"ok": True, "pid": os.getpid(), "worker": worker_id,
                "healthy": healthy,
                "uptime_s": round(now - self._started_at, 3),
                "workers": workers}

    def _op_open(self, req: dict,
                 sessions: dict[str, _Session]) -> dict:
        if "elf" in req:
            data = decode_bytes(req["elf"])
            path = req.get("path")
        elif "path" in req:
            path = req["path"]
            with open(path, "rb") as fh:
                data = fh.read()
        else:
            raise ProtocolError("open needs 'elf' (base64) or 'path'")
        opts = options_from_wire(req.get("options"))
        key = artifact_key(content_digest(data), opts.analysis_fields())
        with self._cache_lock:
            analysis = self._analyses.get(key)
        if analysis is None:
            analysis = analyze(
                data, opts,
                store=self.store if self.store is not None else False)
            with self._cache_lock:
                analysis = self._analyses.setdefault(key, analysis)
            telemetry.current().count("service.analyses")
        source = path if path else "<bytes>"
        with self._cache_lock:
            self._session_seq += 1
            sid = f"s{self._session_seq}"
        sessions[sid] = _Session(BinaryEdit(analysis, opts))
        telemetry.current().count("service.sessions")
        self._session_opened()
        return {"ok": True, "session": sid, "key": analysis.key,
                "revived": analysis.revived, "source": source,
                "functions": sorted(
                    f.name for f in analysis.cfg.functions.values()
                    if f.name)}

    def _op_run(self, req: dict, session: _Session) -> dict:
        machine, event = session.edit.run_instrumented(
            max_steps=req.get("max_steps"))
        values = {name: session.edit.read_variable(machine, var)
                  for name, var in session.variables.items()}
        reads = {}
        for name in req.get("read", []):
            var = session.variables.get(name)
            if var is None:
                raise ProtocolError(f"unknown variable {name!r}")
            reads[name] = session.edit.read_variable(machine, var)
        return {"ok": True, "reason": event.reason.name,
                "pc": event.pc, "x": list(machine.x),
                "variables": values, "read": reads}


__all__ = ["SessionServer", "options_from_wire"]
