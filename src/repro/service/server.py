"""The concurrent session server.

One :class:`SessionServer` owns an ``AF_UNIX`` listening socket and a
pool of worker *processes* that all ``accept`` on it — the kernel
load-balances incoming connections, so sessions shard across workers
with no dispatcher process.  Each worker serves its connections with a
thread per connection and keeps an in-memory ``{artifact key ->
Analysis}`` cache: the first session for a binary revives (or computes
and stores) the analysis via the shared content-addressed store, and
every later session in that worker borrows the same frozen
:class:`~repro.api.analysis.Analysis` object.  Sessions landing on
*other* workers revive from the store — warm-path cost, never a
re-parse.

``workers=0`` serves in a daemon thread of the calling process — the
mode tests use (one address space, full introspection) — with the
identical protocol and dispatch code.

Observability plane (docs/SERVICE.md, "Monitoring the service"):

* every request gets a request id (``w<worker>-<seq>``, echoed as
  ``rid``) and may carry a client-propagated ``trace`` context that is
  echoed back and stamped onto logs and slow-request records;
* with a recorder active, each dispatch is timed into the pow2
  histogram ``service.op.<op>.us`` and requests slower than
  *slow_threshold_us* land in a bounded ring together with the delta
  of pipeline counters (``parse.*``/``liveness.*``/``patch.*``/
  ``sim.*``/``artifacts.*``) produced while serving them;
* with *metrics_dir* set (or ``REPRO_SERVICE_METRICS``), each worker
  enables its own recorder and periodically flushes its snapshot to
  ``worker-<pid>.json`` (atomic rename); the ``metrics`` op merges all
  live flush files into a fleet-wide snapshot + Prometheus exposition,
  and ``healthz`` reports per-worker liveness;
* ``REPRO_SERVICE_LOG`` (or ``log=``) emits one structured JSON line
  per request: timestamp, rid, trace, worker, pid, op, session,
  duration, error kind.

With none of that configured the dispatch path stays on the null
recorder — the zero-cost-when-unobserved rule the bench_guard floors
assume.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import json
import multiprocessing
import os
import signal
import socket
import sys
import tempfile
import threading
import time

from .. import faults, telemetry
from ..api.analysis import Analysis, analyze
from ..api.bpatch import BinaryEdit
from ..api.options import InstrumentOptions
from ..artifacts import ArtifactStore, artifact_key, content_digest
from ..patch.points import PointType
from ..telemetry import aggregate
from .protocol import (
    PROTOCOL, DeadlineExceeded, Overloaded, ProtocolError, ShuttingDown,
    decode_bytes, encode_bytes, error_response, recv_message,
    send_message, snippet_from_spec,
)

#: environment variables configuring the observability plane
ENV_METRICS = "REPRO_SERVICE_METRICS"
ENV_LOG = "REPRO_SERVICE_LOG"
ENV_SLOW_US = "REPRO_SERVICE_SLOW_US"

#: environment variables configuring the resilience layer
ENV_IDLE_S = "REPRO_SERVICE_IDLE_S"
ENV_DEADLINE_S = "REPRO_SERVICE_DEADLINE_S"
#: chaos harness: a fault spec (``site[@occurrence][:token]``, see
#: :func:`repro.faults.plan_from_spec`) armed by every forked worker
ENV_FAULTS = "REPRO_SERVICE_FAULTS"

#: schema identifier for the supervisor's state file
SUP_SCHEMA = "repro.service.supervisor/1"


class _WorkerAbort(BaseException):
    """Chaos-injected worker death in thread-serving mode (workers=0),
    where ``os._exit`` would take the test process down: unwinds the
    connection thread without a response, like a crash would."""


def options_from_wire(data: dict | None) -> InstrumentOptions:
    """Rebuild an :class:`InstrumentOptions` from its wire dict,
    rejecting unknown fields loudly."""
    if not data:
        return InstrumentOptions()
    names = {f.name for f in dataclasses.fields(InstrumentOptions)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ProtocolError(
            f"unknown InstrumentOptions field(s): {', '.join(unknown)}")
    return InstrumentOptions(**data)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class _Session:
    """Mutable per-session state: the BinaryEdit and its variables."""

    def __init__(self, edit: BinaryEdit):
        self.edit = edit
        self.variables = {}

    def resolve_points(self, req: dict):
        fn = req["function"]
        try:
            ptype = PointType[req.get("point", "FUNC_ENTRY")]
        except KeyError:
            raise ProtocolError(
                f"unknown point type {req.get('point')!r}") from None
        return self.edit.points(fn, ptype)


class SessionServer:
    """Serve BinaryEdit sessions over an ``AF_UNIX`` socket.

    Parameters
    ----------
    socket_path:
        Filesystem path to bind; unlinked on :meth:`close`.
    store:
        Shared :class:`~repro.artifacts.ArtifactStore` (or a path for
        one).  ``None`` uses the process default.
    workers:
        Worker processes to fork.  ``0`` serves from a daemon thread in
        this process (tests); ``N >= 1`` forks N accept-looping workers
        sharing the listener.
    metrics_dir:
        Run directory for per-worker snapshot flush files.  Setting it
        (or ``REPRO_SERVICE_METRICS``) arms the observability plane:
        each serving process installs a :class:`~repro.telemetry.core.
        Recorder` (if none is active) and flushes its snapshot every
        *flush_interval* seconds; the ``metrics``/``healthz`` ops
        aggregate the files.  ``None`` leaves telemetry untouched.
    flush_interval:
        Seconds between periodic worker snapshot flushes.
    slow_threshold_us:
        Requests slower than this land in the slow-request ring
        (default 10 000 µs, override with ``REPRO_SERVICE_SLOW_US``).
    log:
        Structured request-log target: a path to append JSON lines to,
        or ``"stderr"``/``"-"``/``"1"`` for stderr.  Defaults to
        ``REPRO_SERVICE_LOG``; ``None``/unset disables logging.
    supervise:
        With forked workers, run a supervisor loop in the parent that
        ``waitpid``-reaps crashed workers and respawns them with
        capped exponential backoff (default on).  Generation and
        respawn counts surface through ``healthz``.
    max_connections:
        Per-worker cap on concurrently served connections.  Excess
        connections are *shed*: they receive one ``Overloaded`` error
        frame (kind ``Overloaded``, ``retryable: true``, a
        ``retry_after`` hint) and are closed instead of spawning an
        unbounded thread.
    max_sessions:
        Per-worker cap on live sessions; ``open`` beyond it sheds the
        request the same way.
    idle_timeout:
        Seconds a connection may sit idle (including mid-frame — the
        slowloris case) before the worker drops it.  ``None``/unset
        disables (default; override with ``REPRO_SERVICE_IDLE_S``).
    deadline_s:
        Server-side wall-clock deadline for ``run`` requests.  The
        simulator executes in bounded slices and checks the clock
        between them; on expiry the machine is rolled back through the
        transactional journal (bit-identical restore — never a
        half-applied patch) and the client receives a retryable
        ``DeadlineExceeded`` error, the session still usable.
        ``None``/unset disables (default; override with
        ``REPRO_SERVICE_DEADLINE_S``).  Requests may carry their own
        ``deadline_ms``; the effective deadline is the minimum.
    drain_timeout:
        Seconds a SIGTERM'd worker (and :meth:`close`) waits for
        in-flight requests before escalating to a hard exit.
    """

    BACKLOG = 64

    #: simulator slice between deadline checks (bounded runs stay on
    #: the interpreter, so slicing is only engaged when a deadline is)
    RUN_SLICE = 200_000

    #: capped exponential respawn backoff: base * 2^consecutive,
    #: clamped to the max; consecutive resets after a healthy stretch
    BACKOFF_BASE = 0.05
    BACKOFF_MAX = 2.0
    BACKOFF_RESET_S = 5.0

    #: retry-after hint attached to shed responses (seconds)
    RETRY_AFTER = 0.1

    #: the complete op vocabulary; anything else counts once under
    #: ``service.op.unknown`` (bounded counter cardinality) and fails
    KNOWN_OPS = frozenset({
        "ping", "open", "points", "allocate", "insert", "commit",
        "run", "rewrite", "close", "stats", "metrics", "healthz",
    })

    #: ops that address an existing session
    SESSION_OPS = frozenset({
        "points", "allocate", "insert", "commit", "run", "rewrite",
        "close",
    })

    #: bounded slow-request ring capacity (per worker)
    SLOW_RING = 64

    def __init__(self, socket_path: str | os.PathLike,
                 store: ArtifactStore | str | os.PathLike | None = None,
                 workers: int = 0,
                 metrics_dir: str | os.PathLike | None = None,
                 flush_interval: float = 2.0,
                 slow_threshold_us: float | None = None,
                 log: str | os.PathLike | None = None,
                 supervise: bool = True,
                 max_connections: int = 64,
                 max_sessions: int = 128,
                 idle_timeout: float | None = None,
                 deadline_s: float | None = None,
                 drain_timeout: float = 5.0):
        self.socket_path = os.fspath(socket_path)
        if isinstance(store, ArtifactStore):
            self.store = store
        elif store is None:
            self.store = ArtifactStore.default()  # None without env
        else:
            self.store = ArtifactStore(store)
        self.workers = workers
        if metrics_dir is None:
            metrics_dir = os.environ.get(ENV_METRICS) or None
        self.metrics_dir = (os.fspath(metrics_dir)
                            if metrics_dir else None)
        self.flush_interval = flush_interval
        if slow_threshold_us is None:
            slow_threshold_us = float(
                os.environ.get(ENV_SLOW_US, 10_000.0))
        self.slow_threshold_us = slow_threshold_us
        if log is None:
            log = os.environ.get(ENV_LOG) or None
        self._log_target = os.fspath(log) if log is not None else None
        self._log_fh = None
        self._log_lock = threading.Lock()
        self.supervise = supervise
        self.max_connections = max_connections
        self.max_sessions = max_sessions
        if idle_timeout is None:
            env = os.environ.get(ENV_IDLE_S)
            idle_timeout = float(env) if env else None
        self.idle_timeout = idle_timeout
        if deadline_s is None:
            env = os.environ.get(ENV_DEADLINE_S)
            deadline_s = float(env) if env else None
        self.deadline_s = deadline_s
        self.drain_timeout = drain_timeout
        #: supervisor state file, written atomically by the parent and
        #: read by workers to answer ``healthz``
        self._sup_path = self.socket_path + ".sup.json"
        self._sup_lock = threading.Lock()
        self._sup_thread: threading.Thread | None = None
        self._slots: list[dict] = []
        self._respawns_total = 0
        self._sup_written = 0.0
        self._procs: list[multiprocessing.Process] = []
        self._thread: threading.Thread | None = None
        self._closed = False
        self._draining = False
        self._is_forked_worker = False
        # worker-local state (each forked worker gets its own copies)
        self._worker_id = 0
        self._analyses: dict[str, Analysis] = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0
        self._rid_seq = itertools.count(1)
        self._live_sessions = 0
        self._slow: collections.deque = collections.deque(
            maxlen=self.SLOW_RING)
        self._started_at = time.time()
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self._inflight = 0

        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._listener = socket.socket(socket.AF_UNIX,
                                       socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(self.BACKLOG)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SessionServer":
        if self.metrics_dir:
            self._clear_stale_flushes()
        if self.workers:
            for idx in range(self.workers):
                self._slots.append({
                    "slot": idx, "proc": None, "generation": 0,
                    "respawns": 0, "consecutive": 0,
                    "started_at": time.monotonic(),
                    "respawn_at": None, "last_exitcode": None,
                })
                self._spawn_slot(self._slots[idx])
            self._write_sup_state()
            if self.supervise:
                self._sup_thread = threading.Thread(
                    target=self._supervise, daemon=True,
                    name="repro-svc-supervisor")
                self._sup_thread.start()
        else:
            self._thread = threading.Thread(
                target=self._serve_forever, args=(0,), daemon=True,
                name="repro-svc")
            self._thread.start()
        return self

    def close(self) -> None:
        """Graceful, escalating shutdown: stop accepting, ask workers
        to drain in-flight work (SIGTERM), then escalate — a second
        SIGTERM forces exit, SIGKILL reaps anything still stuck — and
        re-join so no zombie children survive."""
        if self._closed:
            return
        self._closed = True  # stops the supervisor from respawning
        if self._sup_thread is not None:
            self._sup_thread.join(timeout=2)
        try:
            self._listener.close()
        except OSError:
            pass
        procs = [s["proc"] for s in self._slots if s["proc"] is not None]
        procs += [p for p in self._procs if p not in procs]
        for p in procs:          # round 1: drain request
            if p.is_alive():
                p.terminate()
        deadline = time.monotonic() + self.drain_timeout + 1.0
        for p in procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        for p in procs:          # round 2: immediate-exit request
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():
                p.join(timeout=2)
        for p in procs:          # round 3: the kernel always wins
            if p.is_alive():
                p.kill()
        for p in procs:
            if p.is_alive():
                p.join(timeout=5)
        with self._log_lock:
            if self._log_fh is not None and self._log_fh is not sys.stderr:
                try:
                    self._log_fh.close()
                except OSError:
                    pass
            self._log_fh = None
        for path in (self.socket_path, self._sup_path):
            if os.path.exists(path):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- supervision -------------------------------------------------------

    def _spawn_slot(self, slot: dict) -> None:
        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(
            target=self._worker_main, args=(slot["slot"],),
            daemon=True,
            name=f"repro-svc-{slot['slot']}.g{slot['generation']}")
        p.start()
        slot["proc"] = p
        slot["started_at"] = time.monotonic()
        self._procs.append(p)

    def _supervise(self) -> None:
        """Parent-side supervisor: reap dead workers, respawn with
        capped exponential backoff, publish fleet state."""
        while not self._closed:
            time.sleep(0.05)
            now = time.monotonic()
            changed = False
            with self._sup_lock:
                for slot in self._slots:
                    p = slot["proc"]
                    if self._closed or p is None or p.is_alive():
                        continue
                    if slot["respawn_at"] is None:
                        # first sighting of this death: reap, schedule
                        p.join(timeout=0)
                        slot["last_exitcode"] = p.exitcode
                        lived = now - slot["started_at"]
                        slot["consecutive"] = (
                            0 if lived >= self.BACKOFF_RESET_S
                            else slot["consecutive"] + 1)
                        delay = min(
                            self.BACKOFF_MAX,
                            self.BACKOFF_BASE *
                            (2 ** min(slot["consecutive"], 16)))
                        slot["respawn_at"] = now + delay
                        changed = True
                    elif now >= slot["respawn_at"]:
                        slot["respawn_at"] = None
                        slot["generation"] += 1
                        slot["respawns"] += 1
                        self._respawns_total += 1
                        self._spawn_slot(slot)
                        changed = True
            if changed or time.monotonic() - self._sup_written > 1.0:
                self._write_sup_state()

    def _write_sup_state(self) -> None:
        """Atomically publish the supervisor's fleet view (same
        mkstemp + ``os.replace`` discipline as the metric flushes), so
        any worker can answer ``healthz`` with respawn counts."""
        with self._sup_lock:
            state = {
                "schema": SUP_SCHEMA, "pid": os.getpid(),
                "ts": time.time(),
                "respawns_total": self._respawns_total,
                "supervising": bool(self.supervise and self.workers),
                "workers": [
                    {"slot": s["slot"],
                     "pid": s["proc"].pid if s["proc"] else None,
                     "generation": s["generation"],
                     "respawns": s["respawns"],
                     "alive": bool(s["proc"] and s["proc"].is_alive()),
                     "last_exitcode": s["last_exitcode"]}
                    for s in self._slots
                ],
            }
        blob = json.dumps(state).encode()
        d = os.path.dirname(self._sup_path) or "."
        try:
            fd, tmp = tempfile.mkstemp(dir=d, prefix=".sup-",
                                       suffix=".json")
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, self._sup_path)
        except OSError:
            return  # disk hiccup: state is advisory, retry next round
        self._sup_written = time.monotonic()

    def _read_sup_state(self) -> dict | None:
        try:
            with open(self._sup_path, "rb") as f:
                data = json.loads(f.read())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("schema") != SUP_SCHEMA:
            return None
        return data

    def __enter__(self) -> "SessionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- worker side -------------------------------------------------------

    def _worker_main(self, worker_id: int) -> None:
        # SIGTERM asks the worker to *drain*: stop accepting, let
        # in-flight requests finish up to drain_timeout, then exit.  A
        # second SIGTERM (the parent's escalation) forces exit now.
        self._is_forked_worker = True
        signal.signal(signal.SIGTERM, self._on_sigterm)
        signal.signal(signal.SIGINT, signal.SIG_DFL)
        # fresh post-fork state: caches must not alias the parent's
        self._analyses = {}
        self._cache_lock = threading.Lock()
        self._session_seq = 0
        self._rid_seq = itertools.count(1)
        self._live_sessions = 0
        self._slow = collections.deque(maxlen=self.SLOW_RING)
        self._log_fh = None
        self._log_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._conns = set()
        self._inflight = 0
        self._draining = False
        spec = os.environ.get(ENV_FAULTS)
        if spec:  # chaos harness: arm this worker's injection plan
            try:
                faults.arm(faults.plan_from_spec(spec))
            except ValueError:
                pass
        self._serve_forever(worker_id)
        if self._draining:
            self._drain_and_exit()

    def _on_sigterm(self, signum, frame) -> None:
        if self._draining:
            os._exit(0)  # escalation: second TERM means *now*
        self._draining = True
        try:
            # unblocks the accept loop; in-flight threads keep going
            self._listener.close()
        except OSError:
            pass

    def _drain_and_exit(self) -> None:
        """Serve out in-flight requests, then leave.  Idle connections
        are closed as soon as nothing is mid-request; anything still
        running at the timeout is abandoned (hard exit) — the client
        sees a dropped connection, which is retryable."""
        telemetry.current().gauge("service.draining", 1)
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            with self._conn_lock:
                inflight = self._inflight
                conns = list(self._conns)
            if inflight == 0:
                for c in conns:
                    try:
                        c.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                break
            time.sleep(0.02)
        if self.metrics_dir:
            try:
                self._flush_snapshot()
            except Exception:  # noqa: BLE001 — exiting anyway
                pass
        os._exit(0)

    def _serve_forever(self, worker_id: int) -> None:
        self._worker_id = worker_id
        self._observability_init()
        while True:
            try:
                conn, _ = self._listener.accept()
            except (OSError, ValueError):
                return  # listener closed: shutdown or drain
            if self._draining:
                self._refuse(conn, ShuttingDown(
                    "worker is draining for shutdown; reconnect"))
                continue
            with self._conn_lock:
                live = len(self._conns)
                if live < self.max_connections:
                    self._conns.add(conn)
            if live >= self.max_connections:
                telemetry.current().count("service.shed.connections")
                self._refuse(conn, Overloaded(
                    f"worker at its {self.max_connections}-connection "
                    f"cap", retry_after=self.RETRY_AFTER))
                continue
            t = threading.Thread(
                target=self._serve_connection, args=(conn, worker_id),
                daemon=True)
            t.start()

    def _refuse(self, conn: socket.socket, exc: Exception) -> None:
        """Shed a connection: one typed, retryable error frame, then
        close.  Runs in a short-lived thread (time-bounded, no session
        state) so a slow peer cannot stall the accept loop."""
        resp = error_response(exc)
        resp["rid"] = f"w{self._worker_id}-shed"
        threading.Thread(target=self._refuse_io, args=(conn, resp),
                         daemon=True).start()

    @staticmethod
    def _refuse_io(conn: socket.socket, resp: dict) -> None:
        try:
            conn.settimeout(1.0)
            send_message(conn, resp)
            conn.shutdown(socket.SHUT_WR)
            # drain what the peer already sent: closing with unread
            # bytes would reset the connection and destroy the error
            # frame before the client reads it
            while conn.recv(65536):
                pass
        except (TimeoutError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket,
                          worker_id: int) -> None:
        sessions: dict[str, _Session] = {}
        rec = telemetry.current()
        if self.idle_timeout is not None:
            conn.settimeout(self.idle_timeout)
        try:
            while True:
                try:
                    req = recv_message(conn)
                except TimeoutError:
                    # idle peer or slowloris mid-frame: reclaim the
                    # thread; the peer can reconnect
                    rec.count("service.conn.idle_timeouts")
                    return
                except ProtocolError:
                    # unframeable peer: drop the connection, the
                    # worker (and its other connections) live on
                    rec.count("service.conn.protocol_drops")
                    return
                except OSError:
                    return  # peer reset mid-frame
                if req is None:
                    return
                resp = self._handle(req, sessions, worker_id)
                if faults.pressure("service.conn.drop"):
                    # chaos: die mid-frame — a torn response, then EOF
                    try:
                        conn.sendall(b"\x00\x00")
                    except OSError:
                        pass
                    return
                try:
                    send_message(conn, resp)
                except (TimeoutError, OSError):
                    return
        except _WorkerAbort:
            return  # chaos: simulated worker crash (thread mode)
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            conn.close()
            if sessions:  # connection died with sessions still open
                self._session_closed(len(sessions))

    # -- observability plane ----------------------------------------------

    def _observability_init(self) -> None:
        """Arm per-worker metrics: install a recorder (unless one is
        already active), publish a first flush so ``healthz`` sees the
        worker immediately, and start the periodic flusher."""
        if not self.metrics_dir:
            return
        os.makedirs(self.metrics_dir, exist_ok=True)
        if not telemetry.active():
            telemetry.enable(telemetry.Recorder())
        self._flush_snapshot()
        threading.Thread(target=self._flush_loop, daemon=True,
                         name=f"repro-svc-flush-{self._worker_id}"
                         ).start()

    def _flush_loop(self) -> None:
        while not self._closed:
            time.sleep(self.flush_interval)
            try:
                self._flush_snapshot()
            except OSError:
                pass  # disk hiccup: retry next round

    def _flush_snapshot(self) -> None:
        if not self.metrics_dir:
            return
        rec = telemetry.current()
        sup = self._read_sup_state()
        if sup is not None and sup.get("supervising"):
            rec.gauge("service.workers.respawns",
                      sup.get("respawns_total", 0))
            rec.gauge("service.workers.alive", sum(
                1 for w in sup.get("workers", []) if w.get("alive")))
        aggregate.write_worker_snapshot(
            self.metrics_dir, worker_id=self._worker_id,
            snapshot=rec.snapshot(), sessions=self._live_sessions,
            slow=list(self._slow))
        rec.count("service.flushes")
        rec.gauge("service.flush.last_ts", time.time())

    def _clear_stale_flushes(self) -> None:
        """Drop flush files left by a previous run sharing this
        metrics dir, so aggregation only ever sees this run's fleet."""
        root = self.metrics_dir
        try:
            names = os.listdir(root)
        except OSError:
            return
        for name in names:
            if name.startswith(aggregate.FLUSH_PREFIX) and \
                    name.endswith(".json"):
                try:
                    os.unlink(os.path.join(root, name))
                except OSError:
                    pass

    def _session_opened(self) -> None:
        with self._cache_lock:
            self._live_sessions += 1
            live = self._live_sessions
        telemetry.current().gauge("service.sessions.live", live)

    def _session_closed(self, n: int = 1) -> None:
        with self._cache_lock:
            self._live_sessions = max(0, self._live_sessions - n)
            live = self._live_sessions
        telemetry.current().gauge("service.sessions.live", live)

    def _log_line(self, entry: dict) -> None:
        target = self._log_target
        if target is None:
            return
        try:
            with self._log_lock:
                if self._log_fh is None:
                    if target in ("1", "-", "stderr"):
                        self._log_fh = sys.stderr
                    else:
                        self._log_fh = open(target, "a", buffering=1)
                self._log_fh.write(
                    json.dumps(entry, separators=(",", ":")) + "\n")
        except OSError:
            pass  # logging must never take a request down

    # -- request dispatch --------------------------------------------------

    def _handle(self, req: dict, sessions: dict[str, _Session],
                worker_id: int) -> dict:
        """Tracing wrapper around :meth:`_dispatch`: request id, op
        validation, per-op latency histogram, slow-request ring, and
        the structured request log."""
        op = req.get("op")
        known = op in self.KNOWN_OPS
        opname = op if known else "unknown"
        rid = f"w{worker_id}-{next(self._rid_seq)}"
        trace = req.get("trace")
        rec = telemetry.current()
        observed = rec.enabled
        logging = self._log_target is not None
        rec.count(f"service.op.{opname}")
        t0 = time.perf_counter() if (observed or logging) else 0.0
        before = rec.counters() if observed else None
        err_kind = None
        with self._conn_lock:
            self._inflight += 1
        try:
            if faults.pressure("service.worker.abort"):
                # chaos: the worker dies mid-request.  Forked workers
                # really exit (the supervisor's problem); the
                # in-thread test mode only kills the connection.
                if self._is_forked_worker:
                    os._exit(86)
                raise _WorkerAbort()
            if not known:
                raise ProtocolError(f"unknown op {op!r}")
            resp = self._dispatch(op, req, sessions, worker_id)
        except Exception as exc:  # noqa: BLE001 — wire boundary
            err_kind = type(exc).__name__
            resp = error_response(exc)
        finally:
            with self._conn_lock:
                self._inflight -= 1
        resp["rid"] = rid
        if trace is not None:
            resp["trace"] = trace
        if observed or logging:
            dt_us = (time.perf_counter() - t0) * 1e6
            if observed:
                rec.observe(f"service.op.{opname}.us", dt_us)
                rec.count("service.requests")
                if err_kind:
                    rec.count("service.errors")
                if dt_us >= self.slow_threshold_us:
                    after = rec.counters()
                    delta = {
                        name: value - before.get(name, 0)
                        for name, value in after.items()
                        if value != before.get(name, 0)
                        and not name.startswith("service.")
                    }
                    self._slow.append({
                        "rid": rid, "trace": trace, "op": opname,
                        "session": req.get("session"),
                        "duration_us": round(dt_us, 1),
                        "error": err_kind,
                        "counters_delta": delta,
                    })
            if logging:
                self._log_line({
                    "ts": round(time.time(), 6), "rid": rid,
                    "trace": trace, "worker": worker_id,
                    "pid": os.getpid(), "op": opname,
                    "session": req.get("session"),
                    "duration_us": round(dt_us, 1),
                    "ok": err_kind is None, "error": err_kind,
                })
        return resp

    def _dispatch(self, op: str, req: dict,
                  sessions: dict[str, _Session],
                  worker_id: int) -> dict:
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL,
                    "pid": os.getpid(), "worker": worker_id}
        if op == "open":
            return self._op_open(req, sessions)
        if op == "stats":
            return self._op_stats(sessions, worker_id)
        if op == "metrics":
            return self._op_metrics(worker_id)
        if op == "healthz":
            return self._op_healthz(worker_id)
        # every remaining op addresses a session
        session = sessions.get(req.get("session"))
        if session is None:
            raise ProtocolError(
                f"unknown session {req.get('session')!r}")
        if op == "points":
            pts = session.resolve_points(req)
            return {"ok": True, "addresses": [p.address for p in pts]}
        if op == "allocate":
            var = session.edit.allocate_variable(
                req["name"], int(req.get("size", 8)))
            session.variables[req["name"]] = var
            return {"ok": True, "address": var.address}
        if op == "insert":
            pts = session.resolve_points(req)
            snip = snippet_from_spec(req["snippet"], session.variables)
            session.edit.insert(pts, snip)
            return {"ok": True, "points": len(pts)}
        if op == "commit":
            # chaos site: a handler exception mid-commit.  commit() is
            # pure w.r.t. any machine (mutation happens only in the
            # journaled apply), so the session survives and the retry
            # succeeds.
            faults.site("service.commit")
            session.edit.commit()
            return {"ok": True}
        if op == "run":
            return self._op_run(req, session)
        if op == "rewrite":
            blob = session.edit.rewrite()
            return {"ok": True, "elf": encode_bytes(blob)}
        # op == "close"
        session.edit.close()
        del sessions[req["session"]]
        self._session_closed()
        return {"ok": True}

    def _op_stats(self, sessions: dict[str, _Session],
                  worker_id: int) -> dict:
        """Per-accepting-worker statistics.  Deliberately *not* the
        fleet view — this reports only the worker this connection
        landed on (see the ``metrics`` op for cross-worker numbers) —
        but honest about it: it now says so and carries the worker's
        own live telemetry snapshot."""
        return {"ok": True, "pid": os.getpid(),
                "worker": worker_id,
                "scope": "worker",
                "sessions": len(sessions),
                "worker_sessions": self._live_sessions,
                "analyses": sorted(self._analyses),
                "store": (str(self.store.root)
                          if self.store else None),
                "telemetry": telemetry.current().snapshot()}

    def _op_metrics(self, worker_id: int) -> dict:
        """Fleet-wide aggregation: flush this worker's snapshot, read
        every live flush file, and merge (counters summed, histograms
        bucket-wise, gauges last-write)."""
        if self.metrics_dir:
            self._flush_snapshot()
            records = aggregate.read_worker_snapshots(self.metrics_dir)
        else:
            # no run directory: the accepting worker is the fleet
            records = [{
                "pid": os.getpid(), "worker": worker_id,
                "ts": time.time(), "sessions": self._live_sessions,
                "slow": list(self._slow),
                "snapshot": telemetry.current().snapshot(),
            }]
        merged = aggregate.merge_snapshots(
            [r["snapshot"] for r in records])
        slow = sorted(
            (entry for r in records for entry in r.get("slow", [])),
            key=lambda e: e.get("duration_us", 0), reverse=True,
        )[: self.SLOW_RING]
        return {"ok": True, "pid": os.getpid(), "worker": worker_id,
                "merged": merged,
                "workers": [
                    {"pid": r["pid"], "worker": r.get("worker"),
                     "ts": r.get("ts"),
                     "sessions": r.get("sessions", 0),
                     "snapshot": r["snapshot"]}
                    for r in records
                ],
                "slow": slow,
                "exposition": aggregate.to_prometheus(merged)}

    def _op_healthz(self, worker_id: int) -> dict:
        """Worker liveness: every flush file's age and whether its pid
        still exists, plus the supervisor's fleet view (generations,
        respawn counts, backoff state).  Without a metrics dir,
        reports just the accepting worker (trivially alive)."""
        now = time.time()
        workers = []
        if self.metrics_dir:
            for r in aggregate.read_worker_snapshots(self.metrics_dir):
                workers.append({
                    "pid": r["pid"], "worker": r.get("worker"),
                    "sessions": r.get("sessions", 0),
                    "age_s": round(max(0.0, now - r.get("ts", now)), 3),
                    "alive": _pid_alive(r["pid"]),
                })
        else:
            workers.append({"pid": os.getpid(), "worker": worker_id,
                            "sessions": self._live_sessions,
                            "age_s": 0.0, "alive": True})
        sup = self._read_sup_state()
        if sup is not None and sup.get("supervising"):
            # the supervisor's view is authoritative: flush files from
            # crashed-and-replaced generations linger (their counters
            # still count), but capacity health is the live fleet
            healthy = bool(sup["workers"]) and all(
                w["alive"] for w in sup["workers"])
        else:
            healthy = bool(workers) and all(
                w["alive"] for w in workers)
        resp = {"ok": True, "pid": os.getpid(), "worker": worker_id,
                "healthy": healthy,
                "uptime_s": round(now - self._started_at, 3),
                "workers": workers}
        if sup is not None:
            resp["supervisor"] = {
                "respawns_total": sup.get("respawns_total", 0),
                "supervising": sup.get("supervising", False),
                "ts": sup.get("ts"),
                "workers": sup.get("workers", []),
            }
        return resp

    def _op_open(self, req: dict,
                 sessions: dict[str, _Session]) -> dict:
        with self._cache_lock:
            live = self._live_sessions
        if live >= self.max_sessions:
            telemetry.current().count("service.shed.sessions")
            raise Overloaded(
                f"worker at its {self.max_sessions}-session cap "
                f"({live} live)", retry_after=self.RETRY_AFTER)
        if "elf" in req:
            data = decode_bytes(req["elf"])
            path = req.get("path")
        elif "path" in req:
            path = req["path"]
            with open(path, "rb") as fh:
                data = fh.read()
        else:
            raise ProtocolError("open needs 'elf' (base64) or 'path'")
        opts = options_from_wire(req.get("options"))
        key = artifact_key(content_digest(data), opts.analysis_fields())
        with self._cache_lock:
            analysis = self._analyses.get(key)
        if analysis is None:
            analysis = analyze(
                data, opts,
                store=self.store if self.store is not None else False)
            with self._cache_lock:
                analysis = self._analyses.setdefault(key, analysis)
            telemetry.current().count("service.analyses")
        source = path if path else "<bytes>"
        with self._cache_lock:
            self._session_seq += 1
            sid = f"s{self._session_seq}"
        sessions[sid] = _Session(BinaryEdit(analysis, opts))
        telemetry.current().count("service.sessions")
        self._session_opened()
        return {"ok": True, "session": sid, "key": analysis.key,
                "revived": analysis.revived, "source": source,
                "functions": sorted(
                    f.name for f in analysis.cfg.functions.values()
                    if f.name)}

    def _effective_deadline(self, req: dict) -> float | None:
        """Server default clamped by the request's own ``deadline_ms``
        (a client may only tighten, never extend past the server's)."""
        deadline = self.deadline_s
        asked = req.get("deadline_ms")
        if isinstance(asked, (int, float)) and asked > 0:
            asked_s = float(asked) / 1000.0
            deadline = (asked_s if deadline is None
                        else min(deadline, asked_s))
        return deadline

    def _op_run(self, req: dict, session: _Session) -> dict:
        deadline_s = self._effective_deadline(req)
        if deadline_s is None:
            machine, event = session.edit.run_instrumented(
                max_steps=req.get("max_steps"))
        else:
            machine, event = self._run_with_deadline(
                session.edit, req.get("max_steps"), deadline_s)
        values = {name: session.edit.read_variable(machine, var)
                  for name, var in session.variables.items()}
        reads = {}
        for name in req.get("read", []):
            var = session.variables.get(name)
            if var is None:
                raise ProtocolError(f"unknown variable {name!r}")
            reads[name] = session.edit.read_variable(machine, var)
        return {"ok": True, "reason": event.reason.name,
                "pc": event.pc, "x": list(machine.x),
                "variables": values, "read": reads}

    def _run_with_deadline(self, edit: BinaryEdit,
                           max_steps: int | None, deadline_s: float):
        """Commit, load, and run in bounded slices, checking the wall
        clock between them.  On expiry the applied instrumentation is
        removed through the write-ahead journal (verified bit-identical
        restore — never a half-applied patch), the slice machine is
        discarded, and a retryable :class:`DeadlineExceeded` goes back
        to the client; the session itself stays fully usable."""
        from ..sim.machine import Machine, StopReason
        from ..sim.timing import P550
        m = Machine(P550)
        edit.symtab.load_into(m)
        result = None
        if edit._patcher._requests or edit._result is not None:
            result = edit.commit()
            result.apply_to_machine(m)
        deadline = time.monotonic() + deadline_s
        remaining = max_steps
        while True:
            slice_n = (self.RUN_SLICE if remaining is None
                       else min(self.RUN_SLICE, remaining))
            event = m.run(slice_n)
            if event.reason is not StopReason.STEPS_EXHAUSTED:
                return m, event
            if remaining is not None:
                remaining -= slice_n
                if remaining <= 0:
                    return m, event  # the client's own step bound
            if time.monotonic() >= deadline:
                telemetry.current().count("service.deadline.exceeded")
                if result is not None:
                    # PR 4's transactional journal: verified rollback
                    result.remove_from_machine(m)
                raise DeadlineExceeded(
                    f"run exceeded its {deadline_s:.3f}s deadline at "
                    f"pc=0x{m.pc:x} after {m.instret} instructions; "
                    "instrumentation rolled back, session still "
                    "usable — retry, raise the deadline, or bound the "
                    "run with max_steps")


__all__ = ["SessionServer", "options_from_wire"]
