"""Client for the session service.

:class:`ServiceClient` owns one connection to a
:class:`~repro.service.server.SessionServer`; :class:`RemoteSession`
mirrors the :class:`~repro.api.BinaryEdit` vocabulary over the wire::

    with ServiceClient("/tmp/repro.sock") as client:
        with client.open(elf_bytes) as session:
            session.allocate("calls")
            session.insert("fib", "FUNC_ENTRY",
                           {"kind": "increment", "var": "calls"})
            result = session.run()
            print(result["variables"]["calls"])

Server-side failures re-raise as
:class:`~repro.service.protocol.ServiceError` carrying the original
exception class name in ``.kind`` — still a
:class:`~repro.errors.ReproError`, so one catch clause covers remote
and in-process use alike.

Resilience (docs/SERVICE.md, "Failure modes and recovery"): transport
failures — ``socket.timeout``, ``ConnectionResetError``, a server that
died mid-frame — never leak raw ``OSError``; they map onto typed
*retryable* :class:`ServiceError`\\ s (kinds ``ServiceTimeout``,
``ConnectionLost``, ``ConnectFailed``).  Connection-scoped idempotent
ops (``ping``/``stats``/``metrics``/``healthz``/``open``) additionally
retry automatically: the client reconnects and re-sends with capped
exponential backoff plus jitter, honouring the server's
``retry_after`` hint on load sheds.  Session-scoped ops are *not*
auto-retried — a session dies with its connection, so the retryable
error surfaces to the caller, who reopens and redoes the session
(``err.retryable`` tells it whether that is worth doing).
"""

from __future__ import annotations

import dataclasses
import os
import random
import socket
import threading
import time

from ..api.options import InstrumentOptions
from .protocol import (
    ProtocolError, ServiceError, decode_bytes, encode_bytes,
    recv_message, send_message,
)

#: ops that are safe to re-send after a reconnect: they either read
#: state or (``open``) leave nothing behind on the dead connection —
#: the server reaps a connection's sessions when it drops
IDEMPOTENT_OPS = frozenset({
    "ping", "stats", "metrics", "healthz", "open",
})


def options_to_wire(options: InstrumentOptions | None) -> dict | None:
    return dataclasses.asdict(options) if options is not None else None


class ServiceClient:
    """One connection to the session server (thread-safe: requests on
    a connection serialize through a lock).

    *trace* is an optional client-side trace context (any short
    string — a request id from an outer system, a tenant tag...).  It
    is attached to every request, echoed back by the server, and
    stamped onto the server's structured request log and slow-request
    ring, so an operator can grep one client's requests across the
    worker fleet.  The server's own per-request id arrives on every
    response and is kept in :attr:`last_rid`.
    """

    def __init__(self, socket_path: str | os.PathLike,
                 timeout: float | None = 30.0,
                 trace: str | None = None,
                 retries: int = 2,
                 retry_backoff: float = 0.05):
        self.socket_path = os.fspath(socket_path)
        self.trace = trace
        self.timeout = timeout
        #: automatic reconnect-and-retry attempts for idempotent ops
        #: (0 disables); session-scoped ops never auto-retry
        self.retries = retries
        #: base of the capped exponential retry backoff (seconds);
        #: each sleep adds uniform jitter of the same magnitude
        self.retry_backoff = retry_backoff
        #: request id of the most recent response (server-assigned)
        self.last_rid: str | None = None
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        #: bumped on every (re)connect; sessions record the generation
        #: they were opened on, so a close() after the connection died
        #: is skipped instead of confusing a fresh connection
        self._conn_gen = 0
        self._connect()

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> None:
        """(Re)connect, mapping transport failures to a typed
        retryable :class:`ServiceError` (kind ``ConnectFailed``)."""
        self._drop_socket()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise ServiceError(
                f"cannot connect to {self.socket_path}: {exc}",
                kind="ConnectFailed") from exc
        self._sock = sock
        self._conn_gen += 1

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _call(self, op: str, fields: dict) -> dict:
        """One request/response exchange on the live connection.

        Raw transport failures never escape: ``socket.timeout``
        becomes a retryable ``ServiceTimeout``, and a reset / closed /
        mid-frame-dead peer becomes a retryable ``ConnectionLost``.
        After either, the connection state is ambiguous (a response
        may still be in flight), so the socket is dropped and the next
        request reconnects.
        """
        if self._sock is None:
            self._connect()
        try:
            send_message(self._sock, {"op": op, **fields})
            resp = recv_message(self._sock)
        except TimeoutError as exc:
            self._drop_socket()
            raise ServiceError(
                f"no response to {op!r} within {self.timeout}s",
                kind="ServiceTimeout") from exc
        except OSError as exc:
            self._drop_socket()
            raise ServiceError(
                f"connection lost during {op!r}: {exc}",
                kind="ConnectionLost") from exc
        except ProtocolError as exc:
            # the server died mid-frame: a torn response, then EOF
            self._drop_socket()
            raise ServiceError(
                f"connection lost during {op!r}: {exc}",
                kind="ConnectionLost") from exc
        if resp is None:
            self._drop_socket()
            raise ServiceError(
                f"server closed the connection before answering "
                f"{op!r}", kind="ConnectionLost")
        self.last_rid = resp.get("rid")
        if not resp.get("ok"):
            raise ServiceError(
                resp.get("error", "unknown failure"),
                kind=resp.get("kind", "ServiceError"),
                retryable=resp.get("retryable"),
                retry_after=resp.get("retry_after"))
        return resp

    def request(self, op: str, **fields) -> dict:
        """Send one request, wait for its response, unwrap errors.

        Idempotent ops (:data:`IDEMPOTENT_OPS`) are retried up to
        ``retries`` times across reconnects when the failure is
        retryable — exponential backoff plus jitter, honouring the
        server's ``retry_after`` hint on load sheds.  Session-scoped
        ops surface their (typed) error immediately: their session
        died with the connection, so the caller must reopen anyway.
        """
        if self.trace is not None and "trace" not in fields:
            fields["trace"] = self.trace
        attempts = 1 + (self.retries if op in IDEMPOTENT_OPS else 0)
        with self._lock:
            for attempt in range(attempts):
                try:
                    return self._call(op, fields)
                except ServiceError as exc:
                    last = attempt == attempts - 1
                    if last or not exc.retryable or \
                            exc.kind == "DeadlineExceeded":
                        raise
                    delay = exc.retry_after
                    if delay is None:
                        delay = self.retry_backoff * (2 ** attempt)
                    time.sleep(delay +
                               random.uniform(0, self.retry_backoff))
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- service ops -------------------------------------------------------

    def ping(self) -> dict:
        """Probe the worker this connection landed on."""
        return self.request("ping")

    def stats(self) -> dict:
        """Statistics for the worker this connection landed on —
        per-accepting-worker only; use :meth:`metrics` for the fleet
        view."""
        return self.request("stats")

    def metrics(self) -> dict:
        """Fleet-wide metrics: the merged snapshot (counters summed,
        histograms bucket-wise merged, gauges last-write), per-worker
        snapshots, the slow-request ring, and Prometheus exposition
        text.  ``tools/repro_top.py`` renders this live."""
        return self.request("metrics")

    def healthz(self) -> dict:
        """Worker liveness / session-count report."""
        return self.request("healthz")

    def open(self, source: bytes | str | os.PathLike,
             options: InstrumentOptions | None = None) -> "RemoteSession":
        """Open a session for an ELF image (bytes) or path."""
        if isinstance(source, bytes):
            resp = self.request("open", elf=encode_bytes(source),
                                options=options_to_wire(options))
        else:
            resp = self.request("open", path=os.fspath(source),
                                options=options_to_wire(options))
        return RemoteSession(self, resp)


class RemoteSession:
    """A server-side BinaryEdit, driven over the wire."""

    def __init__(self, client: ServiceClient, opened: dict):
        self._client = client
        self.id = opened["session"]
        #: artifact-store key of the borrowed analysis
        self.key = opened["key"]
        #: True when the server revived the analysis from the store
        self.revived = opened["revived"]
        self.functions = opened["functions"]
        self._conn_gen = client._conn_gen
        self._closed = False

    def _request(self, op: str, **fields) -> dict:
        return self._client.request(op, session=self.id, **fields)

    def points(self, function: str,
               point: str = "FUNC_ENTRY") -> list[int]:
        resp = self._request("points", function=function, point=point)
        return resp["addresses"]

    def allocate(self, name: str, size: int = 8) -> int:
        return self._request("allocate", name=name, size=size)["address"]

    def insert(self, function: str, point: str, snippet: dict) -> int:
        """Queue *snippet* (a wire spec) at every *point* of
        *function*; returns the number of points instrumented."""
        resp = self._request("insert", function=function, point=point,
                             snippet=snippet)
        return resp["points"]

    def commit(self) -> None:
        self._request("commit")

    def run(self, max_steps: int | None = None,
            read: list[str] | None = None,
            deadline_ms: float | None = None) -> dict:
        """Commit (if needed), load, run; returns the stop event,
        registers, and all variable values.

        *deadline_ms* asks the server to bound this run's wall-clock
        time (it can only tighten a server-configured deadline, never
        extend it).  On expiry the server rolls the machine back
        through its transactional journal and raises a retryable
        ``DeadlineExceeded`` — the session stays usable.
        """
        fields = {"max_steps": max_steps, "read": read or []}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self._request("run", **fields)

    def rewrite(self) -> bytes:
        """Static rewriting: the instrumented ELF image."""
        return decode_bytes(self._request("rewrite")["elf"])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if (self._client._conn_gen != self._conn_gen
                or self._client._sock is None):
            # the connection this session lived on is gone (replaced,
            # or dropped after a transport error), and its sessions
            # died with it; a close would lazily reconnect and only
            # earn an unknown-session error from the new worker —
            # masking whatever retryable error the caller is handling
            return
        try:
            self._request("close")
        except ServiceError as exc:
            # a session dies with its connection anyway: closing
            # one whose worker/connection is already gone is not
            # an error worth masking the caller's exception for
            if exc.kind not in ("ConnectionLost", "ConnectFailed",
                                "ServiceTimeout", "ShuttingDown"):
                raise

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


__all__ = ["IDEMPOTENT_OPS", "RemoteSession", "ServiceClient",
           "options_to_wire"]
