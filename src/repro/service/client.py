"""Client for the session service.

:class:`ServiceClient` owns one connection to a
:class:`~repro.service.server.SessionServer`; :class:`RemoteSession`
mirrors the :class:`~repro.api.BinaryEdit` vocabulary over the wire::

    with ServiceClient("/tmp/repro.sock") as client:
        with client.open(elf_bytes) as session:
            session.allocate("calls")
            session.insert("fib", "FUNC_ENTRY",
                           {"kind": "increment", "var": "calls"})
            result = session.run()
            print(result["variables"]["calls"])

Server-side failures re-raise as
:class:`~repro.service.protocol.ServiceError` carrying the original
exception class name in ``.kind`` — still a
:class:`~repro.errors.ReproError`, so one catch clause covers remote
and in-process use alike.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import threading

from ..api.options import InstrumentOptions
from .protocol import (
    ProtocolError, ServiceError, decode_bytes, encode_bytes,
    recv_message, send_message,
)


def options_to_wire(options: InstrumentOptions | None) -> dict | None:
    return dataclasses.asdict(options) if options is not None else None


class ServiceClient:
    """One connection to the session server (thread-safe: requests on
    a connection serialize through a lock).

    *trace* is an optional client-side trace context (any short
    string — a request id from an outer system, a tenant tag...).  It
    is attached to every request, echoed back by the server, and
    stamped onto the server's structured request log and slow-request
    ring, so an operator can grep one client's requests across the
    worker fleet.  The server's own per-request id arrives on every
    response and is kept in :attr:`last_rid`.
    """

    def __init__(self, socket_path: str | os.PathLike,
                 timeout: float | None = 30.0,
                 trace: str | None = None):
        self.socket_path = os.fspath(socket_path)
        self.trace = trace
        #: request id of the most recent response (server-assigned)
        self.last_rid: str | None = None
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)
        self._lock = threading.Lock()

    # -- plumbing ----------------------------------------------------------

    def request(self, op: str, **fields) -> dict:
        """Send one request, wait for its response, unwrap errors."""
        if self.trace is not None and "trace" not in fields:
            fields["trace"] = self.trace
        with self._lock:
            send_message(self._sock, {"op": op, **fields})
            resp = recv_message(self._sock)
        if resp is None:
            raise ProtocolError("server closed the connection")
        self.last_rid = resp.get("rid")
        if not resp.get("ok"):
            raise ServiceError(resp.get("error", "unknown failure"),
                               kind=resp.get("kind", "ServiceError"))
        return resp

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- service ops -------------------------------------------------------

    def ping(self) -> dict:
        """Probe the worker this connection landed on."""
        return self.request("ping")

    def stats(self) -> dict:
        """Statistics for the worker this connection landed on —
        per-accepting-worker only; use :meth:`metrics` for the fleet
        view."""
        return self.request("stats")

    def metrics(self) -> dict:
        """Fleet-wide metrics: the merged snapshot (counters summed,
        histograms bucket-wise merged, gauges last-write), per-worker
        snapshots, the slow-request ring, and Prometheus exposition
        text.  ``tools/repro_top.py`` renders this live."""
        return self.request("metrics")

    def healthz(self) -> dict:
        """Worker liveness / session-count report."""
        return self.request("healthz")

    def open(self, source: bytes | str | os.PathLike,
             options: InstrumentOptions | None = None) -> "RemoteSession":
        """Open a session for an ELF image (bytes) or path."""
        if isinstance(source, bytes):
            resp = self.request("open", elf=encode_bytes(source),
                                options=options_to_wire(options))
        else:
            resp = self.request("open", path=os.fspath(source),
                                options=options_to_wire(options))
        return RemoteSession(self, resp)


class RemoteSession:
    """A server-side BinaryEdit, driven over the wire."""

    def __init__(self, client: ServiceClient, opened: dict):
        self._client = client
        self.id = opened["session"]
        #: artifact-store key of the borrowed analysis
        self.key = opened["key"]
        #: True when the server revived the analysis from the store
        self.revived = opened["revived"]
        self.functions = opened["functions"]
        self._closed = False

    def _request(self, op: str, **fields) -> dict:
        return self._client.request(op, session=self.id, **fields)

    def points(self, function: str,
               point: str = "FUNC_ENTRY") -> list[int]:
        resp = self._request("points", function=function, point=point)
        return resp["addresses"]

    def allocate(self, name: str, size: int = 8) -> int:
        return self._request("allocate", name=name, size=size)["address"]

    def insert(self, function: str, point: str, snippet: dict) -> int:
        """Queue *snippet* (a wire spec) at every *point* of
        *function*; returns the number of points instrumented."""
        resp = self._request("insert", function=function, point=point,
                             snippet=snippet)
        return resp["points"]

    def commit(self) -> None:
        self._request("commit")

    def run(self, max_steps: int | None = None,
            read: list[str] | None = None) -> dict:
        """Commit (if needed), load, run; returns the stop event,
        registers, and all variable values."""
        return self._request("run", max_steps=max_steps,
                             read=read or [])

    def rewrite(self) -> bytes:
        """Static rewriting: the instrumented ELF image."""
        return decode_bytes(self._request("rewrite")["elf"])

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._request("close")

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


__all__ = ["RemoteSession", "ServiceClient", "options_to_wire"]
