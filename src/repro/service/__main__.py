"""Run a session server from the command line::

    python -m repro.service --socket /tmp/repro.sock \
        --store /tmp/repro-artifacts --workers 4 \
        --metrics-dir /tmp/repro-metrics --log /tmp/repro-svc.log

``--metrics-dir`` (or ``REPRO_SERVICE_METRICS``) arms the
observability plane: per-worker snapshot flushes, the ``metrics`` /
``healthz`` protocol ops, and ``tools/repro_top.py`` as the live
console.  ``--log`` (or ``REPRO_SERVICE_LOG``) emits one structured
JSON line per request.
"""

from __future__ import annotations

import argparse
import signal
import sys

from .server import SessionServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve concurrent instrumentation sessions over "
                    "an AF_UNIX socket (see docs/SERVICE.md).")
    parser.add_argument("--socket", required=True,
                        help="path for the AF_UNIX listening socket")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: "
                             "$REPRO_ARTIFACTS or ~/.cache/repro)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (0 = serve in-process)")
    parser.add_argument("--metrics-dir", default=None,
                        help="run directory for per-worker metric "
                             "snapshot flushes; arms the metrics/"
                             "healthz ops (default: "
                             "$REPRO_SERVICE_METRICS, unset = off)")
    parser.add_argument("--flush-interval", type=float, default=2.0,
                        help="seconds between worker snapshot flushes")
    parser.add_argument("--slow-us", type=float, default=None,
                        help="slow-request ring threshold in "
                             "microseconds (default: "
                             "$REPRO_SERVICE_SLOW_US or 10000)")
    parser.add_argument("--log", default=None,
                        help="structured JSON request log: a file "
                             "path, or 'stderr' (default: "
                             "$REPRO_SERVICE_LOG, unset = off)")
    parser.add_argument("--no-supervise", action="store_true",
                        help="disable the parent supervisor loop "
                             "(crashed workers are then not respawned)")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="per-worker concurrent-connection cap; "
                             "excess connections are shed with a "
                             "retryable 'Overloaded' error")
    parser.add_argument("--max-sessions", type=int, default=128,
                        help="per-worker live-session cap; excess "
                             "opens are shed")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="seconds before an idle (or slowloris) "
                             "connection is dropped (default: "
                             "$REPRO_SERVICE_IDLE_S, unset = off)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="server-side wall-clock deadline for "
                             "'run' requests in seconds (default: "
                             "$REPRO_SERVICE_DEADLINE_S, unset = off)")
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        help="seconds a SIGTERM'd worker drains "
                             "in-flight requests before a hard exit")
    args = parser.parse_args(argv)

    server = SessionServer(args.socket, store=args.store,
                           workers=args.workers,
                           metrics_dir=args.metrics_dir,
                           flush_interval=args.flush_interval,
                           slow_threshold_us=args.slow_us,
                           log=args.log,
                           supervise=not args.no_supervise,
                           max_connections=args.max_connections,
                           max_sessions=args.max_sessions,
                           idle_timeout=args.idle_timeout,
                           deadline_s=args.deadline,
                           drain_timeout=args.drain_timeout)
    stop = {"flag": False}

    def _shutdown(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    with server:
        root = server.store.root if server.store else "disabled"
        metrics = server.metrics_dir or "off"
        sup = ("supervised" if server.supervise and args.workers
               else "unsupervised")
        print(f"repro.service listening on {args.socket} "
              f"({args.workers} workers, {sup}, store={root}, "
              f"metrics={metrics})", flush=True)
        while not stop["flag"]:
            signal.pause()
        # context exit runs the graceful, escalating close(): workers
        # drain in-flight requests, then SIGTERM/SIGKILL escalation
        # reaps anything stuck — no zombie children survive
    return 0


if __name__ == "__main__":
    sys.exit(main())
