"""Run a session server from the command line::

    python -m repro.service --socket /tmp/repro.sock \
        --store /tmp/repro-artifacts --workers 4
"""

from __future__ import annotations

import argparse
import signal
import sys

from .server import SessionServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve concurrent instrumentation sessions over "
                    "an AF_UNIX socket (see docs/SERVICE.md).")
    parser.add_argument("--socket", required=True,
                        help="path for the AF_UNIX listening socket")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: "
                             "$REPRO_ARTIFACTS or ~/.cache/repro)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (0 = serve in-process)")
    args = parser.parse_args(argv)

    server = SessionServer(args.socket, store=args.store,
                           workers=args.workers)
    stop = {"flag": False}

    def _shutdown(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    with server:
        root = server.store.root if server.store else "disabled"
        print(f"repro.service listening on {args.socket} "
              f"({args.workers} workers, store={root})", flush=True)
        while not stop["flag"]:
            signal.pause()
    return 0


if __name__ == "__main__":
    sys.exit(main())
