"""Run a session server from the command line::

    python -m repro.service --socket /tmp/repro.sock \
        --store /tmp/repro-artifacts --workers 4 \
        --metrics-dir /tmp/repro-metrics --log /tmp/repro-svc.log

``--metrics-dir`` (or ``REPRO_SERVICE_METRICS``) arms the
observability plane: per-worker snapshot flushes, the ``metrics`` /
``healthz`` protocol ops, and ``tools/repro_top.py`` as the live
console.  ``--log`` (or ``REPRO_SERVICE_LOG``) emits one structured
JSON line per request.
"""

from __future__ import annotations

import argparse
import signal
import sys

from .server import SessionServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve concurrent instrumentation sessions over "
                    "an AF_UNIX socket (see docs/SERVICE.md).")
    parser.add_argument("--socket", required=True,
                        help="path for the AF_UNIX listening socket")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: "
                             "$REPRO_ARTIFACTS or ~/.cache/repro)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (0 = serve in-process)")
    parser.add_argument("--metrics-dir", default=None,
                        help="run directory for per-worker metric "
                             "snapshot flushes; arms the metrics/"
                             "healthz ops (default: "
                             "$REPRO_SERVICE_METRICS, unset = off)")
    parser.add_argument("--flush-interval", type=float, default=2.0,
                        help="seconds between worker snapshot flushes")
    parser.add_argument("--slow-us", type=float, default=None,
                        help="slow-request ring threshold in "
                             "microseconds (default: "
                             "$REPRO_SERVICE_SLOW_US or 10000)")
    parser.add_argument("--log", default=None,
                        help="structured JSON request log: a file "
                             "path, or 'stderr' (default: "
                             "$REPRO_SERVICE_LOG, unset = off)")
    args = parser.parse_args(argv)

    server = SessionServer(args.socket, store=args.store,
                           workers=args.workers,
                           metrics_dir=args.metrics_dir,
                           flush_interval=args.flush_interval,
                           slow_threshold_us=args.slow_us,
                           log=args.log)
    stop = {"flag": False}

    def _shutdown(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    with server:
        root = server.store.root if server.store else "disabled"
        metrics = server.metrics_dir or "off"
        print(f"repro.service listening on {args.socket} "
              f"({args.workers} workers, store={root}, "
              f"metrics={metrics})", flush=True)
        while not stop["flag"]:
            signal.pause()
    return 0


if __name__ == "__main__":
    sys.exit(main())
