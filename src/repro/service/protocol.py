"""The session-service wire protocol.

One connection carries a sequence of request/response pairs.  Every
message is a JSON object preceded by a 4-byte big-endian length; binary
payloads (ELF images) travel base64-encoded.  Requests name an ``op``
and its arguments; responses always carry ``ok`` and either the
op-specific fields or ``error``/``kind`` describing the failure (the
server maps :class:`repro.errors.ReproError` subclasses onto ``kind``
so clients can re-raise meaningfully).

The op vocabulary mirrors the in-process v2 API (see docs/SERVICE.md
for the full reference):

====================  ====================================================
``ping``              liveness probe; returns the worker id/pid
``open``              ELF bytes or path + options -> a session id
``points``            (function, point type) -> point addresses
``allocate``          allocate an instrumentation variable
``insert``            queue a snippet at points (spec format below)
``commit``            build trampolines/springboards once
``run``               run instrumented under the simulator; returns the
                      stop event, registers, and variable values
``rewrite``           static rewriting; returns the instrumented ELF
``trace``             run under the event observer; returns a summary
``close``             end a session
``stats``             per-accepting-worker statistics + live telemetry
``metrics``           fleet-wide merged snapshot, per-worker snapshots,
                      slow-request ring, Prometheus exposition text
``healthz``           worker liveness / session-count report
====================  ====================================================

Every request may carry an optional ``trace`` field (a client-side
trace context string); the server echoes it on the response and stamps
it onto its structured request log.  Every response carries ``rid``,
the server-assigned request id (``w<worker>-<seq>``).

Snippet specs are small JSON trees (the machine-independent subset a
remote tool needs)::

    {"kind": "increment", "var": "calls", "step": 1}
    {"kind": "set",       "var": "flag",  "value": 7}
    {"kind": "sequence",  "items": [ ... ]}

Variables are named; the session allocates them (``allocate``) before
snippets reference them.
"""

from __future__ import annotations

import base64
import json
import socket
import struct

from ..codegen.snippets import (
    IncrementVar, Sequence, SetVar, Snippet, Variable,
)
from ..errors import ReproError

#: protocol identifier, exchanged in `ping` and checked by clients
PROTOCOL = "repro.service/1"

#: hard cap on one message (a rewritten ELF fits comfortably)
MAX_MESSAGE = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ReproError, RuntimeError):
    """Malformed framing or message content on the service socket."""


#: error kinds a client may safely retry (possibly after reconnecting
#: and reopening its session) — the transient half of the taxonomy.
#: Anything else is permanent: retrying the same request will fail the
#: same way.
RETRYABLE_KINDS = frozenset({
    "Overloaded",        # load shed: caps hit, retry after a backoff
    "DeadlineExceeded",  # server-side request deadline fired
    "ShuttingDown",      # worker draining: reconnect elsewhere
    "ConnectionLost",    # peer/socket died mid-exchange (client-side)
    "ConnectFailed",     # could not reach the server (client-side)
    "ServiceTimeout",    # client-side response deadline fired
    "InjectedFault",     # chaos testing: simulated transient failure
})


class ServiceError(ReproError, RuntimeError):
    """The server reported a failure for a request.

    ``kind`` carries the server-side exception class name (e.g.
    ``ApiError``), so clients can dispatch without parsing messages.
    ``retryable`` splits the taxonomy: ``True`` means the failure is
    transient (overload, deadline, lost worker) and the *same* request
    may succeed on retry — after reconnecting and reopening the
    session if the connection itself died.  ``retry_after`` optionally
    carries the server's backoff hint in seconds (load shedding).
    """

    def __init__(self, message: str, kind: str = "ServiceError",
                 retryable: bool | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.kind = kind
        self.retryable = (kind in RETRYABLE_KINDS
                          if retryable is None else bool(retryable))
        self.retry_after = retry_after


class Overloaded(ReproError, RuntimeError):
    """The server shed this request: a worker's connection or session
    cap is full.  Retry after :attr:`retry_after` seconds (plus
    jitter) — the typed, bounded alternative to queueing unbounded
    work."""

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ReproError, RuntimeError):
    """A server-side request deadline fired.  The session was rolled
    back through the transactional journal (never a half-applied
    patch) and remains usable — retry, raise the deadline, or bound
    the work with ``max_steps``."""


class ShuttingDown(ReproError, RuntimeError):
    """The worker is draining for shutdown and no longer accepts new
    work.  Reconnect: a surviving worker (or the respawned fleet) will
    take the session."""


# -- framing ---------------------------------------------------------------

def send_message(sock: socket.socket, obj: dict) -> None:
    """Serialize and send one length-prefixed JSON message."""
    blob = json.dumps(obj, separators=(",", ":")).encode()
    if len(blob) > MAX_MESSAGE:
        raise ProtocolError(f"message too large: {len(blob)} bytes")
    sock.sendall(_LEN.pack(len(blob)) + blob)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one message; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_MESSAGE:
        raise ProtocolError(f"frame length {length} exceeds cap")
    blob = _recv_exact(sock, length, eof_ok=False)
    try:
        obj = json.loads(blob)
    except ValueError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


def _recv_exact(sock: socket.socket, n: int,
                *, eof_ok: bool) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if eof_ok and not buf:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf += chunk
    return bytes(buf)


# -- binary payloads -------------------------------------------------------

def encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"bad base64 payload: {exc}") from exc


# -- snippet specs ---------------------------------------------------------

def snippet_from_spec(spec: dict,
                      variables: dict[str, Variable]) -> Snippet:
    """Build a snippet AST from its wire spec.  *variables* maps the
    session's allocated names to their :class:`Variable` slots."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ProtocolError(f"malformed snippet spec: {spec!r}")
    kind = spec["kind"]
    try:
        if kind == "increment":
            return IncrementVar(variables[spec["var"]],
                                int(spec.get("step", 1)))
        if kind == "set":
            from ..codegen.snippets import Const

            return SetVar(variables[spec["var"]],
                          Const(int(spec["value"])))
        if kind == "sequence":
            return Sequence([snippet_from_spec(s, variables)
                             for s in spec["items"]])
    except KeyError as exc:
        raise ProtocolError(
            f"snippet spec references unknown variable or field: "
            f"{exc}") from exc
    raise ProtocolError(f"unknown snippet kind {kind!r}")


def error_response(exc: BaseException) -> dict:
    """Map a server-side exception onto the wire error shape.

    ``kind`` is the exception class name; ``retryable`` marks the
    transient half of the taxonomy so clients need no kind table; load
    sheds additionally carry the ``retry_after`` backoff hint.
    """
    kind = type(exc).__name__
    resp = {"ok": False, "error": str(exc), "kind": kind,
            "retryable": kind in RETRYABLE_KINDS}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        resp["retry_after"] = retry_after
    return resp
