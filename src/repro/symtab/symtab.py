"""SymtabAPI: platform-independent view of a binary's structure
(paper §2.1, §3.2.1).

Wraps the ELF substrate and answers the questions the rest of Dyninst
asks: where is the code, what symbols exist, what ISA extensions was the
binary compiled for.  Extension discovery follows the paper exactly:

1. parse ``.riscv.attributes`` and use its arch string when present;
2. otherwise fall back to ``e_flags`` (always present), which reveals
   the C extension and the float ABI.

Works on *stripped* binaries: symbols are optional, code regions come
from program/section headers (Dyninst's opportunistic analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..elf.reader import ElfFile, read_elf
from ..elf.riscv_attrs import AttributesError, parse_attributes_section
from ..elf import structs as es
from ..riscv.assembler import Program, Symbol
from ..riscv.extensions import (
    ArchStringError, ISASubset, parse_arch_string,
)


@dataclass(frozen=True)
class Region:
    """A contiguous mapped region of the binary."""

    name: str
    addr: int
    data: bytes
    executable: bool
    mem_size: int | None = None  # for .bss-style regions

    @property
    def end(self) -> int:
        return self.addr + (self.mem_size if self.mem_size is not None
                            else len(self.data))

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


class Symtab:
    """Structured view of one binary."""

    def __init__(self, entry: int, regions: list[Region],
                 symbols: list[Symbol], isa: ISASubset,
                 isa_source: str,
                 line_map: dict[int, int] | None = None):
        from ..elf.lines import LineTable

        self.entry = entry
        self.regions = regions
        self._symbols = {sym.name: sym for sym in symbols}
        self.isa = isa
        #: where the extension info came from: 'attributes' | 'e_flags'
        #: | 'program'
        self.isa_source = isa_source
        #: optional debug line info (empty table when absent)
        self.lines = LineTable(line_map or {})

    def line_for(self, addr: int) -> int | None:
        """Source line for a text address, when debug info is present
        (Dyninst's opportunistic use of debugging data)."""
        return self.lines.line_for(addr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "Symtab":
        return cls.from_elf(read_elf(data))

    @classmethod
    def from_elf(cls, elf: ElfFile) -> "Symtab":
        from ..elf.lines import LINES_SECTION, parse_lines_section

        if not elf.is_riscv:
            raise ValueError(
                f"not a RISC-V binary (e_machine={elf.header.e_machine})")
        regions = _regions_from_elf(elf)
        symbols = _symbols_from_elf(elf)
        isa, source = _discover_isa(elf)
        line_map = None
        lines_sec = elf.section(LINES_SECTION)
        if lines_sec is not None:
            line_map = parse_lines_section(lines_sec.data)
        return cls(elf.entry, regions, symbols, isa, source, line_map)

    @classmethod
    def from_program(cls, program: Program) -> "Symtab":
        """Directly from an assembled program (shortcut for tests and
        in-memory pipelines; equivalent to writing + reading the ELF)."""
        regions = [
            Region(".text", program.text_base, program.text, True),
            Region(".data", program.data_base, program.data, False),
        ]
        if program.bss_size:
            regions.append(Region(".bss", program.bss_base, b"", False,
                                  mem_size=program.bss_size))
        return cls(program.entry, regions,
                   list(program.symbols.values()), program.arch,
                   "program", program.line_map or None)

    # -- queries -------------------------------------------------------------

    @property
    def symbols(self) -> dict[str, Symbol]:
        return dict(self._symbols)

    def symbol(self, name: str) -> Symbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise KeyError(f"no such symbol: {name!r}") from None

    def function_symbols(self) -> list[Symbol]:
        return sorted((sym for sym in self._symbols.values()
                       if sym.kind == "func"),
                      key=lambda y: y.address)

    def code_regions(self) -> list[Region]:
        return [r for r in self.regions if r.executable]

    def data_regions(self) -> list[Region]:
        return [r for r in self.regions if not r.executable]

    def region_at(self, addr: int) -> Region | None:
        for r in self.regions:
            if r.contains(addr):
                return r
        return None

    def is_code(self, addr: int) -> bool:
        r = self.region_at(addr)
        return r is not None and r.executable

    def read(self, addr: int, n: int) -> bytes:
        """Read bytes at a virtual address from the file image."""
        r = self.region_at(addr)
        if r is None:
            raise KeyError(f"address {addr:#x} not in any region")
        off = addr - r.addr
        return r.data[off:off + n]

    def symbol_at(self, addr: int) -> Symbol | None:
        for sym in self._symbols.values():
            if sym.address == addr:
                return sym
        return None

    # -- simulator interface ---------------------------------------------------

    def to_image(self):
        """(segments, bss, entry, exec_ranges) for Machine.load_image."""
        segments = [(r.addr, r.data) for r in self.regions if r.data]
        bss = None
        for r in self.regions:
            if r.mem_size is not None and r.mem_size > len(r.data):
                bss = (r.addr + len(r.data), r.mem_size - len(r.data))
        exec_ranges = [(r.addr, r.end) for r in self.regions if r.executable]
        return segments, bss, self.entry, exec_ranges

    def load_into(self, machine) -> None:
        """Map this binary into a simulator Machine and reset to entry."""
        segments, bss, entry, exec_ranges = self.to_image()
        machine.load_image(segments, entry, bss=bss,
                           exec_range=exec_ranges[0] if exec_ranges else None)
        for lo, hi in exec_ranges[1:]:
            machine.add_exec_range(lo, hi)


def _regions_from_elf(elf: ElfFile) -> list[Region]:
    regions: list[Region] = []
    named = False
    for sec in elf.sections:
        if not sec.is_alloc:
            continue
        named = True
        mem = sec.header.sh_size if sec.header.sh_type == es.SHT_NOBITS else None
        regions.append(Region(sec.name or f"sec@{sec.addr:#x}", sec.addr,
                              sec.data, sec.is_code, mem_size=mem))
    if not named:
        # Section-stripped binary: fall back to program headers.
        for i, (vaddr, data, memsz, execbit) in enumerate(elf.load_segments()):
            regions.append(Region(f"load{i}", vaddr, data, execbit,
                                  mem_size=memsz if memsz > len(data) else None))
    return regions


def _symbols_from_elf(elf: ElfFile) -> list[Symbol]:
    out: list[Symbol] = []
    for sym in elf.symbols:
        if not sym.name or sym.st_shndx == es.SHN_UNDEF:
            continue
        kind = {es.STT_FUNC: "func", es.STT_OBJECT: "object"}.get(
            sym.type, "notype")
        out.append(Symbol(
            name=sym.name, address=sym.st_value, size=sym.st_size,
            kind=kind, section="", is_global=sym.bind == es.STB_GLOBAL))
    return out


def _discover_isa(elf: ElfFile) -> tuple[ISASubset, str]:
    """Extension discovery per paper §3.2.1: .riscv.attributes first,
    e_flags as the universal fallback."""
    attrs_sec = elf.section(".riscv.attributes")
    if attrs_sec is not None:
        try:
            attrs = parse_attributes_section(attrs_sec.data)
            if attrs.arch:
                return parse_arch_string(attrs.arch), "attributes"
        except (AttributesError, ArchStringError):
            pass  # fall through to e_flags, like Dyninst does
    exts = {"i", "m", "a", "zicsr", "zifencei"}  # conservative G-ish base
    if elf.e_flags & es.EF_RISCV_RVC:
        exts.add("c")
    fabi = elf.e_flags & es.EF_RISCV_FLOAT_ABI_MASK
    if fabi & es.EF_RISCV_FLOAT_ABI_DOUBLE:
        exts.update({"f", "d"})
    elif fabi & es.EF_RISCV_FLOAT_ABI_SINGLE:
        exts.add("f")
    return ISASubset(64, frozenset(exts)), "e_flags"
