"""SymtabAPI: binary structure, symbols, and ISA-extension discovery."""

from .symtab import Region, Symtab

__all__ = ["Region", "Symtab"]
