"""InstructionAPI: ISA-independent instruction abstraction (paper §3.2.2).

Wraps the low-level decode result with what tools consume: typed
operands with read/write attribution, abstract categories, register
read/write sets (sourced from the semantics registry, i.e. the
SAIL-pipeline output where available — the operand-access information the
authors upstreamed to Capstone v6), and memory-access descriptions.

Note what this layer deliberately does *not* decide: whether a
``jal``/``jalr`` is a call, return, jump or tail call.  On RISC-V that is
context-dependent (§3.1.3) and belongs to ParseAPI's classifier.
InstructionAPI only reports the raw control-flow facts (writes pc, link
register, target expression).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..riscv.decoder import decode
from ..riscv.instr import Instruction
from ..riscv.opcodes import (
    OP_AMO, OP_BRANCH, OP_JAL, OP_JALR, OP_LOAD, OP_LOAD_FP, OP_MISC_MEM,
    OP_STORE, OP_STORE_FP, OP_SYSTEM,
)
from ..riscv.registers import RA, Register, T0, freg, xreg
from ..semantics import register_defs, register_uses


class InsnCategory(enum.Enum):
    """Abstract instruction categories (InstructionAPI's c_* categories)."""

    ARITHMETIC = "arithmetic"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"            # conditional control transfer
    JUMP = "jump"                # jal/jalr: resolved further by ParseAPI
    ATOMIC = "atomic"
    FLOAT = "float"
    CSR = "csr"
    FENCE = "fence"
    SYSCALL = "syscall"
    TRAP = "trap"
    NOP = "nop"


#: Link registers per the RISC-V calling convention: x1 (ra) and the
#: alternate link register x5 (t0).
LINK_REGISTERS: frozenset[Register] = frozenset({RA, T0})


@dataclass(frozen=True)
class MemAccess:
    """A memory operand: base register + displacement, *size* bytes."""

    base: Register
    displacement: int
    size: int
    is_read: bool
    is_write: bool


@dataclass(frozen=True)
class Operand:
    """One typed operand with access attribution."""

    value: Register | int
    is_read: bool
    is_written: bool

    @property
    def is_register(self) -> bool:
        return isinstance(self.value, Register)


_LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4,
               "ld": 8, "flw": 4, "fld": 8}
_STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8, "fsw": 4, "fsd": 8}


class Insn:
    """One instruction at a concrete address."""

    __slots__ = ("raw", "address")

    def __init__(self, raw: Instruction, address: int):
        self.raw = raw
        self.address = address

    # -- identity ---------------------------------------------------------

    @property
    def mnemonic(self) -> str:
        return self.raw.mnemonic

    @property
    def length(self) -> int:
        return self.raw.length

    @property
    def extension(self) -> str:
        return self.raw.extension

    @property
    def is_compressed(self) -> bool:
        return self.raw.length == 2

    @property
    def next_address(self) -> int:
        return self.address + self.raw.length

    def disasm(self) -> str:
        return self.raw.disasm()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Insn {self.address:#x}: {self.disasm()}>"

    # -- categories ----------------------------------------------------------

    @property
    def category(self) -> InsnCategory:
        mn = self.mnemonic
        opc = self.raw.spec.match & 0x7F
        if mn == "ebreak":
            return InsnCategory.TRAP
        if mn == "ecall":
            return InsnCategory.SYSCALL
        if opc == OP_BRANCH:
            return InsnCategory.BRANCH
        if opc in (OP_JAL, OP_JALR):
            return InsnCategory.JUMP
        if opc in (OP_LOAD, OP_LOAD_FP):
            return InsnCategory.LOAD
        if opc in (OP_STORE, OP_STORE_FP):
            return InsnCategory.STORE
        if opc == OP_AMO:
            return InsnCategory.ATOMIC
        if opc == OP_MISC_MEM:
            return InsnCategory.FENCE
        if opc == OP_SYSTEM:
            return InsnCategory.CSR
        if self.is_nop:
            return InsnCategory.NOP
        if self.raw.spec.extension in ("f", "d") or mn.startswith("f"):
            return InsnCategory.FLOAT
        return InsnCategory.ARITHMETIC

    @property
    def is_nop(self) -> bool:
        f = self.raw.fields
        return (self.mnemonic == "addi" and f.get("rd") == 0
                and f.get("rs1") == 0 and f.get("imm") == 0)

    # -- control flow (raw facts; classification is ParseAPI's job) -----------

    @property
    def writes_pc(self) -> bool:
        opc = self.raw.spec.match & 0x7F
        return opc in (OP_BRANCH, OP_JAL, OP_JALR)

    @property
    def is_conditional_branch(self) -> bool:
        return (self.raw.spec.match & 0x7F) == OP_BRANCH

    @property
    def is_jal(self) -> bool:
        return self.mnemonic == "jal"

    @property
    def is_jalr(self) -> bool:
        return self.mnemonic == "jalr"

    @property
    def link_register(self) -> Register | None:
        """rd of jal/jalr (None otherwise).  x0 means "no link saved"."""
        if self.mnemonic in ("jal", "jalr"):
            return xreg(self.raw.fields["rd"])
        return None

    @property
    def links(self) -> bool:
        """True when this jal/jalr saves a return address to a link
        register (the call convention signal, §3.2.3)."""
        lr = self.link_register
        return lr is not None and lr in LINK_REGISTERS

    def direct_target(self) -> int | None:
        """Absolute target for jal and conditional branches."""
        if self.mnemonic == "jal" or self.is_conditional_branch:
            return self.address + self.raw.fields["imm"]
        return None

    @property
    def indirect_base(self) -> Register | None:
        """rs1 of jalr (the register holding the target)."""
        if self.is_jalr:
            return xreg(self.raw.fields["rs1"])
        return None

    # -- operands ----------------------------------------------------------------

    def operands(self) -> list[Operand]:
        """Typed operands in assembly order with read/write attribution."""
        out: list[Operand] = []
        spec = self.raw.spec
        f = self.raw.fields
        for op in spec.operands:
            key = op[1:] if op.startswith("f") else op
            if key in ("rd", "rs1", "rs2", "rs3"):
                n = f.get(key)
                if n is None:
                    continue
                reg = freg(n) if op.startswith("f") else xreg(n)
                written = key == "rd"
                # AMO/sc rd is written, rs* read; jalr rs1 read; stores
                # read rs2.  rd of a pure store never appears.
                read = not written
                out.append(Operand(reg, read, written))
            elif key in ("imm", "shamt", "zimm", "csr"):
                v = f.get(key)
                if v is not None:
                    out.append(Operand(v, True, False))
        return out

    def read_set(self) -> set[Register]:
        """Registers read (semantics-derived where available)."""
        return {
            (xreg(n) if rf == "x" else freg(n))
            for rf, n in register_uses(self.raw)
        }

    def write_set(self) -> set[Register]:
        """Registers written."""
        return {
            (xreg(n) if rf == "x" else freg(n))
            for rf, n in register_defs(self.raw)
        }

    # -- memory ------------------------------------------------------------------

    def memory_access(self) -> MemAccess | None:
        """Base+displacement memory operand, when present."""
        mn = self.mnemonic
        f = self.raw.fields
        if mn in _LOAD_SIZES:
            return MemAccess(xreg(f["rs1"]), f["imm"], _LOAD_SIZES[mn],
                             True, False)
        if mn in _STORE_SIZES:
            return MemAccess(xreg(f["rs1"]), f["imm"], _STORE_SIZES[mn],
                             False, True)
        if mn.startswith(("lr.", "sc.", "amo")):
            size = 4 if mn.endswith(".w") else 8
            is_load = mn.startswith("lr.")
            return MemAccess(xreg(f["rs1"]), 0, size,
                             not mn.startswith("sc."),
                             not is_load)
        return None

    @property
    def reads_memory(self) -> bool:
        acc = self.memory_access()
        return acc is not None and acc.is_read

    @property
    def writes_memory(self) -> bool:
        acc = self.memory_access()
        return acc is not None and acc.is_write


def decode_insn(data: bytes | memoryview, offset: int, address: int) -> Insn:
    """Decode one instruction into the InstructionAPI representation."""
    return Insn(decode(data, offset, address), address)
