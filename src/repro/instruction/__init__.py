"""InstructionAPI: abstract machine-code instruction representation."""

from .insn import (
    Insn, InsnCategory, LINK_REGISTERS, MemAccess, Operand, decode_insn,
)

__all__ = ["Insn", "InsnCategory", "LINK_REGISTERS", "MemAccess",
           "Operand", "decode_insn"]
