"""Interprocedural register liveness via callee summaries.

The intraprocedural analysis (:mod:`repro.dataflow.liveness`) must
assume every call reads all argument registers and clobbers the whole
caller-saved set.  Real Dyninst sharpens call sites with *function
summaries*: what a callee may actually read before writing, and what it
may actually write.  This module computes those summaries over the call
graph to a fixpoint and re-runs liveness with precise call effects —
yielding more dead registers exactly where instrumentation wants them
(call-adjacent points).

Soundness: summaries start optimistic (empty) and ascend to the least
fixpoint of monotone equations; unresolved calls and tail calls fall
back to the conservative sets.  The adversarial clobber suite
(tests/test_liveness_soundness.py) validates the result behaviourally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..parse.cfg import EdgeType, Function
from ..riscv.registers import Register

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..parse.parser import CodeObject
from .liveness import (
    ALL_REGS, CALL_KILLS, CALL_USES, EXIT_LIVE, LivenessResult,
)


@dataclass(frozen=True)
class FunctionSummary:
    """May-read-before-write / may-write sets of one function."""

    uses: frozenset[Register]
    kills: frozenset[Register]


#: the most conservative summary (used for unknown callees)
CONSERVATIVE = FunctionSummary(frozenset(CALL_USES), frozenset(CALL_KILLS))


class InterproceduralLiveness:
    """Whole-program liveness with callee-summary call effects."""

    def __init__(self, code_object: "CodeObject", max_rounds: int = 50):
        self.code_object = code_object
        self.summaries: dict[int, FunctionSummary] = {}
        self._results: dict[int, LivenessResult] = {}
        #: per-function pass-through registers some caller holds live
        #: across a call (joins the exit seed)
        self._exit_extra: dict[int, frozenset] = {}
        self._solve(max_rounds)
        self._solve_demand(max_rounds)

    # -- public ------------------------------------------------------------

    def result_for(self, fn: Function) -> LivenessResult:
        """The (summary-sharpened) liveness result of one function.

        Exit seeding is the dual of the call-site sharpening: a
        caller-saved register this function does *not* kill is
        pass-through — a summary-aware caller may keep a value live in
        it across the call.  The demand fixpoint (:meth:`_solve_demand`)
        computes, per function, which pass-through registers some caller
        actually holds live across a call, and those join the exit-live
        seed.
        """
        if fn.entry not in self._results:
            extra = self._exit_extra.get(fn.entry, frozenset())
            self._results[fn.entry] = self._analyze(
                fn, seed_exit=frozenset(EXIT_LIVE | extra))
        return self._results[fn.entry]

    def summary_for(self, fn: Function) -> FunctionSummary:
        return self.summaries.get(fn.entry, CONSERVATIVE)

    # -- fixpoint ------------------------------------------------------------

    def _solve(self, max_rounds: int) -> None:
        fns = list(self.code_object.functions.values())
        # optimistic start: reads nothing, writes nothing
        for fn in fns:
            self.summaries[fn.entry] = FunctionSummary(
                frozenset(), frozenset())
        for _ in range(max_rounds):
            changed = False
            for fn in fns:
                new = self._summarize(fn)
                if new != self.summaries[fn.entry]:
                    self.summaries[fn.entry] = new
                    changed = True
            if not changed:
                break
        else:  # no convergence: fall back to conservative everywhere
            for fn in fns:
                self.summaries[fn.entry] = CONSERVATIVE
        self._results.clear()

    def _solve_demand(self, max_rounds: int) -> None:
        """Ascending fixpoint of caller-demanded pass-through liveness:
        for every call site, registers live after the call that the
        callee does not kill must be live at the callee's exits."""
        fns = list(self.code_object.functions.values())
        self._exit_extra = {fn.entry: frozenset() for fn in fns}
        for _ in range(max_rounds):
            changed = False
            for caller in fns:
                res = self._analyze(
                    caller,
                    seed_exit=frozenset(
                        EXIT_LIVE | self._exit_extra[caller.entry]))
                for block in caller.blocks.values():
                    for e in block.out_edges:
                        if e.kind not in (EdgeType.CALL,
                                          EdgeType.TAILCALL):
                            continue
                        callee = (self.code_object.functions.get(e.target)
                                  if e.target is not None else None)
                        if callee is None:
                            continue
                        s = self.summaries.get(callee.entry, CONSERVATIVE)
                        pass_through = CALL_KILLS - s.kills
                        if e.kind is EdgeType.CALL:
                            live_after = res.live_out.get(
                                block.start, ALL_REGS)
                        else:  # tail call: the callee exits for us
                            live_after = (EXIT_LIVE
                                          | self._exit_extra[caller.entry])
                        demand = frozenset(live_after & pass_through)
                        if not demand <= self._exit_extra[callee.entry]:
                            self._exit_extra[callee.entry] = frozenset(
                                self._exit_extra[callee.entry] | demand)
                            changed = True
            if not changed:
                break
        else:  # no convergence: conservative pass-through everywhere
            for fn in fns:
                s = self.summaries.get(fn.entry, CONSERVATIVE)
                self._exit_extra[fn.entry] = frozenset(
                    CALL_KILLS - s.kills)
        self._results.clear()

    def _call_effects(self, block) -> tuple[set, set]:
        """(uses, kills) of the call/tailcall terminating *block* under
        current summaries."""
        uses: set[Register] = set()
        kills: set[Register] = set()
        for e in block.out_edges:
            if e.kind not in (EdgeType.CALL, EdgeType.TAILCALL):
                continue
            if e.target is None:
                return set(CALL_USES), set(CALL_KILLS)
            callee = self.code_object.functions.get(e.target)
            if callee is None:
                return set(CALL_USES), set(CALL_KILLS)
            s = self.summaries.get(callee.entry, CONSERVATIVE)
            uses |= s.uses
            kills |= s.kills
        # a call can only be assumed to kill caller-saved registers;
        # callee-saved writes are restored by the callee's epilogue
        kills &= CALL_KILLS
        return uses, kills

    def _insn_uses_defs(self, insn, block):
        uses = insn.read_set()
        defs = insn.write_set()
        if block is not None and insn is block.last:
            kinds = {e.kind for e in block.out_edges}
            if EdgeType.CALL in kinds or EdgeType.TAILCALL in kinds:
                cu, ck = self._call_effects(block)
                if EdgeType.CALL in kinds:
                    # the callee's read of the link register is satisfied
                    # by the call instruction's own write, not the caller
                    uses |= (cu - insn.write_set())
                    defs |= ck
                else:
                    uses |= cu
        return uses, defs

    def _summarize(self, fn: Function) -> FunctionSummary:
        """Recompute fn's summary under the current callee summaries."""
        res = self._analyze(fn, seed_exit=frozenset())
        entry_live = res.live_in.get(fn.entry, frozenset())
        kills: set[Register] = set()
        for block in fn.blocks.values():
            for insn in block.insns:
                _, d = self._insn_uses_defs(insn, block)
                kills |= d
        # only caller-visible effects matter
        return FunctionSummary(
            frozenset(entry_live & (CALL_USES | CALL_KILLS)),
            frozenset(kills & CALL_KILLS))

    # -- sharpened intraprocedural solve ------------------------------------

    def _analyze(self, fn: Function,
                 seed_exit: frozenset | None = None) -> LivenessResult:
        exit_live = EXIT_LIVE if seed_exit is None else seed_exit
        blocks = fn.blocks

        def block_flow(block):
            use: set[Register] = set()
            defs: set[Register] = set()
            for insn in block.insns:
                u, d = self._insn_uses_defs(insn, block)
                use |= (u - defs)
                defs |= d
            return frozenset(use), frozenset(defs)

        summaries = {a: block_flow(b) for a, b in blocks.items()}
        succs: dict[int, list[int]] = {}
        seed: dict[int, set[Register]] = {}
        for addr, block in blocks.items():
            succs[addr] = fn.intraproc_successors(block)
            s: set[Register] = set()
            for e in block.out_edges:
                if e.kind in (EdgeType.RET, EdgeType.TAILCALL):
                    s |= exit_live
                elif not e.resolved or (
                        e.kind is EdgeType.INDIRECT and e.target is None):
                    s |= ALL_REGS
                elif e.kind is EdgeType.CALL and e.target is None:
                    s |= ALL_REGS
            if not block.out_edges:
                s |= exit_live
            seed[addr] = s

        live_in = {a: frozenset() for a in blocks}
        live_out = {a: frozenset() for a in blocks}
        changed = True
        while changed:
            changed = False
            for addr in blocks:
                out = set(seed[addr])
                for sx in succs[addr]:
                    out |= live_in[sx]
                use, defs = summaries[addr]
                inn = frozenset(use | (out - defs))
                if frozenset(out) != live_out[addr] or inn != live_in[addr]:
                    live_out[addr] = frozenset(out)
                    live_in[addr] = inn
                    changed = True
        return _SharpLivenessResult(self, fn, live_in, live_out)


class _SharpLivenessResult(LivenessResult):
    """LivenessResult whose per-instruction refinement uses summary-based
    call effects."""

    def __init__(self, owner: InterproceduralLiveness, fn, live_in,
                 live_out):
        super().__init__(fn, live_in, live_out)
        self._owner = owner

    def live_before(self, addr: int):
        block = self.function.block_at(addr)
        if block is None:
            raise KeyError(f"{addr:#x} is not in function "
                           f"{self.function.name!r}")
        live = set(self.live_out.get(block.start, ALL_REGS))
        for insn in reversed(block.insns):
            u, d = self._owner._insn_uses_defs(insn, block)
            live -= d
            live |= u
            if insn.address == addr:
                return frozenset(live)
        raise KeyError(f"{addr:#x} not at an instruction boundary")


def analyze_interprocedural(code_object: "CodeObject",
                            ) -> InterproceduralLiveness:
    """Compute whole-program summary-based liveness."""
    return InterproceduralLiveness(code_object)


# -- snapshots ------------------------------------------------------------

def interproc_to_snapshot(ip: InterproceduralLiveness) -> dict:
    """Serialize the whole-program solution: per-function summaries,
    demanded pass-through sets, and every function's live-in/out masks
    (JSON-ready; consumed by the artifact store)."""
    from .liveness import mask_of

    for fn in ip.code_object.functions.values():
        ip.result_for(fn)  # materialize every result before serializing
    results = []
    for entry, res in sorted(ip._results.items()):
        results.append([
            entry,
            [[a, mask_of(s)] for a, s in sorted(res.live_in.items())],
            [[a, mask_of(s)] for a, s in sorted(res.live_out.items())],
        ])
    return {
        "summaries": [[e, mask_of(s.uses), mask_of(s.kills)]
                      for e, s in sorted(ip.summaries.items())],
        "exit_extra": [[e, mask_of(s)]
                       for e, s in sorted(ip._exit_extra.items())],
        "results": results,
    }


def interproc_from_snapshot(code_object: "CodeObject",
                            data: dict) -> InterproceduralLiveness:
    """Revive the whole-program solution without running either
    fixpoint.  Per-instruction refinement still works: the revived
    summaries drive :meth:`InterproceduralLiveness._call_effects`
    exactly as the solver's own would."""
    from .liveness import regs_of

    ip = object.__new__(InterproceduralLiveness)
    ip.code_object = code_object
    ip.summaries = {
        e: FunctionSummary(regs_of(u), regs_of(k))
        for e, u, k in data["summaries"]
    }
    ip._exit_extra = {e: regs_of(m) for e, m in data["exit_extra"]}
    ip._results = {}
    for entry, live_in, live_out in data["results"]:
        fn = code_object.functions.get(entry)
        if fn is None:
            continue
        ip._results[entry] = _SharpLivenessResult(
            ip, fn,
            {a: regs_of(m) for a, m in live_in},
            {a: regs_of(m) for a, m in live_out})
    return ip
