"""Backward constant resolution over straight-line instruction sequences.

This is the DataflowAPI primitive ParseAPI leans on (paper §3.2.3):
"ParseAPI tries to determine the exact value of the target register by
performing a backward slice on it.  If the result of the slicing yields a
constant..." — used to resolve ``jalr`` targets formed by
``auipc``+``jalr``, ``lui``/``addi`` materialisation chains, and (with a
memory oracle) jump-table loads.

The resolver walks backward from a use, following the *single* reaching
definition of each register of interest within the given instruction
window, and evaluates the defining expressions with the SAIL-derived
semantics.  Anything it cannot prove constant yields ``None`` — exactly
the conservative failure mode the paper describes (the jalr is then
handed to jump-table analysis, and failing that marked unresolvable).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..instruction.insn import Insn
from ..riscv.registers import Register
from ..semantics import semantics_for
from ..semantics.ir import (
    BinOp, Const, Expr, Extend, ILen, ITE, MemRead, OperandRef, PC, RegRef,
    RegWrite, UnOp,
)
from ..semantics.evaluate import _binop, _unop  # evaluation kernel (shared)
from ..riscv.encoding import sign_extend, to_unsigned

#: Optional oracle: read n bytes of initialised memory at vaddr
#: (e.g. Symtab.read); returns None when unavailable.
MemReader = Callable[[int, int], int | None]


class _Unresolved(Exception):
    pass


def resolve_register(
    window: Sequence[Insn],
    use_index: int,
    reg: Register,
    mem_reader: MemReader | None = None,
    max_depth: int = 64,
) -> int | None:
    """Value of *reg* immediately before ``window[use_index]`` executes,
    if provably constant within the window; else None.
    """
    try:
        return _resolve(window, use_index - 1, reg, mem_reader, max_depth)
    except _Unresolved:
        return None


def _resolve(window: Sequence[Insn], from_index: int, reg: Register,
             mem_reader: MemReader | None, depth: int) -> int:
    if depth <= 0:
        raise _Unresolved
    if reg.is_zero:
        return 0
    if reg.regclass.value != "int":
        raise _Unresolved
    for i in range(from_index, -1, -1):
        insn = window[i]
        raw = insn.raw
        defs = {n for rf, n in _int_defs(insn) if rf == "x"}
        if reg.number not in defs:
            # An instruction with imprecise semantics that *might* write
            # the register kills resolution conservatively.
            continue
        sem = semantics_for(raw)
        if sem is None:
            raise _Unresolved
        # Find the (unconditional) RegWrite producing reg.
        for eff in sem.effects:
            if isinstance(eff, RegWrite) and eff.regfile == "x" and \
                    raw.fields.get(eff.operand) == reg.number:
                return _eval(eff.value, window, i, insn, mem_reader, depth)
        raise _Unresolved  # defined only conditionally
    raise _Unresolved  # no definition in the window


def _int_defs(insn: Insn):
    from ..semantics import register_defs

    return register_defs(insn.raw)


def _eval(e: Expr, window: Sequence[Insn], at: int, insn: Insn,
          mem_reader: MemReader | None, depth: int) -> int:
    if isinstance(e, Const):
        return to_unsigned(e.value, 64)
    if isinstance(e, PC):
        return to_unsigned(insn.address, 64)
    if isinstance(e, ILen):
        return insn.length
    if isinstance(e, OperandRef):
        v = insn.raw.fields.get(e.name)
        if v is None:
            raise _Unresolved
        return to_unsigned(v, 64)
    if isinstance(e, RegRef):
        if e.regfile != "x":
            raise _Unresolved
        n = insn.raw.fields.get(e.operand)
        if n is None:
            raise _Unresolved
        from ..riscv.registers import xreg

        return _resolve(window, at - 1, xreg(n), mem_reader, depth - 1)
    if isinstance(e, BinOp):
        return _binop(e.op,
                      _eval(e.lhs, window, at, insn, mem_reader, depth),
                      _eval(e.rhs, window, at, insn, mem_reader, depth))
    if isinstance(e, UnOp):
        return _unop(e.op, _eval(e.operand, window, at, insn, mem_reader,
                                 depth))
    if isinstance(e, Extend):
        v = _eval(e.operand, window, at, insn, mem_reader, depth)
        if e.kind == "sext":
            return to_unsigned(sign_extend(v, e.width), 64)
        return v & ((1 << e.width) - 1)
    if isinstance(e, MemRead):
        if mem_reader is None:
            raise _Unresolved
        addr = _eval(e.addr, window, at, insn, mem_reader, depth)
        v = mem_reader(addr, e.size)
        if v is None:
            raise _Unresolved
        return to_unsigned(v, 64)
    if isinstance(e, ITE):
        # Sound when the condition itself resolves: pick that branch.
        cond = _eval(e.cond, window, at, insn, mem_reader, depth)
        branch = e.then if cond else e.otherwise
        return _eval(branch, window, at, insn, mem_reader, depth)
    raise _Unresolved
