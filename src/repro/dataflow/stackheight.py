"""Stack-height analysis (DataflowAPI; consumed by StackwalkerAPI).

Tracks the offset of ``sp`` from its value at function entry, at every
instruction.  RISC-V compilers commonly omit the frame pointer
(paper §3.2.7), so walking the stack requires knowing, for any pc, how
far sp has moved and where the return address was saved — exactly what
this analysis computes:

* ``height_before(addr)`` — sp displacement (<= 0) before the
  instruction at *addr* executes;
* ``ra_slot`` — the entry-sp-relative offset where ra was stored, if the
  function saves it;
* ``fp_saved_slot`` — likewise for s0 when used as a frame pointer.

Heights form a constant-propagation lattice: unknown sp arithmetic
(e.g. ``sub sp, sp, t0`` for VLAs) poisons the height to BOTTOM and the
stack walker falls back to other steppers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parse.cfg import Function

#: Lattice bottom: height not statically known.
BOTTOM = None


@dataclass
class StackHeightResult:
    function: Function
    #: instruction addr -> height (int) or BOTTOM
    heights: dict[int, int | None]
    #: entry-sp-relative offset of the saved ra, or None (leaf function)
    ra_slot: int | None = None
    #: address of the instruction that saves ra (for is-it-saved-yet
    #: queries by the stack walker)
    ra_save_addr: int | None = None
    #: entry-sp-relative offset of the saved s0 (frame pointer), or None
    fp_saved_slot: int | None = None
    #: maximum frame extent observed (most negative height)
    frame_size: int = 0

    def height_before(self, addr: int) -> int | None:
        return self.heights.get(addr, BOTTOM)


def analyze_stack_height(fn: Function) -> StackHeightResult:
    """Forward constant propagation of sp displacement over the CFG."""
    heights: dict[int, int | None] = {}
    in_height: dict[int, int | None | object] = {}  # block -> height
    UNSEEN = object()
    for a in fn.blocks:
        in_height[a] = UNSEEN
    in_height[fn.entry] = 0

    ra_slot: int | None = None
    ra_save_addr: int | None = None
    fp_saved_slot: int | None = None
    frame_min = 0

    work = [fn.entry]
    while work:
        addr = work.pop()
        block = fn.blocks[addr]
        h = in_height[addr]
        if h is UNSEEN:
            continue
        cur: int | None = h  # type: ignore[assignment]
        for insn in block.insns:
            prev = heights.get(insn.address, UNSEEN)
            heights[insn.address] = cur if prev is UNSEEN or prev == cur \
                else BOTTOM
            f = insn.raw.fields
            mn = insn.mnemonic
            if cur is not None:
                if mn == "addi" and f.get("rd") == 2 and f.get("rs1") == 2:
                    cur = cur + f["imm"]
                    frame_min = min(frame_min, cur)
                elif mn == "sd" and f.get("rs1") == 2:
                    if f.get("rs2") == 1 and ra_slot is None:
                        ra_slot = cur + f["imm"]
                        ra_save_addr = insn.address
                    if f.get("rs2") == 8 and fp_saved_slot is None:
                        fp_saved_slot = cur + f["imm"]
                elif 2 in {n for rf, n in _int_defs(insn)}:
                    cur = BOTTOM  # non-addi redefinition of sp
            else:
                cur = BOTTOM
        for succ in fn.intraproc_successors(block):
            old = in_height[succ]
            new = cur
            if old is UNSEEN:
                in_height[succ] = new
                work.append(succ)
            elif old != new:
                if old is not BOTTOM:
                    in_height[succ] = BOTTOM
                    work.append(succ)
    return StackHeightResult(
        fn, heights, ra_slot=ra_slot, ra_save_addr=ra_save_addr,
        fp_saved_slot=fp_saved_slot, frame_size=-frame_min)


def _int_defs(insn):
    from ..semantics import register_defs

    return {(rf, n) for rf, n in register_defs(insn.raw) if rf == "x"}
