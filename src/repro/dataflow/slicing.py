"""Program slicing over the CFG (DataflowAPI, paper §2.1/§3.2.4).

Backward slicing ("instructions that affected data") and forward slicing
("instructions affected by data") built on reaching definitions over the
def/use sets the semantics registry provides.

Abstract locations are registers plus a single coarse ``MEM`` location
(optional): precise enough for the paper's uses — resolving jalr targets
(via :mod:`repro.dataflow.constprop`), understanding address formation —
while staying sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..instruction.insn import Insn
from ..parse.cfg import Function
from ..riscv.registers import Register
from ..semantics import (
    reads_memory, register_defs, register_uses, writes_memory,
)

#: Abstract location: ("x"|"f", regnum) or the coarse memory location.
AbsLoc = Hashable
MEM: AbsLoc = ("mem", 0)


def insn_defs(insn: Insn, include_memory: bool = False) -> set[AbsLoc]:
    out: set[AbsLoc] = set(register_defs(insn.raw))
    if include_memory and writes_memory(insn.raw):
        out.add(MEM)
    return out


def insn_uses(insn: Insn, include_memory: bool = False) -> set[AbsLoc]:
    out: set[AbsLoc] = set(register_uses(insn.raw))
    if include_memory and reads_memory(insn.raw):
        out.add(MEM)
    return out


def _regloc(reg: Register) -> AbsLoc:
    return (reg.regclass.value[0] if reg.regclass.value != "int" else "x",
            reg.number)


@dataclass
class SliceGraph:
    """Def-use graph of one function: nodes are instruction addresses."""

    function: Function
    include_memory: bool = False
    #: addr -> {(use_loc, def_addr)}: reaching definition links
    reaching: dict[int, set[tuple[AbsLoc, int]]] = field(
        default_factory=dict)
    #: def_addr -> {use_addr}
    uses_of: dict[int, set[int]] = field(default_factory=dict)

    def backward_slice(self, addr: int,
                       loc: Register | AbsLoc | None = None) -> set[int]:
        """Addresses of instructions whose results flow into *addr*.

        With *loc*, only flows into that location's use are followed;
        otherwise all uses of the instruction.
        """
        if isinstance(loc, Register):
            loc = _regloc(loc)
        result: set[int] = set()
        work: list[int] = []
        for use_loc, def_addr in self.reaching.get(addr, ()):
            if loc is None or use_loc == loc:
                work.append(def_addr)
        while work:
            a = work.pop()
            if a in result:
                continue
            result.add(a)
            for _, def_addr in self.reaching.get(a, ()):
                work.append(def_addr)
        return result

    def forward_slice(self, addr: int) -> set[int]:
        """Addresses of instructions affected by *addr*'s definitions."""
        result: set[int] = set()
        work = list(self.uses_of.get(addr, ()))
        while work:
            a = work.pop()
            if a in result:
                continue
            result.add(a)
            work.extend(self.uses_of.get(a, ()))
        return result


def build_slice_graph(fn: Function,
                      include_memory: bool = False) -> SliceGraph:
    """Compute reaching definitions and build the def-use graph."""
    blocks = fn.blocks
    # Definition sites: (addr, loc)
    block_insns = {a: b.insns for a, b in blocks.items()}

    # block-level GEN/KILL over (loc -> set of def addrs)
    gen: dict[int, dict[AbsLoc, set[int]]] = {}
    kill_locs: dict[int, set[AbsLoc]] = {}
    for a, insns in block_insns.items():
        g: dict[AbsLoc, set[int]] = {}
        for insn in insns:
            for loc in insn_defs(insn, include_memory):
                if loc == MEM and MEM in g:
                    g[MEM] = g[MEM] | {insn.address}  # stores accumulate
                else:
                    g[loc] = {insn.address}
        gen[a] = g
        kill_locs[a] = {loc for loc in g if loc != MEM}

    preds: dict[int, list[int]] = {a: [] for a in blocks}
    for a, b in blocks.items():
        for s in fn.intraproc_successors(b):
            if s in preds:
                preds[s].append(a)

    # iterate to fixpoint: in/out are loc -> frozenset(def addrs)
    empty: dict[AbsLoc, frozenset[int]] = {}
    rd_in: dict[int, dict[AbsLoc, frozenset[int]]] = {
        a: dict(empty) for a in blocks}
    rd_out: dict[int, dict[AbsLoc, frozenset[int]]] = {
        a: dict(empty) for a in blocks}

    order = sorted(blocks)
    changed = True
    while changed:
        changed = False
        for a in order:
            inn: dict[AbsLoc, set[int]] = {}
            for p in preds[a]:
                for loc, defs in rd_out[p].items():
                    inn.setdefault(loc, set()).update(defs)
            new_in = {loc: frozenset(v) for loc, v in inn.items()}
            out: dict[AbsLoc, set[int]] = {
                loc: set(v) for loc, v in new_in.items()
                if loc not in kill_locs[a]}
            for loc, defs in gen[a].items():
                if loc == MEM:
                    out.setdefault(MEM, set()).update(defs)
                else:
                    out[loc] = set(defs)
            new_out = {loc: frozenset(v) for loc, v in out.items()}
            if new_in != rd_in[a] or new_out != rd_out[a]:
                rd_in[a] = new_in
                rd_out[a] = new_out
                changed = True

    graph = SliceGraph(fn, include_memory)
    for a, insns in block_insns.items():
        current: dict[AbsLoc, set[int]] = {
            loc: set(v) for loc, v in rd_in[a].items()}
        for insn in insns:
            links: set[tuple[AbsLoc, int]] = set()
            for loc in insn_uses(insn, include_memory):
                for d in current.get(loc, ()):
                    links.add((loc, d))
                    graph.uses_of.setdefault(d, set()).add(insn.address)
            if links:
                graph.reaching[insn.address] = links
            for loc in insn_defs(insn, include_memory):
                if loc == MEM:
                    current.setdefault(MEM, set()).add(insn.address)
                else:
                    current[loc] = {insn.address}
    return graph


def backward_slice(fn: Function, addr: int,
                   reg: Register | None = None,
                   include_memory: bool = False) -> set[int]:
    """One-shot backward slice (paper: used on jalr target registers)."""
    return build_slice_graph(fn, include_memory).backward_slice(addr, reg)


def forward_slice(fn: Function, addr: int,
                  include_memory: bool = False) -> set[int]:
    """One-shot forward slice."""
    return build_slice_graph(fn, include_memory).forward_slice(addr)
