"""Register liveness analysis (DataflowAPI, paper §2.1 and §4.3).

The instrumentation payoff: liveness finds *dead* registers — registers
whose current value is never read again — which CodeGenAPI can use as
scratch space without saving/restoring, the "allocation optimization"
the paper credits for RISC-V's lower instrumentation overhead (§4.3).

Standard backward may-liveness at block granularity with
per-instruction refinement.  Conservative boundary conditions:

* at function exits (RET/TAILCALL), return-value and callee-saved
  registers are live-out;
* call sites are assumed to read all argument registers and ra/sp, and
  to clobber the caller-saved set (callee-saved values flow through);
* unresolved indirect flow makes everything live (fail-safe).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..instruction.insn import Insn
from ..parse.cfg import Block, EdgeType, Function
from ..riscv.registers import (
    ARG_REGS, CALLEE_SAVED, CALLER_SAVED, FP_ARG_REGS, FP_REGS, GP,
    INT_REGS, RA, Register, SP, TP,
)

#: Registers assumed live at a function exit: returned values plus
#: everything the caller expects preserved.
EXIT_LIVE: frozenset[Register] = frozenset(
    {INT_REGS[10], INT_REGS[11], FP_REGS[10], FP_REGS[11], RA, GP, TP}
) | CALLEE_SAVED

#: Registers a call is assumed to consume.
CALL_USES: frozenset[Register] = frozenset(ARG_REGS) | frozenset(
    FP_ARG_REGS) | {SP, GP, TP}

#: Registers whose values do not survive a call.
CALL_KILLS: frozenset[Register] = frozenset(
    r for r in CALLER_SAVED if not r.is_zero
) | frozenset(FP_REGS[0:10]) | frozenset(FP_REGS[16:18]) | frozenset(
    FP_REGS[28:32])

ALL_REGS: frozenset[Register] = frozenset(
    r for r in INT_REGS if not r.is_zero) | frozenset(FP_REGS)


def _block_flow(block: Block) -> tuple[frozenset, frozenset]:
    """(use, def) summary of a block for backward liveness."""
    use: set[Register] = set()
    defs: set[Register] = set()
    for insn in block.insns:
        u, d = insn_uses_defs(insn, block)
        use |= (u - defs)
        defs |= d
    return frozenset(use), frozenset(defs)


def insn_uses_defs(insn: Insn, block: Block | None = None
                   ) -> tuple[set[Register], set[Register]]:
    """Per-instruction (uses, defs), with call-site augmentation when the
    instruction terminates a call block."""
    uses = insn.read_set()
    defs = insn.write_set()
    if block is not None and insn is block.last:
        kinds = {e.kind for e in block.out_edges}
        if EdgeType.CALL in kinds:
            uses |= CALL_USES
            defs |= CALL_KILLS
        if EdgeType.TAILCALL in kinds:
            uses |= CALL_USES
    return uses, defs


@dataclass
class LivenessResult:
    """Fixpoint solution: live-in/live-out per block, with
    per-instruction queries."""

    function: Function
    live_in: dict[int, frozenset[Register]]
    live_out: dict[int, frozenset[Register]]

    def live_before(self, addr: int) -> frozenset[Register]:
        """Registers live immediately before the instruction at *addr*."""
        block = self.function.block_at(addr)
        if block is None:
            raise KeyError(f"{addr:#x} is not in function "
                           f"{self.function.name!r}")
        live = set(self.live_out.get(block.start, ALL_REGS))
        for insn in reversed(block.insns):
            u, d = insn_uses_defs(insn, block)
            live -= d
            live |= u
            if insn.address == addr:
                return frozenset(live)
        raise KeyError(f"{addr:#x} not at an instruction boundary")

    def dead_before(self, addr: int,
                    candidates: tuple[Register, ...] | None = None
                    ) -> list[Register]:
        """Registers (from *candidates*, default: caller-saved ints) that
        are dead at *addr* — free scratch for instrumentation."""
        from ..riscv.registers import SCRATCH_CANDIDATES

        live = self.live_before(addr)
        pool = candidates if candidates is not None else SCRATCH_CANDIDATES
        return [r for r in pool if r not in live]


def analyze_liveness(fn: Function) -> LivenessResult:
    """Solve backward may-liveness over the function's blocks."""
    blocks = fn.blocks
    summaries = {a: _block_flow(b) for a, b in blocks.items()}

    # successor map (intraprocedural) + exit seeding
    succs: dict[int, list[int]] = {}
    seed: dict[int, set[Register]] = {}
    for addr, block in blocks.items():
        succs[addr] = fn.intraproc_successors(block)
        s: set[Register] = set()
        for e in block.out_edges:
            if e.kind in (EdgeType.RET, EdgeType.TAILCALL):
                s |= EXIT_LIVE
            elif not e.resolved or (
                    e.kind is EdgeType.INDIRECT and e.target is None):
                s |= ALL_REGS  # unresolved flow: fail safe
            elif e.kind is EdgeType.CALL and e.target is None:
                s |= ALL_REGS
        if not block.out_edges:
            s |= EXIT_LIVE  # fell off the parse: conservative
        seed[addr] = s

    live_in: dict[int, frozenset[Register]] = {
        a: frozenset() for a in blocks}
    live_out: dict[int, frozenset[Register]] = {
        a: frozenset() for a in blocks}

    changed = True
    while changed:
        changed = False
        for addr in blocks:
            out = set(seed[addr])
            for s in succs[addr]:
                out |= live_in[s]
            use, defs = summaries[addr]
            inn = frozenset(use | (out - defs))
            if frozenset(out) != live_out[addr] or inn != live_in[addr]:
                live_out[addr] = frozenset(out)
                live_in[addr] = inn
                changed = True
    return LivenessResult(fn, live_in, live_out)
