"""Register liveness analysis (DataflowAPI, paper §2.1 and §4.3).

The instrumentation payoff: liveness finds *dead* registers — registers
whose current value is never read again — which CodeGenAPI can use as
scratch space without saving/restoring, the "allocation optimization"
the paper credits for RISC-V's lower instrumentation overhead (§4.3).

Standard backward may-liveness at block granularity with
per-instruction refinement.  Conservative boundary conditions:

* at function exits (RET/TAILCALL), return-value and callee-saved
  registers are live-out;
* call sites are assumed to read all argument registers and ra/sp, and
  to clobber the caller-saved set (callee-saved values flow through);
* unresolved indirect flow makes everything live (fail-safe).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import telemetry
from ..instruction.insn import Insn
from ..parse.cfg import Block, EdgeType, Function
from ..riscv.registers import (
    ARG_REGS, CALLEE_SAVED, CALLER_SAVED, FP_ARG_REGS, FP_REGS, GP,
    INT_REGS, RA, Register, SP, TP,
)

#: Registers assumed live at a function exit: returned values plus
#: everything the caller expects preserved.
EXIT_LIVE: frozenset[Register] = frozenset(
    {INT_REGS[10], INT_REGS[11], FP_REGS[10], FP_REGS[11], RA, GP, TP}
) | CALLEE_SAVED

#: Registers a call is assumed to consume.
CALL_USES: frozenset[Register] = frozenset(ARG_REGS) | frozenset(
    FP_ARG_REGS) | {SP, GP, TP}

#: Registers whose values do not survive a call.
CALL_KILLS: frozenset[Register] = frozenset(
    r for r in CALLER_SAVED if not r.is_zero
) | frozenset(FP_REGS[0:10]) | frozenset(FP_REGS[16:18]) | frozenset(
    FP_REGS[28:32])

ALL_REGS: frozenset[Register] = frozenset(
    r for r in INT_REGS if not r.is_zero) | frozenset(FP_REGS)

# -- int bitmask register sets -------------------------------------------
#
# The fixpoint (and the hot per-instruction refinement) runs on plain
# ints: x0..x31 map to bits 0..31, f0..f31 to bits 32..63.  Set
# union/difference become single-word |, &~ — the dead-register ablation
# spends most of its time here.  The public API stays frozenset-based
# (LivenessResult, insn_uses_defs); masks are an internal representation
# attached to results built by :func:`analyze_liveness`.

REG_BIT: dict[Register, int] = {
    **{r: 1 << i for i, r in enumerate(INT_REGS)},
    **{r: 1 << (32 + i) for i, r in enumerate(FP_REGS)},
}
_BIT_REG: tuple[Register, ...] = tuple(INT_REGS) + tuple(FP_REGS)


def mask_of(regs) -> int:
    """Fold an iterable of Registers into a 64-bit liveness mask."""
    m = 0
    for r in regs:
        m |= REG_BIT[r]
    return m


def regs_of(mask: int) -> frozenset[Register]:
    """Expand a liveness mask back into a Register frozenset."""
    out = []
    while mask:
        low = mask & -mask
        out.append(_BIT_REG[low.bit_length() - 1])
        mask ^= low
    return frozenset(out)


EXIT_LIVE_MASK = mask_of(EXIT_LIVE)
CALL_USES_MASK = mask_of(CALL_USES)
CALL_KILLS_MASK = mask_of(CALL_KILLS)
ALL_REGS_MASK = mask_of(ALL_REGS)


def _insn_masks(insn: Insn, block: Block | None = None) -> tuple[int, int]:
    """Per-instruction (uses, defs) as masks, with call augmentation —
    the bitmask twin of :func:`insn_uses_defs`."""
    uses = mask_of(insn.read_set())
    defs = mask_of(insn.write_set())
    if block is not None and insn is block.last:
        kinds = {e.kind for e in block.out_edges}
        if EdgeType.CALL in kinds:
            uses |= CALL_USES_MASK
            defs |= CALL_KILLS_MASK
        if EdgeType.TAILCALL in kinds:
            uses |= CALL_USES_MASK
    return uses, defs


def _block_flow(block: Block) -> tuple[int, int]:
    """(use, def) mask summary of a block for backward liveness."""
    use = 0
    defs = 0
    for insn in block.insns:
        u, d = _insn_masks(insn, block)
        use |= u & ~defs
        defs |= d
    return use, defs


def insn_uses_defs(insn: Insn, block: Block | None = None
                   ) -> tuple[set[Register], set[Register]]:
    """Per-instruction (uses, defs), with call-site augmentation when the
    instruction terminates a call block."""
    uses = insn.read_set()
    defs = insn.write_set()
    if block is not None and insn is block.last:
        kinds = {e.kind for e in block.out_edges}
        if EdgeType.CALL in kinds:
            uses |= CALL_USES
            defs |= CALL_KILLS
        if EdgeType.TAILCALL in kinds:
            uses |= CALL_USES
    return uses, defs


@dataclass
class LivenessResult:
    """Fixpoint solution: live-in/live-out per block, with
    per-instruction queries.

    The constructor keeps its frozenset-based signature (interprocedural
    analysis and external callers build these directly); results from
    :func:`analyze_liveness` additionally carry bitmask tables
    (``_out_masks``) that the per-instruction queries prefer.
    """

    function: Function
    live_in: dict[int, frozenset[Register]]
    live_out: dict[int, frozenset[Register]]

    #: block start -> live-out mask (set by analyze_liveness; absent on
    #: hand-built / interprocedural results, which use the set path)
    _out_masks = None

    def live_before(self, addr: int) -> frozenset[Register]:
        """Registers live immediately before the instruction at *addr*."""
        block = self.function.block_at(addr)
        if block is None:
            raise KeyError(f"{addr:#x} is not in function "
                           f"{self.function.name!r}")
        masks = self._out_masks
        if masks is not None:
            live = masks.get(block.start, ALL_REGS_MASK)
            for insn in reversed(block.insns):
                u, d = _insn_masks(insn, block)
                live = (live & ~d) | u
                if insn.address == addr:
                    return regs_of(live)
            raise KeyError(f"{addr:#x} not at an instruction boundary")
        live = set(self.live_out.get(block.start, ALL_REGS))
        for insn in reversed(block.insns):
            u, d = insn_uses_defs(insn, block)
            live -= d
            live |= u
            if insn.address == addr:
                return frozenset(live)
        raise KeyError(f"{addr:#x} not at an instruction boundary")

    def dead_before(self, addr: int,
                    candidates: tuple[Register, ...] | None = None
                    ) -> list[Register]:
        """Registers (from *candidates*, default: caller-saved ints) that
        are dead at *addr* — free scratch for instrumentation."""
        from ..riscv.registers import SCRATCH_CANDIDATES

        live = self.live_before(addr)
        pool = candidates if candidates is not None else SCRATCH_CANDIDATES
        return [r for r in pool if r not in live]


# -- snapshots ------------------------------------------------------------
#
# Liveness results serialize as their bitmask tables — the exact
# internal representation the fixpoint computes — so revival performs
# zero dataflow work: masks are copied in and the frozenset views are
# expanded once.  Consumed by the content-addressed artifact store.

def liveness_to_snapshot(result: LivenessResult) -> dict:
    """Serialize one function's fixpoint solution (JSON-ready)."""
    masks = result._out_masks
    if masks is not None:
        out = {a: masks[a] for a in result.live_out}
    else:
        out = {a: mask_of(s) for a, s in result.live_out.items()}
    return {
        "in": [[a, mask_of(s)] for a, s in sorted(result.live_in.items())],
        "out": [[a, out[a]] for a in sorted(out)],
    }


def liveness_from_snapshot(fn: Function, data: dict) -> LivenessResult:
    """Revive a :class:`LivenessResult` for *fn* without re-solving."""
    in_masks = {a: m for a, m in data["in"]}
    out_masks = {a: m for a, m in data["out"]}
    result = LivenessResult(
        fn,
        {a: regs_of(m) for a, m in in_masks.items()},
        {a: regs_of(m) for a, m in out_masks.items()},
    )
    result._out_masks = out_masks
    return result


def analyze_liveness(fn: Function) -> LivenessResult:
    """Solve backward may-liveness over the function's blocks.

    The fixpoint iterates on int bitmasks; the result exposes the usual
    frozenset dicts (plus the mask tables for fast queries).
    """
    rec = telemetry.current()
    t0 = time.perf_counter() if rec.enabled else 0.0
    blocks = fn.blocks
    summaries = {a: _block_flow(b) for a, b in blocks.items()}

    # successor map (intraprocedural) + exit seeding
    succs: dict[int, list[int]] = {}
    seed: dict[int, int] = {}
    for addr, block in blocks.items():
        succs[addr] = fn.intraproc_successors(block)
        s = 0
        for e in block.out_edges:
            if e.kind in (EdgeType.RET, EdgeType.TAILCALL):
                s |= EXIT_LIVE_MASK
            elif not e.resolved or (
                    e.kind is EdgeType.INDIRECT and e.target is None):
                s |= ALL_REGS_MASK  # unresolved flow: fail safe
            elif e.kind is EdgeType.CALL and e.target is None:
                s |= ALL_REGS_MASK
        if not block.out_edges:
            s |= EXIT_LIVE_MASK  # fell off the parse: conservative
        seed[addr] = s

    in_masks: dict[int, int] = {a: 0 for a in blocks}
    out_masks: dict[int, int] = {a: 0 for a in blocks}

    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for addr in blocks:
            out = seed[addr]
            for s in succs[addr]:
                out |= in_masks[s]
            use, defs = summaries[addr]
            inn = use | (out & ~defs)
            if out != out_masks[addr] or inn != in_masks[addr]:
                out_masks[addr] = out
                in_masks[addr] = inn
                changed = True

    live_in = {a: regs_of(v) for a, v in in_masks.items()}
    live_out = {a: regs_of(v) for a, v in out_masks.items()}
    result = LivenessResult(fn, live_in, live_out)
    result._out_masks = out_masks
    if rec.enabled:
        rec.record_span("liveness.analyze", time.perf_counter() - t0)
        rec.count("liveness.functions")
        rec.count("liveness.fixpoint_iterations", iterations)
        rec.observe("liveness.blocks_per_function", len(blocks))
    return result
