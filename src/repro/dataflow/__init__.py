"""DataflowAPI: liveness, slicing, constant resolution, stack height,
dominators."""

from ..parse.loops import dominators
from .constprop import resolve_register
from .liveness import (
    ALL_REGS, CALL_KILLS, CALL_USES, EXIT_LIVE, LivenessResult,
    analyze_liveness, insn_uses_defs,
)
from .slicing import (
    MEM, SliceGraph, backward_slice, build_slice_graph, forward_slice,
    insn_defs, insn_uses,
)
from .interproc import (
    CONSERVATIVE, FunctionSummary, InterproceduralLiveness,
    analyze_interprocedural,
)
from .stackheight import BOTTOM, StackHeightResult, analyze_stack_height

__all__ = [
    "dominators", "resolve_register",
    "ALL_REGS", "CALL_KILLS", "CALL_USES", "EXIT_LIVE", "LivenessResult",
    "analyze_liveness", "insn_uses_defs",
    "MEM", "SliceGraph", "backward_slice", "build_slice_graph",
    "forward_slice", "insn_defs", "insn_uses",
    "BOTTOM", "StackHeightResult", "analyze_stack_height",
    "CONSERVATIVE", "FunctionSummary", "InterproceduralLiveness",
    "analyze_interprocedural",
]
