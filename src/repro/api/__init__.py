"""High-level toolkit facade (the BPatch analogue).

Two complementary surfaces:

* the **immutable analysis** surface — :func:`analyze` produces a
  frozen, shareable :class:`Analysis` (symtab + CFG + liveness),
  content-addressed through :mod:`repro.artifacts` so byte-identical
  binaries never re-pay parse/classification/liveness;
* the **mutable session** surface — :func:`open_binary` /
  :class:`BinaryEdit` context managers that *borrow* an analysis and
  own only per-session patch state, with :class:`InstrumentOptions`
  configuration, the :class:`ReproError`-rooted exception hierarchy,
  and per-session telemetry snapshots.

Many concurrent sessions — including remote ones served by
:mod:`repro.service` — share one :class:`Analysis`.
"""

from ..errors import ReproError
from .analysis import Analysis, AnalysisMismatchError, analyze
from .bpatch import (
    BinaryEdit, attach, load_rewritten, one_time_code, open_binary,
)
from .errors import AlreadyCommittedError, ApiError, ClosedEditError
from .options import DEFAULT_OPTIONS, InstrumentOptions
from .tracesession import TraceSession

__all__ = [
    "AlreadyCommittedError", "Analysis", "AnalysisMismatchError",
    "ApiError", "BinaryEdit", "ClosedEditError", "DEFAULT_OPTIONS",
    "InstrumentOptions", "ReproError", "TraceSession", "analyze",
    "attach", "load_rewritten", "one_time_code", "open_binary",
]
