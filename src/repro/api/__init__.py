"""High-level toolkit facade (the BPatch analogue).

The v2 session surface: :func:`open_binary` (a context manager),
:class:`InstrumentOptions` configuration, the :class:`ReproError`-rooted
exception hierarchy, and per-session telemetry snapshots.
"""

from ..errors import ReproError
from .bpatch import (
    AlreadyCommittedError, ApiError, BinaryEdit, ClosedEditError, attach,
    load_rewritten, one_time_code, open_binary,
)
from .options import DEFAULT_OPTIONS, InstrumentOptions
from .tracesession import TraceSession

__all__ = [
    "AlreadyCommittedError", "ApiError", "BinaryEdit", "ClosedEditError",
    "DEFAULT_OPTIONS", "InstrumentOptions", "ReproError", "TraceSession",
    "attach", "load_rewritten", "one_time_code", "open_binary",
]
