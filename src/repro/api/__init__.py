"""High-level toolkit facade (the BPatch analogue)."""

from .bpatch import (
    ApiError, BinaryEdit, attach, load_rewritten, one_time_code,
    open_binary,
)

__all__ = ["ApiError", "BinaryEdit", "attach", "load_rewritten",
           "one_time_code", "open_binary"]
