"""API v2 execution tracing: :class:`TraceSession`.

:meth:`repro.api.BinaryEdit.trace` runs the (optionally instrumented)
mutatee under an attached event stream and hands back one object that
bundles the raw events with every consumer the toolkit ships: call-span
reconstruction, Perfetto/Chrome trace JSON, folded-stack flamegraph
text, and per-block heat counts for annotated disassembly.

    with open_binary(program) as edit:
        session = edit.trace()
        session.write_perfetto("out.json")
        session.write_flamegraph("out.folded")
        print(session.hot_functions()[:3])
"""

from __future__ import annotations

from ..sim.machine import Machine, StopEvent
from ..sim.timing import P550, TimingModel
from ..telemetry.events import DEFAULT_CAPACITY, EventStream
from ..tracing import (
    CallSpan, SymbolIndex, block_heat, call_spans, folded_stacks,
    format_folded, perfetto_trace,
)

import json


class TraceSession:
    """A completed traced run: events plus derived views.

    Construct through :meth:`repro.api.BinaryEdit.trace` (or directly
    from any machine/stream pair).  Derived artefacts (call spans,
    folded stacks, heat) are computed lazily and cached.
    """

    def __init__(self, machine: Machine, stream: EventStream,
                 stop: StopEvent, symbols: SymbolIndex,
                 snapshot: dict | None = None):
        self.machine = machine
        self.stream = stream
        self.stop = stop
        self.symbols = symbols
        #: telemetry snapshot taken after the run (pipeline timeline for
        #: the Perfetto export), when a recorder was active
        self.snapshot = snapshot
        self._spans: list[CallSpan] | None = None

    # -- raw + derived views --------------------------------------------

    @property
    def events(self) -> list[tuple]:
        """The retained events, oldest first."""
        return self.stream.events()

    @property
    def spans(self) -> list[CallSpan]:
        """Reconstructed mutatee call activations (cached)."""
        if self._spans is None:
            self._spans = call_spans(self.events, self.symbols)
        return self._spans

    def heat(self) -> dict[int, int]:
        """Per-block-entry execution counts."""
        return block_heat(self.events)

    def folded(self, weight: str = "ucycles") -> dict[tuple[str, ...], int]:
        """Folded stacks: ``{root-to-leaf name path: self weight}``."""
        return folded_stacks(self.spans, weight=weight)

    def hot_functions(self, weight: str = "ucycles") -> list[tuple[str, int]]:
        """Functions by self weight, heaviest first."""
        per_fn: dict[str, int] = {}
        for stack, w in self.folded(weight=weight).items():
            per_fn[stack[-1]] = per_fn.get(stack[-1], 0) + w
        return sorted(per_fn.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- exporters -------------------------------------------------------

    def _to_us(self, ucycles: int) -> float:
        return self.machine.timing.nanoseconds(ucycles) / 1000.0

    def perfetto(self) -> dict:
        """The Chrome trace-event document (mutatee spans on the
        simulated clock; pipeline spans when a timeline-enabled
        telemetry snapshot was captured)."""
        return perfetto_trace(self.spans, events=self.events,
                              snapshot=self.snapshot, to_us=self._to_us)

    def write_perfetto(self, path) -> dict:
        doc = self.perfetto()
        with open(path, "w") as f:
            json.dump(doc, f)
        return doc

    def write_flamegraph(self, path, weight: str = "ucycles") -> None:
        with open(path, "w") as f:
            f.write(format_folded(self.folded(weight=weight)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TraceSession {len(self.stream)} events, "
                f"{len(self.spans)} spans, stop={self.stop.reason.value}>")


def run_traced(symtab, cfg, patch_result=None, *,
               timing: TimingModel = P550,
               max_steps: int | None = None,
               max_instructions: int | None = None,
               granularity: str = "instruction",
               capacity: int = DEFAULT_CAPACITY,
               snapshot: dict | None = None) -> TraceSession:
    """Load *symtab* into a fresh machine, apply *patch_result* (if
    any), run with an attached event stream, and wrap the results.

    When the *max_instructions* budget is exceeded the machine's
    :class:`~repro.sim.machine.InstructionBudgetExceeded` propagates,
    but the events captured so far are not lost: the partial session
    (stop reason FAULT) is attached to the exception as ``.session``
    before the re-raise.
    """
    from ..sim.machine import InstructionBudgetExceeded, StopReason

    m = Machine(timing)
    symtab.load_into(m)
    if patch_result is not None:
        patch_result.apply_to_machine(m)
    stream = EventStream(capacity=capacity, granularity=granularity)
    try:
        stop = m.run(max_steps, trace=stream,
                     max_instructions=max_instructions)
    except InstructionBudgetExceeded as e:
        stop = StopEvent(StopReason.FAULT, e.pc, fault=str(e))
        e.session = TraceSession(m, stream, stop,
                                 SymbolIndex.from_code_object(cfg),
                                 snapshot=snapshot)
        raise
    return TraceSession(m, stream, stop,
                        SymbolIndex.from_code_object(cfg),
                        snapshot=snapshot)
