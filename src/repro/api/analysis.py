"""The immutable analysis surface: :func:`analyze` and
:class:`Analysis`.

The v1/v2 ``open_binary`` coupled two very different lifetimes in one
object: *analysis results* (symtab, CFG, liveness — pure functions of
the binary's bytes) and *per-session patch state* (queued snippets, the
data area, commit status).  This module owns the first half:

* :func:`analyze` turns ELF bytes / a path / a :class:`Program` /
  a :class:`Symtab` into a frozen :class:`Analysis`;
* an :class:`Analysis` is **immutable and shareable** — any number of
  concurrent :class:`~repro.api.bpatch.BinaryEdit` sessions borrow one
  analysis (the session service runs N clients against a single
  revived instance);
* analyses are **content-addressed**: given an artifact store
  (:mod:`repro.artifacts`), :func:`analyze` revives parse/CFG and
  liveness from the store when the (sha256 of bytes, analysis options,
  schema version) key hits, paying zero parse/classification/liveness
  recomputation — telemetry-verifiably so (no ``parse.*`` spans, no
  ``liveness.*`` counters on a warm open).

Typical flows::

    a = analyze("build/mutatee")                  # cold: parses, stores
    with BinaryEdit(a) as edit:                   # borrows, never copies
        ...

    a = analyze(elf_bytes, store="~/.cache/repro")  # warm: revived
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path

from .. import telemetry
from ..artifacts import ArtifactStore, artifact_key, content_digest
from ..dataflow.interproc import (
    analyze_interprocedural, interproc_from_snapshot,
    interproc_to_snapshot,
)
from ..dataflow.liveness import (
    LivenessResult, analyze_liveness, liveness_from_snapshot,
    liveness_to_snapshot,
)
from ..errors import ReproError
from ..parse.parser import CodeObject, parse_binary
from ..parse.serialize import cfg_from_snapshot, cfg_to_snapshot
from ..riscv.assembler import Program
from ..symtab.symtab import Symtab
from .errors import ApiError
from .options import DEFAULT_OPTIONS, InstrumentOptions

#: kinds accepted by :func:`analyze` / :func:`repro.api.open_binary`
SOURCE_KINDS = "bytes, Program, Symtab, or an ELF path (str | os.PathLike)"


def _resolve_source(source) -> tuple[Symtab, bytes | None, str | None]:
    """Normalize an analyze/open_binary source.

    Returns ``(symtab, content_bytes, source_path)`` — *content_bytes*
    is the hashable raw image when one exists (bytes and path sources);
    Program/Symtab sources are hashed structurally instead.
    """
    if isinstance(source, Symtab):
        return source, None, None
    if isinstance(source, Program):
        return Symtab.from_program(source), None, None
    if isinstance(source, (bytes, bytearray)):
        data = bytes(source)
        return Symtab.from_bytes(data), data, None
    if isinstance(source, (str, os.PathLike)):
        path = Path(source)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise ApiError(f"cannot read ELF at {path}: {exc}") from exc
        return Symtab.from_bytes(data), data, str(path)
    raise ApiError(
        f"cannot open {type(source).__name__}: expected {SOURCE_KINDS}")


def _symtab_digest(symtab: Symtab) -> str:
    """Structural content digest for sources with no canonical ELF
    image (assembled Programs, hand-built Symtabs): entry, regions
    (placement, flags, bytes), symbols, ISA."""
    h = hashlib.sha256()
    h.update(f"symtab|{symtab.entry:#x}|{symtab.isa}".encode())
    for r in symtab.regions:
        h.update(f"|{r.name}@{r.addr:#x}+{r.mem_size or len(r.data)}"
                 f"{'x' if r.executable else '-'}|".encode())
        h.update(r.data)
    for name, sym in sorted(symtab.symbols.items()):
        h.update(f"|{name}@{sym.address:#x}:{sym.kind}".encode())
    return h.hexdigest()


class AnalysisMismatchError(ApiError):
    """A session asked for analysis options incompatible with the
    :class:`Analysis` it borrows (re-run :func:`analyze` instead)."""


class Analysis:
    """Frozen analysis bundle: symtab + CFG + liveness for one binary.

    Immutable after construction (attribute assignment raises), so one
    instance is safely shared by any number of concurrent sessions,
    threads, and (through the artifact store) processes.  Produced by
    :func:`analyze`; consumed by :class:`~repro.api.bpatch.BinaryEdit`,
    which *borrows* it.
    """

    __slots__ = ("symtab", "options", "cfg", "key", "source_path",
                 "revived", "_liveness", "_interproc", "_store",
                 "_frozen")

    def __init__(self, symtab: Symtab, options: InstrumentOptions,
                 cfg: CodeObject, liveness: dict[int, LivenessResult],
                 *, interproc=None, key: str | None = None,
                 store: ArtifactStore | None = None,
                 source_path: str | None = None, revived: bool = False):
        self.symtab = symtab
        self.options = options
        self.cfg = cfg
        self.key = key
        self.source_path = source_path
        #: True when this analysis came out of the artifact store
        self.revived = revived
        self._liveness = liveness
        self._interproc = interproc
        self._store = store
        self._frozen = True

    def __setattr__(self, name, value):
        if getattr(self, "_frozen", False):
            raise AttributeError(
                "Analysis is immutable; derive a new one with analyze()")
        object.__setattr__(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        key = (self.key or "unkeyed")[:12]
        return (f"<Analysis {key} {len(self.cfg.functions)} functions"
                f"{' (revived)' if self.revived else ''}>")

    # -- queries ---------------------------------------------------------

    @property
    def isa(self):
        return self.symtab.isa

    def functions(self):
        return sorted(self.cfg.functions.values(), key=lambda f: f.entry)

    def function(self, name: str):
        fn = self.cfg.function_by_name(name)
        if fn is None:
            raise ApiError(f"no function named {name!r}")
        return fn

    def result_for(self, fn) -> LivenessResult | None:
        """The precomputed liveness of one function (the provider
        protocol :class:`~repro.patch.patcher.Patcher` consumes).
        ``None`` for functions this analysis does not know."""
        res = self._liveness.get(fn.entry)
        if res is None and self._interproc is not None \
                and fn.entry in self.cfg.functions:
            res = self._interproc.result_for(fn)
        return res

    liveness_for = result_for

    # -- artifact-store integration --------------------------------------

    @property
    def store(self) -> ArtifactStore | None:
        return self._store

    def trace_store(self):
        """A :class:`repro.sim.persist.TraceStore` rooted inside this
        analysis's artifact directory (compiled-trace snapshots ride
        with the analysis), or ``None`` when unkeyed/storeless."""
        if self._store is None or self.key is None:
            return None
        from ..sim.persist import TraceStore

        return TraceStore(self._store.dir_for(self.key))

    def attach_traces(self, machine) -> int:
        """Revive persisted compiled traces (PR 6 snapshots) for a
        machine loaded with this binary.  Returns traces materialized
        (0 without a store)."""
        ts = self.trace_store()
        return ts.load(machine) if ts is not None else 0

    def save_traces(self, machine) -> bool:
        """Persist the machine's compiled traces next to the analysis
        artifact.  Returns False without a store."""
        ts = self.trace_store()
        if ts is None:
            return False
        ts.save(machine)
        return True

    # -- (de)serialization ----------------------------------------------

    def to_payload(self) -> dict:
        """The JSON-ready artifact payload (CFG + liveness snapshots)."""
        if self._interproc is not None:
            liveness = {"kind": "interproc",
                        "interproc": interproc_to_snapshot(self._interproc)}
        else:
            liveness = {"kind": "intra",
                        "functions": [
                            [entry, liveness_to_snapshot(res)]
                            for entry, res in sorted(self._liveness.items())
                        ]}
        return {"cfg": cfg_to_snapshot(self.cfg), "liveness": liveness}

    @classmethod
    def from_payload(cls, symtab: Symtab, options: InstrumentOptions,
                     payload: dict, *, key: str | None = None,
                     store: ArtifactStore | None = None,
                     source_path: str | None = None) -> "Analysis":
        """Revive an analysis from a stored payload — no parse, no
        liveness solve.  Raises :class:`ReproError` subclasses on a
        snapshot that is malformed or disagrees with *symtab* (the
        store treats that as a stale miss)."""
        cfg = cfg_from_snapshot(symtab, payload["cfg"])
        lv = payload["liveness"]
        interproc = None
        liveness: dict[int, LivenessResult] = {}
        if lv.get("kind") == "interproc":
            interproc = interproc_from_snapshot(cfg, lv["interproc"])
            liveness = dict(interproc._results)
        else:
            for entry, snap in lv.get("functions", ()):
                fn = cfg.functions.get(entry)
                if fn is None:
                    raise ApiError(
                        f"liveness snapshot names unknown function "
                        f"{entry:#x}")
                liveness[entry] = liveness_from_snapshot(fn, snap)
        return cls(symtab, options, cfg, liveness, interproc=interproc,
                   key=key, store=store, source_path=source_path,
                   revived=True)


def _compute_analysis(symtab: Symtab,
                      options: InstrumentOptions) -> tuple:
    """The cold path: parse + whole-binary liveness."""
    cfg = parse_binary(symtab, gap_parsing=options.gap_parsing)
    interproc = None
    liveness: dict[int, LivenessResult] = {}
    if options.interprocedural_liveness:
        interproc = analyze_interprocedural(cfg)
        for fn in cfg.functions.values():
            liveness[fn.entry] = interproc.result_for(fn)
    else:
        for fn in cfg.functions.values():
            liveness[fn.entry] = analyze_liveness(fn)
    return cfg, liveness, interproc


def _resolve_store(store) -> ArtifactStore | None:
    if store is None:
        return ArtifactStore.default()
    if store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    if isinstance(store, (str, os.PathLike)):
        return ArtifactStore(store)
    raise ApiError(
        f"store must be an ArtifactStore, path, None, or False; "
        f"got {type(store).__name__}")


def analyze(source, options: InstrumentOptions | None = None, *,
            store=None) -> Analysis:
    """Analyze a binary into a frozen, shareable :class:`Analysis`.

    *source* is ELF ``bytes``, an ELF path (``str | os.PathLike``), an
    assembled :class:`Program`, or a :class:`Symtab`.  *options*
    configures the analysis (only its
    :attr:`~repro.api.InstrumentOptions.ANALYSIS_FIELDS` matter here).

    *store* selects the content-addressed artifact store: an
    :class:`~repro.artifacts.ArtifactStore`, a directory path, ``None``
    (use ``$REPRO_ARTIFACTS`` when set, else no caching), or ``False``
    (never cache).  With a store, a byte-identical binary analyzed
    under the same analysis options revives the stored CFG/liveness —
    counted under ``artifacts.hits`` — instead of recomputing.
    """
    opts = options if options is not None else DEFAULT_OPTIONS
    if not isinstance(opts, InstrumentOptions):
        raise ApiError(
            f"options must be an InstrumentOptions, "
            f"got {type(opts).__name__}")
    symtab, content, path = _resolve_source(source)
    st = _resolve_store(store)

    key = None
    if st is not None:
        digest = (content_digest(content) if content is not None
                  else _symtab_digest(symtab))
        key = artifact_key(digest, opts.analysis_fields())
        payload = st.load(key)
        if payload is not None:
            with telemetry.current().span("artifacts.revive"):
                try:
                    return Analysis.from_payload(
                        symtab, opts, payload, key=key, store=st,
                        source_path=path)
                except ReproError:
                    # stored artifact disagrees with the binary —
                    # treat as stale and recompute
                    telemetry.current().count("artifacts.stale")

    cfg, liveness, interproc = _compute_analysis(symtab, opts)
    analysis = Analysis(symtab, opts, cfg, liveness,
                        interproc=interproc, key=key, store=st,
                        source_path=path)
    if st is not None and key is not None:
        meta = {"created_at": time.time(),
                "options": opts.analysis_fields(),
                "functions": len(cfg.functions)}
        paths = set(st.meta(key).get("source_paths", ()))
        if path:
            paths.add(path)
        meta["source_paths"] = sorted(paths)
        st.store(key, analysis.to_payload(), meta=meta)
    return analysis
