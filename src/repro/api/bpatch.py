"""The high-level toolkit facade (Dyninst's BPatch layer).

One import gives tools the whole stack with the paper's Figure 1 flows:

* **static rewriting** — :func:`open_binary` -> :class:`BinaryEdit` ->
  instrument -> :meth:`BinaryEdit.rewrite` -> new executable;
* **dynamic, create** — :meth:`BinaryEdit.create_process` (stopped at
  entry) -> instrument -> run;
* **dynamic, attach** — :func:`attach` to a running simulator machine ->
  instrument -> resume.

Tools written against this layer contain no RISC-V specifics: points and
snippets are the machine-independent abstractions of §2.2.

The v2 session surface, completed by this PR's Analysis/BinaryEdit
split:

* **analysis is immutable and shared**: :func:`repro.api.analyze`
  produces a frozen :class:`~repro.api.analysis.Analysis` (symtab +
  CFG + liveness) that any number of concurrent :class:`BinaryEdit`
  sessions *borrow* — and that the content-addressed artifact store
  (:mod:`repro.artifacts`) caches across processes;
* configuration travels in a frozen :class:`InstrumentOptions`; the
  legacy boolean keywords finished their deprecation cycle and now
  raise :class:`ApiError` with a migration hint;
* :func:`open_binary` returns a context-manager session —
  ``with open_binary(prog) as edit: ...`` — and accepts an ELF path
  alongside bytes/Program/Symtab/Analysis;
* :meth:`BinaryEdit.batch` scopes a group of insertions and commits
  them once on exit;
* every user mistake raises an :class:`ApiError` (a
  :class:`repro.errors.ReproError`), never a bare builtin;
* :attr:`BinaryEdit.telemetry` exposes the pipeline's telemetry
  snapshot (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .. import telemetry
from ..codegen.snippets import Snippet, Variable
from ..errors import ReproError  # noqa: F401  (re-exported surface)
from ..parse.cfg import Function
from ..parse.parser import CodeObject
from ..patch.patcher import Patcher, PatchResult
from ..patch.points import Point, PointType, points_for
from ..patch.rewriter import load_instrumented, rewrite
from ..proccontrol.process import Process
from ..riscv.assembler import Program
from ..sim.machine import Machine
from ..sim.timing import P550, TimingModel
from ..symtab.symtab import Symtab
from .analysis import (
    SOURCE_KINDS, Analysis, AnalysisMismatchError, analyze,
)
from .errors import AlreadyCommittedError, ApiError, ClosedEditError
from .options import InstrumentOptions

#: sentinel distinguishing "not passed" from any real value
_UNSET = object()

#: the v1 boolean keywords, now two PRs past their deprecation cycle
_LEGACY_KWARGS = ("gap_parsing", "use_dead_registers", "patch_base")


def _reject_legacy_kwargs(legacy: dict) -> None:
    """The v1 boolean keywords emitted ``DeprecationWarning`` for two
    releases; the cycle is over and they now fail loudly with the
    migration spelled out."""
    passed = sorted(k for k, v in legacy.items() if v is not _UNSET)
    if passed:
        hints = ", ".join(f"{k}=..." for k in passed)
        raise ApiError(
            f"the legacy keyword argument(s) {', '.join(passed)} were "
            f"removed after their deprecation cycle; pass "
            f"options=InstrumentOptions({hints}) instead "
            f"(see docs/TELEMETRY.md, 'v2 API surface')")


def open_binary(source: bytes | Program | Symtab | Analysis | str
                | os.PathLike,
                options: InstrumentOptions | None = None, *,
                store=None,
                gap_parsing=_UNSET, use_dead_registers=_UNSET,
                patch_base=_UNSET) -> "BinaryEdit":
    """Open a mutatee for analysis and instrumentation.

    Accepts raw ELF bytes, a filesystem path to an ELF (``str`` or
    :class:`os.PathLike`), an assembled/compiled :class:`Program`, an
    existing :class:`Symtab`, or an already-computed
    :class:`~repro.api.analysis.Analysis` (the shared-analysis flow).
    The returned :class:`BinaryEdit` is a context manager::

        with open_binary(program) as edit:
            edit.insert(edit.points("main", PointType.FUNC_ENTRY), snip)
            blob = edit.rewrite()

    Configuration goes in *options* (an :class:`InstrumentOptions`).
    *store* is forwarded to :func:`repro.api.analyze` — with an
    artifact store, re-opening a byte-identical binary revives the
    cached analysis instead of re-parsing.  For many sessions against
    one binary, call :func:`analyze` once and hand each session the
    result (``BinaryEdit(analysis)``).
    """
    _reject_legacy_kwargs(dict(
        gap_parsing=gap_parsing, use_dead_registers=use_dead_registers,
        patch_base=patch_base))
    if isinstance(source, Analysis):
        return BinaryEdit(source, options)
    analysis = analyze(source, options, store=store)
    return BinaryEdit(analysis, options)


class BinaryEdit:
    """One mutatee *session*: snippet insertion and commit state over a
    borrowed, immutable :class:`~repro.api.analysis.Analysis`.

    The split matters for sharing: the analysis half (symtab, CFG,
    liveness) is read-only and safely referenced by N concurrent
    sessions; everything mutable — queued requests, the data area, the
    commit result — lives here, one instance per session.  Usable
    directly or as a context manager (the session closes on scope
    exit; a closed session rejects further instrumentation)."""

    def __init__(self, source: Analysis | Symtab,
                 options: InstrumentOptions | None = None, *,
                 gap_parsing=_UNSET, use_dead_registers=_UNSET,
                 patch_base=_UNSET):
        _reject_legacy_kwargs(dict(
            gap_parsing=gap_parsing,
            use_dead_registers=use_dead_registers,
            patch_base=patch_base))
        if isinstance(source, Analysis):
            analysis = source
            opts = options if options is not None else analysis.options
            if opts.analysis_fields() != analysis.options.analysis_fields():
                raise AnalysisMismatchError(
                    "session options disagree with the borrowed "
                    f"Analysis on {sorted(opts.ANALYSIS_FIELDS)}; "
                    "run analyze() with the new options instead")
        elif isinstance(source, Symtab):
            # direct-Symtab compatibility: analyze in place (no store)
            analysis = analyze(source, options, store=False)
            opts = analysis.options
        else:
            raise ApiError(
                f"BinaryEdit takes an Analysis or Symtab, got "
                f"{type(source).__name__}; for {SOURCE_KINDS} use "
                f"open_binary()/analyze()")
        self.analysis = analysis
        self.symtab = analysis.symtab
        self.options = opts
        self._telemetry = telemetry.current()
        self.cfg: CodeObject = analysis.cfg
        self._patcher = Patcher(
            self.symtab, self.cfg,
            use_dead_registers=opts.use_dead_registers,
            patch_base=opts.patch_base,
            data_size=opts.data_size,
            interprocedural_liveness=opts.interprocedural_liveness,
            liveness=analysis)
        self._result: PatchResult | None = None
        self._closed = False
        self._in_batch = False

    # -- session lifecycle -------------------------------------------------

    def __enter__(self) -> "BinaryEdit":
        if self._closed:
            raise ClosedEditError("BinaryEdit session already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """End the session.  Idempotent; analysis results stay readable
        but further instrumentation raises :class:`ClosedEditError`."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def telemetry(self) -> dict:
        """Snapshot of the telemetry recorder observing this session
        (empty unless telemetry is enabled — see
        :mod:`repro.telemetry`)."""
        return self._telemetry.snapshot()

    # -- analysis ----------------------------------------------------------

    @property
    def isa(self):
        """The mutatee's ISA subset (SymtabAPI's extension discovery)."""
        return self.symtab.isa

    def functions(self) -> list[Function]:
        return sorted(self.cfg.functions.values(), key=lambda f: f.entry)

    def function(self, name: str) -> Function:
        fn = self.cfg.function_by_name(name)
        if fn is None:
            raise ApiError(f"no function named {name!r}")
        return fn

    def points(self, fn: Function | str, ptype: PointType) -> list[Point]:
        """Enumerate instrumentation points of one kind in a function."""
        if isinstance(fn, str):
            fn = self.function(fn)
        return points_for(fn, ptype)

    # -- instrumentation ---------------------------------------------------------

    def allocate_variable(self, name: str, size: int = 8) -> Variable:
        return self._patcher.allocate_var(name, size)

    def insert(self, points: Point | list[Point], snippet: Snippet) -> None:
        """Queue the Dyninst (P, AST) insertion."""
        self._ensure_uncommitted()
        self._patcher.insert(points, snippet)

    def replace_function(self, old: Function | str,
                         new: Function | str) -> None:
        """Divert every call of *old* into *new* (Dyninst's
        replaceFunction)."""
        self._ensure_uncommitted()
        if isinstance(old, str):
            old = self.function(old)
        if isinstance(new, str):
            new = self.function(new)
        self._patcher.replace_function(old, new.entry)

    def replace_call(self, point: Point, new: Function | str) -> None:
        """Retarget one call site to a different function."""
        self._ensure_uncommitted()
        if isinstance(new, str):
            new = self.function(new)
        self._patcher.replace_call(point, new.entry)

    def delete_instruction(self, point: Point) -> None:
        """Remove the instruction at *point* from the execution (combine
        with :meth:`insert` at the same point to *modify* it)."""
        self._ensure_uncommitted()
        self._patcher.delete_instruction(point)

    @contextmanager
    def batch(self):
        """Scope a group of ``insert``/``replace_*`` calls and commit
        them once on exit::

            with edit.batch() as b:
                b.insert(entry_points, IncrementVar(calls))
                b.replace_call(site, "fast_path")
            # committed here — exactly once, only on success

        The block body only *queues* requests (exactly like bare
        ``insert`` calls); leaving the block normally triggers the
        single :meth:`commit`.  If the body raises, nothing is
        committed.  Entering a batch on an already-committed (or
        closed) edit raises immediately, and batches do not nest.

        Two-phase semantics all the way down: a failed :meth:`commit`
        leaves the edit uncommitted (retry-safe), and applying the
        result to a live machine is itself transactional — see
        :meth:`~repro.patch.patcher.PatchResult.apply_to_machine` and
        the commit-protocol section of docs/INTERNALS.md.
        """
        self._ensure_uncommitted()
        if self._in_batch:
            raise ApiError("batch() blocks cannot nest")
        self._in_batch = True
        try:
            yield self
        finally:
            self._in_batch = False
        self.commit()

    def commit(self) -> PatchResult:
        """Build all trampolines/springboards (idempotent).

        Pure with respect to any machine: failures here touch nothing
        and may simply be retried; mutation happens only in the
        transactional ``apply_to_machine`` step."""
        if self._closed and self._result is None:
            raise ClosedEditError(
                "cannot commit: BinaryEdit session is closed")
        if self._result is None:
            self._result = self._patcher.commit()
        return self._result

    def _ensure_uncommitted(self) -> None:
        if self._closed:
            raise ClosedEditError(
                "BinaryEdit session is closed; open a new one to "
                "instrument again")
        if self._result is not None:
            raise AlreadyCommittedError(
                "instrumentation already committed; a BinaryEdit "
                "commits once — queue further changes in a new edit "
                "(or group them in one batch() block)")

    # -- the three Figure-1 flows --------------------------------------------------

    def rewrite(self) -> bytes:
        """Static binary rewriting: produce the instrumented ELF."""
        return rewrite(self.symtab, self.commit())

    def create_process(self, timing: TimingModel = P550,
                       instrumented: bool = True) -> Process:
        """Dynamic (create): new process stopped at entry, optionally
        with the queued instrumentation already applied."""
        proc = Process.create(self.symtab, timing=timing)
        if instrumented and self._patcher._requests:
            self.commit().apply_to_machine(proc.machine)
        return proc

    def attach_and_instrument(self, machine: Machine) -> Process:
        """Dynamic (attach): take control of a running machine and apply
        the queued instrumentation."""
        proc = Process.attach(machine, self.symtab)
        if self._patcher._requests:
            self.commit().apply_to_machine(machine)
        return proc

    # -- convenience ------------------------------------------------------------------

    def run_instrumented(self, timing: TimingModel = P550,
                         max_steps: int | None = None):
        """Commit, load, run; returns (machine, stop event)."""
        m = Machine(timing)
        self.symtab.load_into(m)
        if self._patcher._requests:
            self.commit().apply_to_machine(m)
        return m, m.run(max_steps)

    def trace(self, timing: TimingModel = P550,
              max_steps: int | None = None, *,
              max_instructions: int | None = None,
              granularity: str = "instruction",
              capacity: int | None = None,
              instrumented: bool = True) -> "TraceSession":
        """Run the mutatee under an execution-event observer and return
        a :class:`~repro.api.tracesession.TraceSession` bundling the
        event stream with its derived views (call spans, Perfetto JSON,
        folded-stack flamegraph, per-block heat)::

            with open_binary(program) as edit:
                session = edit.trace()
                session.write_flamegraph("out.folded")

        *granularity* is ``"instruction"`` (full event vocabulary; the
        simulator deoptimises to its interpreter) or ``"block"``
        (block-enter events only; the trace compiler stays engaged) —
        see the observer-overhead rule in docs/INTERNALS.md.  When the
        process telemetry recorder is timeline-enabled, the session
        carries a snapshot so the Perfetto export gains the pipeline
        track.

        *max_instructions* bounds runaway mutatees: exceeding the
        budget raises
        :class:`~repro.sim.machine.InstructionBudgetExceeded` (a
        catchable :class:`~repro.errors.ReproError`) with the partial
        session — events captured up to the budget — attached as
        ``exc.session``.
        """
        from ..telemetry.events import DEFAULT_CAPACITY
        from .tracesession import run_traced
        if self._closed:
            raise ClosedEditError(
                "cannot trace: BinaryEdit session is closed")
        result = None
        if instrumented and (self._patcher._requests
                             or self._result is not None):
            result = self.commit()
        session = run_traced(
            self.symtab, self.cfg, result, timing=timing,
            max_steps=max_steps, max_instructions=max_instructions,
            granularity=granularity,
            capacity=capacity or DEFAULT_CAPACITY)
        if self._telemetry.enabled:
            session.snapshot = self._telemetry.snapshot()
        return session

    def read_variable(self, machine: Machine, var: Variable) -> int:
        return machine.mem.read_int(var.address, var.size)


def attach(machine: Machine, symtab: Symtab) -> Process:
    """Attach to a running simulator machine (no instrumentation)."""
    return Process.attach(machine, symtab)


#: transient code/data area used by one_time_code (outside normal maps)
_OTC_BASE = 0x7F00_0000


def one_time_code(process: Process, code, *,
                  isa=None, max_steps: int = 100_000):
    """Execute a snippet (or evaluate an expression) in the context of a
    stopped process, immediately — Dyninst's oneTimeCode.

    The payload runs with the mutatee's current register/memory state
    visible; the full hart state is snapshotted and restored afterwards,
    so the mutatee cannot observe the excursion (memory writes the
    snippet performs, of course, persist — that is the point).

    When *code* is an :class:`~repro.codegen.snippets.Expr`, its value
    is returned.
    """
    from ..codegen.generator import SnippetGenerator
    from ..codegen.snippets import (
        Expr as SnExpr, SetVar, Snippet as SnStmt, Variable,
    )
    from ..riscv.encoder import encode
    from ..riscv.extensions import RV64GC
    from ..riscv.registers import SCRATCH_CANDIDATES
    from ..sim.machine import StopReason

    m = process.machine
    result_var = Variable("$otc_result", _OTC_BASE)
    is_expr = isinstance(code, SnExpr)
    snippet: SnStmt = SetVar(result_var, code) if is_expr else code
    if not isinstance(snippet, SnStmt):
        raise ApiError(f"one_time_code takes a Snippet or Expr, "
                       f"got {type(code).__name__}")

    gen = SnippetGenerator(isa or (process.symtab.isa if process.symtab
                                   else RV64GC),
                           list(SCRATCH_CANDIDATES))
    blob = gen.generate(snippet).encode()
    blob += encode("ebreak").to_bytes(4, "little")

    # snapshot hart state
    saved = (list(m.x), list(m.f), m.pc, dict(m.trap_redirects))
    code_base = _OTC_BASE + 64
    m.mem.map_region(_OTC_BASE, len(blob) + 128)
    m.add_exec_range(code_base, code_base + len(blob))
    m.write_mem(code_base, blob)
    m.pc = code_base
    try:
        stop = m.run(max_steps=max_steps)
        if stop.reason is not StopReason.BREAKPOINT or \
                stop.pc != code_base + len(blob) - 4:
            raise ApiError(f"one_time_code did not complete: {stop}")
        if is_expr:
            return m.mem.read_int(result_var.address, 8)
        return None
    finally:
        m.x[:] = saved[0]
        m.f[:] = saved[1]
        m.pc = saved[2]
        m.trap_redirects = saved[3]


def load_rewritten(machine: Machine, elf_bytes: bytes) -> Symtab:
    """Load a statically rewritten binary (installs trap springboard
    redirects)."""
    return load_instrumented(machine, elf_bytes)
