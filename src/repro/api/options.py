"""Instrumentation configuration for the v2 BPatch facade.

One frozen dataclass replaces the boolean-kwarg soup the v1 API grew
(``gap_parsing=...``, ``use_dead_registers=...``, ``patch_base=...``
scattered over :func:`repro.api.open_binary` and
:class:`repro.api.BinaryEdit`).  Options objects are immutable and
reusable across edits::

    opts = InstrumentOptions(use_dead_registers=False)
    with open_binary(prog, options=opts) as edit:
        ...

Derive variants with :meth:`InstrumentOptions.replace`::

    far = opts.replace(patch_base=0x4000_0000)

The legacy boolean keyword forms completed their deprecation cycle and
now raise :class:`repro.api.ApiError` with a migration hint; see
docs/TELEMETRY.md ("v2 API surface") for the migration table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class InstrumentOptions:
    """How a mutatee is parsed and instrumented.

    Attributes
    ----------
    gap_parsing:
        Speculatively parse unclaimed code regions (paper §2.1's gap
        parsing).  Disable for strictly symbol-driven CFGs.
    use_dead_registers:
        Use liveness-proven dead registers as spill-free scratch
        (§4.3's allocation optimisation).  Disable to mimic the legacy
        x86-engine always-spill behaviour.
    patch_base:
        Base address of the instrumentation data + trampoline area;
        ``None`` places it just past the mutatee's highest region.
    interprocedural_liveness:
        Sharpen the scratch search with the interprocedural liveness
        analysis (slower commit, fewer spills).
    data_size:
        Bytes reserved for instrumentation variables (counters, flags)
        below the trampoline area.
    """

    gap_parsing: bool = True
    use_dead_registers: bool = True
    patch_base: int | None = None
    interprocedural_liveness: bool = False
    data_size: int = 0x2_0000

    def replace(self, **changes) -> "InstrumentOptions":
        """A copy with *changes* applied (options are immutable)."""
        return dataclasses.replace(self, **changes)

    #: fields that change what :func:`repro.api.analyze` computes (and
    #: therefore participate in the artifact-store key).  Patch
    #: placement (``patch_base``, ``data_size``) and codegen knobs
    #: (``use_dead_registers``) are per-session: sessions differing
    #: only in those share one cached analysis.
    ANALYSIS_FIELDS = ("gap_parsing", "interprocedural_liveness")

    def analysis_fields(self) -> dict:
        """The analysis-relevant field values (artifact key input)."""
        return {name: getattr(self, name) for name in self.ANALYSIS_FIELDS}


#: the defaults, shared (options are immutable so sharing is safe)
DEFAULT_OPTIONS = InstrumentOptions()

__all__ = ["InstrumentOptions", "DEFAULT_OPTIONS"]
