"""Facade-level errors, shared by :mod:`repro.api.analysis` (the
immutable analysis surface) and :mod:`repro.api.bpatch` (the mutable
session surface)."""

from __future__ import annotations

from ..errors import ReproError


class ApiError(ReproError, RuntimeError):
    """The BPatch facade was misused (bad argument, wrong state...)."""


class AlreadyCommittedError(ApiError):
    """Instrumentation was modified after :meth:`BinaryEdit.commit`.

    A :class:`BinaryEdit` commits exactly once; ``insert`` /
    ``replace_*`` / ``delete_instruction`` calls after that cannot take
    effect and raise this error.  Open a fresh edit (or queue
    everything inside one :meth:`BinaryEdit.batch` block) instead.
    """


class ClosedEditError(ApiError):
    """A :class:`BinaryEdit` session was used after it was closed."""


__all__ = ["ApiError", "AlreadyCommittedError", "ClosedEditError"]
