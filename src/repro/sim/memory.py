"""Sparse paged memory for the RV64GC simulator.

4 KiB pages in a dict, with a one-entry page cache for the common case of
consecutive accesses to the same page.  Accesses to unmapped addresses
raise :class:`MemoryFault` — catching wild pointers early matters more
here than graceful degradation, since the simulator is the testbed for
instrumentation correctness.
"""

from __future__ import annotations

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(Exception):
    """Access to an unmapped address."""

    def __init__(self, addr: int, kind: str = "access"):
        super().__init__(f"memory {kind} fault at {addr:#x}")
        self.addr = addr
        self.kind = kind


class Memory:
    """Sparse byte-addressable memory."""

    __slots__ = ("_pages", "_cache_idx", "_cache_page")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._cache_idx = -1
        self._cache_page: bytearray | None = None

    # -- mapping --------------------------------------------------------

    def map_region(self, base: int, size: int) -> None:
        """Ensure pages covering [base, base+size) exist (zero-filled)."""
        first = base >> PAGE_BITS
        last = (base + size - 1) >> PAGE_BITS
        for idx in range(first, last + 1):
            self._pages.setdefault(idx, bytearray(PAGE_SIZE))

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_BITS) in self._pages

    def mapped_pages(self) -> int:
        return len(self._pages)

    # -- raw byte access -------------------------------------------------

    def _page(self, idx: int, addr: int) -> bytearray:
        if idx == self._cache_idx:
            return self._cache_page  # type: ignore[return-value]
        page = self._pages.get(idx)
        if page is None:
            raise MemoryFault(addr)
        self._cache_idx = idx
        self._cache_page = page
        return page

    def read_bytes(self, addr: int, n: int) -> bytes:
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + n <= PAGE_SIZE:
            return bytes(self._page(idx, addr)[off:off + n])
        out = bytearray()
        while n > 0:
            idx = addr >> PAGE_BITS
            off = addr & PAGE_MASK
            chunk = min(n, PAGE_SIZE - off)
            out += self._page(idx, addr)[off:off + chunk]
            addr += chunk
            n -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        n = len(data)
        pos = 0
        while pos < n:
            idx = addr >> PAGE_BITS
            off = addr & PAGE_MASK
            chunk = min(n - pos, PAGE_SIZE - off)
            self._page(idx, addr)[off:off + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # -- integer access (little-endian) ----------------------------------

    def read_int(self, addr: int, size: int) -> int:
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._page(idx, addr)
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        value &= (1 << (8 * size)) - 1
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._page(idx, addr)
            page[off:off + size] = value.to_bytes(size, "little")
            return
        self.write_bytes(addr, value.to_bytes(size, "little"))
