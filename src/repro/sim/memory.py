"""Sparse paged memory for the RV64GC simulator.

4 KiB pages in a dict, with a one-entry page cache for the common case of
consecutive accesses to the same page.  Accesses to unmapped addresses
raise :class:`MemoryFault` — catching wild pointers early matters more
here than graceful degradation, since the simulator is the testbed for
instrumentation correctness.
"""

from __future__ import annotations

import hashlib

from .. import faults
from ..errors import ReproError

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryFault(ReproError):
    """Access to an unmapped address."""

    def __init__(self, addr: int, kind: str = "access"):
        super().__init__(f"memory {kind} fault at {addr:#x}")
        self.addr = addr
        self.kind = kind


class Memory:
    """Sparse byte-addressable memory."""

    __slots__ = ("_pages", "_cache_idx", "_cache_page",
                 "_watch_lo", "_watch_hi", "_watch_ranges", "_watch_cb")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._cache_idx = -1
        self._cache_page: bytearray | None = None
        # write-range notification (code-write detection): callback fired
        # after any write overlapping a watched range.  [_watch_lo,
        # _watch_hi) is the bounding box of all ranges — the hot-path
        # store check is two comparisons for the common data write.
        self._watch_lo = 0
        self._watch_hi = 0
        self._watch_ranges: list[tuple[int, int]] = []
        self._watch_cb = None

    # -- write-range notification -----------------------------------------

    def set_write_watch(self, ranges, callback) -> None:
        """Notify *callback(addr, size)* after every write overlapping
        one of *ranges* ([lo, hi) pairs).  The machine registers its
        executable ranges here so code writes (self-modifying stores,
        runtime patching, breakpoint insertion) invalidate compiled
        instructions and traces.  Pass ``callback=None`` to clear."""
        self._watch_ranges = [(lo, hi) for lo, hi in ranges]
        self._watch_cb = callback if self._watch_ranges else None
        if self._watch_cb is not None:
            self._watch_lo = min(lo for lo, _ in self._watch_ranges)
            self._watch_hi = max(hi for _, hi in self._watch_ranges)
        else:
            self._watch_lo = self._watch_hi = 0

    def _notify_write(self, addr: int, n: int) -> None:
        end = addr + n
        for lo, hi in self._watch_ranges:
            if addr < hi and end > lo:
                self._watch_cb(addr, n)
                return

    # -- mapping --------------------------------------------------------

    def map_region(self, base: int, size: int) -> None:
        """Ensure pages covering [base, base+size) exist (zero-filled)."""
        faults.site("sim.memory.map")
        first = base >> PAGE_BITS
        last = (base + size - 1) >> PAGE_BITS
        for idx in range(first, last + 1):
            self._pages.setdefault(idx, bytearray(PAGE_SIZE))

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_BITS) in self._pages

    def mapped_pages(self) -> int:
        return len(self._pages)

    # -- write-ahead journal support (repro.patch.transaction) ------------

    def capture_pages(self, base: int,
                      size: int) -> list[tuple[int, bytes | None]]:
        """Journal helper: ``(page index, content copy | None)`` for
        every page overlapping ``[base, base+size)`` — ``None`` marks a
        page that does not exist yet (so a rollback knows to unmap it
        rather than zero it)."""
        first = base >> PAGE_BITS
        last = (base + size - 1) >> PAGE_BITS
        pages = self._pages
        return [
            (idx, bytes(pages[idx]) if idx in pages else None)
            for idx in range(first, last + 1)
        ]

    def restore_pages(self, captured) -> None:
        """Bit-identical restore of :meth:`capture_pages` records:
        rewrite surviving pages in place, recreate deleted ones, unmap
        pages that did not exist at capture time.  Bypasses the write
        watch — callers invalidate the affected code ranges explicitly
        (see the trace-cache invalidation rules in docs/INTERNALS.md).
        """
        pages = self._pages
        for idx, content in captured:
            if content is None:
                pages.pop(idx, None)
            else:
                page = pages.get(idx)
                if page is None:
                    pages[idx] = bytearray(content)
                else:
                    page[:] = content
        # the one-entry page cache may reference an unmapped page
        self._cache_idx = -1
        self._cache_page = None

    def page_content(self, idx: int) -> bytes | None:
        """Current content of page *idx* (``None`` if unmapped) — the
        read side of rollback verification."""
        page = self._pages.get(idx)
        return bytes(page) if page is not None else None

    def page_hash(self, idx: int) -> str | None:
        """sha256 hex digest of page *idx* (``None`` if unmapped) — the
        content key for persistent compiled-trace metadata: a persisted
        trace is only revived while every code page it spans still
        hashes to the value recorded at save time."""
        page = self._pages.get(idx)
        if page is None:
            return None
        return hashlib.sha256(bytes(page)).hexdigest()

    # -- raw byte access -------------------------------------------------

    def _page(self, idx: int, addr: int) -> bytearray:
        if idx == self._cache_idx:
            return self._cache_page  # type: ignore[return-value]
        page = self._pages.get(idx)
        if page is None:
            raise MemoryFault(addr)
        self._cache_idx = idx
        self._cache_page = page
        return page

    def read_bytes(self, addr: int, n: int) -> bytes:
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + n <= PAGE_SIZE:
            return bytes(self._page(idx, addr)[off:off + n])
        out = bytearray()
        while n > 0:
            idx = addr >> PAGE_BITS
            off = addr & PAGE_MASK
            chunk = min(n, PAGE_SIZE - off)
            out += self._page(idx, addr)[off:off + chunk]
            addr += chunk
            n -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        faults.site("sim.memory.write")
        n = len(data)
        base = addr
        pos = 0
        while pos < n:
            idx = addr >> PAGE_BITS
            off = addr & PAGE_MASK
            chunk = min(n - pos, PAGE_SIZE - off)
            self._page(idx, addr)[off:off + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk
        if base < self._watch_hi and base + n > self._watch_lo:
            self._notify_write(base, n)

    # -- integer access (little-endian) ----------------------------------

    def read_int(self, addr: int, size: int) -> int:
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            # hand-inlined _page(): this is the simulator's hottest call
            page = self._cache_page if idx == self._cache_idx \
                else self._page(idx, addr)
            return int.from_bytes(page[off:off + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        value &= (1 << (8 * size)) - 1
        idx = addr >> PAGE_BITS
        off = addr & PAGE_MASK
        if off + size <= PAGE_SIZE:
            page = self._cache_page if idx == self._cache_idx \
                else self._page(idx, addr)
            page[off:off + size] = value.to_bytes(size, "little")
            if addr < self._watch_hi and addr + size > self._watch_lo:
                self._notify_write(addr, size)
            return
        self.write_bytes(addr, value.to_bytes(size, "little"))
