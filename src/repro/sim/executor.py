"""Instruction execution engine: decoded instruction -> Python closure.

The hot path of the simulator.  Each instruction at a given pc is decoded
once and compiled into a small closure that mutates the machine state;
closures are cached per-pc (the machine invalidates entries when code is
patched — which is precisely what dynamic instrumentation does).

Per the HPC guides: the interpreter optimises the *hot loop* only —
closure dispatch, locals-bound state, no per-step allocation.  Everything
else favours clarity.
"""

from __future__ import annotations

import math
from typing import Callable, TYPE_CHECKING

from ..errors import ReproError
from ..riscv.encoding import sign_extend, to_unsigned
from ..riscv.instr import Instruction
from . import fp
from .timing import category_of

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

M64 = (1 << 64) - 1
M32 = (1 << 32) - 1

Closure = Callable[[], None]


class SimFault(ReproError):
    """Architectural fault (illegal instruction, bad fetch...)."""

    def __init__(self, message: str, pc: int | None = None):
        super().__init__(message if pc is None else f"{message} at pc={pc:#x}")
        self.pc = pc


class BreakpointHit(Exception):
    """ebreak executed; machine stopped with pc at the ebreak."""

    def __init__(self, pc: int):
        super().__init__(f"breakpoint at {pc:#x}")
        self.pc = pc


class ExitTrap(Exception):
    """Program requested exit via the exit syscall."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


def _sx(v: int) -> int:
    return v - (1 << 64) if v >> 63 else v


def _sx32(v: int) -> int:
    v &= M32
    return v - (1 << 32) if v >> 31 else v


# -- integer op lambdas (unsigned-64 in, unsigned-64 out) ----------------

def _div_s(a, b):
    if b == 0:
        return M64
    sa, sb = _sx(a), _sx(b)
    if sa == -(1 << 63) and sb == -1:
        return a
    q = abs(sa) // abs(sb)
    return to_unsigned(-q if (sa < 0) != (sb < 0) else q, 64)


def _rem_s(a, b):
    if b == 0:
        return a
    sa, sb = _sx(a), _sx(b)
    if sa == -(1 << 63) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return to_unsigned(-r if sa < 0 else r, 64)


def _div_s32(a, b):
    sa, sb = _sx32(a), _sx32(b)
    if sb == 0:
        return M64
    if sa == -(1 << 31) and sb == -1:
        return to_unsigned(sa, 64)
    q = abs(sa) // abs(sb)
    return to_unsigned(sign_extend(to_unsigned(
        -q if (sa < 0) != (sb < 0) else q, 32), 32), 64)


def _rem_s32(a, b):
    sa, sb = _sx32(a), _sx32(b)
    if sb == 0:
        return to_unsigned(sa, 64)
    if sa == -(1 << 31) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return to_unsigned(-r if sa < 0 else r, 64)


RR_OPS = {
    "add": lambda a, b: (a + b) & M64,
    "sub": lambda a, b: (a - b) & M64,
    "sll": lambda a, b: (a << (b & 63)) & M64,
    "slt": lambda a, b: int(_sx(a) < _sx(b)),
    "sltu": lambda a, b: int(a < b),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: a >> (b & 63),
    "sra": lambda a, b: to_unsigned(_sx(a) >> (b & 63), 64),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "addw": lambda a, b: to_unsigned(sign_extend((a + b) & M32, 32), 64),
    "subw": lambda a, b: to_unsigned(sign_extend((a - b) & M32, 32), 64),
    "sllw": lambda a, b: to_unsigned(
        sign_extend((a << (b & 31)) & M32, 32), 64),
    "srlw": lambda a, b: to_unsigned(
        sign_extend((a & M32) >> (b & 31), 32), 64),
    "sraw": lambda a, b: to_unsigned(_sx32(a) >> (b & 31), 64),
    "mul": lambda a, b: (a * b) & M64,
    "mulh": lambda a, b: to_unsigned((_sx(a) * _sx(b)) >> 64, 64),
    "mulhu": lambda a, b: (a * b) >> 64,
    "mulhsu": lambda a, b: to_unsigned((_sx(a) * b) >> 64, 64),
    "div": _div_s,
    "divu": lambda a, b: M64 if b == 0 else a // b,
    "rem": _rem_s,
    "remu": lambda a, b: a if b == 0 else a % b,
    "mulw": lambda a, b: to_unsigned(sign_extend((a * b) & M32, 32), 64),
    "divw": _div_s32,
    "divuw": lambda a, b: M64 if (b & M32) == 0 else to_unsigned(
        sign_extend(((a & M32) // (b & M32)) & M32, 32), 64),
    "remw": _rem_s32,
    "remuw": lambda a, b: to_unsigned(sign_extend(
        (a & M32) if (b & M32) == 0 else (a & M32) % (b & M32), 32), 64),
    "czero.eqz": lambda a, b: 0 if b == 0 else a,
    "czero.nez": lambda a, b: 0 if b != 0 else a,
    "add.uw": lambda a, b: (b + (a & M32)) & M64,
    "sh1add": lambda a, b: (b + (a << 1)) & M64,
    "sh2add": lambda a, b: (b + (a << 2)) & M64,
    "sh3add": lambda a, b: (b + (a << 3)) & M64,
    # Zbb (RVA23 sample)
    "andn": lambda a, b: a & (b ^ M64),
    "orn": lambda a, b: a | (b ^ M64),
    "xnor": lambda a, b: (a ^ b) ^ M64,
    "min": lambda a, b: a if _sx(a) <= _sx(b) else b,
    "minu": lambda a, b: min(a, b),
    "max": lambda a, b: a if _sx(a) >= _sx(b) else b,
    "maxu": lambda a, b: max(a, b),
    "rol": lambda a, b: ((a << (b & 63)) | (a >> ((-b) & 63))) & M64,
    "ror": lambda a, b: ((a >> (b & 63)) | (a << ((-b) & 63))) & M64,
}

#: Zbb unary ops (rd, rs1 only).
UNARY_OPS = {
    "clz": lambda a: 64 - a.bit_length(),
    "ctz": lambda a: 64 if a == 0 else (a & -a).bit_length() - 1,
    "cpop": lambda a: a.bit_count(),
    "sext.b": lambda a: to_unsigned(sign_extend(a, 8), 64),
    "sext.h": lambda a: to_unsigned(sign_extend(a, 16), 64),
    "zext.h": lambda a: a & 0xFFFF,
}

RI_OPS = {
    "addi": lambda a, i: (a + i) & M64,
    "slti": lambda a, i: int(_sx(a) < i),
    "sltiu": lambda a, i: int(a < to_unsigned(i, 64)),
    "xori": lambda a, i: a ^ to_unsigned(i, 64),
    "ori": lambda a, i: a | to_unsigned(i, 64),
    "andi": lambda a, i: a & to_unsigned(i, 64),
    "addiw": lambda a, i: to_unsigned(sign_extend((a + i) & M32, 32), 64),
}

SHIFT_OPS = {
    "slli": lambda a, s: (a << s) & M64,
    "srli": lambda a, s: a >> s,
    "srai": lambda a, s: to_unsigned(_sx(a) >> s, 64),
    "slliw": lambda a, s: to_unsigned(
        sign_extend((a << s) & M32, 32), 64),
    "srliw": lambda a, s: to_unsigned(
        sign_extend((a & M32) >> s, 32), 64),
    "sraiw": lambda a, s: to_unsigned(_sx32(a) >> s, 64),
    "rori": lambda a, s: ((a >> s) | (a << ((-s) & 63))) & M64,
}

BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _sx(a) < _sx(b),
    "bge": lambda a, b: _sx(a) >= _sx(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

LOADS = {  # mnemonic -> (size, signed)
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
}

STORES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}

AMO_OPS = {
    "amoswap": lambda old, src, sx: src,
    "amoadd": lambda old, src, sx: old + src,
    "amoxor": lambda old, src, sx: old ^ src,
    "amoand": lambda old, src, sx: old & src,
    "amoor": lambda old, src, sx: old | src,
    "amomin": lambda old, src, sx: old if sx(old) <= sx(src) else src,
    "amomax": lambda old, src, sx: old if sx(old) >= sx(src) else src,
    "amominu": lambda old, src, sx: min(old, src),
    "amomaxu": lambda old, src, sx: max(old, src),
}

FP_RR = {  # two-operand FP arithmetic on Python floats
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": fp.fp_div,
    "fmin": fp.fp_min,
    "fmax": fp.fp_max,
}

FP_CMP = {
    "feq": lambda a, b: int(a == b),
    "flt": lambda a, b: int(a < b),
    "fle": lambda a, b: int(a <= b),
}

FMA_SIGNS = {  # mnemonic root -> (product sign, addend sign)
    "fmadd": (1, 1), "fmsub": (1, -1), "fnmsub": (-1, 1), "fnmadd": (-1, -1),
}


def build_body(m: "Machine", pc: int, instr: Instruction
               ) -> Closure | None:
    """Compile the *state update* of one straight-line instruction.

    Returns a bookkeeping-free callable that mutates registers/memory
    only (no pc/ucycles/instret updates) — the unit the superblock trace
    compiler (:mod:`repro.sim.trace`) stitches into block functions.

    Returns ``None`` for instructions that transfer control, trap, or
    must observe exact per-instruction machine state (branches, jumps,
    ecall/ebreak, fences, CSR accesses, atomics): those always run
    through the full closure path.
    """
    mn = instr.mnemonic
    f = instr.fields
    x = m.x
    mem = m.mem

    # ---- Zbb unary -----------------------------------------------------
    if mn in UNARY_OPS:
        op = UNARY_OPS[mn]
        rd, rs1 = f["rd"], f["rs1"]
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = op(x[rs1])
        return body

    # ---- integer register-register -----------------------------------
    if mn in RR_OPS:
        op = RR_OPS[mn]
        rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = op(x[rs1], x[rs2])
        return body

    # ---- integer register-immediate -----------------------------------
    if mn in RI_OPS:
        op = RI_OPS[mn]
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = op(x[rs1], imm)
        return body

    if mn in SHIFT_OPS:
        op = SHIFT_OPS[mn]
        rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = op(x[rs1], sh)
        return body

    if mn == "lui":
        rd = f["rd"]
        val = to_unsigned(sign_extend(f["imm"], 20) << 12, 64)
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = val
        return body

    if mn == "auipc":
        rd = f["rd"]
        val = to_unsigned(pc + (sign_extend(f["imm"], 20) << 12), 64)
        if rd == 0:
            return lambda: None
        def body():
            x[rd] = val
        return body

    # ---- loads / stores -------------------------------------------------
    if mn in LOADS:
        size, signed = LOADS[mn]
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        read_int = mem.read_int
        if signed:
            bitw = size * 8
            def body():
                v = read_int((x[rs1] + imm) & M64, size)
                x[rd] = to_unsigned(sign_extend(v, bitw), 64)
        else:
            def body():
                x[rd] = read_int((x[rs1] + imm) & M64, size)
        if rd == 0:
            def body():  # noqa: F811 - load to x0 still accesses memory
                read_int((x[rs1] + imm) & M64, size)
        return body

    if mn in STORES:
        size = STORES[mn]
        rs1, rs2, imm = f["rs1"], f["rs2"], f["imm"]
        write_int = mem.write_int
        def body():
            # code-range invalidation rides on Memory's write watch
            write_int((x[rs1] + imm) & M64, size, x[rs2])
        return body

    # ---- F/D (loads, stores, arithmetic, moves, conversions) ----------
    return _build_fp(m, mn, f, pc)


def build_closure(m: "Machine", pc: int, instr: Instruction) -> Closure:
    """Compile one decoded instruction into an executable closure.

    The closure updates registers/memory/pc and charges cycle cost.
    """
    mn = instr.mnemonic
    f = instr.fields
    length = instr.length
    next_pc = pc + length
    cost = m.timing.ucycles(category_of(mn, instr.spec.match & 0x7F))
    x = m.x

    def _finish_simple(body: Callable[[], None]) -> Closure:
        def run() -> None:
            body()
            m.pc = next_pc
            m.ucycles += cost
            m.instret += 1
        return run

    # ---- straight-line instructions (shared with the trace compiler) --
    simple = build_body(m, pc, instr)
    if simple is not None:
        return _finish_simple(simple)

    # ---- control transfer ----------------------------------------------
    if mn in BRANCH_OPS:
        cond = BRANCH_OPS[mn]
        rs1, rs2 = f["rs1"], f["rs2"]
        target = pc + f["imm"]
        def run() -> None:
            m.pc = target if cond(x[rs1], x[rs2]) else next_pc
            m.ucycles += cost
            m.instret += 1
        return run

    if mn == "jal":
        rd = f["rd"]
        target = to_unsigned(pc + f["imm"], 64)
        def run() -> None:
            if rd:
                x[rd] = next_pc
            m.pc = target
            m.ucycles += cost
            m.instret += 1
        return run

    if mn == "jalr":
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        def run() -> None:
            target = (x[rs1] + imm) & ~1 & M64
            if rd:
                x[rd] = next_pc
            m.pc = target
            m.ucycles += cost
            m.instret += 1
        return run

    # ---- environment ----------------------------------------------------
    if mn == "ecall":
        def run() -> None:
            m.ucycles += cost
            m.instret += 1
            m.syscall()          # may raise ExitTrap
            m.pc = next_pc
        return run

    if mn == "ebreak":
        def run() -> None:
            raise BreakpointHit(pc)
        return run

    if mn in ("fence", "fence.i"):
        if mn == "fence.i":
            def body():
                m.flush_icache()
        else:
            def body():
                pass
        return _finish_simple(body)

    # ---- Zicsr -----------------------------------------------------------
    if mn.startswith("csrr"):
        return _build_csr(m, mn, f, _finish_simple)

    # ---- A extension ------------------------------------------------------
    if mn.startswith(("lr.", "sc.", "amo")):
        return _build_amo(m, mn, f, _finish_simple)

    raise SimFault(f"no handler for instruction {mn!r}", pc)


def _build_csr(m, mn, f, finish):
    rd = f["rd"]
    csr = f["csr"]
    write_kind = mn.rstrip("i")[-1]  # w / s / c
    if mn.endswith("i"):
        src_val = f["zimm"]
        def src():
            return src_val
    else:
        rs1 = f["rs1"]
        x = m.x
        def src():
            return x[rs1]
    x = m.x

    def body():
        old = m.read_csr(csr)
        v = src()
        if write_kind == "w":
            m.write_csr(csr, v)
        elif write_kind == "s":
            if v:
                m.write_csr(csr, old | v)
        else:
            if v:
                m.write_csr(csr, old & ~v & M64)
        if rd:
            x[rd] = old
    return finish(body)


def _build_amo(m, mn, f, finish):
    x = m.x
    rd = f["rd"]
    rs1 = f["rs1"]
    size = 4 if mn.endswith(".w") else 8
    bitw = size * 8
    mem = m.mem

    if mn.startswith("lr."):
        def body():
            addr = x[rs1]
            m.reservation = addr
            v = mem.read_int(addr, size)
            if rd:
                x[rd] = to_unsigned(sign_extend(v, bitw), 64)
        return finish(body)

    rs2 = f["rs2"]
    if mn.startswith("sc."):
        def body():
            addr = x[rs1]
            if m.reservation == addr:
                m.store_int(addr, size, x[rs2])
                ok = 0
            else:
                ok = 1
            m.reservation = None
            if rd:
                x[rd] = ok
        return finish(body)

    root = mn.split(".")[0]
    op = AMO_OPS[root]
    mask = (1 << bitw) - 1
    sx = _sx32 if size == 4 else _sx

    def body():
        addr = x[rs1]
        old = mem.read_int(addr, size)
        new = op(old, x[rs2] & mask, sx) & mask
        m.store_int(addr, size, new)
        if rd:
            x[rd] = to_unsigned(sign_extend(old, bitw), 64)
    return finish(body)


def _build_fp(m, mn, f, pc):
    x = m.x
    fr = m.f
    mem = m.mem

    if mn in ("flw", "fld"):
        size = 4 if mn == "flw" else 8
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        if size == 4:
            def body():
                fr[rd] = fp.NAN_BOX | mem.read_int((x[rs1] + imm) & M64, 4)
        else:
            def body():
                fr[rd] = mem.read_int((x[rs1] + imm) & M64, 8)
        return body

    if mn in ("fsw", "fsd"):
        size = 4 if mn == "fsw" else 8
        rs1, rs2, imm = f["rs1"], f["rs2"], f["imm"]
        def run_body():
            m.store_int((x[rs1] + imm) & M64, size, fr[rs2])
        return run_body

    parts = mn.split(".")
    root = parts[0]

    if root in FP_RR and len(parts) == 2:
        single = parts[1] == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        put = fp.bits_from_f32 if single else fp.bits_from_f64
        op = FP_RR[root]
        rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
        def body():
            fr[rd] = put(op(get(fr[rs1]), get(fr[rs2])))
        return body

    if root in FP_CMP:
        single = parts[1] == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        op = FP_CMP[root]
        rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
        def body():
            if rd:
                a, b = get(fr[rs1]), get(fr[rs2])
                x[rd] = 0 if (math.isnan(a) or math.isnan(b)) else op(a, b)
        return body

    if root == "fsqrt":
        single = parts[1] == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        put = fp.bits_from_f32 if single else fp.bits_from_f64
        rd, rs1 = f["rd"], f["rs1"]
        def body():
            fr[rd] = put(fp.fp_sqrt(get(fr[rs1])))
        return body

    if root in ("fsgnj", "fsgnjn", "fsgnjx"):
        single = parts[1] == "s"
        sbit = 31 if single else 63
        rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
        mode = root[5:]
        def body():
            a, b = fr[rs1], fr[rs2]
            if single:
                a &= 0xFFFF_FFFF
                b_sign = (b >> sbit) & 1
            else:
                b_sign = (b >> sbit) & 1
            if mode == "n":
                b_sign ^= 1
            elif mode == "x":
                b_sign ^= (a >> sbit) & 1
            res = (a & ~(1 << sbit)) | (b_sign << sbit)
            fr[rd] = (fp.NAN_BOX | res) if single else res
        return body

    if root == "fclass":
        single = parts[1] == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        rd, rs1 = f["rd"], f["rs1"]
        def body():
            if rd:
                bits = fr[rs1] & (0xFFFF_FFFF if single else M64)
                x[rd] = fp.classify(get(fr[rs1]), bits, single)
        return body

    if root in FMA_SIGNS and len(parts) == 2:
        psign, asign = FMA_SIGNS[root]
        single = parts[1] == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        put = fp.bits_from_f32 if single else fp.bits_from_f64
        rd, rs1, rs2, rs3 = f["rd"], f["rs1"], f["rs2"], f["rs3"]
        def body():
            fr[rd] = put(psign * (get(fr[rs1]) * get(fr[rs2]))
                         + asign * get(fr[rs3]))
        return body

    if root == "fmv":
        rd, rs1 = f["rd"], f["rs1"]
        if mn == "fmv.x.w":
            def body():
                if rd:
                    x[rd] = to_unsigned(
                        sign_extend(fr[rs1] & 0xFFFF_FFFF, 32), 64)
        elif mn == "fmv.w.x":
            def body():
                fr[rd] = fp.NAN_BOX | (x[rs1] & 0xFFFF_FFFF)
        elif mn == "fmv.x.d":
            def body():
                if rd:
                    x[rd] = fr[rs1]
        else:  # fmv.d.x
            def body():
                fr[rd] = x[rs1]
        return body

    if root == "fcvt":
        return _build_fcvt(m, mn, parts, f)

    return None


def _build_fcvt(m, mn, parts, f):
    x = m.x
    fr = m.f
    rd, rs1 = f["rd"], f["rs1"]
    dst, src = parts[1], parts[2]

    int_widths = {"w": (32, True), "wu": (32, False),
                  "l": (64, True), "lu": (64, False)}

    if dst in int_widths:  # fp -> int
        width, signed = int_widths[dst]
        single = src == "s"
        get = fp.f32_from_bits if single else fp.f64_from_bits
        rm = f.get("rm", 0)
        if rm == 7:
            rm = 0  # dynamic: frm defaults to RNE in this simulator
        def body():
            if rd:
                v = fp.cvt_to_int(get(fr[rs1]), width, signed, rm)
                x[rd] = to_unsigned(
                    sign_extend(to_unsigned(v, width), width)
                    if width == 32 else v, 64)
        return body

    if src in int_widths:  # int -> fp
        width, signed = int_widths[src]
        single = dst == "s"
        put = fp.bits_from_f32 if single else fp.bits_from_f64
        def body():
            raw = x[rs1] & ((1 << width) - 1)
            v = sign_extend(raw, width) if signed else raw
            fr[rd] = put(float(v))
        return body

    if dst == "s" and src == "d":
        def body():
            fr[rd] = fp.bits_from_f32(fp.f64_from_bits(fr[rs1]))
        return body

    if dst == "d" and src == "s":
        def body():
            fr[rd] = fp.bits_from_f64(fp.f32_from_bits(fr[rs1]))
        return body

    return None
