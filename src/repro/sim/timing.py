"""Deterministic timing models for the simulated machines.

The paper's benchmarks (§4) run on a 1.4 GHz SiFive P550 (RISC-V) and an
Intel i5-14600T (x86-64).  We cannot run on either, so the simulator
charges per-instruction cycle costs from a :class:`TimingModel` and
exposes simulated wall-clock time through ``clock_gettime`` — making the
overhead ratios the benchmark harness reports deterministic and
noise-free (see DESIGN.md, substitutions table).

Two calibrated profiles:

* ``P550`` — in-order core at 1.4 GHz: unit-cost ALU, multi-cycle
  loads/mul/div, modest branch cost.
* ``X86PROXY`` — stands in for the i5-14600T running the *legacy* x86
  Dyninst: a wide out-of-order core modelled as a fractional
  cycles-per-instruction scale at a higher clock.  The instrumentation
  engine pairs this profile with spill-always trampolines (no
  dead-register optimisation), per §4.3's explanation of the x86 numbers.

Costs are charged per dynamic instruction; fractional costs accumulate
exactly using integer micro-cycles (1 cycle = 64 ucycles) so runs are
reproducible across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: micro-cycles per cycle (power of two for exact arithmetic)
UCYCLE = 64


@dataclass(frozen=True)
class TimingModel:
    """Per-instruction-category cycle costs plus a clock frequency."""

    name: str
    frequency_hz: float
    #: category -> cycles (may be fractional; converted to ucycles)
    costs: dict[str, float] = field(default_factory=dict)
    default_cost: float = 1.0

    def ucycles(self, category: str) -> int:
        """Integer micro-cycle cost for an instruction category."""
        return max(1, round(self.costs.get(category, self.default_cost) * UCYCLE))

    def block_ucycles(self, categories) -> int:
        """Batched cost of a straight-line block (one charge per block in
        the trace-compiled run loop; identical to summing per-instruction
        charges, since costs are exact integer micro-cycles)."""
        ucycles = self.ucycles
        return sum(ucycles(c) for c in categories)

    def seconds(self, ucycles: int) -> float:
        """Convert an accumulated micro-cycle count to simulated seconds."""
        return ucycles / UCYCLE / self.frequency_hz

    def nanoseconds(self, ucycles: int) -> int:
        return round(ucycles / UCYCLE / self.frequency_hz * 1e9)


#: Instruction categories used by the cost tables.  The executor assigns
#: one to every decoded instruction.
CATEGORIES = (
    "alu", "mul", "div", "load", "store", "branch", "jump", "jump_reg",
    "amo", "fp_arith", "fp_mul", "fp_div", "fp_load", "fp_store",
    "fp_move", "csr", "system", "fence",
)


def category_of(mnemonic: str, opcode: int) -> str:
    """Map a decoded instruction to a timing category."""
    if opcode == 0x03:
        return "load"
    if opcode == 0x23:
        return "store"
    if opcode == 0x07:
        return "fp_load"
    if opcode == 0x27:
        return "fp_store"
    if opcode == 0x63:
        return "branch"
    if opcode == 0x6F:
        return "jump"
    if opcode == 0x67:
        return "jump_reg"
    if opcode == 0x2F:
        return "amo"
    if opcode == 0x0F:
        return "fence"
    if opcode == 0x73:
        return "csr" if mnemonic.startswith("csr") else "system"
    if mnemonic.startswith(("mul",)):
        return "mul"
    if mnemonic.startswith(("div", "rem")):
        return "div"
    if opcode in (0x43, 0x47, 0x4B, 0x4F):
        return "fp_mul"  # FMA pipelines with the multiplier
    if opcode == 0x53:
        if mnemonic.startswith(("fdiv", "fsqrt")):
            return "fp_div"
        if mnemonic.startswith(("fmul",)):
            return "fp_mul"
        if mnemonic.startswith(("fmv", "fsgnj", "fcvt", "fclass")):
            return "fp_move"
        return "fp_arith"
    return "alu"


#: SiFive P550-like in-order RV64GC core at 1.4 GHz.
P550 = TimingModel(
    name="p550-1.4GHz",
    frequency_hz=1.4e9,
    costs={
        "alu": 1, "mul": 3, "div": 20,
        "load": 3, "store": 1,
        "branch": 1.5,       # averaged predict/mispredict cost
        "jump": 1, "jump_reg": 2,
        "amo": 6,
        "fp_arith": 4, "fp_mul": 5, "fp_div": 21,
        "fp_load": 3, "fp_store": 1, "fp_move": 2,
        "csr": 4, "system": 30, "fence": 3,
    },
)

#: i5-14600T-like wide OOO core running legacy (pre-optimisation) x86
#: Dyninst.  Fractional costs model superscalar IPC; see module docstring.
X86PROXY = TimingModel(
    name="x86proxy-i5-14600T",
    frequency_hz=4.0e9,
    default_cost=0.4,
    costs={
        "alu": 0.3, "mul": 0.75, "div": 6,
        "load": 0.6, "store": 0.5,
        "branch": 0.6, "jump": 0.5, "jump_reg": 1.2,
        "amo": 5,
        "fp_arith": 1.0, "fp_mul": 1.0, "fp_div": 4.5,
        "fp_load": 0.7, "fp_store": 0.6, "fp_move": 0.4,
        "csr": 8, "system": 40, "fence": 8,
    },
)

MODELS: dict[str, TimingModel] = {"p550": P550, "x86proxy": X86PROXY}
