"""IEEE-754 helpers for the simulator's F/D implementation.

FP registers hold raw 64-bit patterns; single-precision values are
NaN-boxed (upper 32 bits all-ones) per the RISC-V F-on-RV64 convention.
Arithmetic is performed in Python doubles; single-precision results are
re-rounded through a 32-bit pack, which matches hardware except for
double-rounding corner cases that do not affect the benchmarks.
"""

from __future__ import annotations

import math
import struct

NAN_BOX = 0xFFFF_FFFF_0000_0000
#: Canonical quiet NaNs.
QNAN64 = 0x7FF8_0000_0000_0000
QNAN32 = 0x7FC0_0000


def f64_from_bits(bits: int) -> float:
    return struct.unpack("<d", (bits & 0xFFFF_FFFF_FFFF_FFFF).to_bytes(8, "little"))[0]


def bits_from_f64(value: float) -> int:
    return int.from_bytes(struct.pack("<d", value), "little")


def f32_from_bits(bits: int) -> float:
    """Unbox and read a single.  Improperly boxed values are NaN per spec."""
    if bits & NAN_BOX != NAN_BOX:
        return math.nan
    return struct.unpack("<f", (bits & 0xFFFF_FFFF).to_bytes(4, "little"))[0]


def bits_from_f32(value: float) -> int:
    """Round to single precision and NaN-box."""
    try:
        raw = struct.pack("<f", value)
    except OverflowError:
        raw = struct.pack("<f", math.copysign(math.inf, value))
    return NAN_BOX | int.from_bytes(raw, "little")


def classify(value: float, bits: int, single: bool) -> int:
    """The fclass.{s,d} 10-bit result mask."""
    if math.isnan(value):
        # Distinguish signalling vs quiet via the MSB of the mantissa.
        if single:
            quiet = (bits >> 22) & 1
        else:
            quiet = (bits >> 51) & 1
        return 1 << 9 if quiet else 1 << 8
    sign = math.copysign(1.0, value) < 0
    if math.isinf(value):
        return 1 << 0 if sign else 1 << 7
    if value == 0.0:
        return 1 << 3 if sign else 1 << 4
    tiny = abs(value) < (2 ** -126 if single else 2 ** -1022)
    if tiny:
        return 1 << 2 if sign else 1 << 5
    return 1 << 1 if sign else 1 << 6


def fp_min(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def fp_max(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def fp_div(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if b == 0.0:
        if a == 0.0:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    try:
        return a / b
    except OverflowError:  # pragma: no cover - inf/inf handled above
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def fp_sqrt(a: float) -> float:
    if math.isnan(a) or a < 0.0:
        return math.nan
    return math.sqrt(a)


def cvt_to_int(value: float, width: int, signed: bool, rm: int = 0) -> int:
    """fcvt.{w,wu,l,lu}.* : round per *rm* then clamp, with the
    architectural NaN/overflow results.

    rm: 0=RNE (nearest-even), 1=RTZ (toward zero), 2=RDN, 3=RUP,
    7=dynamic (treated as RNE here — the simulator does not model frm).
    """
    if signed:
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    else:
        lo, hi = 0, (1 << width) - 1
    if math.isnan(value):
        return hi
    if value <= lo:
        return lo
    if value >= hi:
        return hi
    if rm == 1:
        r = math.trunc(value)
    elif rm == 2:
        r = math.floor(value)
    elif rm == 3:
        r = math.ceil(value)
    else:
        # Banker's rounding (RNE) is Python round()'s behaviour.
        r = round(value)
    return min(max(r, lo), hi)
