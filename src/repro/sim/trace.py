"""Superblock (trace) compiler for the simulator hot loop.

The per-pc closure interpreter in :mod:`repro.sim.executor` pays a dict
lookup, two Python calls and three attribute read-modify-writes per
dynamic instruction.  This module removes most of that: straight-line
runs of instructions (ended by a branch/jump, or by anything that needs
exact per-instruction machine state — ecall/ebreak/fences/CSR
reads/atomics) are compiled **once** into a single Python function that

* executes the whole block with machine state bound to locals,
* inlines the common ALU/load/store forms as plain expressions (no
  per-instruction call at all) and falls back to the executor's
  bookkeeping-free bodies for the rest,
* charges timing as **one batched ucycle charge** per block
  (:meth:`TimingModel.block_ucycles`) and bumps ``instret`` once,
* **chains** directly to the successor trace when the (static) branch
  target has already been compiled, skipping even the per-block cache
  lookup.

Patch safety
------------
Dynamic instrumentation rewrites code while it runs, so the trace cache
must never execute stale bytes:

* every write overlapping an executable range (self-modifying stores,
  ``Machine.write_mem`` from the patcher/ProcControl, breakpoint
  insertion) reaches :meth:`TraceCache.invalidate_range` through the
  :class:`~repro.sim.memory.Memory` write watch;
* invalidation drops every trace overlapping the written bytes (with
  the same 3-byte pre-slack as the per-pc icache: a patched instruction
  may start up to 3 bytes before the written address) and severs every
  chain link pointing at a dropped trace;
* a store *inside* a running trace that invalidates any trace sets
  ``machine.code_dirty``; the generated code syncs architectural state
  and exits the block right after that store, so the remaining (possibly
  rewritten) tail is re-fetched through the cache.

Traces keep architectural state exact at every *observable* boundary:
block entry/exit, any store, and any faulting load/store (a per-block
side table maps the fault site back to precise pc/ucycles/instret).
Single-stepping, watchpoint runs and bounded ``run(max_steps=...)``
stay on the per-pc closure interpreter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import faults
from ..riscv.decoder import DecodeError, decode
from ..riscv.encoding import sign_extend, to_unsigned
from . import fp
from .executor import (
    BRANCH_OPS, FMA_SIGNS, LOADS, RI_OPS, RR_OPS, SHIFT_OPS, STORES,
    SimFault, _sx, build_body,
)
from .memory import MemoryFault
from .timing import category_of

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: maximum instructions per superblock
MAX_BLOCK = 64

#: 64-bit mask literal used throughout generated code
_M64 = "0xFFFFFFFFFFFFFFFF"

PAGE_BITS = 12


class Trace:
    """One compiled superblock: ``[entry, end)`` plus its function."""

    __slots__ = ("entry", "end", "fn", "backrefs", "n_insns")

    def __init__(self, entry: int, end: int, fn, n_insns: int):
        self.entry = entry
        self.end = end
        #: the compiled block function (``False`` marks a negative entry:
        #: the pc starts with an untraceable instruction)
        self.fn = fn
        #: chain cells (cells-list, index) that point at ``self.fn``;
        #: severed on invalidation
        self.backrefs: list[tuple[list, int]] = []
        self.n_insns = n_insns


class TraceCache:
    """Compiled-superblock cache with range invalidation and chaining."""

    def __init__(self, machine: "Machine", max_block: int = MAX_BLOCK):
        self.m = machine
        self.max_block = max_block
        #: entry pc -> block function (``False`` = negative entry).  The
        #: run loop binds ``fns.get``; mutate in place only.
        self.fns: dict[int, object] = {}
        self._traces: dict[int, Trace] = {}
        self._pages: dict[int, set[Trace]] = {}
        # -- statistics (reported by the throughput ablation and the
        # telemetry subsystem)
        self.compiles = 0
        self.invalidations = 0
        self.links = 0
        #: dispatch-loop hits on a compiled trace; bumped only during
        #: telemetry-observed runs (chained block->block transfers
        #: bypass the dispatch loop and are counted under ``links``)
        self.hits = 0

    # -- management ------------------------------------------------------

    def clear(self) -> None:
        """Full flush (fence.i / load_image)."""
        if self._traces or self.fns:
            self.invalidations += 1
        self.fns.clear()
        self._traces.clear()
        self._pages.clear()

    def invalidate_range(self, addr: int, size: int) -> None:
        """Drop every trace overlapping the written bytes
        ``[addr, addr+size)`` (3-byte pre-slack: an instruction starting
        just before *addr* may extend into the write)."""
        faults.site("sim.trace.invalidate")
        lo = addr - 3
        hi = addr + size
        first = lo >> PAGE_BITS
        last = (hi - 1) >> PAGE_BITS
        dropped = False
        for page in range(first, last + 1):
            bucket = self._pages.get(page)
            if not bucket:
                continue
            for tr in [t for t in bucket if t.entry < hi and t.end > lo]:
                self._drop(tr)
                dropped = True
        if dropped:
            self.invalidations += 1
            # a running trace exits at its next store / block boundary
            self.m.code_dirty = True

    def _register(self, tr: Trace) -> None:
        self._traces[tr.entry] = tr
        self.fns[tr.entry] = tr.fn
        for page in range(tr.entry >> PAGE_BITS,
                          ((tr.end - 1) >> PAGE_BITS) + 1):
            self._pages.setdefault(page, set()).add(tr)

    def _drop(self, tr: Trace) -> None:
        self._traces.pop(tr.entry, None)
        self.fns.pop(tr.entry, None)
        for page in range((tr.entry >> PAGE_BITS),
                          ((tr.end - 1) >> PAGE_BITS) + 1):
            bucket = self._pages.get(page)
            if bucket is not None:
                bucket.discard(tr)
        fn = tr.fn
        for cells, idx in tr.backrefs:
            if cells[idx] is fn:
                cells[idx] = None
        tr.backrefs.clear()
        tr.fn = None

    def _link(self, cells: list, idx: int, pc: int):
        """Resolve a chain cell: bind the trace at *pc* into *cells[idx]*
        so the block jumps straight to its successor next time."""
        tr = self._traces.get(pc)
        if tr is None:
            return None
        fn = tr.fn
        if not fn:
            return None
        cells[idx] = fn
        tr.backrefs.append((cells, idx))
        self.links += 1
        return fn

    # -- compilation -----------------------------------------------------

    def compile_at(self, pc: int):
        """Compile the superblock entered at *pc*.

        Returns the block function, or ``False`` when *pc* starts with an
        instruction that must run through the closure interpreter (the
        negative result is cached and invalidated like a real trace).
        """
        faults.site("sim.trace.compile")
        try:
            fn, end, count = self._compile(pc)
        except (DecodeError, MemoryFault):
            fn, end, count = False, pc + 4, 0
        if fn is False:
            end = pc + 4
        tr = Trace(pc, end, fn, count)
        self._register(tr)
        if fn is not False:
            self.compiles += 1
        return fn

    def _fetch(self, pc: int):
        mem = self.m.mem
        try:
            raw = mem.read_bytes(pc, 4)
        except MemoryFault:
            raw = mem.read_bytes(pc, 2)  # page-end compressed instr
        return decode(raw, 0, pc)

    def _compile(self, entry: int):
        m = self.m
        emit = _Emitter(m, entry, self._link)
        pc = entry
        for _ in range(self.max_block):
            try:
                instr = self._fetch(pc)
            except (DecodeError, MemoryFault):
                if emit.count == 0:
                    return False, pc, 0
                emit.finish_cut(pc, chain=False)
                return emit.build(), pc, emit.count
            mn = instr.mnemonic
            if mn in BRANCH_OPS:
                emit.emit_branch(pc, instr)
                return emit.build(), pc + instr.length, emit.count
            if mn == "jal":
                emit.emit_jal(pc, instr)
                return emit.build(), pc + instr.length, emit.count
            if mn == "jalr":
                emit.emit_jalr(pc, instr)
                return emit.build(), pc + instr.length, emit.count
            if not emit.emit_straight(pc, instr):
                # untraceable (ecall/ebreak/fence/csr/amo/unknown)
                if emit.count == 0:
                    return False, pc, 0
                emit.finish_cut(pc, chain=False)
                return emit.build(), pc, emit.count
            pc += instr.length
        emit.finish_cut(pc, chain=True)
        return emit.build(), pc, emit.count


class _Emitter:
    """Generates the Python source of one block function."""

    def __init__(self, m: "Machine", entry: int, link):
        self.m = m
        self.entry = entry
        self.lines: list[str] = []
        # namespace bound into the function via default arguments
        self.ns = {
            "m": m, "x": m.x, "fr": m.f,
            "ri": m.mem.read_int, "si": m.mem.write_int,
            "PG": m.mem._pages.get, "FB": int.from_bytes,
            "sx": _sx, "L": link,
            "F64": fp.f64_from_bits, "B64": fp.bits_from_f64,
            "F32": fp.f32_from_bits, "B32": fp.bits_from_f32,
            "MF": MemoryFault, "SF": SimFault,
        }
        self.count = 0
        self.cost = 0
        self.cells = 0
        # fault side table: ip -> (pc, ucycles-before, instret-before)
        self.sync_pc = [entry]
        self.sync_cost = [0]
        self.sync_count = [0]
        self._tmp = 0
        # block-granularity observation: compile one block-enter emit
        # into the trace prologue.  _rebuild_emit flushes the cache
        # whenever this mode (or the emit fan-out) changes, so binding
        # the current emit callable at compile time is safe.
        if m._trace_events and m._emit is not None:
            self.ns["EV"] = m._emit
            self.lines.append(
                f"EV((5, {entry:#x}, 0, m.instret, m.ucycles))")

    # -- helpers ---------------------------------------------------------

    def _bind(self, prefix: str, value) -> str:
        name = f"{prefix}{self.count}"
        self.ns[name] = value
        return name

    def _mark(self, pc: int) -> None:
        """Record a sync point for a possibly-faulting statement."""
        ip = len(self.sync_pc)
        self.sync_pc.append(pc)
        self.sync_cost.append(self.cost)
        self.sync_count.append(self.count)
        self.lines.append(f"ip = {ip}")

    def _charge(self, mn: str, instr) -> None:
        self.cost += self.m.timing.ucycles(
            category_of(mn, instr.spec.match & 0x7F))
        self.count += 1

    def _bookkeep(self) -> None:
        self.lines.append(f"m.ucycles += {self.cost}")
        self.lines.append(f"m.instret += {self.count}")

    def _chain_cell(self) -> int:
        k = self.cells
        self.cells += 1
        return k

    def _chain_return(self, target: int) -> None:
        k = self._chain_cell()
        self.lines.append(f"t = S[{k}]")
        self.lines.append(f"if t is None:")
        self.lines.append(f"    t = L(S, {k}, {target:#x})")
        self.lines.append("return t")

    # -- straight-line instructions --------------------------------------

    def emit_straight(self, pc: int, instr) -> bool:
        """Emit one non-control instruction; False if untraceable."""
        mn = instr.mnemonic
        f = instr.fields
        line = self._inline(pc, mn, f)
        if line is not None:
            for ln in (line if isinstance(line, list) else [line]):
                self.lines.append(ln)
            self._charge(mn, instr)
            return True
        if mn in STORES or mn in ("fsw", "fsd"):
            self._emit_store(pc, mn, f, instr)
            return True
        if mn in ("ecall", "ebreak", "fence", "fence.i") or \
                mn.startswith(("csr", "lr.", "sc.", "amo")):
            return False
        body = build_body(self.m, pc, instr)
        if body is None:
            return False
        self._mark(pc)
        self.lines.append(f"{self._bind('b', body)}()")
        self._charge(mn, instr)
        return True

    def _emit_store(self, pc: int, mn: str, f: dict, instr) -> None:
        size = STORES.get(mn) or (4 if mn == "fsw" else 8)
        src = "fr" if mn in ("fsw", "fsd") else "x"
        addr = f"(x[{f['rs1']}] + {f['imm']}) & {_M64}"
        self._mark(pc)
        self.lines.append(f"si({addr}, {size}, {src}[{f['rs2']}])")
        self._charge(mn, instr)
        # patch safety: if this store invalidated any trace, sync state
        # and leave the block — the tail is re-fetched through the cache.
        self.lines.append("if m.code_dirty:")
        self.lines.append("    m.code_dirty = False")
        self.lines.append(f"    m.pc = {pc + instr.length:#x}")
        self.lines.append(f"    m.ucycles += {self.cost}")
        self.lines.append(f"    m.instret += {self.count}")
        self.lines.append("    return None")

    def _inline(self, pc: int, mn: str, f: dict):
        """Source line(s) for the hot straight-line forms, else None."""
        if mn in RI_OPS:
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            if rd == 0:
                return "pass"
            if mn == "addi":
                if imm == 0:
                    return f"x[{rd}] = x[{rs1}]"
                return f"x[{rd}] = (x[{rs1}] + {imm}) & {_M64}"
            u = imm & ((1 << 64) - 1)
            if mn == "andi":
                return f"x[{rd}] = x[{rs1}] & {u:#x}"
            if mn == "ori":
                return f"x[{rd}] = x[{rs1}] | {u:#x}"
            if mn == "xori":
                return f"x[{rd}] = x[{rs1}] ^ {u:#x}"
            if mn == "slti":
                return f"x[{rd}] = 1 if sx(x[{rs1}]) < {imm} else 0"
            if mn == "sltiu":
                return f"x[{rd}] = 1 if x[{rs1}] < {u:#x} else 0"
            if mn == "addiw":
                v = self._temp()
                return [f"{v} = (x[{rs1}] + {imm}) & 0xFFFFFFFF",
                        f"x[{rd}] = {v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}"]
            return None
        if mn in SHIFT_OPS:
            rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
            if rd == 0:
                return "pass"
            if mn == "slli":
                return f"x[{rd}] = (x[{rs1}] << {sh}) & {_M64}"
            if mn == "srli":
                return f"x[{rd}] = x[{rs1}] >> {sh}"
            if mn == "srai":
                return f"x[{rd}] = (sx(x[{rs1}]) >> {sh}) & {_M64}"
            return None
        if mn in RR_OPS:
            rd, a, b = f["rd"], f["rs1"], f["rs2"]
            if rd == 0:
                return "pass"
            if mn == "add":
                return f"x[{rd}] = (x[{a}] + x[{b}]) & {_M64}"
            if mn == "sub":
                return f"x[{rd}] = (x[{a}] - x[{b}]) & {_M64}"
            if mn == "mul":
                return f"x[{rd}] = (x[{a}] * x[{b}]) & {_M64}"
            if mn == "and":
                return f"x[{rd}] = x[{a}] & x[{b}]"
            if mn == "or":
                return f"x[{rd}] = x[{a}] | x[{b}]"
            if mn == "xor":
                return f"x[{rd}] = x[{a}] ^ x[{b}]"
            if mn == "sltu":
                return f"x[{rd}] = 1 if x[{a}] < x[{b}] else 0"
            if mn == "slt":
                return f"x[{rd}] = 1 if sx(x[{a}]) < sx(x[{b}]) else 0"
            if mn in ("addw", "subw", "mulw"):
                op = {"addw": "+", "subw": "-", "mulw": "*"}[mn]
                v = self._temp()
                return [f"{v} = (x[{a}] {op} x[{b}]) & 0xFFFFFFFF",
                        f"x[{rd}] = {v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}"]
            return None
        if mn == "lui" or mn == "auipc":
            rd = f["rd"]
            if rd == 0:
                return "pass"
            val = sign_extend(f["imm"], 20) << 12
            if mn == "auipc":
                val += pc
            return f"x[{rd}] = {to_unsigned(val, 64):#x}"
        if mn in LOADS:
            size, signed = LOADS[mn]
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            addr = f"(x[{rs1}] + {imm}) & {_M64}"
            if rd == 0:
                self._mark(pc)
                return [f"ri({addr}, {size})"]
            v = self._temp()
            self._mark(pc)
            lines = self._load_lines(v, addr, size)
            if not signed or size == 8:
                lines.append(f"x[{rd}] = {v}")
            else:
                sbit = 1 << (size * 8 - 1)
                ext = ((1 << 64) - 1) ^ ((1 << (size * 8)) - 1)
                lines.append(f"x[{rd}] = {v} | {ext:#x} "
                             f"if {v} & {sbit:#x} else {v}")
            return lines
        if mn in ("flw", "fld"):
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            addr = f"(x[{rs1}] + {imm}) & {_M64}"
            size = 4 if mn == "flw" else 8
            v = self._temp()
            self._mark(pc)
            lines = self._load_lines(v, addr, size)
            if mn == "flw":
                lines.append(f"fr[{rd}] = 0xFFFFFFFF00000000 | {v}")
            else:
                lines.append(f"fr[{rd}] = {v}")
            return lines
        parts = mn.split(".")
        if len(parts) == 2 and parts[1] in ("s", "d"):
            root, fmt = parts
            G = "F32" if fmt == "s" else "F64"
            B = "B32" if fmt == "s" else "B64"
            if root in ("fadd", "fsub", "fmul"):
                op = {"fadd": "+", "fsub": "-", "fmul": "*"}[root]
                rd, a, b = f["rd"], f["rs1"], f["rs2"]
                return f"fr[{rd}] = {B}({G}(fr[{a}]) {op} {G}(fr[{b}]))"
            if root in FMA_SIGNS:
                ps, qs = FMA_SIGNS[root]
                rd, a, b, c = f["rd"], f["rs1"], f["rs2"], f["rs3"]
                return (f"fr[{rd}] = {B}({ps} * ({G}(fr[{a}]) * "
                        f"{G}(fr[{b}])) + {qs} * {G}(fr[{c}]))")
        return None

    def _temp(self) -> str:
        self._tmp += 1
        return f"v{self._tmp}"

    def _load_lines(self, v: str, addr: str, size: int) -> list[str]:
        """Memory read with the page-dict access inlined; falls back to
        ``read_int`` off-page-fastpath (cross-page or unmapped — the
        latter raises MemoryFault with ``ip`` already synced).  Reads
        never touch the write watch, so inlining is invalidation-safe;
        stores always go through ``write_int``."""
        return [
            f"a = {addr}",
            "pg = PG(a >> 12)",
            "o = a & 4095",
            f"if pg is None or o > {4096 - size}:",
            f"    {v} = ri(a, {size})",
            "else:",
            f"    {v} = FB(pg[o:o + {size}], 'little')",
        ]

    # -- terminators -----------------------------------------------------

    def emit_branch(self, pc: int, instr) -> None:
        f = instr.fields
        a, b = f["rs1"], f["rs2"]
        taken = pc + f["imm"]
        fall = pc + instr.length
        cond = {
            "beq": f"x[{a}] == x[{b}]",
            "bne": f"x[{a}] != x[{b}]",
            "bltu": f"x[{a}] < x[{b}]",
            "bgeu": f"x[{a}] >= x[{b}]",
            "blt": f"sx(x[{a}]) < sx(x[{b}])",
            "bge": f"sx(x[{a}]) >= sx(x[{b}])",
        }[instr.mnemonic]
        self._charge(instr.mnemonic, instr)
        self._bookkeep()
        self.lines.append(f"if {cond}:")
        k = self._chain_cell()
        self.lines.append(f"    m.pc = {taken:#x}")
        self.lines.append(f"    t = S[{k}]")
        self.lines.append("    if t is None:")
        self.lines.append(f"        t = L(S, {k}, {taken:#x})")
        self.lines.append("    return t")
        self.lines.append(f"m.pc = {fall:#x}")
        self._chain_return(fall)

    def emit_jal(self, pc: int, instr) -> None:
        f = instr.fields
        rd = f["rd"]
        target = (pc + f["imm"]) & ((1 << 64) - 1)
        self._charge("jal", instr)
        if rd:
            self.lines.append(f"x[{rd}] = {pc + instr.length:#x}")
        self._bookkeep()
        self.lines.append(f"m.pc = {target:#x}")
        self._chain_return(target)

    def emit_jalr(self, pc: int, instr) -> None:
        f = instr.fields
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        self._charge("jalr", instr)
        self.lines.append(
            f"t = (x[{rs1}] + {imm}) & 0xFFFFFFFFFFFFFFFE")
        if rd:
            self.lines.append(f"x[{rd}] = {pc + instr.length:#x}")
        self._bookkeep()
        self.lines.append("m.pc = t")
        self.lines.append("return None")

    def finish_cut(self, next_pc: int, chain: bool) -> None:
        """End a block without a control transfer (max length reached or
        the next instruction is untraceable)."""
        self._bookkeep()
        self.lines.append(f"m.pc = {next_pc:#x}")
        if chain:
            self._chain_return(next_pc)
        else:
            self.lines.append("return None")

    # -- assembly --------------------------------------------------------

    def build(self):
        self.ns["S"] = [None] * self.cells
        self.ns["P"] = tuple(self.sync_pc)
        self.ns["U"] = tuple(self.sync_cost)
        self.ns["N"] = tuple(self.sync_count)
        params = ", ".join(f"{k}={k}" for k in self.ns)
        body = "\n        ".join(self.lines) or "pass"
        src = (
            f"def __trace__({params}):\n"
            f"    ip = 0\n"
            f"    try:\n"
            f"        {body}\n"
            f"    except (MF, SF):\n"
            f"        m.pc = P[ip]\n"
            f"        m.ucycles += U[ip]\n"
            f"        m.instret += N[ip]\n"
            f"        raise\n"
        )
        code = compile(src, f"<trace@{self.entry:#x}>", "exec")
        env = dict(self.ns)
        exec(code, env)
        return env["__trace__"]
