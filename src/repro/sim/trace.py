"""Tiered trace JIT for the simulator hot loop.

Tier 1 — superblocks.  Straight-line runs of instructions (ended by a
branch/jump, or by anything that needs exact per-instruction machine
state — ecall/ebreak/fences/CSR reads/atomics) are compiled **once**
into a single Python function that

* executes the whole block with machine state bound to locals,
* inlines the common ALU/load/store forms as plain expressions (no
  per-instruction call at all) and falls back to the executor's
  bookkeeping-free bodies for the rest,
* charges timing as **one batched ucycle charge** per block
  (:meth:`TimingModel.block_ucycles`) and bumps ``instret`` once,
* **chains** directly to the successor trace when the (static) branch
  target has already been compiled, skipping even the per-block cache
  lookup.

Tier 2 — megatraces.  Backward branch/jal exits carry a per-edge hot
counter; when an edge fires :data:`HOT_THRESHOLD` times the cache
promotes the loop head into a **megatrace**: the loop body (following
fallthrough past forward branches, through direct calls, and through
returns whose target constant-folds) is compiled into one Python
function whose iterations run inside a ``while True:`` loop — they
never return to the dispatch loop.  Within a megatrace the hot integer
registers live in Python **locals**, spilled to the architectural
``x`` list only at side exits, guards, deopts and faults; immediates
are constant-folded while emitting source (``li``/``lui``/``auipc``
chains become literals, ``jal`` makes the link register a known
constant so the matching ``jalr`` return is followed statically).

Indirect jumps (``jalr``) that end a trace are **guard-specialised**:
the generated code remembers the first observed target and chains
straight to its compiled trace while the guard holds, deoptimising to
the dispatch loop (and from there, if need be, the closure
interpreter) on a miss.

Tier 3 — persistence.  Compiled-trace *shapes* (generated source,
chain-cell count, fault sync tables, body-closure sites, guard
targets) can be serialized keyed by code-page content hashes and
reloaded into a fresh machine running the same binary, skipping both
the warmup profiling and the compile work (see
:meth:`TraceCache.persist_save` / :meth:`TraceCache.persist_load` and
:mod:`repro.sim.persist`).  A page whose content hash no longer
matches rejects its traces, so patched or self-modified binaries fall
back to demand compilation.

Patch safety
------------
Dynamic instrumentation rewrites code while it runs, so the trace cache
must never execute stale bytes:

* every write overlapping an executable range (self-modifying stores,
  ``Machine.write_mem`` from the patcher/ProcControl, breakpoint
  insertion) reaches :meth:`TraceCache.invalidate_range` through the
  :class:`~repro.sim.memory.Memory` write watch;
* invalidation drops every trace any of whose instruction **spans**
  overlap the written bytes (with the same 3-byte pre-slack as the
  per-pc icache: a patched instruction may start up to 3 bytes before
  the written address) and severs every chain link pointing at a
  dropped trace — megatraces track one span per contiguous stretch of
  code they inlined, so a write into a callee dropped a megatrace that
  inlined it even when the loop head lives pages away;
* a store *inside* a running trace that invalidates any trace sets
  ``machine.code_dirty``; the generated code spills cached registers,
  syncs architectural state and exits the block right after that store
  (counted under ``trace.deopts``), so the remaining (possibly
  rewritten) tail is re-fetched through the cache.

Traces keep architectural state exact at every *observable* boundary:
block entry/exit, any store, and any faulting load/store (a per-block
side table maps the fault site back to precise pc/ucycles/instret, and
the generated exception handler spills register locals — which hold
exactly the pre-fault architectural values — before re-raising).
Single-stepping, watchpoint runs and bounded ``run(max_steps=...)``
stay on the per-pc closure interpreter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import faults
from ..riscv.decoder import DecodeError, decode
from ..riscv.encoding import sign_extend, to_unsigned
from . import fp
from .executor import (
    BRANCH_OPS, FMA_SIGNS, LOADS, RI_OPS, RR_OPS, SHIFT_OPS, STORES,
    UNARY_OPS, SimFault, _sx, build_body,
)
from .memory import MemoryFault
from .timing import category_of

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: maximum instructions per superblock
MAX_BLOCK = 64

#: maximum instructions inlined into one megatrace
MAX_MEGA = 256

#: back-edge executions before a loop head is promoted to a megatrace
HOT_THRESHOLD = 32

#: jalr guard misses tolerated before the inline cache rebinds
GUARD_REBIND = 64

#: 64-bit mask literal used throughout generated code
_M64 = "0xFFFFFFFFFFFFFFFF"
_MASK64 = (1 << 64) - 1

PAGE_BITS = 12

#: serialization format tag for persisted trace metadata
PERSIST_FORMAT = "repro.trace-cache/1"

#: spill placeholder in generated megatrace source, expanded at build
#: time once the trace's full written-register set is known
_SPILL = "\x00SPILL"


def _timing_key(timing) -> str:
    """Fingerprint of the ucycle constants baked into generated code."""
    import hashlib
    parts = [timing.name, repr(timing.frequency_hz),
             repr(timing.default_cost)]
    parts += [f"{k}={timing.costs[k]!r}" for k in sorted(timing.costs)]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def _base_ns(cache: "TraceCache") -> dict:
    """The namespace every generated trace function closes over (via
    default arguments).  Shared between demand compilation and
    persistent-cache materialization so persisted sources always find
    their names."""
    m = cache.m
    return {
        "m": m, "x": m.x, "fr": m.f, "W": m.mem,
        "ri": m.mem.read_int, "si": m.mem.write_int,
        "PG": m.mem._pages.get, "FB": int.from_bytes,
        "sx": _sx, "L": cache._link, "MT": cache._promote,
        "JM": cache._jalr_miss, "GH": cache.jalr_hits,
        "D": cache.deopt_count,
        "F64": fp.f64_from_bits, "B64": fp.bits_from_f64,
        "F32": fp.f32_from_bits, "B32": fp.bits_from_f32,
        "MF": MemoryFault, "SF": SimFault,
    }


class Trace:
    """One compiled trace: its covered instruction spans plus function."""

    __slots__ = ("entry", "end", "fn", "backrefs", "n_insns", "kind",
                 "spans", "meta")

    def __init__(self, entry: int, end: int, fn, n_insns: int,
                 kind: str = "super", spans=None, meta=None):
        self.entry = entry
        self.end = end
        #: the compiled block function (``False`` marks a negative entry:
        #: the pc starts with an untraceable instruction)
        self.fn = fn
        #: chain cells (cells-list, index) that point at ``self.fn``;
        #: severed on invalidation
        self.backrefs: list[tuple[list, int]] = []
        self.n_insns = n_insns
        #: "super" (tier-1 superblock) or "mega" (tier-2 loop trace)
        self.kind = kind
        #: merged [lo, hi) code intervals this trace compiled from; a
        #: superblock has one, a megatrace one per inlined stretch
        self.spans: list[tuple[int, int]] = spans or [(entry, end)]
        #: persistence record (None for negative entries and traces
        #: carrying compiled-in event emits)
        self.meta = meta


class TraceCache:
    """Tiered compiled-trace cache with range invalidation, chaining,
    megatrace promotion and persistent metadata."""

    def __init__(self, machine: "Machine", max_block: int = MAX_BLOCK,
                 mega: bool = True):
        self.m = machine
        self.max_block = max_block
        #: megatrace promotion enabled (tier 2)
        self.mega_enabled = mega
        #: back-edge executions before promotion (baked into generated
        #: superblocks at compile time; lower it before first run)
        self.hot_threshold = HOT_THRESHOLD
        #: entry pc -> block function (``False`` = negative entry).  The
        #: run loop binds ``fns.get``; mutate in place only.
        self.fns: dict[int, object] = {}
        self._traces: dict[int, Trace] = {}
        self._pages: dict[int, set[Trace]] = {}
        #: loop heads where megatrace compilation failed; retried only
        #: after the code covering them is rewritten
        self._no_mega: set[int] = set()
        # -- statistics (reported by the throughput ablation and the
        # telemetry subsystem)
        self.compiles = 0
        self.invalidations = 0
        self.links = 0
        self.mega_compiles = 0
        #: dispatch-loop hits on a compiled trace; bumped only during
        #: telemetry-observed runs (chained block->block transfers
        #: bypass the dispatch loop and are counted under ``links``)
        self.hits = 0
        #: shared mutable counters bound into generated code (one-element
        #: lists so traces can bump them without attribute lookups)
        self.jalr_hits = [0]
        self.jalr_misses = [0]
        #: early exits from compiled traces forced by invalidation
        #: (code_dirty after a store)
        self.deopt_count = [0]
        # -- persistent-cache statistics
        self.persist_loads = 0
        self.persist_stores = 0
        self.persist_stale = 0

    # -- management ------------------------------------------------------

    def clear(self) -> None:
        """Full flush (fence.i / load_image / observer mode change)."""
        if self._traces or self.fns:
            self.invalidations += 1
        self.fns.clear()
        self._traces.clear()
        self._pages.clear()
        self._no_mega.clear()

    def invalidate_range(self, addr: int, size: int) -> None:
        """Drop every trace overlapping the written bytes
        ``[addr, addr+size)`` (3-byte pre-slack: an instruction starting
        just before *addr* may extend into the write)."""
        faults.site("sim.trace.invalidate")
        lo = addr - 3
        hi = addr + size
        first = lo >> PAGE_BITS
        last = (hi - 1) >> PAGE_BITS
        dropped = False
        for page in range(first, last + 1):
            bucket = self._pages.get(page)
            if not bucket:
                continue
            stale = [t for t in bucket
                     if any(s_lo < hi and s_hi > lo
                            for s_lo, s_hi in t.spans)]
            for tr in stale:
                self._drop(tr)
                dropped = True
        if self._no_mega:
            self._no_mega -= {p for p in self._no_mega if lo <= p < hi}
        if dropped:
            self.invalidations += 1
            # a running trace exits at its next store / block boundary
            self.m.code_dirty = True

    def _pages_of(self, tr: Trace):
        pages = set()
        for lo, hi in tr.spans:
            pages.update(range(lo >> PAGE_BITS,
                               ((hi - 1) >> PAGE_BITS) + 1))
        return pages

    def _register(self, tr: Trace) -> None:
        self._traces[tr.entry] = tr
        self.fns[tr.entry] = tr.fn
        for page in self._pages_of(tr):
            self._pages.setdefault(page, set()).add(tr)

    def _drop(self, tr: Trace) -> None:
        self._traces.pop(tr.entry, None)
        self.fns.pop(tr.entry, None)
        for page in self._pages_of(tr):
            bucket = self._pages.get(page)
            if bucket is not None:
                bucket.discard(tr)
        fn = tr.fn
        for cells, idx in tr.backrefs:
            if cells[idx] is fn:
                cells[idx] = None
        tr.backrefs.clear()
        tr.fn = None

    def _link(self, cells: list, idx: int, pc: int):
        """Resolve a chain cell: bind the trace at *pc* into *cells[idx]*
        so the block jumps straight to its successor next time."""
        tr = self._traces.get(pc)
        if tr is None:
            return None
        fn = tr.fn
        if not fn:
            return None
        cells[idx] = fn
        tr.backrefs.append((cells, idx))
        self.links += 1
        return fn

    # -- megatrace promotion ---------------------------------------------

    def _promote(self, cells: list, idx: int, head: int):
        """Hot back-edge fired: compile (or link) the megatrace at
        *head*.  Called from generated superblock code with ``m.pc``
        already set to *head*; returns the function to run next (or
        ``None`` to fall back to the dispatch loop)."""
        tr = self._traces.get(head)
        if tr is not None and tr.kind == "mega":
            fn = tr.fn
            if not fn:
                return None
            cells[idx] = fn
            tr.backrefs.append((cells, idx))
            self.links += 1
            return fn
        if (not self.mega_enabled or self.m._trace_events
                or head in self._no_mega):
            return self._link(cells, idx, head)
        built = self._compile_mega(head)
        if built is None:
            self._no_mega.add(head)
            return self._link(cells, idx, head)
        fn, spans, count, meta = built
        old = self._traces.get(head)
        if old is not None:
            self._drop(old)
        end = max(hi for _, hi in spans)
        tr = Trace(head, end, fn, count, kind="mega", spans=spans,
                   meta=meta)
        self._register(tr)
        self.mega_compiles += 1
        cells[idx] = fn
        tr.backrefs.append((cells, idx))
        self.links += 1
        return fn

    def _jalr_miss(self, G: list, cells: list, idx: int, t: int):
        """Inline-cache miss on a guarded jalr exit.  First observation
        installs the guard; a persistent miss streak rebinds it to the
        latest target.  Returns the next function to run (or ``None``
        to deoptimise to the dispatch loop)."""
        if G[0] is None:
            G[0] = t
            return self._link(cells, idx, t)
        self.jalr_misses[0] += 1
        G[1] += 1
        if G[1] >= GUARD_REBIND:
            G[0] = t
            G[1] = 0
            cells[idx] = None
            return self._link(cells, idx, t)
        return None

    # -- compilation -----------------------------------------------------

    def compile_at(self, pc: int):
        """Compile the superblock entered at *pc*.

        Returns the block function, or ``False`` when *pc* starts with an
        instruction that must run through the closure interpreter (the
        negative result is cached and invalidated like a real trace).
        """
        faults.site("sim.trace.compile")
        try:
            fn, end, count, meta = self._compile(pc)
        except (DecodeError, MemoryFault):
            fn, end, count, meta = False, pc + 4, 0, None
        if fn is False:
            end = pc + 4
        tr = Trace(pc, end, fn, count, meta=meta)
        self._register(tr)
        if fn is not False:
            self.compiles += 1
        return fn

    def _fetch(self, pc: int):
        mem = self.m.mem
        try:
            raw = mem.read_bytes(pc, 4)
        except MemoryFault:
            raw = mem.read_bytes(pc, 2)  # page-end compressed instr
        return decode(raw, 0, pc)

    def _compile(self, entry: int):
        emit = _Emitter(self, entry)
        pc = entry
        for _ in range(self.max_block):
            try:
                instr = self._fetch(pc)
            except (DecodeError, MemoryFault):
                if emit.count == 0:
                    return False, pc, 0, None
                emit.finish_cut(pc, chain=False)
                return emit.build(), pc, emit.count, emit.meta
            mn = instr.mnemonic
            if mn in BRANCH_OPS:
                emit.emit_branch(pc, instr)
                return (emit.build(), pc + instr.length, emit.count,
                        emit.meta)
            if mn == "jal":
                emit.emit_jal(pc, instr)
                return (emit.build(), pc + instr.length, emit.count,
                        emit.meta)
            if mn == "jalr":
                emit.emit_jalr(pc, instr)
                return (emit.build(), pc + instr.length, emit.count,
                        emit.meta)
            if not emit.emit_straight(pc, instr):
                # untraceable (ecall/ebreak/fence/csr/amo/unknown)
                if emit.count == 0:
                    return False, pc, 0, None
                emit.finish_cut(pc, chain=False)
                return emit.build(), pc, emit.count, emit.meta
            pc += instr.length
        emit.finish_cut(pc, chain=True)
        return emit.build(), pc, emit.count, emit.meta

    def _walk(self, emit: "_MegaEmitter", head: int) -> None:
        """Drive one emission pass over the loop rooted at *head*:
        follow the straight-line path (guarding forward branches,
        following direct calls and constant-folded returns) until the
        path returns to *head*, leaves through an exit, or hits a
        limit (chained exit)."""
        pc = head
        visited: set[int] = set()
        budget = MAX_MEGA - emit.count
        for _ in range(max(budget, 1)):
            if pc == head and emit.count:
                emit.close_loop()
                return
            if pc in visited:
                emit.exit_chain(pc)
                return
            try:
                instr = self._fetch(pc)
            except (DecodeError, MemoryFault):
                emit.exit_plain(pc)
                return
            visited.add(pc)
            mn = instr.mnemonic
            if mn in BRANCH_OPS:
                pc = emit.emit_branch(pc, instr)
            elif mn == "jal":
                pc = emit.emit_jal(pc, instr)
            elif mn == "jalr":
                pc = emit.emit_jalr(pc, instr)
            elif emit.emit_straight(pc, instr):
                pc += instr.length
            else:
                emit.exit_plain(pc)
                return
            if pc is None:  # the emitter closed or exited the trace
                return
        emit.exit_chain(pc)

    def _compile_mega(self, head: int):
        """Build the megatrace rooted at loop head *head*.

        The loop is compiled as two stitched bodies: a straight-line
        **warmup** pass for the first iteration, then a steady-state
        ``while True:`` body spliced in at every point the warmup
        returns to the head.  The steady-state body is emitted with the
        warmup's surviving constants and forwarded memory values as
        seeds, so loop-invariant stack slots load once per loop *entry*
        instead of once per iteration; a fixpoint drops any seed that
        is invalidated inside the steady-state body (stores,
        base-register writes) or that fails to re-establish itself by
        the back edge — either would be stale on the next iteration.

        Returns ``(fn, spans, n_insns, meta)`` or ``None``."""
        emit = _MegaEmitter(self, head)
        self._walk(emit, head)
        if emit.count == 0:
            return None
        if emit.closed:
            seed_consts, seed_mem, seed_fp, seed_fp_mem = \
                emit.seed_from_close_sites()
            for _ in range(64):
                snap = emit.snapshot()
                emit.begin_fast(seed_consts, seed_mem, seed_fp,
                                seed_fp_mem)
                self._walk(emit, head)
                if not (emit.killed_seeds or emit.killed_consts
                        or emit.killed_fp or emit.killed_fp_mem):
                    break
                emit.restore(snap)
                seed_mem = {k: v for k, v in seed_mem.items()
                            if k not in emit.killed_seeds}
                seed_consts = {r: v for r, v in seed_consts.items()
                               if r not in emit.killed_consts}
                seed_fp = {r: d for r, d in seed_fp.items()
                           if r not in emit.killed_fp}
                seed_fp_mem = {k: r for k, r in seed_fp_mem.items()
                               if k not in emit.killed_fp_mem
                               and r not in emit.killed_fp}
        return emit.build_result()

    # -- persistence -----------------------------------------------------

    def persist_save(self) -> dict:
        """Serialize every persistable compiled trace (shape + generated
        source + sync tables + guard state) keyed by the content hashes
        of the code pages it spans.  The result round-trips through JSON
        and feeds :meth:`persist_load` on a fresh machine running the
        same binary."""
        mem = self.m.mem
        pages: dict[int, str] = {}
        records = []
        for tr in self._traces.values():
            meta = tr.meta
            if not tr.fn or meta is None:
                continue  # negative entry, dropped, or emit-carrying
            tpages = sorted(self._pages_of(tr))
            ok = True
            for p in tpages:
                if p not in pages:
                    h = mem.page_hash(p)
                    if h is None:
                        ok = False
                        break
                    pages[p] = h
            if not ok:
                continue
            rec = {
                "entry": tr.entry, "end": tr.end, "n": tr.n_insns,
                "spans": [list(s) for s in tr.spans],
                "pages": tpages,
                "kind": meta["kind"], "src": meta["src"],
                "cells": meta["cells"],
                "P": meta["P"], "U": meta["U"], "N": meta["N"],
                "CF": meta.get("CF"), "FPP": meta.get("FPP"),
                "bodies": meta["bodies"],
                "hot": meta["hot"], "guard": meta["guard"],
            }
            if meta["guard"] and meta.get("_G") is not None:
                rec["guard_target"] = meta["_G"][0]
            records.append(rec)
        self.persist_stores += len(records)
        return {
            "format": PERSIST_FORMAT,
            "timing": _timing_key(self.m.timing),
            "max_block": self.max_block,
            "pages": {str(p): h for p, h in pages.items()},
            "traces": records,
        }

    def persist_load(self, data: dict) -> int:
        """Materialize traces from a :meth:`persist_save` snapshot into
        this cache.  Every trace whose code pages all hash-match the
        current memory image is compiled from its saved source (no
        decode, no emission, no warmup counting); any page that was
        patched since the save rejects its traces
        (``trace.persist.stale``) and demand compilation takes over.
        Call after ``load_image``/``load_program``; refuses to load
        while a block-granularity event stream is attached (those
        traces need compiled-in emits)."""
        if self.m._trace_events:
            return 0
        traces = data.get("traces", [])
        if (data.get("format") != PERSIST_FORMAT
                or data.get("timing") != _timing_key(self.m.timing)
                or data.get("max_block") != self.max_block):
            self.persist_stale += len(traces)
            return 0
        mem = self.m.mem
        ok_pages = set()
        for key, saved_hash in data.get("pages", {}).items():
            idx = int(key)
            if mem.page_hash(idx) == saved_hash:
                ok_pages.add(idx)
        loaded = 0
        for rec in traces:
            entry = rec["entry"]
            if entry in self.fns:
                continue
            if not all(p in ok_pages for p in rec["pages"]):
                self.persist_stale += 1
                continue
            try:
                fn, meta = self._materialize(rec)
            except Exception:
                self.persist_stale += 1
                continue
            tr = Trace(entry, rec["end"], fn, rec["n"],
                       kind=rec["kind"],
                       spans=[tuple(s) for s in rec["spans"]],
                       meta=meta)
            self._register(tr)
            self.persist_loads += 1
            loaded += 1
        return loaded

    def _materialize(self, rec: dict):
        """exec() one persisted trace source against a freshly built
        namespace (chain cells empty, guard restored, body closures
        rebuilt by re-decoding their instructions)."""
        ns = _base_ns(self)
        ns["S"] = [None] * rec["cells"]
        ns["P"] = tuple(rec["P"])
        ns["U"] = tuple(rec["U"])
        ns["N"] = tuple(rec["N"])
        if rec.get("CF") is not None:
            ns["CF"] = tuple(tuple(map(tuple, t)) for t in rec["CF"])
        if rec.get("FPP") is not None:
            ns["FPP"] = tuple(
                tuple((p[0], p[1]) for p in t) for t in rec["FPP"])
        for name, pc in rec["bodies"].items():
            instr = self._fetch(pc)
            body = build_body(self.m, pc, instr)
            if body is None:
                raise ValueError(f"unreplayable body at {pc:#x}")
            ns[name] = body
        if rec["hot"]:
            ns["C"] = [0]
        guard = None
        if rec["guard"]:
            guard = [rec.get("guard_target"), 0]
            ns["G"] = guard
        fname = "__mega__" if rec["kind"] == "mega" else "__trace__"
        code = compile(rec["src"], f"<persist@{rec['entry']:#x}>",
                       "exec")
        env = dict(ns)
        exec(code, env)
        meta = {k: rec[k] for k in ("kind", "src", "cells", "P", "U",
                                    "N", "bodies", "hot", "guard")}
        meta["CF"] = rec.get("CF")
        meta["FPP"] = rec.get("FPP")
        meta["_G"] = guard
        return env[fname], meta


class _Emitter:
    """Generates the Python source of one superblock function."""

    def __init__(self, cache: TraceCache, entry: int):
        self.cache = cache
        self.m = cache.m
        self.entry = entry
        self.lines: list[str] = []
        # namespace bound into the function via default arguments
        self.ns = _base_ns(cache)
        self.count = 0
        self.cost = 0
        self.cells = 0
        self.has_hot = False
        self.has_guard = False
        self.has_emits = False
        self.bodies: dict[str, int] = {}
        self.meta: dict | None = None
        # fault side table: ip -> (pc, ucycles-before, instret-before)
        self.sync_pc = [entry]
        self.sync_cost = [0]
        self.sync_count = [0]
        self._tmp = 0
        # block-granularity observation: compile one block-enter emit
        # into the trace prologue.  _rebuild_emit flushes the cache
        # whenever this mode (or the emit fan-out) changes, so binding
        # the current emit callable at compile time is safe.
        m = self.m
        if m._trace_events and m._emit is not None:
            self.ns["EV"] = m._emit
            self.has_emits = True
            self.lines.append(
                f"EV((5, {entry:#x}, 0, m.instret, m.ucycles))")

    # -- helpers ---------------------------------------------------------

    def _bind_body(self, body, pc: int) -> str:
        name = f"b{self.count}"
        self.ns[name] = body
        self.bodies[name] = pc
        return name

    def _mark(self, pc: int) -> None:
        """Record a sync point for a possibly-faulting statement."""
        ip = len(self.sync_pc)
        self.sync_pc.append(pc)
        self.sync_cost.append(self.cost)
        self.sync_count.append(self.count)
        self.lines.append(f"ip = {ip}")

    def _charge(self, mn: str, instr) -> None:
        self.cost += self.m.timing.ucycles(
            category_of(mn, instr.spec.match & 0x7F))
        self.count += 1

    def _bookkeep(self) -> None:
        self.lines.append(f"m.ucycles += {self.cost}")
        self.lines.append(f"m.instret += {self.count}")

    def _chain_cell(self) -> int:
        k = self.cells
        self.cells += 1
        return k

    def _chain_return(self, target: int) -> None:
        k = self._chain_cell()
        self.lines.append(f"t = S[{k}]")
        self.lines.append("if t is None:")
        self.lines.append(f"    t = L(S, {k}, {target:#x})")
        self.lines.append("return t")

    def _hot_chain_return(self, target: int, indent: str = "") -> None:
        """Chain return over a backward edge: count executions and
        promote the target to a megatrace once hot."""
        if (not self.cache.mega_enabled or self.m._trace_events):
            k = self._chain_cell()
            self.lines.append(f"{indent}t = S[{k}]")
            self.lines.append(f"{indent}if t is None:")
            self.lines.append(f"{indent}    t = L(S, {k}, {target:#x})")
            self.lines.append(f"{indent}return t")
            return
        if not self.has_hot:
            self.has_hot = True
            self.ns["C"] = [0]
        k = self._chain_cell()
        self.lines.append(f"{indent}C[0] += 1")
        self.lines.append(
            f"{indent}if C[0] >= {self.cache.hot_threshold}:")
        self.lines.append(f"{indent}    C[0] = 0")
        self.lines.append(f"{indent}    return MT(S, {k}, {target:#x})")
        self.lines.append(f"{indent}t = S[{k}]")
        self.lines.append(f"{indent}if t is None:")
        self.lines.append(f"{indent}    t = L(S, {k}, {target:#x})")
        self.lines.append(f"{indent}return t")

    # -- straight-line instructions --------------------------------------

    def emit_straight(self, pc: int, instr) -> bool:
        """Emit one non-control instruction; False if untraceable."""
        mn = instr.mnemonic
        f = instr.fields
        line = self._inline(pc, mn, f)
        if line is not None:
            for ln in (line if isinstance(line, list) else [line]):
                self.lines.append(ln)
            self._charge(mn, instr)
            return True
        if mn in STORES or mn in ("fsw", "fsd"):
            self._emit_store(pc, mn, f, instr)
            return True
        if mn in ("ecall", "ebreak", "fence", "fence.i") or \
                mn.startswith(("csr", "lr.", "sc.", "amo")):
            return False
        body = build_body(self.m, pc, instr)
        if body is None:
            return False
        self._mark(pc)
        self.lines.append(f"{self._bind_body(body, pc)}()")
        self._charge(mn, instr)
        return True

    def _emit_store(self, pc: int, mn: str, f: dict, instr) -> None:
        size = STORES.get(mn) or (4 if mn == "fsw" else 8)
        src = "fr" if mn in ("fsw", "fsd") else "x"
        addr = f"(x[{f['rs1']}] + {f['imm']}) & {_M64}"
        self._mark(pc)
        self.lines.append(f"si({addr}, {size}, {src}[{f['rs2']}])")
        self._charge(mn, instr)
        # patch safety: if this store invalidated any trace, sync state
        # and leave the block — the tail is re-fetched through the cache.
        self.lines.append("if m.code_dirty:")
        self.lines.append("    m.code_dirty = False")
        self.lines.append("    D[0] += 1")
        self.lines.append(f"    m.pc = {pc + instr.length:#x}")
        self.lines.append(f"    m.ucycles += {self.cost}")
        self.lines.append(f"    m.instret += {self.count}")
        self.lines.append("    return None")

    def _inline(self, pc: int, mn: str, f: dict):
        """Source line(s) for the hot straight-line forms, else None."""
        if mn in RI_OPS:
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            if rd == 0:
                return "pass"
            if mn == "addi":
                if imm == 0:
                    return f"x[{rd}] = x[{rs1}]"
                return f"x[{rd}] = (x[{rs1}] + {imm}) & {_M64}"
            u = imm & ((1 << 64) - 1)
            if mn == "andi":
                return f"x[{rd}] = x[{rs1}] & {u:#x}"
            if mn == "ori":
                return f"x[{rd}] = x[{rs1}] | {u:#x}"
            if mn == "xori":
                return f"x[{rd}] = x[{rs1}] ^ {u:#x}"
            if mn == "slti":
                return f"x[{rd}] = 1 if sx(x[{rs1}]) < {imm} else 0"
            if mn == "sltiu":
                return f"x[{rd}] = 1 if x[{rs1}] < {u:#x} else 0"
            if mn == "addiw":
                v = self._temp()
                return [f"{v} = (x[{rs1}] + {imm}) & 0xFFFFFFFF",
                        f"x[{rd}] = {v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}"]
            return None
        if mn in SHIFT_OPS:
            rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
            if rd == 0:
                return "pass"
            if mn == "slli":
                return f"x[{rd}] = (x[{rs1}] << {sh}) & {_M64}"
            if mn == "srli":
                return f"x[{rd}] = x[{rs1}] >> {sh}"
            if mn == "srai":
                return f"x[{rd}] = (sx(x[{rs1}]) >> {sh}) & {_M64}"
            return None
        if mn in RR_OPS:
            rd, a, b = f["rd"], f["rs1"], f["rs2"]
            if rd == 0:
                return "pass"
            if mn == "add":
                return f"x[{rd}] = (x[{a}] + x[{b}]) & {_M64}"
            if mn == "sub":
                return f"x[{rd}] = (x[{a}] - x[{b}]) & {_M64}"
            if mn == "mul":
                return f"x[{rd}] = (x[{a}] * x[{b}]) & {_M64}"
            if mn == "and":
                return f"x[{rd}] = x[{a}] & x[{b}]"
            if mn == "or":
                return f"x[{rd}] = x[{a}] | x[{b}]"
            if mn == "xor":
                return f"x[{rd}] = x[{a}] ^ x[{b}]"
            if mn == "sltu":
                return f"x[{rd}] = 1 if x[{a}] < x[{b}] else 0"
            if mn == "slt":
                return f"x[{rd}] = 1 if sx(x[{a}]) < sx(x[{b}]) else 0"
            if mn in ("addw", "subw", "mulw"):
                op = {"addw": "+", "subw": "-", "mulw": "*"}[mn]
                v = self._temp()
                return [f"{v} = (x[{a}] {op} x[{b}]) & 0xFFFFFFFF",
                        f"x[{rd}] = {v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}"]
            return None
        if mn == "lui" or mn == "auipc":
            rd = f["rd"]
            if rd == 0:
                return "pass"
            val = sign_extend(f["imm"], 20) << 12
            if mn == "auipc":
                val += pc
            return f"x[{rd}] = {to_unsigned(val, 64):#x}"
        if mn in LOADS:
            size, signed = LOADS[mn]
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            addr = f"(x[{rs1}] + {imm}) & {_M64}"
            if rd == 0:
                self._mark(pc)
                return [f"ri({addr}, {size})"]
            v = self._temp()
            self._mark(pc)
            lines = self._load_lines(v, addr, size)
            if not signed or size == 8:
                lines.append(f"x[{rd}] = {v}")
            else:
                sbit = 1 << (size * 8 - 1)
                ext = ((1 << 64) - 1) ^ ((1 << (size * 8)) - 1)
                lines.append(f"x[{rd}] = {v} | {ext:#x} "
                             f"if {v} & {sbit:#x} else {v}")
            return lines
        if mn in ("flw", "fld"):
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            addr = f"(x[{rs1}] + {imm}) & {_M64}"
            size = 4 if mn == "flw" else 8
            v = self._temp()
            self._mark(pc)
            lines = self._load_lines(v, addr, size)
            if mn == "flw":
                lines.append(f"fr[{rd}] = 0xFFFFFFFF00000000 | {v}")
            else:
                lines.append(f"fr[{rd}] = {v}")
            return lines
        parts = mn.split(".")
        if len(parts) == 2 and parts[1] in ("s", "d"):
            root, fmt = parts
            G = "F32" if fmt == "s" else "F64"
            B = "B32" if fmt == "s" else "B64"
            if root in ("fadd", "fsub", "fmul"):
                op = {"fadd": "+", "fsub": "-", "fmul": "*"}[root]
                rd, a, b = f["rd"], f["rs1"], f["rs2"]
                return f"fr[{rd}] = {B}({G}(fr[{a}]) {op} {G}(fr[{b}]))"
            if root in FMA_SIGNS:
                ps, qs = FMA_SIGNS[root]
                rd, a, b, c = f["rd"], f["rs1"], f["rs2"], f["rs3"]
                return (f"fr[{rd}] = {B}({ps} * ({G}(fr[{a}]) * "
                        f"{G}(fr[{b}])) + {qs} * {G}(fr[{c}]))")
        return None

    def _temp(self) -> str:
        self._tmp += 1
        return f"v{self._tmp}"

    def _load_lines(self, v: str, addr: str, size: int) -> list[str]:
        """Memory read with the page-dict access inlined; falls back to
        ``read_int`` off-page-fastpath (cross-page or unmapped — the
        latter raises MemoryFault with ``ip`` already synced).  Reads
        never touch the write watch, so inlining is invalidation-safe;
        stores always go through ``write_int``."""
        return [
            f"a = {addr}",
            "pg = PG(a >> 12)",
            "o = a & 4095",
            f"if pg is None or o > {4096 - size}:",
            f"    {v} = ri(a, {size})",
            "else:",
            f"    {v} = FB(pg[o:o + {size}], 'little')",
        ]

    # -- terminators -----------------------------------------------------

    def emit_branch(self, pc: int, instr) -> None:
        f = instr.fields
        a, b = f["rs1"], f["rs2"]
        taken = pc + f["imm"]
        fall = pc + instr.length
        cond = {
            "beq": f"x[{a}] == x[{b}]",
            "bne": f"x[{a}] != x[{b}]",
            "bltu": f"x[{a}] < x[{b}]",
            "bgeu": f"x[{a}] >= x[{b}]",
            "blt": f"sx(x[{a}]) < sx(x[{b}])",
            "bge": f"sx(x[{a}]) >= sx(x[{b}])",
        }[instr.mnemonic]
        self._charge(instr.mnemonic, instr)
        self._bookkeep()
        self.lines.append(f"if {cond}:")
        self.lines.append(f"    m.pc = {taken:#x}")
        if taken <= pc:
            # backward edge: candidate loop head, count towards
            # megatrace promotion
            self._hot_chain_return(taken, indent="    ")
        else:
            k = self._chain_cell()
            self.lines.append(f"    t = S[{k}]")
            self.lines.append("    if t is None:")
            self.lines.append(f"        t = L(S, {k}, {taken:#x})")
            self.lines.append("    return t")
        self.lines.append(f"m.pc = {fall:#x}")
        self._chain_return(fall)

    def emit_jal(self, pc: int, instr) -> None:
        f = instr.fields
        rd = f["rd"]
        target = (pc + f["imm"]) & ((1 << 64) - 1)
        self._charge("jal", instr)
        if rd:
            self.lines.append(f"x[{rd}] = {pc + instr.length:#x}")
        self._bookkeep()
        self.lines.append(f"m.pc = {target:#x}")
        if target <= pc:
            self._hot_chain_return(target)
        else:
            self._chain_return(target)

    def emit_jalr(self, pc: int, instr) -> None:
        f = instr.fields
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        self._charge("jalr", instr)
        self.lines.append(
            f"t = (x[{rs1}] + {imm}) & 0xFFFFFFFFFFFFFFFE")
        if rd:
            self.lines.append(f"x[{rd}] = {pc + instr.length:#x}")
        self._bookkeep()
        self.lines.append("m.pc = t")
        # guard-based target specialization: remember the observed
        # target and chain straight to its trace while the guard holds
        self.has_guard = True
        self.ns["G"] = [None, 0]
        k = self._chain_cell()
        self.lines.append("if t == G[0]:")
        self.lines.append(f"    f = S[{k}]")
        self.lines.append("    if f is not None:")
        self.lines.append("        GH[0] += 1")
        self.lines.append("        return f")
        self.lines.append(f"    return L(S, {k}, t)")
        self.lines.append(f"return JM(G, S, {k}, t)")

    def finish_cut(self, next_pc: int, chain: bool) -> None:
        """End a block without a control transfer (max length reached or
        the next instruction is untraceable)."""
        self._bookkeep()
        self.lines.append(f"m.pc = {next_pc:#x}")
        if chain:
            self._chain_return(next_pc)
        else:
            self.lines.append("return None")

    # -- assembly --------------------------------------------------------

    def build(self):
        self.ns["S"] = [None] * self.cells
        self.ns["P"] = tuple(self.sync_pc)
        self.ns["U"] = tuple(self.sync_cost)
        self.ns["N"] = tuple(self.sync_count)
        params = ", ".join(f"{k}={k}" for k in self.ns)
        body = "\n        ".join(self.lines) or "pass"
        src = (
            f"def __trace__({params}):\n"
            f"    ip = 0\n"
            f"    try:\n"
            f"        {body}\n"
            f"    except (MF, SF):\n"
            f"        m.pc = P[ip]\n"
            f"        m.ucycles += U[ip]\n"
            f"        m.instret += N[ip]\n"
            f"        raise\n"
        )
        code = compile(src, f"<trace@{self.entry:#x}>", "exec")
        env = dict(self.ns)
        exec(code, env)
        if not self.has_emits:
            self.meta = {
                "kind": "super", "src": src, "cells": self.cells,
                "P": list(self.sync_pc), "U": list(self.sync_cost),
                "N": list(self.sync_count), "bodies": dict(self.bodies),
                "hot": self.has_hot, "guard": self.has_guard,
                "_G": self.ns.get("G"),
            }
        return env["__trace__"]


class _MegaEmitter:
    """Generates the Python source of one megatrace: a ``while True:``
    loop over the hot path rooted at a loop head, with the referenced
    integer registers cached in Python locals and immediates
    constant-folded at emission time."""

    def __init__(self, cache: TraceCache, entry: int):
        self.cache = cache
        self.m = cache.m
        self.entry = entry
        self.lines: list[str] = []
        self.ns = _base_ns(cache)
        self.count = 0
        self.cost = 0
        self.cells = 0
        self.guard_used = False
        self.bodies: dict[str, int] = {}
        self.sync_pc = [entry]
        self.sync_cost = [0]
        self.sync_count = [0]
        self._tmp = 0
        #: emission-time constant values per register (linear
        #: const-prop; x0 is always 0).  An entry here means "the
        #: emission-order-last write to this register was the literal" —
        #: re-executed every iteration, so it holds at runtime on every
        #: iteration, not just the first.  Constant writes are **never
        #: materialized** as local assignments: reads fold to literals,
        #: spill sites store the literal straight into ``x``, and the
        #: fault handler patches them from a per-ip const table.
        self.consts: dict[int, int] = {0: 0}
        #: integer registers whose Python local is referenced anywhere
        #: (loaded from ``x`` in the prologue)
        self.localized: set[int] = set()
        #: integer registers written (spilled at exits and faults)
        self.written: set[int] = set()
        #: per-exit-site const snapshot, keyed by spill marker id
        self.spill_consts: dict[int, dict[int, int]] = {}
        #: per-ip const snapshot for the fault handler (parallel to the
        #: P/U/N sync tables)
        self.sync_consts: list[tuple] = [()]
        #: known memory values: (base reg | None, offset, size) ->
        #: temp-local holding the loaded/stored bytes (little-endian
        #: unsigned).  ``None`` base keys absolute (const) addresses.
        self.mem_known: dict[tuple, str] = {}
        #: id of each register's latest const-write placeholder, or
        #: None once a non-const write supersedes it (build_result
        #: materializes exactly the surviving ids of the steady-state
        #: body; warmup const writes are always materialized)
        self.last_const: dict[int, int] = {}
        self._next_const = 0
        #: covered [pc, pc+len) unit intervals, merged into spans later
        self._pcs: list[tuple[int, int]] = []
        # -- two-body emission state (warmup + steady state) --------------
        #: True once any close site (path back to the head) was emitted
        self.closed = False
        #: emitting the steady-state body (seeded, loops on itself)
        self.fast = False
        #: warmup body lines once begin_fast moved emission over; the
        #: active ``self.lines`` then hold the steady-state body
        self.warm_lines: list[str] | None = None
        self.warm_count = 0
        #: emission-state snapshots at each warmup close site — their
        #: agreement is what may be assumed at the loop top
        self.close_sites: list[tuple] = []
        #: seeds the current steady-state pass was emitted under, and
        #: the ones it failed to re-establish (feeding the driver's
        #: fixpoint)
        self.seed_consts: dict[int, int] = {}
        self.seed_mem: dict[tuple, str] = {}
        self.seed_fp: dict[int, tuple] = {}
        self.seed_fp_mem: dict[tuple, int] = {}
        self.killed_seeds: set[tuple] = set()
        self.killed_consts: set[int] = set()
        self.killed_fp: set[int] = set()
        self.killed_fp_mem: set[tuple] = set()
        # -- float-local cache (double precision only) --------------------
        #: fp regs whose float value is live in local ``g{reg}``
        #: (``g{reg} == F64(fr[reg])`` for the conceptual register)
        self.fp_float: set[int] = set()
        #: fp regs whose architectural ``fr[]`` slot is stale; the
        #: authoritative value is ``g{reg}`` (always ⊆ fp_float)
        self.fp_dirty: set[int] = set()
        #: fp regs whose raw bit pattern is live in a named local or
        #: literal (purged when the backing name is reassigned)
        self.fp_bits: dict[int, str] = {}
        #: access key -> fp reg whose ``g`` local holds the float of
        #: the memory value (killed with the reg's ``g`` redefinition
        #: and by aliasing stores)
        self.fp_mem: dict[tuple, int] = {}
        #: per-ip dirty-fp sync table for the fault handler, parallel
        #: to P/U/N: tuples of (reg, bits-local-name | None)
        self.sync_fp: list[tuple] = [()]
        #: per-spill-site dirty-fp sync exprs, keyed like spill_consts
        self.spill_fp: dict[int, dict[int, str]] = {}
        #: per-close-site dirty-fp sync exprs (expanded at build time
        #: for regs whose dirtiness is not carried by the seeds)
        self.fpsync_sites: dict[int, dict[int, str]] = {}

    # -- register / const helpers ----------------------------------------

    def use(self, r: int) -> str:
        """Read expression for register *r* (a literal if const)."""
        c = self.consts.get(r)
        if c is not None:
            return f"{c:#x}" if c else "0"
        self.localized.add(r)
        return f"r{r}"

    def use_sx(self, r: int) -> str:
        """Signed read expression for register *r*."""
        c = self.consts.get(r)
        if c is not None:
            return str(_sx(c))
        self.localized.add(r)
        return f"sx(r{r})"

    def const_of(self, r: int):
        return self.consts.get(r)

    def set_const(self, r: int, val: int) -> None:
        if r == 0:
            return
        val &= _MASK64
        self.consts[r] = val
        self.written.add(r)
        # placeholder: only the emission-order-last constant write of a
        # register is materialized (build_result) — it seeds the local
        # for the next iteration's early exits; all earlier ones are
        # dead (reads fold to literals, spills/faults use snapshots)
        cid = self._next_const
        self._next_const += 1
        self.last_const[r] = cid
        self.lines.append(f"\x00CONST:{cid}:{r}:{val:#x}")
        self._forget_base(r)

    def set_expr(self, r: int, expr: str) -> None:
        if r == 0:
            return
        self.consts.pop(r, None)
        self.last_const[r] = None
        self.localized.add(r)
        self.written.add(r)
        self.lines.append(f"r{r} = {expr}")
        self._forget_base(r)

    def _clobber(self, r: int) -> None:
        """Register written by code outside our control (body call)."""
        if r == 0:
            return
        self.consts.pop(r, None)
        self.last_const[r] = None
        self.localized.add(r)
        self.written.add(r)
        self._forget_base(r)

    def _forget_base(self, r: int) -> None:
        """Writing register *r* invalidates forwarded memory values
        whose address depends on it."""
        if self.mem_known:
            for key in [k for k in self.mem_known if k[0] == r]:
                del self.mem_known[key]
        if self.fp_mem:
            for key in [k for k in self.fp_mem if k[0] == r]:
                del self.fp_mem[key]

    # -- float-local cache helpers ----------------------------------------
    #
    # Double-precision values live as plain Python floats in ``g{reg}``
    # locals; struct pack/unpack round-trips doubles exactly, so
    # deferring the B64 pack until a sync point (exit, fault, fsw/flw,
    # body closure) is bit-identical to packing after every op.

    def _fp_kill_g(self, r: int) -> None:
        """Local ``g{r}`` is about to be reassigned: forwarded memory
        floats pointing at it are stale."""
        if self.fp_mem:
            for k in [k for k, v in self.fp_mem.items() if v == r]:
                del self.fp_mem[k]

    def _fp_def(self, r: int) -> None:
        """``fr[r]`` is about to be written directly: drop every cached
        claim about the register (its old value needs no write-back —
        the write replaces it architecturally)."""
        self.fp_dirty.discard(r)
        self.fp_float.discard(r)
        self.fp_bits.pop(r, None)
        self._fp_kill_g(r)

    def _fp_bits_expr(self, r: int) -> str:
        """Bit-pattern expression for fp reg *r*'s cached value."""
        b = self.fp_bits.get(r)
        return b if b is not None else f"B64(g{r})"

    def _fp_sync(self, r: int) -> None:
        """Make ``fr[r]`` architecturally fresh; cached knowledge
        survives, only the dirtiness clears."""
        if r in self.fp_dirty:
            self.fp_dirty.discard(r)
            self.lines.append(f"fr[{r}] = {self._fp_bits_expr(r)}")

    def _fp_float_of(self, r: int) -> str:
        """Expression for the float value of fp reg *r*, materializing
        ``g{r}`` lazily from the cheapest known bit source."""
        if r in self.fp_float:
            return f"g{r}"
        self._fp_kill_g(r)
        src = self.fp_bits.get(r, f"fr[{r}]")
        self.lines.append(f"g{r} = F64({src})")
        self.fp_float.add(r)
        return f"g{r}"

    def _fp_flush(self) -> None:
        """Write back every dirty fp register and forget all float
        state — emitted before anything that may read or write the
        architectural fr list behind our back (body closures)."""
        for r in sorted(self.fp_dirty):
            self.lines.append(f"fr[{r}] = {self._fp_bits_expr(r)}")
        self.fp_dirty.clear()
        self.fp_float.clear()
        self.fp_bits.clear()
        self.fp_mem.clear()

    def _fp_purge_name(self, nm: str) -> None:
        """Bits local *nm* is being reassigned: bit-pattern claims
        referencing it are stale (float claims keep their own ``g``
        locals and survive)."""
        if self.fp_bits:
            for r in [r for r, b in self.fp_bits.items() if b == nm]:
                del self.fp_bits[r]

    def _fp_dirty_snap(self) -> dict[int, str]:
        """Write-back exprs for the currently dirty fp regs (resolved
        now: emission is linear, so a name valid here is valid at
        runtime whenever control passes this site)."""
        return {r: self._fp_bits_expr(r) for r in sorted(self.fp_dirty)}

    # -- bookkeeping helpers ---------------------------------------------

    def _charge(self, mn: str, instr) -> None:
        self.cost += self.m.timing.ucycles(
            category_of(mn, instr.spec.match & 0x7F))
        self.count += 1

    def _cover(self, pc: int, length: int) -> None:
        self._pcs.append((pc, pc + length))

    def _mark(self, pc: int) -> None:
        ip = len(self.sync_pc)
        self.sync_pc.append(pc)
        self.sync_cost.append(self.cost)
        self.sync_count.append(self.count)
        self.sync_consts.append(tuple(
            (r, v) for r, v in sorted(self.consts.items()) if r))
        ents = []
        for r in sorted(self.fp_dirty):
            b = self.fp_bits.get(r)
            # the handler reads named locals through locals(); literal
            # bit patterns fall back to packing the float local
            ents.append((r, b if b and b.isidentifier() else None))
        self.sync_fp.append(tuple(ents))
        self.lines.append(f"ip = {ip}")

    def _chain_cell(self) -> int:
        k = self.cells
        self.cells += 1
        return k

    def _temp(self) -> str:
        self._tmp += 1
        return f"v{self._tmp}"

    def _flush(self, indent: str) -> None:
        self.lines.append(f"{indent}uc += {self.cost}")
        self.lines.append(f"{indent}ir += {self.count}")

    def _spill_marker(self, indent: str) -> None:
        """Placeholder for a register spill at this exit site; expanded
        at build time against the final written set, with registers
        known constant *here* stored as literals."""
        sid = len(self.spill_consts)
        self.spill_consts[sid] = dict(self.consts)
        self.spill_fp[sid] = self._fp_dirty_snap()
        self.lines.append(f"{indent}{_SPILL}:{sid}")

    def _sync_exit(self, target_expr: str, indent: str) -> None:
        """Spill cached registers and make architectural state exact."""
        self._spill_marker(indent)
        self.lines.append(f"{indent}m.pc = {target_expr}")
        self.lines.append(f"{indent}m.ucycles += uc + {self.cost}")
        self.lines.append(f"{indent}m.instret += ir + {self.count}")

    # -- trace enders -----------------------------------------------------

    def close_loop(self, indent: str = "") -> None:
        """The path returned to the loop head: next iteration.

        In the warmup body this drops a splice marker (the steady-state
        ``while True:`` loop is inserted there at build time) and
        snapshots the emission state the seeds are drawn from; in the
        steady-state body it is a plain ``continue``, after checking
        that every seed re-established itself — one that did not would
        be stale on the next iteration, so it is reported back to the
        driver's fixpoint and the body is re-emitted without it."""
        self.closed = True
        fid = len(self.fpsync_sites)
        self.fpsync_sites[fid] = self._fp_dirty_snap()
        self.lines.append(f"{indent}\x00FPSYNC:{fid}")
        self._flush(indent)
        if self.fast:
            for r, v in self.seed_consts.items():
                if self.consts.get(r) != v:
                    self.killed_consts.add(r)
            for k, nm in self.seed_mem.items():
                if self.mem_known.get(k) != nm:
                    self.killed_seeds.add(k)
            for r, d in self.seed_fp.items():
                if r not in self.fp_float or (r in self.fp_dirty) != d:
                    self.killed_fp.add(r)
            for k, r in self.seed_fp_mem.items():
                if self.fp_mem.get(k) != r:
                    self.killed_fp_mem.add(k)
            self.lines.append(f"{indent}continue")
        else:
            self.close_sites.append(
                (dict(self.consts), dict(self.mem_known),
                 set(self.fp_float), set(self.fp_dirty),
                 dict(self.fp_mem)))
            self.lines.append(f"{indent}\x00CLOSE")

    # -- two-body emission (warmup + steady state) -------------------------

    def seed_from_close_sites(self):
        """Constants and forwarded memory values that hold at *every*
        point the warmup body re-enters the loop: the emission seeds
        for the steady-state body.  (All warmup temps and const locals
        referenced by a seed are assigned before the earliest close
        site — warmup emission is linear — so the spliced body never
        sees an unbound name.)"""
        consts0, mem0, ff0, fd0, fm0 = self.close_sites[0]
        rest = self.close_sites[1:]
        seed_consts = {r: v for r, v in consts0.items()
                       if r and all(s[0].get(r) == v for s in rest)}
        seed_mem = {k: t for k, t in mem0.items()
                    if all(s[1].get(k) == t for s in rest)}
        # fp seeds: reg -> dirty flag (membership = float live in g);
        # fp memory forwards only survive on a float-seeded reg
        seed_fp = {r: r in fd0 for r in ff0
                   if all(r in s[2] and (r in fd0) == (r in s[3])
                          for s in rest)}
        seed_fp_mem = {k: r for k, r in fm0.items()
                       if r in seed_fp
                       and all(s[4].get(k) == r for s in rest)}
        return seed_consts, seed_mem, seed_fp, seed_fp_mem

    def begin_fast(self, seed_consts: dict, seed_mem: dict,
                   seed_fp: dict, seed_fp_mem: dict) -> None:
        """Start emitting the steady-state body, seeded with the state
        the warmup proved to hold at every loop-close site."""
        if not self.fast:
            self.warm_lines = self.lines
            self.warm_count = self.count
            self.fast = True
        self.lines = []
        self.cost = 0
        self.count = 0
        self.consts = {0: 0}
        self.consts.update(seed_consts)
        self.mem_known = dict(seed_mem)
        self.last_const = {}
        self.fp_float = set(seed_fp)
        self.fp_dirty = {r for r, d in seed_fp.items() if d}
        self.fp_bits = {}
        self.fp_mem = dict(seed_fp_mem)
        self.seed_consts = dict(seed_consts)
        self.seed_mem = dict(seed_mem)
        self.seed_fp = dict(seed_fp)
        self.seed_fp_mem = dict(seed_fp_mem)
        self.killed_seeds = set()
        self.killed_consts = set()
        self.killed_fp = set()
        self.killed_fp_mem = set()

    def snapshot(self) -> dict:
        """Emitter state shared across passes, captured before a
        steady-state emission so a seed-kill can roll it back."""
        return {
            "cells": self.cells, "tmp": self._tmp,
            "nc": self._next_const, "guard": self.guard_used,
            "bodies": dict(self.bodies), "ns": set(self.ns),
            "localized": set(self.localized),
            "written": set(self.written),
            "sync": len(self.sync_pc),
            "spills": len(self.spill_consts),
            "fpsync": len(self.fpsync_sites),
            "pcs": len(self._pcs),
        }

    def restore(self, snap: dict) -> None:
        """Undo one steady-state emission pass (see :meth:`snapshot`)."""
        self.cells = snap["cells"]
        self._tmp = snap["tmp"]
        self._next_const = snap["nc"]
        self.guard_used = snap["guard"]
        self.bodies = snap["bodies"]
        for k in set(self.ns) - snap["ns"]:
            del self.ns[k]
        self.localized = snap["localized"]
        self.written = snap["written"]
        del self.sync_pc[snap["sync"]:]
        del self.sync_cost[snap["sync"]:]
        del self.sync_count[snap["sync"]:]
        del self.sync_consts[snap["sync"]:]
        del self.sync_fp[snap["sync"]:]
        for sid in range(snap["spills"], len(self.spill_consts)):
            del self.spill_consts[sid]
            del self.spill_fp[sid]
        for fid in range(snap["fpsync"], len(self.fpsync_sites)):
            del self.fpsync_sites[fid]
        del self._pcs[snap["pcs"]:]

    def exit_chain(self, target: int, indent: str = "") -> None:
        """Side exit to a known pc, chained to its compiled trace."""
        self._sync_exit(f"{target:#x}", indent)
        k = self._chain_cell()
        self.lines.append(f"{indent}t = S[{k}]")
        self.lines.append(f"{indent}if t is None:")
        self.lines.append(f"{indent}    t = L(S, {k}, {target:#x})")
        self.lines.append(f"{indent}return t")

    def exit_plain(self, target: int, indent: str = "") -> None:
        """Side exit to a pc the trace compiler cannot handle (the
        dispatch loop deoptimises to the closure interpreter there)."""
        self._sync_exit(f"{target:#x}", indent)
        self.lines.append(f"{indent}return None")

    # -- control transfer -------------------------------------------------

    def emit_branch(self, pc: int, instr):
        """Emit a conditional branch.  Returns the pc to keep building
        at, or None if the emitter closed the trace."""
        mn = instr.mnemonic
        f = instr.fields
        a, b = f["rs1"], f["rs2"]
        taken = pc + f["imm"]
        fall = pc + instr.length
        self._cover(pc, instr.length)
        self._charge(mn, instr)
        ca, cb = self.const_of(a), self.const_of(b)
        if ca is not None and cb is not None:
            # both operands known: the branch folds to a direct jump
            return taken if BRANCH_OPS[mn](ca, cb) else fall
        cond = {
            "beq": f"{self.use(a)} == {self.use(b)}",
            "bne": f"{self.use(a)} != {self.use(b)}",
            "bltu": f"{self.use(a)} < {self.use(b)}",
            "bgeu": f"{self.use(a)} >= {self.use(b)}",
            "blt": f"{self.use_sx(a)} < {self.use_sx(b)}",
            "bge": f"{self.use_sx(a)} >= {self.use_sx(b)}",
        }[mn]
        self.lines.append(f"if {cond}:")
        if taken == self.entry:
            # the loop's own back-edge: guard and start the next
            # iteration without leaving compiled code
            self.close_loop(indent="    ")
        else:
            self.exit_chain(taken, indent="    ")
        return fall

    def emit_jal(self, pc: int, instr):
        f = instr.fields
        rd = f["rd"]
        target = (pc + f["imm"]) & _MASK64
        self._cover(pc, instr.length)
        self._charge("jal", instr)
        if rd:
            # the link register becomes a known constant — the callee's
            # return jalr folds and the call inlines into the trace
            self.set_const(rd, pc + instr.length)
        return target

    def emit_jalr(self, pc: int, instr):
        f = instr.fields
        rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
        ret = pc + instr.length
        self._cover(pc, instr.length)
        c = self.const_of(rs1)
        self._charge("jalr", instr)
        if c is not None:
            # constant-folded indirect target (typically a return whose
            # link register the trace itself set): follow statically
            target = (c + imm) & 0xFFFFFFFFFFFFFFFE
            if rd:
                self.set_const(rd, ret)
            return target
        # dynamic target: end the trace through a guarded exit
        expr = f"({self.use(rs1)} + {imm}) & 0xFFFFFFFFFFFFFFFE" \
            if imm else f"{self.use(rs1)} & 0xFFFFFFFFFFFFFFFE"
        self.lines.append(f"t = {expr}")
        if rd:
            self.set_const(rd, ret)
        # indirect loop closure: a jalr landing back on the head
        # continues iterating without leaving the trace
        self.lines.append(f"if t == {self.entry:#x}:")
        self.close_loop(indent="    ")
        self._spill_marker("")
        self.lines.append("m.pc = t")
        self.lines.append(f"m.ucycles += uc + {self.cost}")
        self.lines.append(f"m.instret += ir + {self.count}")
        self.guard_used = True
        self.ns["G"] = [None, 0]
        k = self._chain_cell()
        self.lines.append("if t == G[0]:")
        self.lines.append(f"    f = S[{k}]")
        self.lines.append("    if f is not None:")
        self.lines.append("        GH[0] += 1")
        self.lines.append("        return f")
        self.lines.append(f"    return L(S, {k}, t)")
        self.lines.append(f"return JM(G, S, {k}, t)")
        return None

    # -- straight-line instructions ---------------------------------------

    def emit_straight(self, pc: int, instr) -> bool:
        mn = instr.mnemonic
        f = instr.fields
        if self._inline(pc, mn, f, instr):
            return True
        if mn in STORES or mn in ("fsw", "fsd"):
            self._emit_store(pc, mn, f, instr)
            return True
        if mn in ("ecall", "ebreak", "fence", "fence.i") or \
                mn.startswith(("csr", "lr.", "sc.", "amo")):
            return False
        body = build_body(self.m, pc, instr)
        if body is None:
            return False
        # fallback body closures read/write the architectural x list:
        # spill the cached registers around the call and reload the
        # destination afterwards
        self._cover(pc, instr.length)
        self._fp_flush()  # the body may read or write any fr slot
        self._mark(pc)
        self._spill_marker("")
        self.lines.append(f"{self._bind_body(body, pc)}()")
        rd = f.get("rd")
        if rd:
            self._clobber(rd)
            self.lines.append(f"r{rd} = x[{rd}]")
        self._charge(mn, instr)
        self.mem_known.clear()  # the body may store anywhere
        return True

    def _bind_body(self, body, pc: int) -> str:
        name = f"b{self.count}"
        self.ns[name] = body
        self.bodies[name] = pc
        return name

    def _inline(self, pc: int, mn: str, f: dict, instr) -> bool:
        """Emit the hot straight-line forms against register locals
        (with constant folding); False if the form is not inlined."""
        if mn in RI_OPS:
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            c = self.const_of(rs1)
            if rd == 0:
                pass
            elif c is not None:
                self.set_const(rd, RI_OPS[mn](c, imm))
            elif mn == "addi":
                if imm == 0:
                    if rd != rs1:
                        self.set_expr(rd, self.use(rs1))
                else:
                    self.set_expr(
                        rd, f"({self.use(rs1)} + {imm}) & {_M64}")
            elif mn == "andi":
                self.set_expr(
                    rd, f"{self.use(rs1)} & {imm & _MASK64:#x}")
            elif mn == "ori":
                self.set_expr(
                    rd, f"{self.use(rs1)} | {imm & _MASK64:#x}")
            elif mn == "xori":
                self.set_expr(
                    rd, f"{self.use(rs1)} ^ {imm & _MASK64:#x}")
            elif mn == "slti":
                self.set_expr(
                    rd, f"1 if {self.use_sx(rs1)} < {imm} else 0")
            elif mn == "sltiu":
                self.set_expr(
                    rd, f"1 if {self.use(rs1)} < {imm & _MASK64:#x} "
                        f"else 0")
            elif mn == "addiw":
                v = self._temp()
                self.lines.append(
                    f"{v} = ({self.use(rs1)} + {imm}) & 0xFFFFFFFF")
                self.set_expr(
                    rd, f"{v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}")
            else:
                return False
            self._cover(pc, instr.length)
            self._charge(mn, instr)
            return True
        if mn in SHIFT_OPS:
            rd, rs1, sh = f["rd"], f["rs1"], f["shamt"]
            c = self.const_of(rs1)
            if rd == 0:
                pass
            elif c is not None:
                self.set_const(rd, SHIFT_OPS[mn](c, sh))
            elif mn == "slli":
                self.set_expr(rd, f"({self.use(rs1)} << {sh}) & {_M64}")
            elif mn == "srli":
                self.set_expr(rd, f"{self.use(rs1)} >> {sh}")
            elif mn == "srai":
                self.set_expr(
                    rd, f"(sx({self.use(rs1)}) >> {sh}) & {_M64}")
            else:
                return False
            self._cover(pc, instr.length)
            self._charge(mn, instr)
            return True
        if mn in RR_OPS:
            rd, a, b = f["rd"], f["rs1"], f["rs2"]
            ca, cb = self.const_of(a), self.const_of(b)
            if rd == 0:
                pass
            elif ca is not None and cb is not None:
                self.set_const(rd, RR_OPS[mn](ca, cb))
            elif mn == "add":
                self.set_expr(
                    rd, f"({self.use(a)} + {self.use(b)}) & {_M64}")
            elif mn == "sub":
                self.set_expr(
                    rd, f"({self.use(a)} - {self.use(b)}) & {_M64}")
            elif mn == "mul":
                self.set_expr(
                    rd, f"({self.use(a)} * {self.use(b)}) & {_M64}")
            elif mn == "and":
                self.set_expr(rd, f"{self.use(a)} & {self.use(b)}")
            elif mn == "or":
                self.set_expr(rd, f"{self.use(a)} | {self.use(b)}")
            elif mn == "xor":
                self.set_expr(rd, f"{self.use(a)} ^ {self.use(b)}")
            elif mn == "sltu":
                self.set_expr(
                    rd, f"1 if {self.use(a)} < {self.use(b)} else 0")
            elif mn == "slt":
                self.set_expr(
                    rd, f"1 if {self.use_sx(a)} < {self.use_sx(b)} "
                        f"else 0")
            elif mn == "sll":
                self.set_expr(
                    rd,
                    f"({self.use(a)} << ({self.use(b)} & 63)) & {_M64}")
            elif mn == "srl":
                self.set_expr(
                    rd, f"{self.use(a)} >> ({self.use(b)} & 63)")
            elif mn == "sra":
                self.set_expr(
                    rd, f"(sx({self.use(a)}) >> ({self.use(b)} & 63))"
                        f" & {_M64}")
            elif mn in ("addw", "subw", "mulw"):
                op = {"addw": "+", "subw": "-", "mulw": "*"}[mn]
                v = self._temp()
                self.lines.append(
                    f"{v} = ({self.use(a)} {op} {self.use(b)})"
                    f" & 0xFFFFFFFF")
                self.set_expr(
                    rd, f"{v} | 0xFFFFFFFF00000000 "
                        f"if {v} & 0x80000000 else {v}")
            else:
                return False
            self._cover(pc, instr.length)
            self._charge(mn, instr)
            return True
        if mn in UNARY_OPS:
            rd, rs1 = f["rd"], f["rs1"]
            c = self.const_of(rs1)
            if rd == 0:
                pass
            elif c is not None:
                self.set_const(rd, UNARY_OPS[mn](c))
            else:
                return False  # rare; body fallback
            self._cover(pc, instr.length)
            self._charge(mn, instr)
            return True
        if mn == "lui" or mn == "auipc":
            rd = f["rd"]
            if rd:
                val = sign_extend(f["imm"], 20) << 12
                if mn == "auipc":
                    val += pc
                self.set_const(rd, to_unsigned(val, 64))
            self._cover(pc, instr.length)
            self._charge(mn, instr)
            return True
        if mn in LOADS:
            size, signed = LOADS[mn]
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            self._cover(pc, instr.length)
            if rd == 0:
                if self.mem_known.get(
                        self._mem_key(rs1, imm, size)) is None:
                    self._mark(pc)
                    self.lines.append(
                        f"ri({self._addr_expr(rs1, imm)}, {size})")
                self._charge(mn, instr)
                return True
            v = self._load_value(pc, rs1, imm, size)
            if not signed or size == 8:
                self.set_expr(rd, v)
            else:
                sbit = 1 << (size * 8 - 1)
                ext = _MASK64 ^ ((1 << (size * 8)) - 1)
                self.set_expr(
                    rd, f"{v} | {ext:#x} if {v} & {sbit:#x} else {v}")
            self._charge(mn, instr)
            return True
        if mn in ("flw", "fld"):
            rd, rs1, imm = f["rd"], f["rs1"], f["imm"]
            self._cover(pc, instr.length)
            if mn == "flw":
                v = self._load_value(pc, rs1, imm, 4)
                self._fp_def(rd)
                self.lines.append(
                    f"fr[{rd}] = 0xFFFFFFFF00000000 | {v}")
                self._charge(mn, instr)
                return True
            # fld goes straight into the float cache: fr[rd] stays
            # stale (dirty) until a sync point needs the bit pattern
            key = self._mem_key(rs1, imm, 8)
            fsrc = self.fp_mem.get(key)
            v = self._load_value(pc, rs1, imm, 8)
            if fsrc is not None and fsrc in self.fp_float:
                # the slot's float is already live in a local: the
                # reload is at most a local-to-local copy
                if fsrc != rd:
                    self._fp_kill_g(rd)
                    self.lines.append(f"g{rd} = g{fsrc}")
            else:
                self._fp_kill_g(rd)
                self.lines.append(f"g{rd} = F64({v})")
                self.fp_mem[key] = rd
            self.fp_float.add(rd)
            self.fp_bits[rd] = v
            self.fp_dirty.add(rd)
            self._charge(mn, instr)
            return True
        parts = mn.split(".")
        if len(parts) == 2 and parts[1] in ("s", "d"):
            root, fmt = parts
            G = "F32" if fmt == "s" else "F64"
            B = "B32" if fmt == "s" else "B64"
            if root in ("fadd", "fsub", "fmul"):
                op = {"fadd": "+", "fsub": "-", "fmul": "*"}[root]
                rd, a, b = f["rd"], f["rs1"], f["rs2"]
                if fmt == "d":
                    fa = self._fp_float_of(a)
                    fb = self._fp_float_of(b)
                    self._fp_kill_g(rd)
                    self.lines.append(f"g{rd} = {fa} {op} {fb}")
                    self.fp_bits.pop(rd, None)
                    self.fp_float.add(rd)
                    self.fp_dirty.add(rd)
                else:
                    self._fp_sync(a)
                    self._fp_sync(b)
                    self._fp_def(rd)
                    self.lines.append(
                        f"fr[{rd}] = {B}({G}(fr[{a}]) {op} "
                        f"{G}(fr[{b}]))")
                self._cover(pc, instr.length)
                self._charge(mn, instr)
                return True
            if root in FMA_SIGNS:
                ps, qs = FMA_SIGNS[root]
                rd, a, b, c = f["rd"], f["rs1"], f["rs2"], f["rs3"]
                if fmt == "d":
                    fa = self._fp_float_of(a)
                    fb = self._fp_float_of(b)
                    fc = self._fp_float_of(c)
                    self._fp_kill_g(rd)
                    self.lines.append(
                        f"g{rd} = {ps} * ({fa} * {fb}) + {qs} * {fc}")
                    self.fp_bits.pop(rd, None)
                    self.fp_float.add(rd)
                    self.fp_dirty.add(rd)
                else:
                    self._fp_sync(a)
                    self._fp_sync(b)
                    self._fp_sync(c)
                    self._fp_def(rd)
                    self.lines.append(
                        f"fr[{rd}] = {B}({ps} * ({G}(fr[{a}]) * "
                        f"{G}(fr[{b}])) + {qs} * {G}(fr[{c}]))")
                self._cover(pc, instr.length)
                self._charge(mn, instr)
                return True
        return False

    # -- memory access ----------------------------------------------------

    def _addr_expr(self, rs1: int, imm: int) -> str:
        c = self.const_of(rs1)
        if c is not None:
            return f"{(c + imm) & _MASK64:#x}"
        if imm == 0:
            return self.use(rs1)
        return f"({self.use(rs1)} + {imm}) & {_M64}"

    def _mem_key(self, rs1: int, imm: int, size: int) -> tuple:
        """Forwarding key for access (*rs1* + *imm*, *size*): absolute
        for constant bases, else relative to the (current value of the)
        base register."""
        c = self.const_of(rs1)
        if c is not None:
            return (None, (c + imm) & _MASK64, size)
        return (rs1, imm, size)

    def _stable(self, key: tuple) -> str:
        """Value-local name for access *key*, stable across emission
        passes and across the two bodies: a steady-state store to the
        key re-assigns the same name the loop-top forward reads, which
        is what lets store-fed slots (accumulators, loop counters)
        survive the back edge as seeds."""
        base, off, size = key
        b = "c" if base is None else str(base)
        sign = "m" if off < 0 else ""
        return f"w{b}_{sign}{abs(off):x}_{size}"

    def _load_value(self, pc: int, rs1: int, imm: int,
                    size: int) -> str:
        """Temp local holding the raw little-endian value at
        (*rs1* + *imm*).  Same-address re-reads with no possibly-
        aliasing store in between forward the earlier temp and emit no
        memory access at all (the earlier access already proved the
        page mapped)."""
        key = self._mem_key(rs1, imm, size)
        hit = self.mem_known.get(key)
        if hit is not None:
            return hit
        v = self._stable(key)
        self._fp_purge_name(v)
        self._mark(pc)
        c = self.const_of(rs1)
        if c is not None:
            addr = (c + imm) & _MASK64
            off = addr & 4095
            if off > 4096 - size:  # crosses a page: slow path only
                self.lines.append(f"{v} = ri({addr:#x}, {size})")
            else:
                self.lines += [
                    f"pg = PG({addr >> 12:#x})",
                    "if pg is None:",
                    f"    {v} = ri({addr:#x}, {size})",
                    "else:",
                    f"    {v} = FB(pg[{off}:{off + size}], 'little')",
                ]
        else:
            self.lines += [
                f"a = {self._addr_expr(rs1, imm)}",
                "pg = PG(a >> 12)",
                "o = a & 4095",
                f"if pg is None or o > {4096 - size}:",
                f"    {v} = ri(a, {size})",
                "else:",
                f"    {v} = FB(pg[o:o + {size}], 'little')",
            ]
        self.mem_known[key] = v
        return v

    def _store_invalidate(self, key: tuple) -> None:
        """A store to *key* kills forwarded values it may alias: every
        entry with a different base (aliasing unprovable), and same-
        base entries whose byte ranges overlap."""
        base, off, size = key
        for k in list(self.mem_known):
            if k[0] != base or (k[1] < off + size and off < k[1] + k[2]):
                del self.mem_known[k]
        for k in list(self.fp_mem):
            if k[0] != base or (k[1] < off + size and off < k[1] + k[2]):
                del self.fp_mem[k]

    def _emit_store(self, pc: int, mn: str, f: dict, instr) -> None:
        size = STORES.get(mn) or (4 if mn == "fsw" else 8)
        rs2 = f["rs2"]
        imm = f["imm"]
        skey = self._mem_key(f["rs1"], imm, size)
        fsd_cached = False
        if mn == "fsd":
            b = self.fp_bits.get(rs2)
            if b is None and rs2 in self.fp_float:
                b = f"B64(g{rs2})"
            if b is not None:
                # store straight from the float cache: the bits land in
                # the forwarding local first, so any B64 runs once and
                # the value is forwarded to same-slot reloads for free
                nm = self._stable(skey)
                if b != nm:
                    self._fp_purge_name(nm)
                    self.lines.append(f"{nm} = {b}")
                    self.fp_bits[rs2] = nm
                val_int = nm
                val_bytes = f"{nm}.to_bytes(8, 'little')"
                fsd_cached = True
            else:
                val_int = f"fr[{rs2}]"
                val_bytes = f"fr[{rs2}].to_bytes(8, 'little')"
        elif mn == "fsw":
            self._fp_sync(rs2)
            val_int = f"fr[{rs2}]"
            val_bytes = (f"(fr[{rs2}] & 0xFFFFFFFF)"
                         f".to_bytes(4, 'little')")
        else:
            c = self.const_of(rs2)
            if c is not None:
                val_int = f"{c:#x}" if c else "0"
                val_bytes = repr(
                    (c & ((1 << (8 * size)) - 1))
                    .to_bytes(size, "little"))
            else:
                v = self.use(rs2)
                val_int = v
                if size == 8:
                    val_bytes = f"{v}.to_bytes(8, 'little')"
                else:
                    mask = (1 << (8 * size)) - 1
                    val_bytes = (f"({v} & {mask:#x})"
                                 f".to_bytes({size}, 'little')")
        self._cover(pc, instr.length)
        self._mark(pc)
        c1 = self.const_of(f["rs1"])
        if c1 is not None:
            addr = (c1 + imm) & _MASK64
            off = addr & 4095
            a, o = f"{addr:#x}", str(off)
            cross = off > 4096 - size
            if not cross:
                self.lines.append(f"pg = PG({addr >> 12:#x})")
        else:
            self.lines.append(f"a = {self._addr_expr(f['rs1'], imm)}")
            self.lines.append("pg = PG(a >> 12)")
            self.lines.append("o = a & 4095")
            a, o = "a", "o"
            cross = False
        if cross:
            self.lines.append(f"si({a}, {size}, {val_int})")
        else:
            # fast path: direct page write outside the watched code
            # ranges; anything near code (or off-page) goes through
            # write_int so the write watch can invalidate traces
            self.lines += [
                f"if pg is None or {o} > {4096 - size} or "
                f"({a} < W._watch_hi and {a} + {size} > W._watch_lo):",
                f"    si({a}, {size}, {val_int})",
                "else:",
                f"    pg[{o}:{o} + {size}] = {val_bytes}"
                if c1 is None else
                f"    pg[{off}:{off + size}] = {val_bytes}",
            ]
        self._charge(mn, instr)
        self._store_invalidate(skey)
        # store-to-load forwarding: remember the stored value so a
        # same-address reload (this iteration or, via seeding, the next
        # one) costs one local read instead of a page access
        fwd = None
        if mn == "fsd":
            if fsd_cached:
                self.mem_known[skey] = val_int
                if rs2 in self.fp_float:
                    self.fp_mem[skey] = rs2
            else:
                fwd = f"fr[{rs2}]"
        elif mn == "fsw":
            fwd = f"fr[{rs2}] & 0xFFFFFFFF"
        else:
            c2 = self.const_of(rs2)
            if c2 is not None:
                self.mem_known[skey] = \
                    f"{c2 & ((1 << (8 * size)) - 1):#x}"
            elif size == 8:
                fwd = self.use(rs2)
            else:
                fwd = f"{self.use(rs2)} & {(1 << (8 * size)) - 1:#x}"
        if fwd is not None:
            nm = self._stable(skey)
            self._fp_purge_name(nm)
            self.lines.append(f"{nm} = {fwd}")
            self.mem_known[skey] = nm
            if mn == "fsd":
                self.fp_bits[rs2] = nm
        self.lines.append("if m.code_dirty:")
        self.lines.append("    m.code_dirty = False")
        self.lines.append("    D[0] += 1")
        self._sync_exit(f"{pc + instr.length:#x}", indent="    ")
        self.lines.append("    return None")

    # -- assembly ---------------------------------------------------------

    def _merge_spans(self) -> list[tuple[int, int]]:
        spans: list[list[int]] = []
        for lo, hi in sorted(self._pcs):
            if spans and lo <= spans[-1][1]:
                spans[-1][1] = max(spans[-1][1], hi)
            else:
                spans.append([lo, hi])
        return [tuple(s) for s in spans] or [(self.entry,
                                             self.entry + 4)]

    def _expand(self, lines: list[str], materialize_all: bool,
                written: list[int]) -> list[str]:
        """Resolve const/spill placeholders against the final written
        set.

        In the warmup body every constant write materializes (it runs
        once per loop entry, and keeping each local architecturally
        fresh at every warmup position is what makes entering the
        steady-state body safe under any seed set).  In the
        steady-state body only each register's emission-order-last
        constant write materializes: it seeds the local across the back
        edge, making plain ``x[r] = r{r}`` spills correct at
        sites/faults that precede the register's writes in iteration
        order (where no const snapshot covers it); all earlier ones are
        dead — reads fold to literals, spills/faults use snapshots."""
        out: list[str] = []
        for line in lines:
            stripped = line.lstrip(" ")
            pad = line[:len(line) - len(stripped)]
            if stripped.startswith("\x00CONST:"):
                cid, r, val = stripped.split(":")[1:]
                if materialize_all or \
                        self.last_const.get(int(r)) == int(cid):
                    out.append(f"{pad}r{r} = {val}")
                    self.localized.add(int(r))
                continue
            if stripped.startswith("\x00SPILL:"):
                sid = int(stripped.split(":")[1])
                sc = self.spill_consts[sid]
                out += [
                    f"{pad}x[{r}] = {sc[r]:#x}" if r in sc
                    else f"{pad}x[{r}] = r{r}"
                    for r in written
                ]
                out += [f"{pad}fr[{r}] = {e}"
                        for r, e in self.spill_fp[sid].items()]
                continue
            if stripped.startswith("\x00FPSYNC:"):
                # back-edge fp write-back: dirty regs whose dirtiness
                # the seeds carry across the loop stay in their floats;
                # everything else syncs here
                site = self.fpsync_sites[int(stripped.split(":")[1])]
                out += [f"{pad}fr[{r}] = {e}"
                        for r, e in site.items()
                        if not self.seed_fp.get(r)]
                continue
            out.append(line)
        return out

    def build_result(self):
        ns = self.ns
        ns["S"] = [None] * self.cells
        ns["P"] = tuple(self.sync_pc)
        ns["U"] = tuple(self.sync_cost)
        ns["N"] = tuple(self.sync_count)
        ns["CF"] = tuple(self.sync_consts)
        written = sorted(self.written)
        if self.warm_lines is not None:
            # stitch: warmup body once, steady-state loop spliced in at
            # every close site (markers keep the site's own indent, so
            # a conditional back edge nests its loop inside the branch)
            fast = self._expand(self.lines, False, written)
            body_lines: list[str] = []
            for line in self._expand(self.warm_lines, True, written):
                stripped = line.lstrip(" ")
                pad = line[:len(line) - len(stripped)]
                if stripped == "\x00CLOSE":
                    body_lines.append(f"{pad}while True:")
                    body_lines += [f"{pad}    {fl}" for fl in fast]
                    continue
                body_lines.append(line)
            count = self.warm_count
        else:
            # the path never returned to the head: a straight-line
            # body whose every path returns
            body_lines = self._expand(self.lines, True, written)
            count = self.count
        fpp = [[list(p) for p in t] for t in self.sync_fp] \
            if any(self.sync_fp) else None
        if fpp is not None:
            ns["FPP"] = tuple(tuple(map(tuple, t)) for t in fpp)
        loads = [f"r{r} = x[{r}]"
                 for r in sorted((self.localized | self.written) - {0})]
        spill = [f"x[{r}] = r{r}" for r in written]
        body = "\n        ".join(body_lines) or "pass"
        prologue = "\n    ".join(loads)
        handler_spill = "\n        ".join(spill)
        fp_handler = (
            "        _lv = locals()\n"
            "        for _fd, _fn in FPP[ip]:\n"
            "            fr[_fd] = _lv[_fn] if _fn else "
            "B64(_lv['g%d' % _fd])\n"
        ) if fpp is not None else ""
        src = (
            f"def __mega__({', '.join(f'{k}={k}' for k in ns)}):\n"
            f"    ip = 0\n"
            f"    uc = 0\n"
            f"    ir = 0\n"
            + (f"    {prologue}\n" if loads else "")
            + f"    try:\n"
            f"        {body}\n"
            f"    except (MF, SF):\n"
            + (f"        {handler_spill}\n" if spill else "")
            + fp_handler
            + f"        for _rv in CF[ip]:\n"
            f"            x[_rv[0]] = _rv[1]\n"
            f"        m.pc = P[ip]\n"
            f"        m.ucycles += uc + U[ip]\n"
            f"        m.instret += ir + N[ip]\n"
            f"        raise\n"
        )
        code = compile(src, f"<mega@{self.entry:#x}>", "exec")
        env = dict(ns)
        exec(code, env)
        meta = {
            "kind": "mega", "src": src, "cells": self.cells,
            "P": list(self.sync_pc), "U": list(self.sync_cost),
            "N": list(self.sync_count),
            "CF": [list(map(list, t)) for t in self.sync_consts],
            "FPP": fpp,
            "bodies": dict(self.bodies),
            "hot": False, "guard": self.guard_used,
            "_G": ns.get("G"),
        }
        return (env["__mega__"], self._merge_spans(), count, meta)
