"""Persistent compiled-trace cache for the simulator JIT.

Repeat runs of the same binary — the service workload the roadmap is
heading towards — should not pay trace-selection warmup and compile
time again.  This module stores the *shape* of every compiled trace
(generated source, chain-cell count, fault sync tables, inlined body
sites, jalr guard targets — see :meth:`TraceCache.persist_save`) in a
JSON file keyed by the **content hash of the executable image**, and
revives the traces into a fresh :class:`Machine` before its first run.

Safety model
------------
Persisted metadata is advisory, never authoritative:

* the store file is keyed by a digest over the executable ranges plus
  the timing-model fingerprint, so a rebuilt binary or a different
  timing model simply misses the cache;
* inside a snapshot, every trace lists the code pages it spans and the
  save-time sha256 of each; :meth:`TraceCache.persist_load` re-hashes
  the live pages and rejects any trace whose pages changed (counted
  under ``trace.persist.stale``), so a patched or self-modified binary
  falls back to demand compilation for exactly the affected traces;
* once revived, a trace is an ordinary cache entry: the page-bucketed
  write watch invalidates it like any demand-compiled trace, and it is
  never written back — :func:`save_traces` always serializes the live
  cache state.

A corrupt or unreadable store file is treated as a miss, not an error.
"""

from __future__ import annotations

import json
import hashlib
from pathlib import Path
from typing import TYPE_CHECKING

from .trace import _timing_key

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


def image_key(machine: "Machine") -> str:
    """Cache key for the loaded binary: a sha256 over the bytes of
    every executable range plus the timing-model fingerprint."""
    h = hashlib.sha256()
    h.update(_timing_key(machine.timing).encode())
    for lo, hi in sorted(machine.exec_ranges):
        h.update(f"|{lo:#x}+{hi - lo:#x}|".encode())
        h.update(machine.mem.read_bytes(lo, hi - lo))
    return h.hexdigest()[:32]


def save_traces(machine: "Machine") -> dict:
    """Snapshot the machine's compiled traces (see
    :meth:`TraceCache.persist_save`); JSON-serializable."""
    return machine.traces.persist_save()


def load_traces(machine: "Machine", data: dict) -> int:
    """Revive persisted traces into *machine* (call after
    ``load_image``/``load_program``, before the first ``run()``).
    Returns the number of traces materialized."""
    return machine.traces.persist_load(data)


class TraceStore:
    """Directory-backed trace store: one JSON file per executable
    image, named by :func:`image_key`."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, machine: "Machine") -> Path:
        return self.root / f"traces-{image_key(machine)}.json"

    def save(self, machine: "Machine") -> Path:
        """Serialize *machine*'s compiled traces to the store."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(machine)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(save_traces(machine)))
        tmp.replace(path)
        return path

    def load(self, machine: "Machine") -> int:
        """Revive any stored traces for *machine*'s loaded image.
        Returns the number of traces materialized (0 on miss or on a
        corrupt store file)."""
        path = self._path(machine)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        if not isinstance(data, dict):
            return 0
        return load_traces(machine, data)
