"""The simulated RV64GC machine (the SiFive P550 stand-in, §4.2).

:class:`Machine` bundles hart state, memory, a timing model, and a
Linux-ish syscall layer, and exposes the debug port ProcControlAPI talks
to (read/write registers and memory, step, run-until-event).

Performance notes (per the HPC guides): the run loop binds hot
attributes to locals, and instructions are compiled at two tiers —

* a per-pc closure cache (``_icache``) used for single-stepping, bounded
  ``run(max_steps=...)``, and instructions the trace compiler rejects;
* a superblock trace cache (:class:`repro.sim.trace.TraceCache`) used by
  unbounded ``run()``: straight-line blocks execute as one Python
  function with batched timing and direct chaining to successor blocks.

Both tiers are **patch-safe**: every write overlapping a registered
executable range — self-modifying stores, ``write_mem`` from the
patcher/ProcControl, breakpoint insertion — flows through the
:class:`Memory` write watch into :meth:`_code_written`, which drops the
overlapping closures and traces.  See docs/INTERNALS.md ("Trace cache &
invalidation rules").
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass

from .. import telemetry
from ..errors import ReproError
from ..telemetry.events import (
    BLOCK, BRANCH, CALL, EventStream, FAULT, JUMP, LINK_REGS, PATCH, RET,
)
from ..riscv.assembler import Program
from ..riscv.decoder import DecodeError, decode
from .executor import BreakpointHit, ExitTrap, SimFault, build_closure
from .memory import Memory, MemoryFault
from .timing import P550, TimingModel, UCYCLE
from .trace import TraceCache

#: Default stack placement: 8 MiB ending just below 2 GiB.
STACK_TOP = 0x7FFF_F000
STACK_SIZE = 8 << 20


class StopReason(enum.Enum):
    """Why :meth:`Machine.run` returned."""

    EXITED = "exited"
    BREAKPOINT = "breakpoint"
    STEPS_EXHAUSTED = "steps-exhausted"
    FAULT = "fault"


@dataclass
class StopEvent:
    """Run-loop outcome."""

    reason: StopReason
    pc: int
    exit_code: int | None = None
    fault: str | None = None


class InstructionBudgetExceeded(ReproError, RuntimeError):
    """``Machine.run(max_instructions=...)`` retired its whole budget
    without the mutatee exiting.

    Unlike the cooperative ``max_steps`` bound (which *returns* a
    ``STEPS_EXHAUSTED`` stop event), the budget is a guard rail against
    runaway or instrumentation-corrupted mutatees, so exceeding it is an
    **error** — catchable as :class:`~repro.errors.ReproError`.  Any
    attached event streams receive a final FAULT event before the raise
    (live :class:`~repro.api.tracesession.TraceSession` streams are
    flushed, not lost; the API layer attaches the partial session as
    ``exc.session``).
    """

    def __init__(self, pc: int, retired: int, budget: int):
        super().__init__(
            f"instruction budget exhausted after {retired} retired "
            f"instructions (budget {budget}) at pc={pc:#x}")
        self.pc = pc
        self.retired = retired
        self.budget = budget


# Linux riscv64 syscall numbers (asm-generic).
SYS_WRITE = 64
SYS_EXIT = 93
SYS_EXIT_GROUP = 94
SYS_CLOCK_GETTIME = 113


def _traces_default() -> bool:
    return os.environ.get("REPRO_SIM_TRACES", "1") != "0"


def _mega_default() -> bool:
    return os.environ.get("REPRO_SIM_MEGATRACES", "1") != "0"


class Machine:
    """One simulated RV64GC hart plus memory.

    Parameters
    ----------
    timing:
        The :class:`TimingModel` charged per instruction; determines
        what ``clock_gettime``/``rdcycle`` report.
    trace_compile:
        Enable the superblock trace compiler for unbounded ``run()``.
        Defaults to on; set ``REPRO_SIM_TRACES=0`` (or pass ``False``)
        to force the per-pc closure interpreter everywhere — results are
        architecturally identical either way.
    megatraces:
        Enable tier-2 megatrace promotion (hot loops compiled into
        single looping functions with register caching — see
        docs/INTERNALS.md, "JIT tiers").  Defaults to on when tracing
        is on; set ``REPRO_SIM_MEGATRACES=0`` (or pass ``False``) to
        cap the JIT at superblocks.  Architecturally identical either
        way.
    """

    def __init__(self, timing: TimingModel = P550,
                 trace_compile: bool | None = None,
                 megatraces: bool | None = None):
        self.timing = timing
        self.mem = Memory()
        self.x: list[int] = [0] * 32
        self.f: list[int] = [0] * 32
        self.pc = 0
        self.ucycles = 0
        self.instret = 0
        self.csrs: dict[int, int] = {}
        self.reservation: int | None = None
        self.stdout = bytearray()
        self.exit_code: int | None = None
        self._icache: dict[int, object] = {}
        #: [lo, hi) ranges treated as code: writes into them invalidate
        #: compiled closures/traces (self-modifying code / patching).
        self.exec_ranges: list[tuple[int, int]] = []
        #: trap-springboard map: ebreak pc -> redirect pc.  The paper's
        #: worst-case 2-byte trap springboards (§3.1.2) divert through
        #: here instead of stopping the hart (one "system" cycle charge).
        self.trap_redirects: dict[int, int] = {}
        self.trace_compile = (_traces_default() if trace_compile is None
                              else trace_compile)
        self.megatraces = (_mega_default() if megatraces is None
                           else megatraces)
        self.traces = TraceCache(self, mega=self.megatraces)
        #: armed only for telemetry-observed runs: the traced dispatch
        #: loop then counts cache hits (disabled runs skip the wrapper
        #: entirely, so the hot loop stays wrapper-free)
        self._count_hits = False
        #: set by the trace cache when an invalidation drops any trace;
        #: a running trace checks it after each store and exits early
        #: (state fully synced) so rewritten code is re-fetched.
        self.code_dirty = False
        # -- execution-event observers (repro.telemetry.events) --------
        #: attached EventStreams; empty on the unobserved fast path
        #: (one ``if self._observers`` check per run() call, zero per
        #: instruction — see docs/INTERNALS.md, "Execution event
        #: streams")
        self._observers: list[EventStream] = []
        #: bound emit callable (fans out to every observer); None when
        #: unobserved
        self._emit = None
        #: per-pc control-flow classification cache for the observed
        #: interpreter loop; invalidated alongside the icache
        self._evmeta: dict[int, tuple] = {}
        #: True while a block-granularity observer is attached: the
        #: trace compiler embeds a block-enter emit in every new trace
        self._trace_events = False

    # -- program loading --------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Map a laid-out :class:`Program` and reset the hart to its entry."""
        self.load_image(
            segments=[
                (program.text_base, program.text),
                (program.data_base, program.data),
            ],
            bss=(program.bss_base, program.bss_size),
            entry=program.entry,
            exec_range=(program.text_base,
                        program.text_base + len(program.text)),
        )

    def load_image(self, segments: list[tuple[int, bytes]],
                   entry: int, bss: tuple[int, int] | None = None,
                   exec_range: tuple[int, int] | None = None) -> None:
        """Map raw (vaddr, bytes) segments and reset the hart."""
        for base, blob in segments:
            if blob:
                self.mem.map_region(base, len(blob))
                self.mem.write_bytes(base, bytes(blob))
        if bss is not None and bss[1] > 0:
            self.mem.map_region(bss[0], bss[1])
        self.mem.map_region(STACK_TOP - STACK_SIZE, STACK_SIZE)
        self.x = [0] * 32
        self.f = [0] * 32
        self.x[2] = STACK_TOP - 64  # sp, with a little headroom
        self.pc = entry
        self.ucycles = 0
        self.instret = 0
        self.exit_code = None
        self.stdout = bytearray()
        # full flush: compiled code binds the (re-created) register lists
        self._icache.clear()
        self._evmeta.clear()
        self.traces.clear()
        if exec_range is not None:
            self.exec_ranges = [exec_range]
        self.mem.set_write_watch(self.exec_ranges, self._code_written)

    def add_exec_range(self, lo: int, hi: int) -> None:
        """Register an additional code range (e.g. a patch area)."""
        self.exec_ranges.append((lo, hi))
        self.mem.map_region(lo, hi - lo)
        self.mem.set_write_watch(self.exec_ranges, self._code_written)

    # -- execution-event observers ----------------------------------------

    @property
    def observed(self) -> bool:
        """Is at least one event observer attached?"""
        return bool(self._observers)

    def attach_observer(self, stream: EventStream) -> EventStream:
        """Attach *stream* as an execution-event observer.

        Effective at the next :meth:`run`/:meth:`step` dispatch (the
        simulator is single-threaded, so mid-run attachment happens at
        debugger stops).  Attaching a block-granularity stream flushes
        the trace cache so superblocks recompile with an embedded
        block-enter emit; attaching an instruction-granularity stream
        leaves compiled traces intact — they are simply not dispatched
        while the observer wants per-instruction events.
        """
        if stream in self._observers:
            return stream
        self._observers.append(stream)
        self._rebuild_emit()
        return stream

    def detach_observer(self, stream: EventStream) -> None:
        """Detach *stream*; with no observers left the hot loops return
        to their unobserved zero-overhead paths."""
        if stream in self._observers:
            self._observers.remove(stream)
            self._rebuild_emit()

    def _rebuild_emit(self) -> None:
        obs = self._observers
        if not obs:
            emit = None
        elif len(obs) == 1:
            emit = obs[0].push
        else:
            pushes = [s.push for s in obs]

            def emit(event, _pushes=tuple(pushes)):
                for p in _pushes:
                    p(event)
        self._emit = emit
        # block-granularity observation compiles emits *into* traces;
        # flush whenever that mode toggles or its fan-out changes so no
        # trace carries a stale (or missing) emit binding.
        want_trace_events = any(s.granularity == "block" for s in obs)
        if want_trace_events or self._trace_events:
            self.traces.clear()
        self._trace_events = want_trace_events

    def _event_meta(self, pc: int) -> tuple:
        """(event kind | None, length) of the instruction at *pc*, for
        the observed interpreter loop; cached per pc."""
        try:
            raw = self.mem.read_bytes(pc, 4)
        except MemoryFault:
            raw = self.mem.read_bytes(pc, 2)
        instr = decode(raw, 0, pc)
        mn = instr.mnemonic
        kind = None
        f = instr.fields
        if mn == "jal":
            kind = CALL if f["rd"] in LINK_REGS else JUMP
        elif mn == "jalr":
            if f["rd"] in LINK_REGS:
                kind = CALL
            elif f["rd"] == 0 and f["rs1"] in LINK_REGS:
                kind = RET
            else:
                kind = JUMP
        elif mn in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            kind = BRANCH
        meta = (kind, instr.length)
        self._evmeta[pc] = meta
        return meta

    # -- debug port (ProcControlAPI) ---------------------------------------

    def read_mem(self, addr: int, n: int) -> bytes:
        return self.mem.read_bytes(addr, n)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Write memory; the write watch invalidates compiled code."""
        self.mem.write_bytes(addr, data)

    def store_int(self, addr: int, size: int, value: int) -> None:
        """Store from executing code (invalidation rides on the watch)."""
        self.mem.write_int(addr, size, value)

    def _code_written(self, addr: int, size: int) -> None:
        """Memory write-watch callback: a write overlapped a code range.
        Drop per-pc closures and traces covering the written bytes."""
        pop = self._icache.pop
        mpop = self._evmeta.pop
        # a patched instruction may start up to 3 bytes before addr
        for a in range(addr - 3, addr + size):
            pop(a, None)
            mpop(a, None)
        self.traces.invalidate_range(addr, size)

    def invalidate_code_range(self, addr: int, size: int) -> None:
        """Explicitly drop compiled code overlapping [addr, addr+size).

        The write watch already catches writes through this machine's
        memory; patch/unpatch paths call this as well so invalidation
        never depends on *how* the bytes got there.
        """
        self._code_written(addr, size)

    def flush_icache(self) -> None:
        self._icache.clear()
        self._evmeta.clear()
        self.traces.clear()

    def get_reg(self, n: int) -> int:
        return self.x[n]

    def set_reg(self, n: int, value: int) -> None:
        if n != 0:
            self.x[n] = value & 0xFFFF_FFFF_FFFF_FFFF

    def get_freg(self, n: int) -> int:
        return self.f[n]

    def set_freg(self, n: int, value: int) -> None:
        self.f[n] = value & 0xFFFF_FFFF_FFFF_FFFF

    # -- CSRs ---------------------------------------------------------------

    def read_csr(self, csr: int) -> int:
        if csr == 0xC00:  # cycle
            return self.ucycles // UCYCLE
        if csr == 0xC01:  # time (report cycles; mtime ~ cycle here)
            return self.ucycles // UCYCLE
        if csr == 0xC02:  # instret
            return self.instret
        return self.csrs.get(csr, 0)

    def write_csr(self, csr: int, value: int) -> None:
        self.csrs[csr] = value & 0xFFFF_FFFF_FFFF_FFFF

    # -- time ----------------------------------------------------------------

    def simulated_ns(self) -> int:
        return self.timing.nanoseconds(self.ucycles)

    def simulated_seconds(self) -> float:
        return self.timing.seconds(self.ucycles)

    # -- syscalls --------------------------------------------------------------

    def syscall(self) -> None:
        num = self.x[17]  # a7
        a0, a1, a2 = self.x[10], self.x[11], self.x[12]
        if num in (SYS_EXIT, SYS_EXIT_GROUP):
            raise ExitTrap(a0 & 0xFF)
        if num == SYS_WRITE:
            data = self.mem.read_bytes(a1, a2)
            if a0 in (1, 2):
                self.stdout += data
            self.x[10] = a2
            return
        if num == SYS_CLOCK_GETTIME:
            ns = self.simulated_ns()
            self.mem.write_int(a1, 8, ns // 1_000_000_000)
            self.mem.write_int(a1 + 8, 8, ns % 1_000_000_000)
            self.x[10] = 0
            return
        raise SimFault(f"unsupported syscall {num}", self.pc)

    # -- execution ---------------------------------------------------------------

    def _closure_at(self, pc: int):
        cl = self._icache.get(pc)
        if cl is None:
            try:
                raw = self.mem.read_bytes(pc, 4)
            except MemoryFault:
                raw = self.mem.read_bytes(pc, 2)  # page-end compressed instr
            instr = decode(raw, 0, pc)
            cl = build_closure(self, pc, instr)
            self._icache[pc] = cl
        return cl

    def _redirect(self, pc: int) -> bool:
        """Apply a trap-springboard redirect at *pc* if one exists."""
        target = self.trap_redirects.get(pc)
        if target is None:
            return False
        self.pc = target
        self.ucycles += self.timing.ucycles("system")
        emit = self._emit
        if emit is not None:
            emit((PATCH, pc, target, self.instret, self.ucycles))
        return True

    def step(self) -> StopEvent | None:
        """Execute one instruction.  Returns a StopEvent on
        exit/breakpoint/fault, else None."""
        try:
            self._closure_at(self.pc)()
        except ExitTrap as e:
            self.exit_code = e.code
            return StopEvent(StopReason.EXITED, self.pc, exit_code=e.code)
        except BreakpointHit as e:
            if self._redirect(e.pc):
                return None
            return StopEvent(StopReason.BREAKPOINT, e.pc)
        except (SimFault, MemoryFault, DecodeError) as e:
            return StopEvent(StopReason.FAULT, self.pc, fault=str(e))
        return None

    def run(self, max_steps: int | None = None, *,
            report=None, trace: EventStream | None = None,
            max_instructions: int | None = None) -> StopEvent:
        """Run until exit, breakpoint, fault, or *max_steps*.

        Unbounded runs use the superblock trace compiler (when enabled);
        bounded runs need a per-instruction step budget and stay on the
        closure interpreter.

        *max_instructions* is a **hard budget**, not a cooperative
        bound: retiring that many instructions without stopping raises
        :class:`InstructionBudgetExceeded` (a catchable
        :class:`~repro.errors.ReproError`) after emitting a final FAULT
        event to any attached streams.  Use it to bound runaway
        mutatees; use *max_steps* to single-step or slice execution.
        Budgeted runs count per-instruction and therefore stay on the
        closure interpreter, like any bounded run.

        *trace* attaches an :class:`~repro.telemetry.events.EventStream`
        observer for the duration of this run only (equivalent to
        :meth:`attach_observer` / :meth:`detach_observer` around the
        call).  While any observer is attached the run loop follows the
        observer-overhead rule (docs/INTERNALS.md): instruction-
        granularity streams deoptimise the run to the event-emitting
        closure interpreter; block-granularity streams keep the trace
        compiler engaged with one embedded block-enter emit per
        superblock.  With no observer attached, event support costs one
        list check per ``run()`` call — nothing per instruction.

        *report* asks for a per-run summary (instructions retired,
        simulated vs. host time, MIPS, trace-cache activity): ``True``
        prints it, a file-like object receives ``write(text)``.  When
        the process telemetry recorder is active (see
        :mod:`repro.telemetry`), every run additionally flushes
        ``sim.*`` counters, the ``sim.run`` span and the ``sim.mips``
        gauge — with telemetry disabled and no report requested, this
        method costs one attribute check over the raw hot loop.
        """
        if trace is not None:
            self.attach_observer(trace)
            try:
                return self.run(max_steps, report=report,
                                max_instructions=max_instructions)
            finally:
                self.detach_observer(trace)
        if max_instructions is not None:
            return self._run_budgeted(max_steps, report, max_instructions)
        rec = telemetry.current()
        if not rec.enabled and not report:
            return self._dispatch_run(max_steps)
        return self._run_observed(max_steps, rec, report)

    def _run_budgeted(self, max_steps: int | None, report,
                      budget: int) -> StopEvent:
        """Run under a hard instruction budget (see :meth:`run`)."""
        if budget <= 0:
            raise InstructionBudgetExceeded(self.pc, 0, budget)
        start = self.instret
        bound = budget if max_steps is None else min(max_steps, budget)
        ev = self.run(bound, report=report)
        if ev.reason is StopReason.STEPS_EXHAUSTED and (
                max_steps is None or budget <= max_steps):
            emit = self._emit
            if emit is not None:
                emit((FAULT, self.pc, 0, self.instret, self.ucycles))
            rec = telemetry.current()
            if rec.enabled:
                rec.count("sim.budget_exceeded")
            raise InstructionBudgetExceeded(
                self.pc, self.instret - start, budget)
        return ev

    def _dispatch_run(self, max_steps: int | None) -> StopEvent:
        """Pick the run loop: the unobserved fast paths, or — with
        observers attached — the event-emitting variants."""
        if self._observers:
            if any(s.granularity == "instruction"
                   for s in self._observers):
                # deopt: per-instruction events need the interpreter
                return self._run_events(max_steps, full=True)
            if max_steps is None and self.trace_compile:
                # block granularity: traces stay hot, blocks self-emit
                return self._run_traced()
            return self._run_events(max_steps, full=False)
        if max_steps is None and self.trace_compile:
            return self._run_traced()
        return self._run_interp(max_steps)

    def _run_observed(self, max_steps: int | None, rec,
                      report) -> StopEvent:
        """Telemetry/reporting wrapper around the raw run loops."""
        traces = self.traces
        instret0, ucycles0 = self.instret, self.ucycles
        base = (traces.compiles, traces.invalidations, traces.links,
                traces.hits, traces.mega_compiles, traces.jalr_hits[0],
                traces.jalr_misses[0], traces.deopt_count[0],
                traces.persist_loads, traces.persist_stores,
                traces.persist_stale)
        self._count_hits = rec.enabled or bool(report)
        t0 = time.perf_counter()
        try:
            ev = self._dispatch_run(max_steps)
        finally:
            self._count_hits = False
        elapsed = time.perf_counter() - t0
        retired = self.instret - instret0
        mips = retired / elapsed / 1e6 if elapsed > 0 else 0.0
        deltas = {
            "compiles": traces.compiles - base[0],
            "invalidations": traces.invalidations - base[1],
            "links": traces.links - base[2],
            "hits": traces.hits - base[3],
            "megatraces_compiled": traces.mega_compiles - base[4],
            "jalr_guard_hits": traces.jalr_hits[0] - base[5],
            "jalr_guard_misses": traces.jalr_misses[0] - base[6],
            "deopts": traces.deopt_count[0] - base[7],
            "persist.loads": traces.persist_loads - base[8],
            "persist.stores": traces.persist_stores - base[9],
            "persist.stale": traces.persist_stale - base[10],
        }
        if rec.enabled:
            rec.record_span("sim.run", elapsed)
            rec.count("sim.runs")
            rec.count("sim.instructions_retired", retired)
            rec.count("sim.ucycles", self.ucycles - ucycles0)
            for name, n in deltas.items():
                rec.count(f"sim.trace.{name}", n)
            rec.gauge("sim.mips", mips)
        if report:
            text = self._run_report(ev, retired, ucycles0, elapsed, mips,
                                    deltas)
            if report is True:
                print(text, end="")
            else:
                report.write(text)
        return ev

    def _run_report(self, ev: StopEvent, retired: int, ucycles0: int,
                    elapsed: float, mips: float, deltas: dict) -> str:
        lines = [
            f"sim.run: {ev.reason.value} at pc={ev.pc:#x}"
            + (f" exit={ev.exit_code}" if ev.exit_code is not None else "")
            + (f" fault={ev.fault}" if ev.fault else ""),
            f"  instructions retired   {retired:>14,}",
            f"  simulated cycles       "
            f"{(self.ucycles - ucycles0) // UCYCLE:>14,}",
            f"  host seconds           {elapsed:>14.3f}",
            f"  throughput (MIPS)      {mips:>14.2f}",
            f"  trace cache            "
            f"hits={deltas['hits']} compiles={deltas['compiles']} "
            f"links={deltas['links']} "
            f"invalidations={deltas['invalidations']}",
            f"  trace tiers            "
            f"megatraces={deltas['megatraces_compiled']} "
            f"jalr_guard_hits={deltas['jalr_guard_hits']} "
            f"jalr_guard_misses={deltas['jalr_guard_misses']} "
            f"deopts={deltas['deopts']}",
        ]
        return "\n".join(lines) + "\n"

    def _run_traced(self) -> StopEvent:
        """Trace-mode hot loop: execute compiled superblocks, following
        chained successors without re-entering this loop; fall back to
        one closure step for pcs the trace compiler rejects."""
        if self._count_hits:
            traces = self.traces
            raw_get = traces.fns.get

            def fns_get(pc):
                fn = raw_get(pc)
                if fn:
                    traces.hits += 1
                return fn
        else:
            fns_get = self.traces.fns.get
        compile_at = self.traces.compile_at
        icache = self._icache
        closure_at = self._closure_at
        self.code_dirty = False
        while True:
            try:
                while True:
                    fn = fns_get(self.pc)
                    if fn is None:
                        fn = compile_at(self.pc)
                    if fn:
                        while fn is not None:
                            fn = fn()
                    else:
                        # negative cache entry: ecall/ebreak/csr/amo/...
                        cl = icache.get(self.pc)
                        if cl is None:
                            cl = closure_at(self.pc)
                        cl()
            except ExitTrap as e:
                self.exit_code = e.code
                return StopEvent(StopReason.EXITED, self.pc,
                                 exit_code=e.code)
            except BreakpointHit as e:
                if self._redirect(e.pc):
                    continue
                return StopEvent(StopReason.BREAKPOINT, e.pc)
            except (SimFault, MemoryFault, DecodeError) as e:
                emit = self._emit
                if emit is not None:
                    emit((FAULT, self.pc, 0, self.instret, self.ucycles))
                return StopEvent(StopReason.FAULT, self.pc, fault=str(e))

    def _run_events(self, max_steps: int | None, full: bool) -> StopEvent:
        """Event-emitting closure-interpreter loop — the deopt path the
        observer-overhead rule routes observed runs through.

        With ``full=True`` (any instruction-granularity observer) every
        control-flow event is emitted: call/return/jump, taken branches,
        block entries, faults (patch-site hits ride on
        :meth:`_redirect`).  With ``full=False`` (block-granularity
        observers on a *bounded* run, where the trace compiler cannot
        engage) only block-enter and fault events are emitted.
        """
        emit = self._emit
        icache = self._icache
        closure_at = self._closure_at
        evmeta = self._evmeta
        event_meta = self._event_meta
        remaining = max_steps
        pending_block = True  # first executed pc starts a block
        while True:
            try:
                while remaining is None or remaining > 0:
                    pc = self.pc
                    if pending_block:
                        emit((BLOCK, pc, 0, self.instret, self.ucycles))
                        pending_block = False
                    meta = evmeta.get(pc)
                    if meta is None:
                        meta = event_meta(pc)
                    cl = icache.get(pc)
                    if cl is None:
                        cl = closure_at(pc)
                    cl()
                    kind = meta[0]
                    if kind is not None:
                        # every control-flow instruction ends a basic
                        # block (untaken branches included), matching
                        # the compiled-trace block-enter emits
                        pending_block = True
                        if full:
                            npc = self.pc
                            if kind != BRANCH:
                                emit((kind, pc, npc, self.instret,
                                      self.ucycles))
                            elif npc != pc + meta[1]:  # taken only
                                emit((BRANCH, pc, npc, self.instret,
                                      self.ucycles))
                    if remaining is not None:
                        remaining -= 1
                return StopEvent(StopReason.STEPS_EXHAUSTED, self.pc)
            except ExitTrap as e:
                self.exit_code = e.code
                return StopEvent(StopReason.EXITED, self.pc,
                                 exit_code=e.code)
            except BreakpointHit as e:
                if self._redirect(e.pc):
                    pending_block = True
                    continue
                return StopEvent(StopReason.BREAKPOINT, e.pc)
            except (SimFault, MemoryFault, DecodeError) as e:
                emit((FAULT, self.pc, 0, self.instret, self.ucycles))
                return StopEvent(StopReason.FAULT, self.pc, fault=str(e))

    def _run_interp(self, max_steps: int | None = None) -> StopEvent:
        """Seed per-pc closure loop (also the `REPRO_SIM_TRACES=0` and
        bounded-run path)."""
        icache = self._icache
        closure_at = self._closure_at
        remaining = max_steps
        while True:
            try:
                if remaining is None:
                    while True:
                        cl = icache.get(self.pc)
                        if cl is None:
                            cl = closure_at(self.pc)
                        cl()
                else:
                    while remaining > 0:
                        cl = icache.get(self.pc)
                        if cl is None:
                            cl = closure_at(self.pc)
                        cl()
                        remaining -= 1
                    return StopEvent(StopReason.STEPS_EXHAUSTED, self.pc)
            except ExitTrap as e:
                self.exit_code = e.code
                return StopEvent(StopReason.EXITED, self.pc,
                                 exit_code=e.code)
            except BreakpointHit as e:
                if self._redirect(e.pc):
                    continue
                return StopEvent(StopReason.BREAKPOINT, e.pc)
            except (SimFault, MemoryFault, DecodeError) as e:
                return StopEvent(StopReason.FAULT, self.pc, fault=str(e))

    # -- EvalState protocol (semantics cross-check) --------------------------

    def read_xreg(self, n: int) -> int:
        return self.x[n]

    def read_freg(self, n: int) -> int:
        return self.f[n]

    def read_mem_int(self, addr: int, size: int) -> int:
        return self.mem.read_int(addr, size)


def run_program(program: Program, timing: TimingModel = P550,
                max_steps: int | None = None) -> tuple[Machine, StopEvent]:
    """Convenience: load and run a program to completion."""
    m = Machine(timing)
    m.load_program(program)
    ev = m.run(max_steps)
    return m, ev
