"""RV64GC functional simulator with deterministic timing models.

The hardware substitute for the paper's SiFive P550 testbed (see
DESIGN.md).  Also provides the debug port that ProcControlAPI drives.
"""

from .executor import BreakpointHit, ExitTrap, SimFault
from .machine import Machine, STACK_TOP, StopEvent, StopReason, run_program
from .memory import Memory, MemoryFault, PAGE_SIZE
from .persist import TraceStore, image_key, load_traces, save_traces
from .timing import MODELS, P550, TimingModel, UCYCLE, X86PROXY, category_of
from .trace import TraceCache

__all__ = [
    "BreakpointHit", "ExitTrap", "SimFault",
    "Machine", "STACK_TOP", "StopEvent", "StopReason", "run_program",
    "Memory", "MemoryFault", "PAGE_SIZE",
    "TraceStore", "image_key", "load_traces", "save_traces",
    "MODELS", "P550", "TimingModel", "UCYCLE", "X86PROXY", "category_of",
    "TraceCache",
]
