"""MiniC recursive-descent parser."""

from __future__ import annotations

from . import cast as A
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        t = self.tokens[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def accept(self, text: str) -> Token | None:
        t = self.peek()
        if t.text == text and t.kind in ("op", "kw"):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        t = self.next()
        if t.text != text:
            raise ParseError(f"expected {text!r}, got {t.text!r}", t.line)
        return t

    def expect_ident(self) -> Token:
        t = self.next()
        if t.kind != "ident":
            raise ParseError(f"expected identifier, got {t.text!r}", t.line)
        return t

    # -- top level --------------------------------------------------------

    def parse(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while self.peek().kind != "eof":
            typ = self._parse_type(allow_void=True)
            name_tok = self.expect_ident()
            if self.peek().text == "(":
                unit.functions.append(self._parse_func(typ, name_tok))
            else:
                unit.globals.append(self._parse_global(typ, name_tok))
        return unit

    def _parse_type(self, allow_void: bool = False) -> A.Type:
        t = self.next()
        if t.text == "long":
            return A.LONG
        if t.text == "double":
            return A.DOUBLE
        if t.text == "void" and allow_void:
            return A.VOID
        raise ParseError(f"expected type, got {t.text!r}", t.line)

    def _parse_global(self, typ: A.Type, name_tok: Token) -> A.GlobalVar:
        if typ is A.VOID:
            raise ParseError("void variable", name_tok.line)
        dims: list[int] = []
        while self.accept("["):
            d = self.next()
            if d.kind != "int":
                raise ParseError("array dimension must be an integer "
                                 "literal", d.line)
            dims.append(int(d.text, 0))
            self.expect("]")
        init = None
        if self.accept("="):
            if self.accept("{"):
                init = []
                while not self.accept("}"):
                    init.append(self._parse_const_scalar(typ))
                    if self.peek().text == ",":
                        self.next()
            else:
                init = [self._parse_const_scalar(typ)]
        self.expect(";")
        gtyp: A.Type | A.ArrayType = (
            A.ArrayType(typ, tuple(dims)) if dims else typ)
        return A.GlobalVar(name_tok.text, gtyp, init, name_tok.line)

    def _parse_const_scalar(self, typ: A.Type):
        neg = bool(self.accept("-"))
        t = self.next()
        if t.kind == "int":
            v = int(t.text, 0)
            return (-v if neg else v) if typ is A.LONG else float(-v if neg else v)
        if t.kind == "float":
            v = float(t.text)
            return -v if neg else v
        raise ParseError("expected constant initialiser", t.line)

    def _parse_func(self, ret: A.Type, name_tok: Token) -> A.FuncDef:
        self.expect("(")
        params: list[A.Param] = []
        if not self.accept(")"):
            while True:
                if self.peek().text == "void" and not params:
                    self.next()
                    break
                ptyp = self._parse_type()
                pname = self.expect_ident()
                params.append(A.Param(ptyp, pname.text))
                if not self.accept(","):
                    break
            self.expect(")")
        if self.accept(";"):
            return A.FuncDef(name_tok.text, ret, params, None, name_tok.line)
        body = self._parse_block()
        return A.FuncDef(name_tok.text, ret, params, body, name_tok.line)

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> A.Block:
        self.expect("{")
        stmts: list[A.Stmt] = []
        while not self.accept("}"):
            stmts.append(self._parse_statement())
        return A.Block(stmts)

    def _parse_statement(self) -> A.Stmt:
        t = self.peek()
        if t.text == "{":
            return self._parse_block()
        if t.text in ("long", "double"):
            return self._parse_decl()
        if t.text == "if":
            return self._parse_if()
        if t.text == "while":
            return self._parse_while()
        if t.text == "for":
            return self._parse_for()
        if t.text == "switch":
            return self._parse_switch()
        if t.text == "return":
            self.next()
            value = None
            if self.peek().text != ";":
                value = self._parse_expr()
            self.expect(";")
            return A.Return(value, t.line)
        if t.text == "break":
            self.next()
            self.expect(";")
            return A.Break(t.line)
        if t.text == "continue":
            self.next()
            self.expect(";")
            return A.Continue(t.line)
        stmt = self._parse_simple_statement()
        self.expect(";")
        return stmt

    def _parse_simple_statement(self) -> A.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        t = self.peek()
        start = self.pos
        expr = self._parse_expr()
        if self.peek().text == "=":
            if not isinstance(expr, (A.VarRef, A.ArrayRef)):
                raise ParseError("invalid assignment target", t.line)
            self.next()
            value = self._parse_expr()
            return A.Assign(expr, value, t.line)
        del start
        return A.ExprStmt(expr, t.line)

    def _parse_decl(self) -> A.Stmt:
        typ = self._parse_type()
        name = self.expect_ident()
        init = None
        if self.accept("="):
            init = self._parse_expr()
        self.expect(";")
        return A.Decl(typ, name.text, init, name.line)

    def _parse_if(self) -> A.Stmt:
        t = self.expect("if")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        then = self._parse_block_or_stmt()
        otherwise = None
        if self.accept("else"):
            otherwise = self._parse_block_or_stmt()
        return A.If(cond, then, otherwise, t.line)

    def _parse_block_or_stmt(self) -> A.Block:
        if self.peek().text == "{":
            return self._parse_block()
        return A.Block([self._parse_statement()])

    def _parse_while(self) -> A.Stmt:
        t = self.expect("while")
        self.expect("(")
        cond = self._parse_expr()
        self.expect(")")
        return A.While(cond, self._parse_block_or_stmt(), t.line)

    def _parse_for(self) -> A.Stmt:
        t = self.expect("for")
        self.expect("(")
        init: A.Stmt | None = None
        if self.peek().text != ";":
            if self.peek().text in ("long", "double"):
                init = self._parse_decl()  # consumes ';'
            else:
                init = self._parse_simple_statement()
                self.expect(";")
        else:
            self.next()
        cond = None
        if self.peek().text != ";":
            cond = self._parse_expr()
        self.expect(";")
        step = None
        if self.peek().text != ")":
            step = self._parse_simple_statement()
        self.expect(")")
        return A.For(init, cond, step, self._parse_block_or_stmt(), t.line)

    def _parse_switch(self) -> A.Stmt:
        t = self.expect("switch")
        self.expect("(")
        scrutinee = self._parse_expr()
        self.expect(")")
        self.expect("{")
        cases: list[A.SwitchCase] = []
        while not self.accept("}"):
            ct = self.peek()
            if self.accept("case"):
                neg = bool(self.accept("-"))
                v = self.next()
                if v.kind != "int":
                    raise ParseError("case label must be an integer", v.line)
                value: int | None = -int(v.text, 0) if neg else int(v.text, 0)
            else:
                self.expect("default")
                value = None
            self.expect(":")
            body: list[A.Stmt] = []
            while self.peek().text not in ("case", "default", "}"):
                body.append(self._parse_statement())
            cases.append(A.SwitchCase(value, body, ct.line))
        return A.Switch(scrutinee, cases, t.line)

    # -- expressions (precedence climbing) -------------------------------------

    def _parse_expr(self) -> A.Expr:
        return self._parse_or()

    def _binary_level(self, sub, ops):
        expr = sub()
        while self.peek().text in ops and self.peek().kind == "op":
            t = self.next()
            expr = A.Binary(t.text, expr, sub(), t.line)
        return expr

    def _parse_or(self):
        return self._binary_level(self._parse_and, ("||",))

    def _parse_and(self):
        return self._binary_level(self._parse_equality, ("&&",))

    def _parse_equality(self):
        return self._binary_level(self._parse_relational, ("==", "!="))

    def _parse_relational(self):
        return self._binary_level(self._parse_additive,
                                  ("<", "<=", ">", ">="))

    def _parse_additive(self):
        return self._binary_level(self._parse_multiplicative, ("+", "-"))

    def _parse_multiplicative(self):
        return self._binary_level(self._parse_unary, ("*", "/", "%"))

    def _parse_unary(self) -> A.Expr:
        t = self.peek()
        if t.text == "-" and t.kind == "op":
            self.next()
            return A.Unary("-", self._parse_unary(), t.line)
        if t.text == "!" and t.kind == "op":
            self.next()
            return A.Unary("!", self._parse_unary(), t.line)
        if t.text == "(" and self._is_cast():
            self.next()
            target = self._parse_type()
            self.expect(")")
            return A.Cast(target, self._parse_unary(), t.line)
        return self._parse_postfix()

    def _is_cast(self) -> bool:
        nxt = self.tokens[self.pos + 1]
        return nxt.text in ("long", "double")

    def _parse_postfix(self) -> A.Expr:
        t = self.next()
        if t.text == "(":
            expr = self._parse_expr()
            self.expect(")")
            return expr
        if t.kind == "int":
            return A.IntLit(int(t.text, 0), t.line)
        if t.kind == "float":
            return A.FloatLit(float(t.text), t.line)
        if t.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: list[A.Expr] = []
                if not self.accept(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return A.Call(t.text, args, t.line)
            if self.peek().text == "[":
                indices: list[A.Expr] = []
                while self.accept("["):
                    indices.append(self._parse_expr())
                    self.expect("]")
                return A.ArrayRef(t.text, indices, t.line)
            return A.VarRef(t.text, t.line)
        raise ParseError(f"unexpected token {t.text!r}", t.line)


def parse(source: str) -> A.TranslationUnit:
    """Parse MiniC source into a TranslationUnit."""
    return Parser(source).parse()
