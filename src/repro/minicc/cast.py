"""AST node definitions for MiniC.

MiniC is the small C subset this repo compiles to RV64GC in place of GCC
(see DESIGN.md substitutions).  It is rich enough to express the paper's
benchmark mutatee (double-precision matmul called in a timed loop) and
the workloads the example tools instrument: 64-bit integers (``long``),
``double``, global arrays (1-D/2-D), functions, loops, ``if``/``else``,
``switch`` (compiled to jump tables when dense), and calls — including
tail calls, which the compiler emits as plain jumps when asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types ---------------------------------------------------------------

@dataclass(frozen=True)
class Type:
    """Scalar type: 'long' or 'double'."""

    name: str

    @property
    def is_double(self) -> bool:
        return self.name == "double"

    @property
    def size(self) -> int:
        return 8


LONG = Type("long")
DOUBLE = Type("double")
VOID = Type("void")


@dataclass(frozen=True)
class ArrayType:
    """Global array type: element scalar type + dimensions."""

    elem: Type
    dims: tuple[int, ...]

    @property
    def count(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def size(self) -> int:
        return self.count * self.elem.size


# -- expressions ------------------------------------------------------------

class Expr:
    """Base expression; ``typ`` is filled in by the sema pass."""

    typ: Type


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class FloatLit(Expr):
    value: float
    line: int = 0


@dataclass
class VarRef(Expr):
    name: str
    line: int = 0


@dataclass
class ArrayRef(Expr):
    name: str
    indices: list[Expr]
    line: int = 0


@dataclass
class Unary(Expr):
    op: str              # '-' | '!'
    operand: Expr
    line: int = 0


@dataclass
class Binary(Expr):
    op: str              # + - * / % < <= > >= == != && ||
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class Call(Expr):
    name: str
    args: list[Expr]
    line: int = 0


@dataclass
class Cast(Expr):
    target: Type
    operand: Expr
    line: int = 0


# -- statements ----------------------------------------------------------------

class Stmt:
    """Base statement."""


@dataclass
class Decl(Stmt):
    typ: Type
    name: str
    init: Expr | None = None
    line: int = 0


@dataclass
class Assign(Stmt):
    target: Expr          # VarRef or ArrayRef
    value: Expr
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    otherwise: "Block | None" = None
    line: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"
    line: int = 0


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: "Block"
    line: int = 0


@dataclass
class Return(Stmt):
    value: Expr | None = None
    line: int = 0


@dataclass
class Break(Stmt):
    line: int = 0


@dataclass
class Continue(Stmt):
    line: int = 0


@dataclass
class SwitchCase:
    value: int | None     # None for default
    body: list[Stmt]
    line: int = 0


@dataclass
class Switch(Stmt):
    scrutinee: Expr
    cases: list[SwitchCase]
    line: int = 0


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


# -- top level -------------------------------------------------------------------

@dataclass
class Param:
    typ: Type
    name: str


@dataclass
class FuncDef:
    name: str
    ret: Type
    params: list[Param]
    body: Block | None    # None for a prototype declaration
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    typ: Type | ArrayType
    init: list[float] | list[int] | None = None
    line: int = 0


@dataclass
class TranslationUnit:
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
