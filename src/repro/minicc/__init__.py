"""MiniC: the small C compiler substrate (GCC substitute, DESIGN.md).

Compiles a C subset to RV64GC through the repro assembler, producing the
paper's benchmark mutatee and other instrumentation workloads.
"""

from .codegen import CompileError, Options
from .cparser import ParseError, parse
from .driver import compile_source, compile_to_asm, compile_to_elf
from .lexer import LexError
from .sema import SemaError, analyze
from .workloads import (
    crc_source, fib_source, linked_list_source, matmul_source,
    nbody_source, qsort_source,
    switch_source, tailcall_source,
)

__all__ = [
    "CompileError", "Options", "ParseError", "parse",
    "compile_source", "compile_to_asm", "compile_to_elf",
    "LexError", "SemaError", "analyze",
    "crc_source", "fib_source", "linked_list_source",
    "matmul_source", "nbody_source",
    "qsort_source", "switch_source", "tailcall_source",
]
