"""MiniC lexer."""

from __future__ import annotations

import re
from dataclasses import dataclass


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = {
    "long", "double", "void", "if", "else", "while", "for", "return",
    "break", "continue", "switch", "case", "default",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<nl>\n)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op> \|\| | && | == | != | <= | >= | [-+*/%<>=!(){}\[\],;:] )
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str   # 'int' | 'float' | 'ident' | 'kw' | 'op' | 'eof'
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise LexError(f"bad character {source[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind == "nl":
            line += 1
            continue
        if kind in ("ws", "comment"):
            line += text.count("\n")
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
