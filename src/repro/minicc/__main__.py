"""MiniC compiler driver CLI.

Usage::

    python -m repro.minicc program.c -o program.elf     # compile
    python -m repro.minicc program.c -S                 # emit assembly
    python -m repro.minicc program.c --run              # compile & run
"""

from __future__ import annotations

import argparse
import sys

from ..elf.writer import write_program
from .codegen import Options
from .driver import compile_source, compile_to_asm


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="minicc", description="MiniC -> RV64GC compiler")
    ap.add_argument("source", help="MiniC source file")
    ap.add_argument("-o", "--output", help="output ELF path")
    ap.add_argument("-S", "--asm", action="store_true",
                    help="emit assembly to stdout")
    ap.add_argument("--run", action="store_true",
                    help="run on the simulator after compiling")
    ap.add_argument("--fp", action="store_true",
                    help="use a frame pointer")
    ap.add_argument("--tail-calls", action="store_true")
    ap.add_argument("--compress", action="store_true",
                    help="emit compressed instructions where possible")
    args = ap.parse_args(argv)

    with open(args.source) as fh:
        source = fh.read()
    opts = Options(use_frame_pointer=args.fp,
                   tail_calls=args.tail_calls,
                   compress=args.compress)

    if args.asm:
        print(compile_to_asm(source, opts))
        return 0

    program = compile_source(source, opts)
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(write_program(program))
        print(f"wrote {args.output}", file=sys.stderr)
    if args.run:
        from ..sim.machine import run_program

        machine, event = run_program(program)
        sys.stdout.write(bytes(machine.stdout).decode(errors="replace"))
        if event.reason.value != "exited":
            print(f"abnormal stop: {event}", file=sys.stderr)
            return 1
        return event.exit_code or 0
    if not args.output:
        print("nothing to do (use -o, -S, or --run)", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
