"""Canonical MiniC workloads used by the examples and benchmarks.

:func:`matmul_source` reproduces the paper's application program (§4.1):
a function performing an N x N double-precision matrix multiplication,
called repeatedly in a loop from ``main``, with ``clock_gettime`` samples
around the loop and the elapsed time reported.

The paper uses N=100; a pure-Python simulator executes ~10^6 instr/s, so
the harness scales N down (the overhead *ratios* the paper's table
reports are preserved — see EXPERIMENTS.md).
"""

from __future__ import annotations


def matmul_source(n: int = 16, reps: int = 10) -> str:
    """The paper's matmul mutatee, parameterised by size and repetitions."""
    return f"""
// Paper 4.1 application program: {n}x{n} double matmul called {reps}x.
double a[{n}][{n}];
double b[{n}][{n}];
double c[{n}][{n}];

void init(void) {{
    for (long i = 0; i < {n}; i = i + 1) {{
        for (long j = 0; j < {n}; j = j + 1) {{
            a[i][j] = (double)(i + j) / 7.0;
            b[i][j] = (double)(i - j) * 0.5;
            c[i][j] = 0.0;
        }}
    }}
}}

void multiply(void) {{
    for (long i = 0; i < {n}; i = i + 1) {{
        for (long j = 0; j < {n}; j = j + 1) {{
            double sum = 0.0;
            for (long k = 0; k < {n}; k = k + 1) {{
                sum = sum + a[i][k] * b[k][j];
            }}
            c[i][j] = sum;
        }}
    }}
}}

long main(void) {{
    init();
    long t0 = clock_ns();
    for (long r = 0; r < {reps}; r = r + 1) {{
        multiply();
    }}
    long t1 = clock_ns();
    print_long(t1 - t0);
    // checksum so the result is observable
    long chk = (long)(c[1][2] * 1000.0);
    print_long(chk);
    return 0;
}}
"""


def fib_source(n: int = 20) -> str:
    """Recursive fibonacci: deep call stacks for the stackwalker."""
    return f"""
long fib(long n) {{
    if (n < 2) {{ return n; }}
    return fib(n - 1) + fib(n - 2);
}}

long main(void) {{
    long r = fib({n});
    print_long(r);
    return r % 256;
}}
"""


def switch_source(iters: int = 50) -> str:
    """Dense switch in a loop: compiles to a jump table (§3.2.3)."""
    return f"""
long dispatch(long op, long x) {{
    long r = 0;
    switch (op) {{
        case 0: r = x + 1; break;
        case 1: r = x * 2; break;
        case 2: r = x - 3; break;
        case 3: r = x / 2; break;
        case 4: r = x % 5; break;
        case 5: r = -x; break;
        default: r = x;
    }}
    return r;
}}

long main(void) {{
    long acc = 0;
    for (long i = 0; i < {iters}; i = i + 1) {{
        acc = acc + dispatch(i % 7, i);
    }}
    print_long(acc);
    return acc % 256;
}}
"""


def qsort_source(n: int = 64, seed: int = 12345) -> str:
    """Recursive quicksort over a pseudo-random array: data-dependent
    branching, deep recursion, heavy array traffic."""
    return f"""
long data[{n}];

long partition(long lo, long hi) {{
    long pivot = data[hi];
    long i = lo - 1;
    for (long j = lo; j < hi; j = j + 1) {{
        if (data[j] < pivot) {{
            i = i + 1;
            long t = data[i]; data[i] = data[j]; data[j] = t;
        }}
    }}
    long t = data[i + 1]; data[i + 1] = data[hi]; data[hi] = t;
    return i + 1;
}}

long qsort_range(long lo, long hi) {{
    if (lo < hi) {{
        long p = partition(lo, hi);
        qsort_range(lo, p - 1);
        qsort_range(p + 1, hi);
    }}
    return 0;
}}

long main(void) {{
    long state = {seed};
    for (long i = 0; i < {n}; i = i + 1) {{
        state = (state * 1103515245 + 12345) % 2147483648;
        data[i] = state % 1000;
    }}
    qsort_range(0, {n} - 1);
    long bad = 0;
    for (long i = 1; i < {n}; i = i + 1) {{
        if (data[i - 1] > data[i]) {{ bad = bad + 1; }}
    }}
    print_long(bad);          // 0 when sorted
    print_long(data[0]);
    print_long(data[{n} - 1]);
    return bad;
}}
"""


def nbody_source(bodies: int = 4, steps: int = 20) -> str:
    """A small n-body step loop: double-precision heavy (the FP side of
    the toolkit: fld/fsd/fmul/fadd/fdiv everywhere)."""
    return f"""
double px[{bodies}]; double py[{bodies}];
double vx[{bodies}]; double vy[{bodies}];

void init(void) {{
    for (long i = 0; i < {bodies}; i = i + 1) {{
        px[i] = (double)(i + 1) * 0.5;
        py[i] = (double)(i * i) * 0.25;
        vx[i] = 0.0;
        vy[i] = 0.0;
    }}
}}

void step(void) {{
    for (long i = 0; i < {bodies}; i = i + 1) {{
        double ax = 0.0;
        double ay = 0.0;
        for (long j = 0; j < {bodies}; j = j + 1) {{
            if (i != j) {{
                double dx = px[j] - px[i];
                double dy = py[j] - py[i];
                double d2 = dx * dx + dy * dy + 0.01;
                double inv = 1.0 / (d2 * d2);
                ax = ax + dx * inv;
                ay = ay + dy * inv;
            }}
        }}
        vx[i] = vx[i] + ax * 0.001;
        vy[i] = vy[i] + ay * 0.001;
    }}
    for (long i = 0; i < {bodies}; i = i + 1) {{
        px[i] = px[i] + vx[i] * 0.001;
        py[i] = py[i] + vy[i] * 0.001;
    }}
}}

long main(void) {{
    init();
    for (long s = 0; s < {steps}; s = s + 1) {{ step(); }}
    long chk = (long)((px[0] + py[{bodies} - 1]) * 100000.0);
    print_long(chk);
    return 0;
}}
"""


def crc_source(n: int = 256, rounds: int = 4) -> str:
    """Byte-wise CRC-ish checksum: shift/xor/mask integer kernel with a
    dense inner loop (the bit-twiddling workload class)."""
    return f"""
long buf[{n}];

long checksum(long rounds) {{
    long crc = 0xFFFF;
    for (long r = 0; r < rounds; r = r + 1) {{
        for (long i = 0; i < {n}; i = i + 1) {{
            long b = buf[i] % 256;
            crc = crc - b;
            if (crc < 0) {{ crc = crc + 65536; }}
            crc = (crc * 31 + b) % 65536;
        }}
    }}
    return crc;
}}

long main(void) {{
    for (long i = 0; i < {n}; i = i + 1) {{
        buf[i] = (i * 37 + 11) % 251;
    }}
    long c = checksum({rounds});
    print_long(c);
    return c % 256;
}}
"""


def linked_list_source(n: int = 40) -> str:
    """Heap-allocated linked list built and traversed with the
    alloc/peek/poke intrinsics: pointer-chasing loads with computed
    bases (the access pattern memory tracers and cache studies care
    about).  Node layout: [value, next]."""
    return f"""
long push(long head, long value) {{
    long node = alloc(16);
    poke(node, value);
    poke(node + 8, head);
    return node;
}}

long sum_list(long head) {{
    long s = 0;
    while (head != 0) {{
        s = s + peek(head);
        head = peek(head + 8);
    }}
    return s;
}}

long main(void) {{
    long head = 0;
    for (long i = 1; i <= {n}; i = i + 1) {{
        head = push(head, i);
    }}
    long s = sum_list(head);
    print_long(s);           // n*(n+1)/2
    return s % 256;
}}
"""


def tailcall_source(n: int = 100) -> str:
    """Mutually tail-calling loop (compile with Options(tail_calls=True))
    to exercise ParseAPI's tail-call classification."""
    return f"""
long even_step(long n, long acc);

long odd_step(long n, long acc) {{
    if (n == 0) {{ return acc; }}
    return even_step(n - 1, acc + 1);
}}

long even_step(long n, long acc) {{
    if (n == 0) {{ return acc; }}
    return odd_step(n - 1, acc + 1);
}}

long main(void) {{
    long r = odd_step({n}, 0);
    print_long(r);
    return r % 256;
}}
"""
