"""MiniC code generation: typed AST -> RV64GC assembly text.

Deliberately GCC-flavoured output so the binaries exercise the idioms
ParseAPI must recognise (paper §3.2.3):

* standard prologue/epilogue (``addi sp``/``sd ra``), sp-based frames by
  default (most RISC-V compilers skip the frame pointer, §3.2.7) with an
  optional frame-pointer mode;
* ``jal``/``jalr``-based calls and returns, plus optional tail calls
  (``jal x0``/``jalr x0`` to another function);
* dense ``switch`` statements compiled to indirect jumps through a
  ``.dword`` table (the jump-table pattern ParseAPI slices backward on);
* ``auipc``-based address formation (``la``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import cast as A
from .sema import BUILTINS, FuncSig, SemaInfo


class CompileError(ValueError):
    pass


#: size of the runtime's bump-allocator heap (bss).  Kept modest so the
#: default patch-area placement (first page after the image) stays
#: within jal springboard range of .text.
HEAP_BYTES = 1 << 16

#: Expression-temporary registers (t6 reserved as address scratch).
INT_TEMPS = ("t0", "t1", "t2", "t3", "t4", "t5")
FP_TEMPS = ("ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7")
ADDR_SCRATCH = "t6"


@dataclass
class Options:
    """Code generation options."""

    use_frame_pointer: bool = False
    tail_calls: bool = False
    #: emit compressed forms for eligible moves/immediates (exercises the
    #: C extension in generated binaries)
    compress: bool = False
    #: emit ``.loc`` source-line markers (the -g analogue; becomes the
    #: binary's .dyninst.lines section)
    debug_info: bool = True


@dataclass
class _Frame:
    size: int = 0
    slots: dict[int, int] = field(default_factory=dict)  # id(decl)->offset
    arg_slots: list[int] = field(default_factory=list)
    int_spill: list[int] = field(default_factory=list)
    fp_spill: list[int] = field(default_factory=list)
    locals_base: int = 16


class _FuncGen:
    def __init__(self, fn: A.FuncDef, sema: SemaInfo, opts: Options,
                 out: list[str], data_out: list[str]):
        self.fn = fn
        self.sema = sema
        self.opts = opts
        self.out = out
        self.data_out = data_out
        self.label_n = 0
        self.scopes: list[dict[str, int]] = []  # name -> frame offset
        self.loops: list[tuple[str, str | None]] = []  # (break, continue)
        self.frame = self._layout()
        self.ret_label = self._label("ret")

    # -- plumbing -----------------------------------------------------------

    def _label(self, tag: str = "") -> str:
        self.label_n += 1
        return f".L{self.fn.name}_{tag}{self.label_n}"

    def emit(self, line: str) -> None:
        self.out.append("  " + line)

    def emit_label(self, label: str) -> None:
        self.out.append(label + ":")

    def _li(self, reg: str, value: int) -> None:
        if self.opts.compress and -32 <= value <= 31:
            self.emit(f"c.li {reg}, {value}")
        else:
            self.emit(f"li {reg}, {value}")

    def _mv(self, rd: str, rs: str) -> None:
        if self.opts.compress and rd != "zero" and rs != "zero":
            self.emit(f"c.mv {rd}, {rs}")
        else:
            self.emit(f"mv {rd}, {rs}")

    # -- frame layout ----------------------------------------------------------

    def _layout(self) -> _Frame:
        frame = _Frame()
        decls: list[A.Decl] = []

        def scan(stmt: A.Stmt) -> None:
            if isinstance(stmt, A.Block):
                for s in stmt.statements:
                    scan(s)
            elif isinstance(stmt, A.Decl):
                decls.append(stmt)
            elif isinstance(stmt, A.If):
                scan(stmt.then)
                if stmt.otherwise:
                    scan(stmt.otherwise)
            elif isinstance(stmt, (A.While,)):
                scan(stmt.body)
            elif isinstance(stmt, A.For):
                if stmt.init:
                    scan(stmt.init)
                scan(stmt.body)
            elif isinstance(stmt, A.Switch):
                for c in stmt.cases:
                    for s in c.body:
                        scan(s)

        scan(self.fn.body)
        off = frame.locals_base  # 0: ra, 8: s0
        # parameter slots first (copied in at entry), then locals
        self.param_offsets: list[int] = []
        for _p in self.fn.params:
            self.param_offsets.append(off)
            off += 8
        for d in decls:
            frame.slots[id(d)] = off
            off += 8
        frame.arg_slots = [off + i * 8 for i in range(8)]
        off += 64
        frame.int_spill = [off + i * 8 for i in range(len(INT_TEMPS))]
        off += 8 * len(INT_TEMPS)
        frame.fp_spill = [off + i * 8 for i in range(len(FP_TEMPS))]
        off += 8 * len(FP_TEMPS)
        frame.size = (off + 15) & ~15
        if self.opts.use_frame_pointer:
            # Standard GCC RISC-V frame: ra at size-8, s0 at size-16,
            # s0 = entry sp.  Reserve the top 16 bytes for them.
            frame.size += 16
        return frame

    def _lookup(self, name: str) -> int | None:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- function shell ------------------------------------------------------------

    def generate(self) -> None:
        fn = self.fn
        self.out.append(f".globl {fn.name}")
        self.out.append(f".type {fn.name}, @function")
        self.emit_label(fn.name)
        sz = self.frame.size
        self.emit(f"addi sp, sp, -{sz}")
        if self.opts.use_frame_pointer:
            self.emit(f"sd ra, {sz - 8}(sp)")
            self.emit(f"sd s0, {sz - 16}(sp)")
            self.emit(f"addi s0, sp, {sz}")
        else:
            self.emit("sd ra, 0(sp)")
        # copy parameters to their slots
        scope: dict[str, int] = {}
        ni = nf = 0
        for p, off in zip(fn.params, self.param_offsets):
            if p.typ.is_double:
                self.emit(f"fsd fa{nf}, {off}(sp)")
                nf += 1
            else:
                self.emit(f"sd a{ni}, {off}(sp)")
                ni += 1
            scope[p.name] = off
        self.scopes.append(scope)
        self._gen_block(self.fn.body)
        self.scopes.pop()
        if fn.ret is A.LONG:
            # C semantics: falling off main returns 0; elsewhere undefined
            # (we make it 0 for determinism).
            self._li("a0", 0)
        self.emit_label(self.ret_label)
        if self.opts.use_frame_pointer:
            self.emit(f"ld ra, {sz - 8}(sp)")
            self.emit(f"ld s0, {sz - 16}(sp)")
        else:
            self.emit("ld ra, 0(sp)")
        self.emit(f"addi sp, sp, {sz}")
        self.emit("ret")
        self.out.append(f".size {fn.name}, .-{fn.name}")

    # -- statements ----------------------------------------------------------------

    def _gen_block(self, block: A.Block) -> None:
        self.scopes.append({})
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.scopes.pop()

    def _gen_stmt(self, stmt: A.Stmt) -> None:
        line = getattr(stmt, "line", 0)
        if self.opts.debug_info and line:
            self.emit(f".loc 1 {line}")
        if isinstance(stmt, A.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, A.Decl):
            off = self.frame.slots[id(stmt)]
            self.scopes[-1][stmt.name] = off
            if stmt.init is not None:
                reg = self._eval(stmt.init, 0, 0)
                if stmt.typ.is_double:
                    self.emit(f"fsd {reg}, {off}(sp)")
                else:
                    self.emit(f"sd {reg}, {off}(sp)")
        elif isinstance(stmt, A.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self._eval(stmt.expr, 0, 0, discard=stmt.expr.typ is A.VOID)
        elif isinstance(stmt, A.If):
            self._gen_if(stmt)
        elif isinstance(stmt, A.While):
            self._gen_while(stmt)
        elif isinstance(stmt, A.For):
            self._gen_for(stmt)
        elif isinstance(stmt, A.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, A.Break):
            if not self.loops:
                raise CompileError("break outside loop/switch")
            self.emit(f"j {self.loops[-1][0]}")
        elif isinstance(stmt, A.Continue):
            target = next((c for _, c in reversed(self.loops)
                           if c is not None), None)
            if target is None:
                raise CompileError("continue outside loop")
            self.emit(f"j {target}")
        elif isinstance(stmt, A.Switch):
            self._gen_switch(stmt)
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {stmt!r}")

    def _gen_assign(self, stmt: A.Assign) -> None:
        target = stmt.target
        value_reg = self._eval(stmt.value, 0, 0)
        is_d = target.typ.is_double
        store = "fsd" if is_d else "sd"
        if isinstance(target, A.VarRef):
            off = self._lookup(target.name)
            if off is not None:
                self.emit(f"{store} {value_reg}, {off}(sp)")
            else:
                self.emit(f"la {ADDR_SCRATCH}, {target.name}")
                self.emit(f"{store} {value_reg}, 0({ADDR_SCRATCH})")
        else:
            assert isinstance(target, A.ArrayRef)
            # index temps start above the value register when it is an
            # int temp (value in t0 -> indices from t1)
            d = 1 if not is_d else 0
            self._array_addr(target, d, 1 if is_d else 0)
            self.emit(f"{store} {value_reg}, 0({ADDR_SCRATCH})")

    def _gen_if(self, stmt: A.If) -> None:
        else_l = self._label("else")
        end_l = self._label("endif")
        reg = self._eval(stmt.cond, 0, 0)
        self.emit(f"beqz {reg}, {else_l}")
        self._gen_block(stmt.then)
        if stmt.otherwise:
            self.emit(f"j {end_l}")
            self.emit_label(else_l)
            self._gen_block(stmt.otherwise)
            self.emit_label(end_l)
        else:
            self.emit_label(else_l)

    def _gen_while(self, stmt: A.While) -> None:
        head = self._label("while")
        end = self._label("wend")
        self.emit_label(head)
        reg = self._eval(stmt.cond, 0, 0)
        self.emit(f"beqz {reg}, {end}")
        self.loops.append((end, head))
        self._gen_block(stmt.body)
        self.loops.pop()
        self.emit(f"j {head}")
        self.emit_label(end)

    def _gen_for(self, stmt: A.For) -> None:
        self.scopes.append({})
        if stmt.init:
            self._gen_stmt(stmt.init)
        head = self._label("for")
        step_l = self._label("fstep")
        end = self._label("fend")
        self.emit_label(head)
        if stmt.cond:
            reg = self._eval(stmt.cond, 0, 0)
            self.emit(f"beqz {reg}, {end}")
        self.loops.append((end, step_l))
        self._gen_block(stmt.body)
        self.loops.pop()
        self.emit_label(step_l)
        if stmt.step:
            self._gen_stmt(stmt.step)
        self.emit(f"j {head}")
        self.emit_label(end)
        self.scopes.pop()

    def _gen_return(self, stmt: A.Return) -> None:
        if (self.opts.tail_calls and isinstance(stmt.value, A.Call)
                and not BUILTINS.get(stmt.value.name)):
            sig = self.sema.functions[stmt.value.name]
            if sig.ret == self.fn.ret:
                self._gen_tail_call(stmt.value, sig)
                return
        if stmt.value is not None:
            reg = self._eval(stmt.value, 0, 0)
            if stmt.value.typ.is_double:
                self.emit(f"fmv.d fa0, {reg}")
            else:
                self._mv("a0", reg)
        self.emit(f"j {self.ret_label}")

    def _gen_switch(self, stmt: A.Switch) -> None:
        end = self._label("swend")
        reg = self._eval(stmt.scrutinee, 0, 0)
        labeled = [(c, self._label(f"case")) for c in stmt.cases]
        default_l = next(
            (lab for c, lab in labeled if c.value is None), end)
        values = [(c.value, lab) for c, lab in labeled if c.value is not None]

        if len(values) >= 4 and _is_dense(values):
            self._gen_jump_table(reg, values, default_l)
        else:
            for value, lab in values:
                self._li("t1", value)
                self.emit(f"beq {reg}, t1, {lab}")
            self.emit(f"j {default_l}")

        # continue must target the enclosing loop, not the switch
        outer_continue = next(
            (c for _, c in reversed(self.loops) if c is not None), None)
        self.loops.append((end, outer_continue))
        for case, lab in labeled:
            self.emit_label(lab)
            for sub in case.body:
                self._gen_stmt(sub)
        self.loops.pop()
        self.emit_label(end)

    def _gen_jump_table(self, reg: str,
                        values: list[tuple[int, str]],
                        default_l: str) -> None:
        """The compiler idiom ParseAPI's jump-table analysis targets:
        bounds check, scaled load from a .dword label table, ``jr``."""
        lo = min(v for v, _ in values)
        hi = max(v for v, _ in values)
        span = hi - lo + 1
        table_l = self._label("jt")
        if lo != 0:
            self._li("t1", lo)
            self.emit(f"sub t0, {reg}, t1")
        elif reg != "t0":
            self._mv("t0", reg)
        self._li("t1", span)
        self.emit(f"bgeu t0, t1, {default_l}")
        self.emit("slli t0, t0, 3")
        self.emit(f"la {ADDR_SCRATCH}, {table_l}")
        self.emit(f"add {ADDR_SCRATCH}, {ADDR_SCRATCH}, t0")
        self.emit(f"ld {ADDR_SCRATCH}, 0({ADDR_SCRATCH})")
        self.emit(f"jr {ADDR_SCRATCH}")
        by_value = dict(values)
        self.data_out.append(".align 3")
        self.data_out.append(f"{table_l}:")
        for v in range(lo, hi + 1):
            self.data_out.append(f"  .dword {by_value.get(v, default_l)}")

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: A.Expr, d: int, df: int,
              discard: bool = False) -> str:
        """Evaluate *expr*; the result lands in INT_TEMPS[d] (long) or
        FP_TEMPS[df] (double).  Returns the result register name."""
        if d >= len(INT_TEMPS) or df >= len(FP_TEMPS):
            raise CompileError(
                f"expression too deeply nested in {self.fn.name} "
                f"(line {getattr(expr, 'line', '?')})")
        is_d = expr.typ.is_double
        dst = FP_TEMPS[df] if is_d else INT_TEMPS[d]

        if isinstance(expr, A.IntLit):
            self._li(dst, expr.value)
        elif isinstance(expr, A.FloatLit):
            lab = self._float_const(expr.value)
            self.emit(f"la {ADDR_SCRATCH}, {lab}")
            self.emit(f"fld {dst}, 0({ADDR_SCRATCH})")
        elif isinstance(expr, A.VarRef):
            off = self._lookup(expr.name)
            load = "fld" if is_d else "ld"
            if off is not None:
                self.emit(f"{load} {dst}, {off}(sp)")
            else:
                self.emit(f"la {ADDR_SCRATCH}, {expr.name}")
                self.emit(f"{load} {dst}, 0({ADDR_SCRATCH})")
        elif isinstance(expr, A.ArrayRef):
            self._array_addr(expr, d, df)
            load = "fld" if is_d else "ld"
            self.emit(f"{load} {dst}, 0({ADDR_SCRATCH})")
        elif isinstance(expr, A.Unary):
            self._gen_unary(expr, d, df, dst)
        elif isinstance(expr, A.Binary):
            self._gen_binary(expr, d, df, dst)
        elif isinstance(expr, A.Cast):
            self._gen_cast(expr, d, df, dst)
        elif isinstance(expr, A.Call):
            self._gen_call(expr, d, df, discard)
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {expr!r}")
        return dst

    def _float_const(self, value: float) -> str:
        lab = self._label("dc")
        self.data_out.append(".align 3")
        self.data_out.append(f"{lab}: .double {value!r}")
        return lab

    def _array_addr(self, ref: A.ArrayRef, d: int, df: int) -> None:
        """Leave the element address in ADDR_SCRATCH."""
        atype = self.sema.globals[ref.name]
        assert isinstance(atype, A.ArrayType)
        # linear index into INT_TEMPS[d]
        idx = INT_TEMPS[d]
        self._eval(ref.indices[0], d, df)
        for dim, sub in zip(atype.dims[1:], ref.indices[1:]):
            nxt = INT_TEMPS[d + 1] if d + 1 < len(INT_TEMPS) else None
            if nxt is None:
                raise CompileError("array index too deeply nested")
            self._li(nxt, dim)
            self.emit(f"mul {idx}, {idx}, {nxt}")
            self._eval(sub, d + 1, df)
            self.emit(f"add {idx}, {idx}, {nxt}")
        self.emit(f"slli {idx}, {idx}, 3")
        self.emit(f"la {ADDR_SCRATCH}, {ref.name}")
        self.emit(f"add {ADDR_SCRATCH}, {ADDR_SCRATCH}, {idx}")

    def _gen_unary(self, expr: A.Unary, d: int, df: int, dst: str) -> None:
        src = self._eval(expr.operand, d, df)
        if expr.op == "-":
            if expr.typ.is_double:
                self.emit(f"fneg.d {dst}, {src}")
            else:
                self.emit(f"neg {dst}, {src}")
        else:  # '!'
            self.emit(f"seqz {dst}, {src}")

    def _gen_cast(self, expr: A.Cast, d: int, df: int, dst: str) -> None:
        src_t = expr.operand.typ
        if src_t == expr.target:
            self._eval(expr.operand, d, df)
            return
        if expr.target.is_double:
            src = self._eval(expr.operand, d, df)
            self.emit(f"fcvt.d.l {dst}, {src}")
        else:
            src = self._eval(expr.operand, d, df)
            # C truncates toward zero
            self.emit(f"fcvt.l.d {dst}, {src}, rtz")

    def _gen_binary(self, expr: A.Binary, d: int, df: int, dst: str) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_logical(expr, d, df, dst)
            return
        operand_is_d = expr.lhs.typ.is_double
        if operand_is_d:
            a = self._eval(expr.lhs, d, df)
            b = self._eval(expr.rhs, d, df + 1)
        else:
            a = self._eval(expr.lhs, d, df)
            b = self._eval(expr.rhs, d + 1, df)
        if op in ("+", "-", "*", "/", "%"):
            if operand_is_d:
                mn = {"+": "fadd.d", "-": "fsub.d",
                      "*": "fmul.d", "/": "fdiv.d"}[op]
                self.emit(f"{mn} {dst}, {a}, {b}")
            else:
                mn = {"+": "add", "-": "sub", "*": "mul",
                      "/": "div", "%": "rem"}[op]
                self.emit(f"{mn} {dst}, {a}, {b}")
            return
        # comparisons produce a long in dst
        if operand_is_d:
            table = {
                "<": f"flt.d {dst}, {a}, {b}",
                ">": f"flt.d {dst}, {b}, {a}",
                "<=": f"fle.d {dst}, {a}, {b}",
                ">=": f"fle.d {dst}, {b}, {a}",
                "==": f"feq.d {dst}, {a}, {b}",
            }
            if op == "!=":
                self.emit(f"feq.d {dst}, {a}, {b}")
                self.emit(f"seqz {dst}, {dst}")
            else:
                self.emit(table[op])
        else:
            if op == "<":
                self.emit(f"slt {dst}, {a}, {b}")
            elif op == ">":
                self.emit(f"slt {dst}, {b}, {a}")
            elif op == "<=":
                self.emit(f"slt {dst}, {b}, {a}")
                self.emit(f"xori {dst}, {dst}, 1")
            elif op == ">=":
                self.emit(f"slt {dst}, {a}, {b}")
                self.emit(f"xori {dst}, {dst}, 1")
            elif op == "==":
                self.emit(f"sub {dst}, {a}, {b}")
                self.emit(f"seqz {dst}, {dst}")
            else:  # !=
                self.emit(f"sub {dst}, {a}, {b}")
                self.emit(f"snez {dst}, {dst}")

    def _gen_logical(self, expr: A.Binary, d: int, df: int, dst: str) -> None:
        short_l = self._label("sc")
        end_l = self._label("scend")
        a = self._eval(expr.lhs, d, df)
        if expr.op == "&&":
            self.emit(f"beqz {a}, {short_l}")
        else:
            self.emit(f"bnez {a}, {short_l}")
        b = self._eval(expr.rhs, d, df)
        self.emit(f"snez {dst}, {b}")
        self.emit(f"j {end_l}")
        self.emit_label(short_l)
        self._li(dst, 0 if expr.op == "&&" else 1)
        self.emit_label(end_l)

    # -- calls -----------------------------------------------------------------------

    def _setup_args(self, call: A.Call, sig: FuncSig, d: int, df: int) -> None:
        slots = self.frame.arg_slots
        for i, arg in enumerate(call.args):
            reg = self._eval(arg, d, df)
            st = "fsd" if arg.typ.is_double else "sd"
            self.emit(f"{st} {reg}, {slots[i]}(sp)")
        ni = nf = 0
        for i, ptyp in enumerate(sig.params):
            if ptyp.is_double:
                self.emit(f"fld fa{nf}, {slots[i]}(sp)")
                nf += 1
            else:
                self.emit(f"ld a{ni}, {slots[i]}(sp)")
                ni += 1

    def _gen_call(self, call: A.Call, d: int, df: int,
                  discard: bool) -> None:
        # inline intrinsics: peek/poke lower to a bare load/store
        if call.name == "peek":
            addr = self._eval(call.args[0], d, df)
            self.emit(f"ld {INT_TEMPS[d]}, 0({addr})")
            return
        if call.name == "poke":
            value = self._eval(call.args[1], d, df)
            addr = self._eval(call.args[0], d + 1, df)
            self.emit(f"sd {value}, 0({addr})")
            return
        sig = self.sema.functions[call.name]
        self._setup_args(call, sig, d, df)
        # spill live temps (t0..t{d-1} / ft0..ft{df-1})
        for i in range(d):
            self.emit(f"sd {INT_TEMPS[i]}, {self.frame.int_spill[i]}(sp)")
        for i in range(df):
            self.emit(f"fsd {FP_TEMPS[i]}, {self.frame.fp_spill[i]}(sp)")
        self.emit(f"call {call.name}")
        for i in range(d):
            self.emit(f"ld {INT_TEMPS[i]}, {self.frame.int_spill[i]}(sp)")
        for i in range(df):
            self.emit(f"fld {FP_TEMPS[i]}, {self.frame.fp_spill[i]}(sp)")
        if discard or sig.ret is A.VOID:
            return
        if sig.ret.is_double:
            self.emit(f"fmv.d {FP_TEMPS[df]}, fa0")
        else:
            self._mv(INT_TEMPS[d], "a0")

    def _gen_tail_call(self, call: A.Call, sig: FuncSig) -> None:
        """Tail-call optimisation (paper §3.2.3): tear down the frame,
        then jump — the callee returns directly to our caller."""
        self._setup_args(call, sig, 0, 0)
        sz = self.frame.size
        if self.opts.use_frame_pointer:
            self.emit(f"ld ra, {sz - 8}(sp)")
            self.emit(f"ld s0, {sz - 16}(sp)")
        else:
            self.emit("ld ra, 0(sp)")
        self.emit(f"addi sp, sp, {sz}")
        self.emit(f"tail {call.name}")


def _is_dense(values: list[tuple[int, str]]) -> bool:
    vs = [v for v, _ in values]
    span = max(vs) - min(vs) + 1
    return span <= 3 * len(vs)


# -- runtime ------------------------------------------------------------------

RUNTIME_ASM = r"""
.globl _start
.type _start, @function
_start:
  call main
  li a7, 93
  ecall
.size _start, .-_start

.type exit, @function
exit:
  li a7, 93
  ecall
.size exit, .-exit

.type print_char, @function
print_char:
  addi sp, sp, -16
  sb a0, 8(sp)
  li a0, 1
  addi a1, sp, 8
  li a2, 1
  li a7, 64
  ecall
  addi sp, sp, 16
  ret
.size print_char, .-print_char

.type print_long, @function
print_long:
  addi sp, sp, -48
  sd ra, 0(sp)
  addi t0, sp, 47
  li t1, 10
  sb t1, 0(t0)
  mv t2, a0
  li t3, 0
  bgez t2, .Lpl_digits
  li t3, 1
  neg t2, t2
.Lpl_digits:
.Lpl_loop:
  remu t4, t2, t1
  addi t4, t4, 48
  addi t0, t0, -1
  sb t4, 0(t0)
  divu t2, t2, t1
  bnez t2, .Lpl_loop
  beqz t3, .Lpl_write
  addi t0, t0, -1
  li t4, 45
  sb t4, 0(t0)
.Lpl_write:
  addi t5, sp, 48
  sub a2, t5, t0
  mv a1, t0
  li a0, 1
  li a7, 64
  ecall
  ld ra, 0(sp)
  addi sp, sp, 48
  ret
.size print_long, .-print_long

.type alloc, @function
alloc:
  # bump allocator over the .bss heap; 16-byte aligned sizes
  addi a0, a0, 15
  andi a0, a0, -16
  la t0, heap_next
  ld t1, 0(t0)
  add t2, t1, a0
  sd t2, 0(t0)
  mv a0, t1
  ret
.size alloc, .-alloc

.type clock_ns, @function
clock_ns:
  addi sp, sp, -32
  sd ra, 0(sp)
  li a0, 1
  addi a1, sp, 16
  li a7, 113
  ecall
  ld a0, 16(sp)
  li t0, 1000000000
  mul a0, a0, t0
  ld t1, 24(sp)
  add a0, a0, t1
  ld ra, 0(sp)
  addi sp, sp, 32
  ret
.size clock_ns, .-clock_ns
"""


def generate(sema: SemaInfo, opts: Options | None = None) -> str:
    """Generate a complete assembly module (runtime included)."""
    opts = opts or Options()
    text: list[str] = [".text"]
    data: list[str] = []
    for fn in sema.unit.functions:
        if fn.body is not None:
            _FuncGen(fn, sema, opts, text, data).generate()
    text.append(RUNTIME_ASM)

    data_lines: list[str] = [".data"]
    bss_lines: list[str] = []
    for g in sema.unit.globals:
        size = g.typ.size
        if g.init is None:
            bss_lines += [f".type {g.name}, @object",
                          f"{g.name}: .zero {size}"]
            continue
        data_lines.append(".align 3")
        data_lines.append(f".type {g.name}, @object")
        elem = g.typ.elem if isinstance(g.typ, A.ArrayType) else g.typ
        directive = ".double" if elem.is_double else ".dword"
        vals = list(g.init)
        count = g.typ.count if isinstance(g.typ, A.ArrayType) else 1
        vals += [0.0 if elem.is_double else 0] * (count - len(vals))
        data_lines.append(f"{g.name}:")
        for v in vals:
            data_lines.append(f"  {directive} {v!r}")
    data_lines += data
    # heap support: the bump pointer starts at the .bss heap region
    data_lines += [".align 3", ".type heap_next, @object",
                   "heap_next: .dword heap_base"]
    bss_lines += [".type heap_base, @object",
                  f"heap_base: .zero {HEAP_BYTES}"]
    out = "\n".join(text) + "\n" + "\n".join(data_lines) + "\n"
    if bss_lines:
        out += ".bss\n" + "\n".join(bss_lines) + "\n"
    return out
