"""MiniC driver: source -> assembly -> laid-out Program / ELF bytes."""

from __future__ import annotations

from ..riscv.assembler import Assembler, Program
from ..riscv.extensions import ISASubset, RV64GC
from .codegen import Options, generate
from .cparser import parse
from .sema import analyze


def compile_to_asm(source: str, opts: Options | None = None) -> str:
    """Compile MiniC source to RV64GC assembly text."""
    return generate(analyze(parse(source)), opts)


def compile_source(source: str, opts: Options | None = None,
                   text_base: int = 0x1_0000,
                   arch: ISASubset = RV64GC) -> Program:
    """Compile MiniC source to a laid-out Program.

    With ``Options(compress=True)`` the assembler auto-compresses
    eligible instructions to RV64C forms (like GCC's default on RV64GC),
    producing realistically dense mixed 2/4-byte binaries.
    """
    asm = compile_to_asm(source, opts)
    compress = bool(opts and opts.compress)
    return Assembler(text_base=text_base, arch=arch,
                     compress=compress).assemble(asm)


def compile_to_elf(source: str, opts: Options | None = None,
                   text_base: int = 0x1_0000,
                   arch: ISASubset = RV64GC) -> bytes:
    """Compile MiniC source to ELF executable bytes."""
    from ..elf.writer import write_program

    return write_program(compile_source(source, opts, text_base, arch))
