"""MiniC semantic analysis: name resolution, type checking, and implicit
conversion insertion.

Annotates every expression with ``.typ`` and rewrites the tree so codegen
sees fully-typed, explicitly-converted MiniC: mixed long/double
arithmetic gets a ``Cast`` on the integer side, as do assignments,
call arguments, and return values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import cast as A


class SemaError(ValueError):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass(frozen=True)
class FuncSig:
    name: str
    ret: A.Type
    params: tuple[A.Type, ...]
    builtin: bool = False


#: Runtime builtins provided by the MiniC runtime (emitted as assembly
#: into every binary; see codegen.RUNTIME_ASM).
BUILTINS: dict[str, FuncSig] = {
    "print_long": FuncSig("print_long", A.VOID, (A.LONG,), builtin=True),
    "print_char": FuncSig("print_char", A.VOID, (A.LONG,), builtin=True),
    "clock_ns": FuncSig("clock_ns", A.LONG, (), builtin=True),
    "exit": FuncSig("exit", A.VOID, (A.LONG,), builtin=True),
    # heap + raw-memory intrinsics (pointer-ish programming without a
    # pointer type): alloc bumps a heap pointer; peek/poke are inlined
    # 8-byte load/store through a computed address
    "alloc": FuncSig("alloc", A.LONG, (A.LONG,), builtin=True),
    "peek": FuncSig("peek", A.LONG, (A.LONG,), builtin=True),
    "poke": FuncSig("poke", A.VOID, (A.LONG, A.LONG), builtin=True),
}


@dataclass
class SemaInfo:
    """Result of semantic analysis."""

    unit: A.TranslationUnit
    globals: dict[str, A.Type | A.ArrayType] = field(default_factory=dict)
    functions: dict[str, FuncSig] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.vars: dict[str, A.Type] = {}
        self.parent = parent

    def lookup(self, name: str) -> A.Type | None:
        s: _Scope | None = self
        while s is not None:
            if name in s.vars:
                return s.vars[name]
            s = s.parent
        return None

    def declare(self, name: str, typ: A.Type, line: int) -> None:
        if name in self.vars:
            raise SemaError(f"redeclaration of {name!r}", line)
        self.vars[name] = typ


def _coerce(expr: A.Expr, target: A.Type, line: int) -> A.Expr:
    if expr.typ == target:
        return expr
    if expr.typ in (A.LONG, A.DOUBLE) and target in (A.LONG, A.DOUBLE):
        cast = A.Cast(target, expr, line)
        cast.typ = target
        return cast
    raise SemaError(
        f"cannot convert {expr.typ.name} to {target.name}", line)


class Analyzer:
    def __init__(self, unit: A.TranslationUnit):
        self.unit = unit
        self.info = SemaInfo(unit)
        self._loop_depth = 0
        self._current: FuncSig | None = None

    def run(self) -> SemaInfo:
        for g in self.unit.globals:
            if g.name in self.info.globals:
                raise SemaError(f"duplicate global {g.name!r}", g.line)
            if g.name in BUILTINS:
                raise SemaError(f"{g.name!r} shadows a builtin", g.line)
            self._check_global_init(g)
            self.info.globals[g.name] = g.typ
        self.info.functions.update(BUILTINS)
        defined: set[str] = set()
        for fn in self.unit.functions:
            sig = FuncSig(fn.name, fn.ret, tuple(p.typ for p in fn.params))
            prior = self.info.functions.get(fn.name)
            if prior is not None:
                if prior != sig:
                    raise SemaError(
                        f"conflicting declarations of {fn.name!r}", fn.line)
                if fn.body is not None and fn.name in defined:
                    raise SemaError(f"duplicate function {fn.name!r}",
                                    fn.line)
            self.info.functions[fn.name] = sig
            if fn.body is not None:
                defined.add(fn.name)
        undefined = {
            name for name, sig in self.info.functions.items()
            if not sig.builtin and name not in defined
        }
        if undefined:
            raise SemaError(
                f"functions declared but never defined: {sorted(undefined)}")
        if "main" not in self.info.functions:
            raise SemaError("missing main function")
        if self.info.functions["main"].ret is not A.LONG:
            raise SemaError("main must return long")
        for fn in self.unit.functions:
            if fn.body is not None:
                self._check_func(fn)
        return self.info

    def _check_global_init(self, g: A.GlobalVar) -> None:
        if g.init is None:
            return
        count = g.typ.count if isinstance(g.typ, A.ArrayType) else 1
        if len(g.init) > count:
            raise SemaError(
                f"too many initialisers for {g.name!r}", g.line)

    def _check_func(self, fn: A.FuncDef) -> None:
        self._current = self.info.functions[fn.name]
        scope = _Scope()
        for p in fn.params:
            if p.typ is A.VOID:
                raise SemaError("void parameter", fn.line)
            scope.declare(p.name, p.typ, fn.line)
        self._check_block(fn.body, scope)
        self._current = None

    def _check_block(self, block: A.Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.statements:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, A.Decl):
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
                stmt.init = _coerce(stmt.init, stmt.typ, stmt.line)
            scope.declare(stmt.name, stmt.typ, stmt.line)
        elif isinstance(stmt, A.Assign):
            self._check_expr(stmt.target, scope, lvalue=True)
            self._check_expr(stmt.value, scope)
            stmt.value = _coerce(stmt.value, stmt.target.typ, stmt.line)
        elif isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, A.If):
            self._check_expr(stmt.cond, scope)
            stmt.cond = _coerce(stmt.cond, A.LONG, stmt.line)
            self._check_block(stmt.then, scope)
            if stmt.otherwise:
                self._check_block(stmt.otherwise, scope)
        elif isinstance(stmt, A.While):
            self._check_expr(stmt.cond, scope)
            stmt.cond = _coerce(stmt.cond, A.LONG, stmt.line)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if stmt.init:
                self._check_stmt(stmt.init, inner)
            if stmt.cond:
                self._check_expr(stmt.cond, inner)
                stmt.cond = _coerce(stmt.cond, A.LONG, stmt.line)
            if stmt.step:
                self._check_stmt(stmt.step, inner)
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, A.Return):
            assert self._current is not None
            if stmt.value is None:
                if self._current.ret is not A.VOID:
                    raise SemaError("return without value", stmt.line)
            else:
                if self._current.ret is A.VOID:
                    raise SemaError("return with value in void function",
                                    stmt.line)
                self._check_expr(stmt.value, scope)
                stmt.value = _coerce(stmt.value, self._current.ret, stmt.line)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self._loop_depth == 0:
                raise SemaError("break/continue outside loop", stmt.line)
        elif isinstance(stmt, A.Switch):
            self._check_expr(stmt.scrutinee, scope)
            stmt.scrutinee = _coerce(stmt.scrutinee, A.LONG, stmt.line)
            seen: set[int | None] = set()
            self._loop_depth += 1  # break is legal inside switch
            for case in stmt.cases:
                if case.value in seen:
                    raise SemaError("duplicate case label", case.line)
                seen.add(case.value)
                for sub in case.body:
                    self._check_stmt(sub, scope)
            self._loop_depth -= 1
        else:  # pragma: no cover
            raise SemaError(f"unknown statement {stmt!r}")

    def _check_expr(self, expr: A.Expr, scope: _Scope,
                    lvalue: bool = False) -> None:
        if isinstance(expr, A.IntLit):
            expr.typ = A.LONG
        elif isinstance(expr, A.FloatLit):
            expr.typ = A.DOUBLE
        elif isinstance(expr, A.VarRef):
            typ = scope.lookup(expr.name)
            if typ is None:
                gtyp = self.info.globals.get(expr.name)
                if gtyp is None:
                    raise SemaError(f"undefined variable {expr.name!r}",
                                    expr.line)
                if isinstance(gtyp, A.ArrayType):
                    raise SemaError(
                        f"array {expr.name!r} used without indices",
                        expr.line)
                typ = gtyp
            expr.typ = typ
        elif isinstance(expr, A.ArrayRef):
            gtyp = self.info.globals.get(expr.name)
            if not isinstance(gtyp, A.ArrayType):
                raise SemaError(f"{expr.name!r} is not an array", expr.line)
            if len(expr.indices) != len(gtyp.dims):
                raise SemaError(
                    f"{expr.name!r} expects {len(gtyp.dims)} indices",
                    expr.line)
            for i, idx in enumerate(expr.indices):
                self._check_expr(idx, scope)
                expr.indices[i] = _coerce(idx, A.LONG, expr.line)
            expr.typ = gtyp.elem
        elif isinstance(expr, A.Unary):
            self._check_expr(expr.operand, scope)
            if expr.op == "!":
                expr.operand = _coerce(expr.operand, A.LONG, expr.line)
                expr.typ = A.LONG
            else:
                expr.typ = expr.operand.typ
        elif isinstance(expr, A.Binary):
            self._check_expr(expr.lhs, scope)
            self._check_expr(expr.rhs, scope)
            if expr.op in ("&&", "||"):
                expr.lhs = _coerce(expr.lhs, A.LONG, expr.line)
                expr.rhs = _coerce(expr.rhs, A.LONG, expr.line)
                expr.typ = A.LONG
            elif expr.op == "%":
                expr.lhs = _coerce(expr.lhs, A.LONG, expr.line)
                expr.rhs = _coerce(expr.rhs, A.LONG, expr.line)
                expr.typ = A.LONG
            else:
                common = (A.DOUBLE if A.DOUBLE in (expr.lhs.typ, expr.rhs.typ)
                          else A.LONG)
                expr.lhs = _coerce(expr.lhs, common, expr.line)
                expr.rhs = _coerce(expr.rhs, common, expr.line)
                expr.typ = (A.LONG if expr.op in
                            ("<", "<=", ">", ">=", "==", "!=") else common)
        elif isinstance(expr, A.Call):
            sig = self.info.functions.get(expr.name)
            if sig is None:
                raise SemaError(f"undefined function {expr.name!r}",
                                expr.line)
            if len(expr.args) != len(sig.params):
                raise SemaError(
                    f"{expr.name} expects {len(sig.params)} args, got "
                    f"{len(expr.args)}", expr.line)
            if len(expr.args) > 8:
                raise SemaError("more than 8 arguments unsupported",
                                expr.line)
            for i, (arg, ptyp) in enumerate(zip(expr.args, sig.params)):
                self._check_expr(arg, scope)
                expr.args[i] = _coerce(arg, ptyp, expr.line)
            expr.typ = sig.ret
        elif isinstance(expr, A.Cast):
            self._check_expr(expr.operand, scope)
            expr.typ = expr.target
        else:  # pragma: no cover
            raise SemaError(f"unknown expression {expr!r}")
        if lvalue and not isinstance(expr, (A.VarRef, A.ArrayRef)):
            raise SemaError("invalid lvalue", getattr(expr, "line", 0))


def analyze(unit: A.TranslationUnit) -> SemaInfo:
    return Analyzer(unit).run()
