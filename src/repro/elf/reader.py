"""ELF64 reader: parse executables back into structured form.

Accepts anything our writer produces plus the general ELF64/RISC-V shape
(unknown sections are kept as opaque blobs, mirroring Dyninst's
opportunistic analysis of partially understood binaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from . import structs as s
from .structs import ElfFormatError


@dataclass
class Section:
    name: str
    header: s.SectionHeader
    data: bytes

    @property
    def addr(self) -> int:
        return self.header.sh_addr

    @property
    def is_code(self) -> bool:
        return bool(self.header.sh_flags & s.SHF_EXECINSTR)

    @property
    def is_alloc(self) -> bool:
        return bool(self.header.sh_flags & s.SHF_ALLOC)


@dataclass
class Segment:
    header: s.ProgramHeader
    data: bytes

    @property
    def vaddr(self) -> int:
        return self.header.p_vaddr

    @property
    def memsz(self) -> int:
        return self.header.p_memsz

    @property
    def executable(self) -> bool:
        return bool(self.header.p_flags & s.PF_X)


@dataclass
class ElfFile:
    """A parsed ELF64 file."""

    header: s.ElfHeader
    sections: list[Section] = field(default_factory=list)
    segments: list[Segment] = field(default_factory=list)
    symbols: list[s.ElfSymbol] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return self.header.e_entry

    @property
    def e_flags(self) -> int:
        return self.header.e_flags

    @property
    def is_riscv(self) -> bool:
        return self.header.e_machine == s.EM_RISCV

    def section(self, name: str) -> Section | None:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def symbols_by_name(self) -> dict[str, s.ElfSymbol]:
        return {sym.name: sym for sym in self.symbols if sym.name}

    def function_symbols(self) -> list[s.ElfSymbol]:
        return sorted(
            (sym for sym in self.symbols
             if sym.type == s.STT_FUNC and sym.name),
            key=lambda y: y.st_value,
        )

    def load_segments(self) -> list[tuple[int, bytes, int, bool]]:
        """(vaddr, file bytes, memsz, executable) for each PT_LOAD."""
        return [
            (sg.vaddr, sg.data, sg.memsz, sg.executable)
            for sg in self.segments if sg.header.p_type == s.PT_LOAD
        ]


def read_elf(data: bytes) -> ElfFile:
    """Parse ELF bytes into an :class:`ElfFile`.

    Malformed input raises :class:`ElfFormatError` — never a raw
    struct/index error (binaries come from untrusted places).
    """
    faults.site("elf.read.parse")
    if len(data) < s.EHDR_SIZE:
        raise ElfFormatError("file too small for an ELF header")
    ehdr = s.ElfHeader.unpack(data)

    if ehdr.e_phnum and (
            ehdr.e_phoff + ehdr.e_phnum * s.PHDR_SIZE > len(data)):
        raise ElfFormatError("program header table extends past EOF")
    if ehdr.e_shnum and (
            ehdr.e_shoff + ehdr.e_shnum * s.SHDR_SIZE > len(data)):
        raise ElfFormatError("section header table extends past EOF")
    if ehdr.e_phnum > 0x10000 or ehdr.e_shnum > 0x10000:
        raise ElfFormatError("implausible header counts")

    segments: list[Segment] = []
    for i in range(ehdr.e_phnum):
        ph = s.ProgramHeader.unpack(data, ehdr.e_phoff + i * s.PHDR_SIZE)
        end = ph.p_offset + ph.p_filesz
        if end > len(data) or ph.p_offset > len(data):
            raise ElfFormatError("program header extends past end of file")
        segments.append(Segment(ph, data[ph.p_offset:end]))

    headers: list[s.SectionHeader] = []
    for i in range(ehdr.e_shnum):
        headers.append(
            s.SectionHeader.unpack(data, ehdr.e_shoff + i * s.SHDR_SIZE))

    # Validate section placement before any slicing: Python slices clamp
    # silently, which would turn an out-of-range sh_offset or an
    # impossible sh_size into a short (corrupt) section blob downstream
    # instead of a parse error here.  SHT_NULL/SHT_NOBITS occupy no file
    # bytes and are exempt.
    faults.site("elf.read.sections")
    for i, h in enumerate(headers):
        if h.sh_type in (s.SHT_NULL, s.SHT_NOBITS):
            continue
        if h.sh_offset > len(data):
            raise ElfFormatError(
                f"section {i} offset {h.sh_offset:#x} past end of file")
        if h.sh_size > len(data) - h.sh_offset:
            raise ElfFormatError(
                f"section {i} extends past end of file "
                f"(offset {h.sh_offset:#x}, size {h.sh_size:#x})")

    # Resolve section names.
    shstr = b""
    if 0 <= ehdr.e_shstrndx < len(headers):
        h = headers[ehdr.e_shstrndx]
        shstr = data[h.sh_offset:h.sh_offset + h.sh_size]
    sections: list[Section] = []
    for h in headers:
        if shstr:
            try:
                h.name = s.StringTable.read(shstr, h.sh_name)
            except ValueError:
                h.name = ""
        blob = (b"" if h.sh_type in (s.SHT_NULL, s.SHT_NOBITS)
                else data[h.sh_offset:h.sh_offset + h.sh_size])
        sections.append(Section(h.name, h, blob))

    symbols: list[s.ElfSymbol] = []
    for sec in sections:
        if sec.header.sh_type != s.SHT_SYMTAB:
            continue
        faults.site("elf.read.symbols")
        strsec = (sections[sec.header.sh_link]
                  if 0 <= sec.header.sh_link < len(sections) else None)
        strblob = strsec.data if strsec else b""
        count = len(sec.data) // s.SYM_SIZE
        for i in range(count):
            sym = s.ElfSymbol.unpack(sec.data, i * s.SYM_SIZE)
            if strblob and sym.st_name < len(strblob):
                try:
                    sym.name = s.StringTable.read(strblob, sym.st_name)
                except ValueError:
                    sym.name = ""  # unterminated name: keep anonymous
            symbols.append(sym)

    return ElfFile(ehdr, sections, segments, symbols)
