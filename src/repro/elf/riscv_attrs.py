"""The ``.riscv.attributes`` section (paper §3.2.1).

Per the RISC-V psABI, build attributes use the ARM-style format:

* one byte ``'A'`` (format version)
* one or more *vendor sub-sections*:
  ``uint32 length`` (covering the whole sub-section) + NTBS vendor name
  (``"riscv"``) + *sub-sub-sections*
* each sub-sub-section: ULEB128 tag (``Tag_File`` = 1) + ``uint32 length``
  + a list of attributes
* each attribute: ULEB128 tag, then a ULEB128 integer (even tags) or
  null-terminated string (odd tags).

The attribute Dyninst cares about is ``Tag_RISCV_arch`` (tag 5): the
target arch string, e.g. ``rv64imafdc_zicsr2p0`` — the complete list of
extensions the binary was compiled for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .structs import ElfFormatError

TAG_FILE = 1
TAG_RISCV_STACK_ALIGN = 4
TAG_RISCV_ARCH = 5
TAG_RISCV_UNALIGNED_ACCESS = 6


class AttributesError(ElfFormatError):
    """Malformed .riscv.attributes content.

    A clipped or corrupted attributes section is an ELF-format defect
    like any other, so this subclasses :class:`ElfFormatError` (itself
    a ``ValueError``): callers hardened against malformed binaries
    catch one exception family for the whole reader."""


def encode_uleb(value: int) -> bytes:
    if value < 0:
        raise ValueError("ULEB128 encodes non-negative integers")
    out = bytearray()
    while True:
        b = value & 0x7F
        value >>= 7
        if value:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def decode_uleb(data: bytes, off: int) -> tuple[int, int]:
    """Returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if off >= len(data):
            raise AttributesError("truncated ULEB128")
        b = data[off]
        off += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, off
        shift += 7
        if shift > 63:
            raise AttributesError("overlong ULEB128")


@dataclass
class RiscvAttributes:
    """Parsed attribute values (file scope)."""

    arch: str | None = None
    stack_align: int | None = None
    unaligned_access: int | None = None
    #: any tags this parser does not know, kept verbatim
    other: dict[int, int | str] = field(default_factory=dict)


def build_attributes_section(arch: str, stack_align: int = 16) -> bytes:
    """Serialise a .riscv.attributes section declaring *arch*."""
    attrs = bytearray()
    attrs += encode_uleb(TAG_RISCV_STACK_ALIGN) + encode_uleb(stack_align)
    attrs += encode_uleb(TAG_RISCV_ARCH) + arch.encode() + b"\x00"

    # File sub-sub-section: tag, uint32 length (tag byte + length field +
    # payload), payload.
    sub_sub = bytearray()
    sub_sub += encode_uleb(TAG_FILE)
    sub_sub += (len(attrs) + len(sub_sub) + 4).to_bytes(4, "little")
    sub_sub += attrs

    vendor = b"riscv\x00"
    length = 4 + len(vendor) + len(sub_sub)
    section = b"A" + length.to_bytes(4, "little") + vendor + bytes(sub_sub)
    return section


def parse_attributes_section(data: bytes) -> RiscvAttributes:
    """Parse a .riscv.attributes section; returns file-scope attributes."""
    if not data or data[0:1] != b"A":
        raise AttributesError("missing attributes format byte 'A'")
    out = RiscvAttributes()
    off = 1
    while off < len(data):
        if off + 4 > len(data):
            raise AttributesError("truncated vendor sub-section header")
        length = int.from_bytes(data[off:off + 4], "little")
        if length < 4 or off + length > len(data):
            raise AttributesError("bad vendor sub-section length")
        sub = data[off + 4:off + length]
        off += length
        nul = sub.find(b"\x00")
        if nul < 0:
            raise AttributesError("unterminated vendor name")
        vendor = sub[:nul].decode(errors="replace")
        if vendor != "riscv":
            continue
        _parse_sub_subsections(sub[nul + 1:], out)
    return out


def _parse_sub_subsections(data: bytes, out: RiscvAttributes) -> None:
    off = 0
    while off < len(data):
        tag, off2 = decode_uleb(data, off)
        if off2 + 4 > len(data):
            raise AttributesError("truncated sub-sub-section")
        length = int.from_bytes(data[off2:off2 + 4], "little")
        end = off + length
        if length < (off2 + 4 - off) or end > len(data):
            raise AttributesError("bad sub-sub-section length")
        if tag == TAG_FILE:
            _parse_attribute_list(data[off2 + 4:end], out)
        off = end


def _parse_attribute_list(data: bytes, out: RiscvAttributes) -> None:
    off = 0
    while off < len(data):
        tag, off = decode_uleb(data, off)
        if tag % 2 == 1 and tag != TAG_FILE:
            # odd tag: NTBS value
            nul = data.find(b"\x00", off)
            if nul < 0:
                raise AttributesError(f"unterminated string for tag {tag}")
            value: int | str = data[off:nul].decode(errors="replace")
            off = nul + 1
        else:
            value, off = decode_uleb(data, off)
        if tag == TAG_RISCV_ARCH:
            out.arch = str(value)
        elif tag == TAG_RISCV_STACK_ALIGN:
            out.stack_align = int(value)
        elif tag == TAG_RISCV_UNALIGNED_ACCESS:
            out.unaligned_access = int(value)
        else:
            out.other[tag] = value
