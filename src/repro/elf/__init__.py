"""ELF64 object-format substrate (reader, writer, RISC-V attributes)."""

from .reader import ElfFile, Section, Segment, read_elf
from .riscv_attrs import (
    AttributesError, RiscvAttributes, build_attributes_section,
    decode_uleb, encode_uleb, parse_attributes_section,
)
from .structs import (
    EF_RISCV_FLOAT_ABI_DOUBLE, EF_RISCV_FLOAT_ABI_MASK,
    EF_RISCV_FLOAT_ABI_SINGLE, EF_RISCV_RVC, EM_RISCV, ElfFormatError,
    ElfHeader, ElfSymbol,
)
from .writer import ElfImage, SectionImage, image_from_program, write_elf, write_program

__all__ = [
    "ElfFile", "Section", "Segment", "read_elf",
    "AttributesError", "RiscvAttributes", "build_attributes_section",
    "decode_uleb", "encode_uleb", "parse_attributes_section",
    "EF_RISCV_FLOAT_ABI_DOUBLE", "EF_RISCV_FLOAT_ABI_MASK",
    "EF_RISCV_FLOAT_ABI_SINGLE", "EF_RISCV_RVC", "EM_RISCV",
    "ElfFormatError", "ElfHeader", "ElfSymbol",
    "ElfImage", "SectionImage", "image_from_program", "write_elf",
    "write_program",
]
