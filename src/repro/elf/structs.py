"""ELF64 on-disk structures and constants (little-endian RISC-V subset).

Only what a RISC-V ELF toolchain needs: file header, program headers,
section headers, symbols — plus the RISC-V-specific ``e_flags`` bits from
the psABI that SymtabAPI extracts (paper §3.2.1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import ReproError

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1

ET_EXEC = 2
ET_DYN = 3
EM_RISCV = 243

# RISC-V psABI e_flags (paper §3.2.1)
EF_RISCV_RVC = 0x0001
EF_RISCV_FLOAT_ABI_SINGLE = 0x0002
EF_RISCV_FLOAT_ABI_DOUBLE = 0x0004
EF_RISCV_FLOAT_ABI_MASK = 0x0006

PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8
SHT_RISCV_ATTRIBUTES = 0x7000_0003

SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
SHN_UNDEF = 0
SHN_ABS = 0xFFF1

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")

EHDR_SIZE = _EHDR.size      # 64
PHDR_SIZE = _PHDR.size      # 56
SHDR_SIZE = _SHDR.size      # 64
SYM_SIZE = _SYM.size        # 24


@dataclass
class ElfHeader:
    e_type: int = ET_EXEC
    e_machine: int = EM_RISCV
    e_entry: int = 0
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_phnum: int = 0
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        ident = ELF_MAGIC + bytes([ELFCLASS64, ELFDATA2LSB, EV_CURRENT]) + b"\x00" * 9
        return _EHDR.pack(
            ident, self.e_type, self.e_machine, EV_CURRENT,
            self.e_entry, self.e_phoff, self.e_shoff, self.e_flags,
            EHDR_SIZE, PHDR_SIZE if self.e_phnum else 0, self.e_phnum,
            SHDR_SIZE if self.e_shnum else 0, self.e_shnum, self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElfHeader":
        try:
            (ident, e_type, e_machine, _ver, e_entry, e_phoff, e_shoff,
             e_flags, _ehsize, _phentsize, e_phnum, _shentsize, e_shnum,
             e_shstrndx) = _EHDR.unpack_from(data, 0)
        except struct.error as e:
            raise ElfFormatError(f"truncated ELF header: {e}") from e
        if ident[:4] != ELF_MAGIC:
            raise ElfFormatError("bad ELF magic")
        if ident[4] != ELFCLASS64 or ident[5] != ELFDATA2LSB:
            raise ElfFormatError("only ELF64 little-endian is supported")
        return cls(e_type, e_machine, e_entry, e_phoff, e_shoff,
                   e_flags, e_phnum, e_shnum, e_shstrndx)


class ElfFormatError(ReproError, ValueError):
    """Raised for malformed ELF input."""


@dataclass
class ProgramHeader:
    p_type: int = PT_LOAD
    p_flags: int = PF_R
    p_offset: int = 0
    p_vaddr: int = 0
    p_filesz: int = 0
    p_memsz: int = 0
    p_align: int = 0x1000

    def pack(self) -> bytes:
        return _PHDR.pack(self.p_type, self.p_flags, self.p_offset,
                          self.p_vaddr, self.p_vaddr, self.p_filesz,
                          self.p_memsz, self.p_align)

    @classmethod
    def unpack(cls, data: bytes, off: int) -> "ProgramHeader":
        try:
            (p_type, p_flags, p_offset, p_vaddr, _paddr, p_filesz,
             p_memsz, p_align) = _PHDR.unpack_from(data, off)
        except struct.error as e:
            raise ElfFormatError(
                f"truncated program header at {off:#x}: {e}") from e
        return cls(p_type, p_flags, p_offset, p_vaddr, p_filesz, p_memsz,
                   p_align)


@dataclass
class SectionHeader:
    sh_name: int = 0        # offset into .shstrtab
    sh_type: int = SHT_NULL
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 0
    sh_entsize: int = 0
    name: str = field(default="", compare=False)  # resolved on read

    def pack(self) -> bytes:
        return _SHDR.pack(self.sh_name, self.sh_type, self.sh_flags,
                          self.sh_addr, self.sh_offset, self.sh_size,
                          self.sh_link, self.sh_info, self.sh_addralign,
                          self.sh_entsize)

    @classmethod
    def unpack(cls, data: bytes, off: int) -> "SectionHeader":
        try:
            return cls(*_SHDR.unpack_from(data, off))
        except struct.error as e:
            raise ElfFormatError(
                f"truncated section header at {off:#x}: {e}") from e


@dataclass
class ElfSymbol:
    st_name: int = 0
    st_info: int = 0
    st_other: int = 0
    st_shndx: int = SHN_UNDEF
    st_value: int = 0
    st_size: int = 0
    name: str = field(default="", compare=False)

    @property
    def bind(self) -> int:
        return self.st_info >> 4

    @property
    def type(self) -> int:
        return self.st_info & 0xF

    def pack(self) -> bytes:
        return _SYM.pack(self.st_name, self.st_info, self.st_other,
                         self.st_shndx, self.st_value, self.st_size)

    @classmethod
    def unpack(cls, data: bytes, off: int) -> "ElfSymbol":
        try:
            return cls(*_SYM.unpack_from(data, off))
        except struct.error as e:
            raise ElfFormatError(
                f"truncated symbol entry at {off:#x}: {e}") from e


def make_st_info(bind: int, typ: int) -> int:
    return (bind << 4) | (typ & 0xF)


class StringTable:
    """Incrementally built ELF string table."""

    def __init__(self) -> None:
        self._blob = bytearray(b"\x00")
        self._offsets: dict[str, int] = {"": 0}

    def add(self, s: str) -> int:
        off = self._offsets.get(s)
        if off is None:
            off = len(self._blob)
            self._blob += s.encode() + b"\x00"
            self._offsets[s] = off
        return off

    def bytes(self) -> bytes:
        return bytes(self._blob)

    @staticmethod
    def read(blob: bytes, offset: int) -> str:
        """String at *offset*; raises :class:`ElfFormatError` (a
        ``ValueError`` subclass, so legacy catch-sites still work) on
        out-of-range offsets, unterminated strings, or bad UTF-8."""
        if offset < 0 or offset >= len(blob):
            raise ElfFormatError(
                f"string offset {offset:#x} outside table "
                f"of {len(blob)} bytes")
        end = blob.find(b"\x00", offset)
        if end < 0:
            raise ElfFormatError(
                f"unterminated string at offset {offset:#x}")
        try:
            return blob[offset:end].decode()
        except UnicodeDecodeError as e:
            raise ElfFormatError(
                f"undecodable string at offset {offset:#x}") from e
