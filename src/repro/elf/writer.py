"""ELF64 writer: serialise a laid-out :class:`~repro.riscv.assembler.Program`
(or raw section images) into a valid RISC-V executable.

Produces the artefacts SymtabAPI consumes — ``e_flags`` extension bits,
``.riscv.attributes``, a symbol table — so the full paper §3.2.1 logic is
exercised end-to-end on files this toolkit writes *and* rewrites
(PatchAPI's static rewriter reuses this writer to emit the instrumented
binary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..riscv.assembler import Program, Symbol
from ..riscv.extensions import ISASubset
from . import structs as s
from .riscv_attrs import build_attributes_section


@dataclass
class SectionImage:
    """One section to be written."""

    name: str
    data: bytes
    addr: int = 0
    sh_type: int = s.SHT_PROGBITS
    sh_flags: int = 0
    mem_size: int | None = None  # > len(data) for NOBITS-backed .bss
    align: int = 8


@dataclass
class ElfImage:
    """Everything needed to serialise an executable."""

    entry: int
    sections: list[SectionImage]
    symbols: list[Symbol] = field(default_factory=list)
    arch: ISASubset | None = None
    emit_attributes: bool = True

    def e_flags(self) -> int:
        flags = 0
        if self.arch is not None:
            if self.arch.supports("c"):
                flags |= s.EF_RISCV_RVC
            if self.arch.supports("d"):
                flags |= s.EF_RISCV_FLOAT_ABI_DOUBLE
            elif self.arch.supports("f"):
                flags |= s.EF_RISCV_FLOAT_ABI_SINGLE
        return flags


def image_from_program(program: Program, *, emit_attributes: bool = True
                       ) -> ElfImage:
    """Build an :class:`ElfImage` from an assembled program."""
    sections = [
        SectionImage(".text", program.text, program.text_base,
                     sh_flags=s.SHF_ALLOC | s.SHF_EXECINSTR, align=4),
        SectionImage(".data", program.data, program.data_base,
                     sh_flags=s.SHF_ALLOC | s.SHF_WRITE),
    ]
    if program.bss_size:
        sections.append(SectionImage(
            ".bss", b"", program.bss_base, sh_type=s.SHT_NOBITS,
            sh_flags=s.SHF_ALLOC | s.SHF_WRITE, mem_size=program.bss_size))
    if program.line_map:
        from .lines import LINES_SECTION, build_lines_section

        sections.append(SectionImage(
            LINES_SECTION, build_lines_section(program.line_map),
            sh_type=s.SHT_PROGBITS, align=8))
    return ElfImage(
        entry=program.entry,
        sections=sections,
        symbols=sorted(program.symbols.values(), key=lambda y: y.address),
        arch=program.arch,
        emit_attributes=emit_attributes,
    )


def write_elf(image: ElfImage) -> bytes:
    """Serialise an :class:`ElfImage` to ELF bytes."""
    shstr = s.StringTable()
    strtab = s.StringTable()

    sections = list(image.sections)
    if image.emit_attributes and image.arch is not None:
        sections.append(SectionImage(
            ".riscv.attributes",
            build_attributes_section(image.arch.arch_string()),
            sh_type=s.SHT_RISCV_ATTRIBUTES, align=1))

    # --- symbols --------------------------------------------------------
    def shndx_for(addr: int) -> int:
        for i, sec in enumerate(sections):
            if not sec.sh_flags & s.SHF_ALLOC:
                continue
            size = sec.mem_size if sec.mem_size is not None else len(sec.data)
            if sec.addr <= addr < sec.addr + max(size, 1):
                return i + 1  # +1 for the NULL section
        return s.SHN_ABS

    syms_local: list[s.ElfSymbol] = [s.ElfSymbol()]  # index 0: undefined
    syms_global: list[s.ElfSymbol] = []
    for sym in image.symbols:
        typ = {"func": s.STT_FUNC, "object": s.STT_OBJECT}.get(
            sym.kind, s.STT_NOTYPE)
        bind = s.STB_GLOBAL if sym.is_global else s.STB_LOCAL
        esym = s.ElfSymbol(
            st_name=strtab.add(sym.name),
            st_info=s.make_st_info(bind, typ),
            st_shndx=shndx_for(sym.address),
            st_value=sym.address,
            st_size=sym.size,
        )
        (syms_global if sym.is_global else syms_local).append(esym)
    all_syms = syms_local + syms_global
    symtab_data = b"".join(sym.pack() for sym in all_syms)

    # --- section table assembly -----------------------------------------
    headers: list[s.SectionHeader] = [s.SectionHeader()]  # NULL
    blobs: list[bytes] = [b""]
    for sec in sections:
        headers.append(s.SectionHeader(
            sh_name=shstr.add(sec.name),
            sh_type=sec.sh_type,
            sh_flags=sec.sh_flags,
            sh_addr=sec.addr,
            sh_size=(sec.mem_size if sec.sh_type == s.SHT_NOBITS
                     else len(sec.data)),
            sh_addralign=sec.align,
        ))
        blobs.append(b"" if sec.sh_type == s.SHT_NOBITS else sec.data)

    symtab_idx = len(headers)
    headers.append(s.SectionHeader(
        sh_name=shstr.add(".symtab"), sh_type=s.SHT_SYMTAB,
        sh_size=len(symtab_data), sh_link=symtab_idx + 1,
        sh_info=len(syms_local), sh_addralign=8, sh_entsize=s.SYM_SIZE))
    blobs.append(symtab_data)
    headers.append(s.SectionHeader(
        sh_name=shstr.add(".strtab"), sh_type=s.SHT_STRTAB,
        sh_size=len(strtab.bytes()), sh_addralign=1))
    blobs.append(strtab.bytes())
    shstrndx = len(headers)
    shstr_name = shstr.add(".shstrtab")
    shstr_blob = shstr.bytes()
    headers.append(s.SectionHeader(
        sh_name=shstr_name, sh_type=s.SHT_STRTAB,
        sh_size=len(shstr_blob), sh_addralign=1))
    blobs.append(shstr_blob)

    # --- program headers: one PT_LOAD per ALLOC section -----------------
    load_sections = [
        (i, sec) for i, sec in enumerate(sections)
        if sec.sh_flags & s.SHF_ALLOC
    ]
    phnum = len(load_sections)

    # --- layout ----------------------------------------------------------
    offset = s.EHDR_SIZE + phnum * s.PHDR_SIZE
    for hdr, blob in zip(headers, blobs):
        if hdr.sh_type in (s.SHT_NULL, s.SHT_NOBITS):
            hdr.sh_offset = offset
            continue
        align = max(hdr.sh_addralign, 1)
        offset = (offset + align - 1) & ~(align - 1)
        hdr.sh_offset = offset
        offset += len(blob)
    shoff = (offset + 7) & ~7

    phdrs: list[s.ProgramHeader] = []
    for sec_idx, sec in load_sections:
        hdr = headers[sec_idx + 1]
        flags = s.PF_R
        if sec.sh_flags & s.SHF_WRITE:
            flags |= s.PF_W
        if sec.sh_flags & s.SHF_EXECINSTR:
            flags |= s.PF_X
        filesz = 0 if sec.sh_type == s.SHT_NOBITS else len(sec.data)
        memsz = sec.mem_size if sec.mem_size is not None else filesz
        phdrs.append(s.ProgramHeader(
            p_type=s.PT_LOAD, p_flags=flags, p_offset=hdr.sh_offset,
            p_vaddr=sec.addr, p_filesz=filesz, p_memsz=memsz))

    ehdr = s.ElfHeader(
        e_entry=image.entry,
        e_phoff=s.EHDR_SIZE if phnum else 0,
        e_shoff=shoff,
        e_flags=image.e_flags(),
        e_phnum=phnum,
        e_shnum=len(headers),
        e_shstrndx=shstrndx,
    )

    out = bytearray(ehdr.pack())
    for ph in phdrs:
        out += ph.pack()
    for hdr, blob in zip(headers, blobs):
        if hdr.sh_type in (s.SHT_NULL, s.SHT_NOBITS) or not blob:
            continue
        if len(out) < hdr.sh_offset:
            out += b"\x00" * (hdr.sh_offset - len(out))
        out += blob
    if len(out) < shoff:
        out += b"\x00" * (shoff - len(out))
    for hdr in headers:
        out += hdr.pack()
    return bytes(out)


def write_program(program: Program, *, emit_attributes: bool = True) -> bytes:
    """One-shot: assembled program -> ELF bytes."""
    return write_elf(image_from_program(
        program, emit_attributes=emit_attributes))
