"""The ``.dyninst.lines`` debug-line section.

A simplified stand-in for DWARF ``.debug_line`` (which the paper lists
among the formats SymtabAPI abstracts): a sorted array of
``(u64 address, u32 line)`` records mapping text addresses to source
lines.  Optional — analysis works without it, and uses it when present
(Dyninst's opportunistic use of debug data).
"""

from __future__ import annotations

from bisect import bisect_right

LINES_SECTION = ".dyninst.lines"


def build_lines_section(line_map: dict[int, int]) -> bytes:
    out = bytearray()
    for addr in sorted(line_map):
        out += addr.to_bytes(8, "little")
        out += (line_map[addr] & 0xFFFF_FFFF).to_bytes(4, "little")
    return bytes(out)


def parse_lines_section(blob: bytes) -> dict[int, int]:
    out: dict[int, int] = {}
    for off in range(0, len(blob) - 11, 12):
        addr = int.from_bytes(blob[off:off + 8], "little")
        line = int.from_bytes(blob[off + 8:off + 12], "little")
        out[addr] = line
    return out


class LineTable:
    """Address -> source-line queries over a line map."""

    def __init__(self, line_map: dict[int, int]):
        self._addrs = sorted(line_map)
        self._map = dict(line_map)

    def __bool__(self) -> bool:
        return bool(self._addrs)

    def line_for(self, addr: int) -> int | None:
        """The source line of the marker at or before *addr*."""
        hit = self.lookup(addr)
        return hit[1] if hit else None

    def lookup(self, addr: int) -> tuple[int, int] | None:
        """(marker address, line) of the marker at or before *addr*.
        Callers with function-boundary knowledge can reject markers that
        bleed in from a preceding function (DWARF's end_sequence role).
        """
        i = bisect_right(self._addrs, addr) - 1
        if i < 0:
            return None
        a = self._addrs[i]
        return a, self._map[a]

    def exact(self, addr: int) -> int | None:
        """The line if a marker sits exactly at *addr*."""
        return self._map.get(addr)

    def addresses_for_line(self, line: int) -> list[int]:
        """Marker addresses attributed to *line* (for line breakpoints)."""
        return [a for a in self._addrs if self._map[a] == line]
