"""ProcControlAPI: debugger-style process control over the simulator."""

from .process import (
    Breakpoint, Event, EventType, ProcControlError, Process,
)

__all__ = ["Breakpoint", "Event", "EventType", "ProcControlError",
           "Process"]
