"""ProcControlAPI: OS-independent process control (paper §3.2.6).

Debugger-style control of a running mutatee: create or attach, read and
write memory and registers, insert/remove breakpoints, continue to the
next event, single-step.  On Linux this sits on ptrace; here the
"kernel debug interface" is the simulator's debug port, which has the
same shape (stop events, memory/register access, code patching).

Faithful to the paper's RISC-V finding: the debug interface provides
**no hardware single-step** ("the single-stepping functionality is not
implemented for RISC-V"), so :meth:`Process.step` emulates it by
planting temporary breakpoints at every possible successor of the
current instruction and continuing — with the measured performance cost
the §3.2.6 discussion predicts (see the single-step ablation benchmark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ReproError
from ..instruction.insn import Insn, decode_insn
from ..riscv.decoder import DecodeError
from ..sim.machine import Machine, StopEvent, StopReason
from ..symtab.symtab import Symtab

#: the 4-byte ebreak encoding used for software breakpoints
BREAK_WORD = 0x0010_0073
#: 2-byte c.ebreak, for breakpoints on compressed instructions
C_BREAK_HW = 0x9002


class EventType(enum.Enum):
    STOPPED_BREAKPOINT = "breakpoint"
    STOPPED_STEP = "single-step"
    EXITED = "exited"
    FAULTED = "faulted"
    RUNNING_LIMIT = "step-limit"


@dataclass
class Event:
    """A process-stop event delivered to the controller."""

    type: EventType
    pc: int
    exit_code: int | None = None
    detail: str | None = None


class ProcControlError(ReproError, RuntimeError):
    pass


@dataclass
class Breakpoint:
    address: int
    original: bytes
    enabled: bool = True
    hits: int = 0
    #: temporary breakpoints auto-remove at the next stop (single-step)
    temporary: bool = False


class Process:
    """One controlled mutatee process."""

    def __init__(self, machine: Machine, symtab: Symtab | None = None):
        self.machine = machine
        self.symtab = symtab
        self.breakpoints: dict[int, Breakpoint] = {}
        self._running = True

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def create(cls, symtab: Symtab, timing=None) -> "Process":
        """Launch a new process from a binary (Figure 1's
        create-and-instrument flow): loaded, stopped at entry."""
        from ..sim.timing import P550

        m = Machine(timing or P550)
        symtab.load_into(m)
        return cls(m, symtab)

    @classmethod
    def attach(cls, machine: Machine, symtab: Symtab | None = None
               ) -> "Process":
        """Attach to an already-running machine (Figure 1's attach
        flow): control begins wherever the process currently is."""
        return cls(machine, symtab)

    @property
    def pc(self) -> int:
        return self.machine.pc

    @property
    def exited(self) -> bool:
        return self.machine.exit_code is not None

    # -- memory & registers ----------------------------------------------------

    def read_memory(self, addr: int, n: int) -> bytes:
        """Read mutatee memory, transparently masking breakpoint bytes
        (the debugger illusion: the mutator sees original code)."""
        data = bytearray(self.machine.read_mem(addr, n))
        for bp in self.breakpoints.values():
            if not bp.enabled:
                continue
            lo = max(addr, bp.address)
            hi = min(addr + n, bp.address + len(bp.original))
            if lo < hi:
                off = lo - addr
                src = lo - bp.address
                data[off:off + hi - lo] = bp.original[src:src + hi - lo]
        return bytes(data)

    def write_memory(self, addr: int, data: bytes) -> None:
        """Write mutatee memory.  Writes overlapping a planted
        breakpoint update the breakpoint's *saved original* bytes and
        keep the trap in place — the debugger illusion in the write
        direction."""
        n = len(data)
        overlaps = [
            bp for bp in self.breakpoints.values()
            if bp.enabled and addr < bp.address + len(bp.original)
            and addr + n > bp.address
        ]
        if not overlaps:
            self.machine.write_mem(addr, data)
            return
        self.machine.write_mem(addr, data)
        for bp in overlaps:
            lo = max(addr, bp.address)
            hi = min(addr + n, bp.address + len(bp.original))
            original = bytearray(bp.original)
            original[lo - bp.address:hi - bp.address] = \
                data[lo - addr:hi - addr]
            bp.original = bytes(original)
            # re-plant the trap over whatever was just written
            word = (C_BREAK_HW.to_bytes(2, "little")
                    if len(bp.original) == 2
                    else BREAK_WORD.to_bytes(4, "little"))
            self.machine.write_mem(bp.address, word)

    def get_register(self, n_or_name: int | str) -> int:
        n = self._regnum(n_or_name)
        return self.machine.get_reg(n)

    def set_register(self, n_or_name: int | str, value: int) -> None:
        self.machine.set_reg(self._regnum(n_or_name), value)

    @staticmethod
    def _regnum(n_or_name: int | str) -> int:
        if isinstance(n_or_name, int):
            return n_or_name
        from ..riscv.registers import lookup

        return lookup(n_or_name).number

    # -- breakpoints ---------------------------------------------------------------

    def insert_breakpoint(self, addr: int, temporary: bool = False
                          ) -> Breakpoint:
        """Plant an ebreak at *addr* (c.ebreak over compressed
        instructions so following code is undisturbed)."""
        if addr in self.breakpoints:
            bp = self.breakpoints[addr]
            bp.temporary = bp.temporary and temporary
            return bp
        insn = self._decode_at(addr)
        size = insn.length if insn is not None else 4
        original = self.machine.read_mem(addr, size)
        if size == 2:
            self.machine.write_mem(addr, C_BREAK_HW.to_bytes(2, "little"))
        else:
            self.machine.write_mem(addr, BREAK_WORD.to_bytes(4, "little"))
        bp = Breakpoint(addr, original, temporary=temporary)
        self.breakpoints[addr] = bp
        return bp

    def remove_breakpoint(self, addr: int) -> None:
        bp = self.breakpoints.pop(addr, None)
        if bp is not None and bp.enabled:
            self.machine.write_mem(addr, bp.original)

    def clear_temporary_breakpoints(self) -> None:
        for addr in [a for a, b in self.breakpoints.items() if b.temporary]:
            self.remove_breakpoint(addr)

    def _decode_at(self, addr: int) -> Insn | None:
        try:
            raw = self.machine.read_mem(addr, 4)
        except Exception:
            try:
                raw = self.machine.read_mem(addr, 2)
            except Exception:
                return None
        try:
            return decode_insn(raw, 0, addr)
        except DecodeError:
            return None

    # -- execution ---------------------------------------------------------------------

    def continue_to_event(self, max_steps: int | None = None) -> Event:
        """Resume until the next debugger-visible event."""
        if self.exited:
            raise ProcControlError("process has exited")
        # If stopped exactly on a breakpoint, step over it first.
        if self.machine.pc in self.breakpoints:
            ev = self._step_over_breakpoint()
            if ev is not None:
                return ev
        stop = self.machine.run(max_steps)
        return self._deliver(stop)

    def _step_over_breakpoint(self) -> Event | None:
        """Execute the original instruction under a breakpoint at pc."""
        addr = self.machine.pc
        bp = self.breakpoints[addr]
        self.machine.write_mem(addr, bp.original)
        stop = self.machine.step()
        if addr in self.breakpoints and bp.enabled:
            word = (C_BREAK_HW.to_bytes(2, "little")
                    if len(bp.original) == 2
                    else BREAK_WORD.to_bytes(4, "little"))
            self.machine.write_mem(addr, word)
        if stop is not None:
            return self._deliver(stop)
        return None

    def _deliver(self, stop: StopEvent) -> Event:
        if stop.reason is StopReason.EXITED:
            self._running = False
            return Event(EventType.EXITED, stop.pc,
                         exit_code=stop.exit_code)
        if stop.reason is StopReason.BREAKPOINT:
            bp = self.breakpoints.get(stop.pc)
            if bp is not None:
                bp.hits += 1
                was_temp = bp.temporary
                self.clear_temporary_breakpoints()
                return Event(
                    EventType.STOPPED_STEP if was_temp
                    else EventType.STOPPED_BREAKPOINT, stop.pc)
            return Event(EventType.STOPPED_BREAKPOINT, stop.pc,
                         detail="ebreak not planted by this controller")
        if stop.reason is StopReason.STEPS_EXHAUSTED:
            return Event(EventType.RUNNING_LIMIT, stop.pc)
        return Event(EventType.FAULTED, stop.pc, detail=stop.fault)

    def continue_until(self, predicate, max_events: int = 100_000) -> Event:
        """Conditional-breakpoint helper: resume repeatedly, returning
        only when *predicate(process, event)* holds (or the process
        exits/faults).  The predicate runs mutator-side at every stop —
        how debuggers implement conditional breakpoints over plain
        traps."""
        for _ in range(max_events):
            event = self.continue_to_event()
            if event.type in (EventType.EXITED, EventType.FAULTED):
                return event
            if predicate(self, event):
                return event
        raise ProcControlError(
            f"condition not met within {max_events} events")

    # -- single-step (emulated, §3.2.6) ---------------------------------------------------

    def possible_successors(self, addr: int) -> list[int]:
        """Static successor set of the instruction at *addr* (where a
        temporary breakpoint must go to emulate one step)."""
        insn = self._decode_with_masking(addr)
        if insn is None:
            return []
        succs: list[int] = []
        if insn.is_conditional_branch:
            succs = [insn.direct_target(), insn.next_address]
        elif insn.is_jal:
            succs = [insn.direct_target()]
        elif insn.is_jalr:
            base = self.get_register(insn.raw.fields["rs1"])
            target = (base + insn.raw.fields.get("imm", 0)) & ~1
            succs = [target]
        elif insn.mnemonic == "ebreak":
            succs = [insn.next_address]
        else:
            succs = [insn.next_address]
        return [s for s in succs if s is not None]

    def _decode_with_masking(self, addr: int) -> Insn | None:
        raw = self.read_memory(addr, 4)
        try:
            return decode_insn(raw, 0, addr)
        except DecodeError:
            return None

    def step(self) -> Event:
        """Emulated single-step: temporary breakpoints at every possible
        successor, continue, clean up (no PTRACE_SINGLESTEP on RISC-V).
        """
        if self.exited:
            raise ProcControlError("process has exited")
        succs = self.possible_successors(self.machine.pc)
        if not succs:
            raise ProcControlError(
                f"cannot determine successors at {self.machine.pc:#x}")
        planted: list[int] = []
        for s in succs:
            if s not in self.breakpoints:
                self.insert_breakpoint(s, temporary=True)
                planted.append(s)
        try:
            return self.continue_to_event(max_steps=10)
        finally:
            for s in planted:
                if s in self.breakpoints and self.breakpoints[s].temporary:
                    self.remove_breakpoint(s)
