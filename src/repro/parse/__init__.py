"""ParseAPI: CFG construction via traversal parsing, RISC-V branch
classification, jump-table analysis, gap parsing, and loop analysis."""

from .branch_classify import Classification, ClassifyContext, classify
from .cfg import Block, Edge, EdgeType, Function, INTERPROC_EDGES
from .gaps import find_gaps, looks_like_prologue, parse_gaps
from .jumptable import analyze_jump_table
from .loops import Loop, dominators, function_digraph, natural_loops
from .parallel import parse_binary_parallel
from .parser import CodeObject, parse_binary

__all__ = [
    "Classification", "ClassifyContext", "classify",
    "Block", "Edge", "EdgeType", "Function", "INTERPROC_EDGES",
    "find_gaps", "looks_like_prologue", "parse_gaps",
    "analyze_jump_table",
    "Loop", "dominators", "function_digraph", "natural_loops",
    "parse_binary_parallel",
    "CodeObject", "parse_binary",
]
