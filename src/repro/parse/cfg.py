"""Control-flow-graph model for ParseAPI: blocks, typed edges, functions.

Mirrors Dyninst's ParseAPI object model: a :class:`CodeObject` owns all
basic blocks (shared between functions when tail calls or overlapping
parses warrant it); each :class:`Function` references the blocks reached
from its entry.  Edges carry the classification the RISC-V branch
analysis produced (§3.1.3/§3.2.3): the same ``jalr`` opcode becomes a
CALL, RET, DIRECT jump, TAILCALL, or INDIRECT (jump-table) edge depending
on context.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..instruction.insn import Insn


class EdgeType(enum.Enum):
    """Edge classifications (Dyninst ParseAPI edge types)."""

    CALL = "call"
    CALL_FT = "call-fallthrough"    # call site -> next instruction
    COND_TAKEN = "cond-taken"
    COND_NOT_TAKEN = "cond-not-taken"
    DIRECT = "direct"               # unconditional jump
    INDIRECT = "indirect"           # jump table / unresolved pointer
    RET = "return"
    FALLTHROUGH = "fallthrough"
    TAILCALL = "tailcall"


#: Edge types whose targets are *interprocedural* (leave the function).
INTERPROC_EDGES = frozenset(
    {EdgeType.CALL, EdgeType.RET, EdgeType.TAILCALL})


@dataclass
class Edge:
    """One control-flow edge.

    ``target`` is the destination address (None for returns and
    unresolved indirect flow).  ``resolved`` is False when the analysis
    could not determine where control goes (paper: "treats the jalr as
    unresolvable").
    """

    src: "Block"
    kind: EdgeType
    target: int | None = None
    resolved: bool = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = f"{self.target:#x}" if self.target is not None else "?"
        return f"<Edge {self.src.start:#x} -{self.kind.value}-> {t}>"


class Block:
    """A basic block: straight-line instructions, one entry, one exit."""

    __slots__ = ("start", "insns", "out_edges", "in_edges")

    def __init__(self, start: int, insns: list[Insn] | None = None):
        self.start = start
        self.insns: list[Insn] = insns if insns is not None else []
        self.out_edges: list[Edge] = []
        self.in_edges: list[Edge] = []

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        if not self.insns:
            return self.start
        last = self.insns[-1]
        return last.address + last.length

    @property
    def last(self) -> Insn | None:
        return self.insns[-1] if self.insns else None

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def instruction_at(self, addr: int) -> Insn | None:
        for insn in self.insns:
            if insn.address == addr:
                return insn
        return None

    def targets(self, *kinds: EdgeType) -> list[int]:
        return [e.target for e in self.out_edges
                if e.target is not None and (not kinds or e.kind in kinds)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Block {self.start:#x}..{self.end:#x} ({len(self.insns)} insns)>"


@dataclass
class Function:
    """A parsed function: entry block plus intraprocedurally reachable
    blocks."""

    entry: int
    name: str
    blocks: dict[int, Block] = field(default_factory=dict)
    #: addresses this function calls (CALL edges)
    callees: set[int] = field(default_factory=set)
    #: addresses this function tail-calls into
    tail_callees: set[int] = field(default_factory=set)
    #: True when at least one RET edge exists
    returns: bool = False
    #: jalr sites whose targets could not be determined symbolically
    unresolved: list[int] = field(default_factory=list)
    #: jalr sites resolved as jump tables: site -> sorted target list
    jump_tables: dict[int, list[int]] = field(default_factory=dict)

    @property
    def entry_block(self) -> Block:
        return self.blocks[self.entry]

    @property
    def size(self) -> int:
        """Bytes spanned by the function's blocks."""
        if not self.blocks:
            return 0
        return max(b.end for b in self.blocks.values()) - min(
            b.start for b in self.blocks.values())

    def block_at(self, addr: int) -> Block | None:
        """The block containing *addr* (not necessarily starting there)."""
        for b in self.blocks.values():
            if b.contains(addr):
                return b
        return None

    def instructions(self):
        for b in sorted(self.blocks.values(), key=lambda b: b.start):
            yield from b.insns

    def exit_blocks(self) -> list[Block]:
        """Blocks ending in a RET or TAILCALL edge (function exits)."""
        return [
            b for b in self.blocks.values()
            if any(e.kind in (EdgeType.RET, EdgeType.TAILCALL)
                   for e in b.out_edges)
        ]

    def call_sites(self) -> list[Block]:
        return [b for b in self.blocks.values()
                if any(e.kind is EdgeType.CALL for e in b.out_edges)]

    def intraproc_successors(self, block: Block) -> list[int]:
        """Successor block addresses within this function."""
        out = []
        for e in block.out_edges:
            if e.kind in (EdgeType.COND_TAKEN, EdgeType.COND_NOT_TAKEN,
                          EdgeType.DIRECT, EdgeType.FALLTHROUGH,
                          EdgeType.CALL_FT, EdgeType.INDIRECT):
                if e.target is not None and e.target in self.blocks:
                    out.append(e.target)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Function {self.name!r} @ {self.entry:#x}, "
                f"{len(self.blocks)} blocks>")
