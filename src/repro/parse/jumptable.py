"""Jump-table analysis for unresolved ``jalr`` instructions (§3.2.3).

Recovers the target set of compiler-generated indirect jumps of the
canonical shape (GCC/LLVM switch lowering, and what MiniC emits)::

    bgeu  idx, BOUND, default      ; bounds check (constant bound)
    slli  sidx, idx, 3             ; scale by entry size
    auipc base, %hi(table)         ; la base, table
    addi  base, base, %lo(table)
    add   p, base, sidx
    ld    t, 0(p)
    jalr  x0, 0(t)                 ; the jump

The analysis is a pattern-directed backward slice over the decoded
window:

1. find the reaching ``ld`` that defines the jump register — its source
   is the table;
2. decompose the load address into (constant base) + (scaled index) via
   constant resolution on each addend;
3. find the entry scale from the ``slli`` defining the index;
4. find the table extent from a dominating unsigned bounds check with a
   constant bound; when none is found, fall back to scanning entries
   while they point into code (bounded);
5. read the entries through the memory oracle and validate each target.

Failure at any step returns None and the jalr stays unresolvable —
Dyninst's conservative behaviour.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..dataflow.constprop import resolve_register
from ..instruction.insn import Insn
from ..riscv.registers import Register, xreg
from ..semantics import register_defs

#: hard cap on enumerated entries when no bounds check is found
MAX_SCAN_ENTRIES = 512

_LOADS = {"ld": 8, "lw": 4, "lwu": 4}


def _defines(insn: Insn, reg: Register) -> bool:
    return ("x", reg.number) in register_defs(insn.raw)


def _find_def(window: Sequence[Insn], before: int, reg: Register
              ) -> tuple[int, Insn] | None:
    for i in range(before - 1, -1, -1):
        if _defines(window[i], reg):
            return i, window[i]
    return None


def analyze_jump_table(
    window: Sequence[Insn],
    index: int,
    jump_reg: Register,
    is_code: Callable[[int], bool],
    mem_reader: Callable[[int, int], int | None],
) -> list[int] | None:
    """Enumerate jump-table targets for ``window[index]`` (a jalr through
    *jump_reg*), or None when the pattern cannot be proven."""
    found = _find_def(window, index, jump_reg)
    if found is None:
        return None
    load_i, load = found
    if load.mnemonic not in _LOADS:
        return None
    entry_size = _LOADS[load.mnemonic]
    disp = load.raw.fields.get("imm", 0)
    addr_reg = xreg(load.raw.fields["rs1"])

    base, index_reg, shift = _split_address(window, load_i, addr_reg)
    if base is None:
        return None
    base += disp
    if shift is not None and (1 << shift) != entry_size:
        # scale does not match entry size; distrust the pattern
        return None

    bound = _find_bound(window, load_i, index_reg)
    return _read_table(base, entry_size, bound, is_code, mem_reader)


def _split_address(window: Sequence[Insn], load_i: int,
                   addr_reg: Register):
    """Decompose the table address register into
    (constant base, pre-scale index register, scale shift).

    Handles ``add p, base, sidx`` with ``slli sidx, idx, k`` (either
    operand order), and the degenerate fully-constant address.
    """
    const = resolve_register(window, load_i, addr_reg)
    if const is not None:
        return const, None, None

    found = _find_def(window, load_i, addr_reg)
    if found is None:
        return None, None, None
    add_i, add = found
    if add.mnemonic not in ("add", "sh1add", "sh2add", "sh3add"):
        return None, None, None
    f = add.raw.fields
    rs1, rs2 = xreg(f["rs1"]), xreg(f["rs2"])

    if add.mnemonic.startswith("sh"):
        shift = int(add.mnemonic[2])
        base = resolve_register(window, add_i, rs2)
        return base, rs1, shift

    # Try each operand as the constant base; the other is the scaled
    # index.
    for base_reg, idx_reg in ((rs1, rs2), (rs2, rs1)):
        base = resolve_register(window, add_i, base_reg)
        if base is None:
            continue
        sfound = _find_def(window, add_i, idx_reg)
        if sfound is not None and sfound[1].mnemonic == "slli":
            shift = sfound[1].raw.fields["shamt"]
            pre = xreg(sfound[1].raw.fields["rs1"])
            return base, pre, shift
        return base, idx_reg, None
    return None, None, None


def _find_bound(window: Sequence[Insn], before: int,
                index_reg: Register | None) -> int | None:
    """Find a dominating unsigned bounds check ``bgeu idx, bound`` /
    ``bltu idx, bound`` with a resolvable constant bound."""
    if index_reg is None:
        return None
    for i in range(before - 1, -1, -1):
        insn = window[i]
        if insn.mnemonic not in ("bgeu", "bltu"):
            # A redefinition of the index register before we find the
            # check breaks the correspondence.
            if _defines(insn, index_reg) and insn.mnemonic != "slli":
                return None
            continue
        f = insn.raw.fields
        if xreg(f["rs1"]) != index_reg:
            continue
        bound = resolve_register(window, i, xreg(f["rs2"]))
        if bound is not None and 0 < bound <= MAX_SCAN_ENTRIES:
            return bound
        return None
    return None


def _read_table(base: int, entry_size: int, bound: int | None,
                is_code, mem_reader) -> list[int] | None:
    count = bound if bound is not None else MAX_SCAN_ENTRIES
    targets: list[int] = []
    for i in range(count):
        raw = mem_reader(base + i * entry_size, entry_size)
        if raw is None:
            if bound is not None:
                return None  # table extends past initialised data
            break
        if entry_size == 4:
            # 32-bit entries may be pc-relative in some schemes; we only
            # support absolute here.
            raw &= 0xFFFF_FFFF
        if not is_code(raw):
            if bound is not None:
                return None  # a provably-sized table must be all code
            break
        targets.append(raw)
    if not targets:
        return None
    return sorted(set(targets))
