"""Gap parsing: speculative discovery of code the traversal missed.

Traversal parsing cannot reach code that is only entered through
unresolvable pointers (paper §2.1: "parsing may leave gaps in the binary
where code may be present but has not yet been identified").  Dyninst
attacks gaps with dataflow and ML-based speculation; here we implement
the classic prologue-scan heuristic: walk unclaimed bytes of code
regions looking for a function-prologue idiom, and parse speculatively
from each hit.

Recognised prologue idioms (what GCC/LLVM/MiniC emit):

* ``addi sp, sp, -N``  (stack frame allocation)
* ``c.addi16sp sp, -N`` / ``c.addi sp, -N`` (compressed forms)
* ``sd ra, K(sp)`` as the very first instruction (leaf-ish frames)
"""

from __future__ import annotations

from .. import telemetry
from ..instruction.insn import Insn, decode_insn
from ..riscv.decoder import DecodeError


def looks_like_prologue(insn: Insn) -> bool:
    f = insn.raw.fields
    mn = insn.mnemonic
    if mn == "addi" and f.get("rd") == 2 and f.get("rs1") == 2 \
            and f.get("imm", 0) < 0:
        return True
    if mn == "sd" and f.get("rs2") == 1 and f.get("rs1") == 2:
        return True
    return False


def find_gaps(code_object) -> list[tuple[int, int]]:
    """Unclaimed [lo, hi) ranges within executable regions."""
    covered = code_object.covered_ranges()
    gaps: list[tuple[int, int]] = []
    for region in code_object.symtab.code_regions():
        pos = region.addr
        end = region.addr + len(region.data)
        for lo, hi in covered:
            if hi <= pos or lo >= end:
                continue
            if lo > pos:
                gaps.append((pos, min(lo, end)))
            pos = max(pos, hi)
        if pos < end:
            gaps.append((pos, end))
    return gaps


def scan_gap_for_entries(code_object, lo: int, hi: int) -> list[int]:
    """Candidate function entries inside one gap."""
    region = code_object.symtab.region_at(lo)
    if region is None:
        return []
    entries: list[int] = []
    pc = (lo + 1) & ~1  # instruction alignment
    while pc < hi - 1:
        try:
            insn = decode_insn(region.data, pc - region.addr, pc)
        except DecodeError:
            pc += 2
            continue
        if looks_like_prologue(insn):
            entries.append(pc)
            break  # one speculative entry per gap; parsing reveals more
        pc += insn.length
    return entries


def parse_gaps(code_object, max_rounds: int = 16) -> int:
    """Iteratively discover and parse gap functions.  Returns the number
    of functions found speculatively."""
    rec = telemetry.current()
    found = 0
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        new_entries: list[int] = []
        for lo, hi in find_gaps(code_object):
            if hi - lo < 4:
                continue  # padding
            if rec.enabled:
                rec.count("parse.gap.ranges_scanned")
                rec.count("parse.gap.bytes_scanned", hi - lo)
            new_entries.extend(scan_gap_for_entries(code_object, lo, hi))
        new_entries = [a for a in new_entries
                       if a not in code_object.functions]
        if not new_entries:
            break
        for addr in new_entries:
            code_object._names.setdefault(addr, f"gap_{addr:x}")
            fn = code_object._parse_function(addr)
            code_object.functions[addr] = fn
            found += 1
            for callee in sorted(fn.callees | fn.tail_callees):
                if callee not in code_object.functions and \
                        code_object.symtab.is_code(callee):
                    code_object._names.setdefault(callee, f"func_{callee:x}")
                    code_object.functions[callee] = \
                        code_object._parse_function(callee)
                    found += 1
    if rec.enabled:
        rec.count("parse.gap.rounds", rounds)
        rec.count("parse.gap.functions", found)
    return found
