"""Parallel function parsing (paper §2.1: "a fast parallel algorithm").

Dyninst parses functions concurrently with a work-stealing scheduler; the
Python port mirrors the structure with a thread pool over independent
function entries.  Each worker parses into a *private* CodeObject (no
shared-state locking on the hot path), and the results are merged — the
same partition/merge design, even though CPython's GIL limits the
wall-clock win (the ablation benchmark reports honest numbers).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..symtab.symtab import Symtab
from .parser import CodeObject


def parse_binary_parallel(symtab: Symtab, workers: int = 4,
                          gap_parsing: bool = True) -> CodeObject:
    """Parse all symbol-known functions across *workers* threads and
    merge into one CodeObject."""
    entries = [(s.address, s.name) for s in symtab.function_symbols()]
    if symtab.is_code(symtab.entry) and not any(
            a == symtab.entry for a, _ in entries):
        entries.append((symtab.entry, "_entry"))
    if not entries:
        return CodeObject(symtab).parse(gap_parsing=gap_parsing)

    def parse_one(item: tuple[int, str]) -> CodeObject:
        addr, name = item
        co = CodeObject(symtab)
        co._names[addr] = name
        fn = co._parse_function(addr)
        co.functions[addr] = fn
        # Chase locally-discovered callees so each unit is self-contained.
        work = sorted(fn.callees | fn.tail_callees)
        while work:
            a = work.pop()
            if a in co.functions or not symtab.is_code(a):
                continue
            sub = co._parse_function(a)
            co.functions[a] = sub
            work.extend(sorted(sub.callees | sub.tail_callees))
        return co

    merged = CodeObject(symtab)
    for addr, name in entries:
        merged._names.setdefault(addr, name)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(parse_one, entries))

    for co in results:
        for addr, fn in co.functions.items():
            merged.functions.setdefault(addr, fn)
        for start, block in co.blocks.items():
            if start not in merged.blocks:
                merged.blocks[start] = block
    merged._block_starts = sorted(merged.blocks)
    if gap_parsing:
        from .gaps import parse_gaps

        parse_gaps(merged)
    return merged
