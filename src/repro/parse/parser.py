"""ParseAPI traversal parsing: binary -> CFG (paper §2.1, §3.2.3).

Parsing starts from known entry points — the program entry point and
function symbols — and follows control-flow transfers, discovering new
function entries at call sites (and tail-call targets).  Blocks are
shared in a :class:`CodeObject`-wide map and split when a later-found
edge lands mid-block.  Regions the traversal never reaches are *gaps*;
:mod:`repro.parse.gaps` scans them for plausible prologues and parses
speculatively.
"""

from __future__ import annotations

from bisect import bisect_right

from .. import telemetry
from ..instruction.insn import Insn, decode_insn
from ..riscv.decoder import DecodeError
from ..symtab.symtab import Symtab
from .branch_classify import Classification, ClassifyContext, classify
from .cfg import Block, Edge, EdgeType, Function


class CodeObject:
    """All parsed code of one binary: the global block map plus the
    discovered functions."""

    def __init__(self, symtab: Symtab):
        self.symtab = symtab
        self.functions: dict[int, Function] = {}
        self.blocks: dict[int, Block] = {}
        self._block_starts: list[int] = []
        self._names: dict[int, str] = {}
        self._insn_cache: dict[int, Insn] = {}

    # -- public API -------------------------------------------------------

    def parse(self, *, gap_parsing: bool = True) -> "CodeObject":
        """Parse from all known entry points (symbols + program entry),
        then from call-discovered entries, then (optionally) gaps."""
        with telemetry.current().span("parse.binary"):
            self._parse(gap_parsing=gap_parsing)
        rec = telemetry.current()
        if rec.enabled:
            rec.count("parse.functions", len(self.functions))
            rec.count("parse.blocks", len(self.blocks))
            rec.count("parse.instructions",
                      sum(len(b.insns) for b in self.blocks.values()))
        return self

    def _parse(self, *, gap_parsing: bool) -> None:
        entries: list[tuple[int, str]] = []
        for sym in self.symtab.function_symbols():
            entries.append((sym.address, sym.name))
        if self.symtab.is_code(self.symtab.entry) and not any(
                a == self.symtab.entry for a, _ in entries):
            entries.append((self.symtab.entry, "_entry"))
        for addr, name in entries:
            self._names.setdefault(addr, name)
        work = [a for a, _ in entries]
        while work:
            addr = work.pop()
            if addr in self.functions or not self.symtab.is_code(addr):
                continue
            fn = self._parse_function(addr)
            self.functions[addr] = fn
            for callee in sorted(fn.callees | fn.tail_callees):
                if callee not in self.functions:
                    work.append(callee)
        if gap_parsing:
            from .gaps import parse_gaps

            with telemetry.current().span("parse.gaps"):
                parse_gaps(self)
        self.finalize_in_edges()

    def finalize_in_edges(self) -> None:
        """(Re)compute in_edges on every block from the out_edges."""
        for b in self.blocks.values():
            b.in_edges = []
        for b in self.blocks.values():
            for e in b.out_edges:
                if e.target is not None and e.target in self.blocks:
                    self.blocks[e.target].in_edges.append(e)

    def function_at(self, addr: int) -> Function | None:
        return self.functions.get(addr)

    def function_by_name(self, name: str) -> Function | None:
        for fn in self.functions.values():
            if fn.name == name:
                return fn
        return None

    def function_containing(self, addr: int) -> Function | None:
        for fn in self.functions.values():
            if fn.block_at(addr) is not None:
                return fn
        return None

    def block_containing(self, addr: int) -> Block | None:
        i = bisect_right(self._block_starts, addr) - 1
        while i >= 0:
            b = self.blocks[self._block_starts[i]]
            if b.contains(addr):
                return b
            if b.end <= addr and b.insns:
                return None
            i -= 1
        return None

    def covered_ranges(self) -> list[tuple[int, int]]:
        """Sorted, merged [lo, hi) address ranges claimed by blocks."""
        spans = sorted((b.start, b.end) for b in self.blocks.values())
        merged: list[tuple[int, int]] = []
        for lo, hi in spans:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    # -- function-level parse ------------------------------------------------

    def _name_for(self, addr: int) -> str:
        return self._names.get(addr, f"func_{addr:x}")

    #: how far back (in instructions) slicing-based classification may
    #: look; Dyninst's analyses are similarly bounded
    WINDOW_LIMIT = 256

    def _parse_function(self, entry: int) -> Function:
        with telemetry.current().span("parse.function"):
            return self._parse_function_inner(entry)

    def _parse_function_inner(self, entry: int) -> Function:
        fn = Function(entry, self._name_for(entry))
        work = [entry]
        known_entries = frozenset(
            set(self.functions) | set(self._names) - {entry})
        # incrementally maintained, address-sorted instruction window
        window: list[Insn] = []
        while work:
            addr = work.pop()
            if addr in fn.blocks:
                continue
            block = self.blocks.get(addr)
            if block is None:
                container = self.block_containing(addr)
                if container is not None and container.start != addr:
                    block = self._split(container, addr)
                    if block is None:
                        continue  # misaligned into existing code; skip
                    # The container may belong to this function already.
                else:
                    block = self._decode_block(addr, fn)
                    if block is None:
                        continue
            if block.start not in fn.blocks:
                fn.blocks[block.start] = block
                _window_insert(window, block.insns)
            if not block.out_edges and block.insns:
                self._classify_terminal(block, fn, known_entries, window)
            self._absorb_edges(block, fn, work)
        return fn

    def _absorb_edges(self, block: Block, fn: Function,
                      work: list[int]) -> None:
        for e in block.out_edges:
            if e.kind is EdgeType.CALL:
                if e.target is not None:
                    fn.callees.add(e.target)
            elif e.kind is EdgeType.TAILCALL:
                if e.target is not None:
                    fn.tail_callees.add(e.target)
            elif e.kind is EdgeType.RET:
                fn.returns = True
            elif e.target is not None:
                if e.target not in fn.blocks:
                    work.append(e.target)
        term = block.last
        if term is not None and term.is_jalr:
            unres = any(not e.resolved for e in block.out_edges)
            table = [e.target for e in block.out_edges
                     if e.kind is EdgeType.INDIRECT and e.target is not None]
            if table:
                fn.jump_tables[term.address] = sorted(table)
            elif unres and term.address not in fn.unresolved:
                fn.unresolved.append(term.address)

    # -- block construction ---------------------------------------------------

    def _register_block(self, block: Block) -> None:
        self.blocks[block.start] = block
        from bisect import insort

        insort(self._block_starts, block.start)

    def _decode_block(self, addr: int, fn: Function) -> Block | None:
        region = self.symtab.region_at(addr)
        if region is None or not region.executable:
            return None
        block = Block(addr)
        self._register_block(block)
        pc = addr
        while True:
            if pc != addr and (pc in self.blocks):
                # Ran into an existing block: fall through into it.
                block.out_edges.append(
                    Edge(block, EdgeType.FALLTHROUGH, pc))
                break
            if not region.contains(pc):
                break
            insn = self._insn_cache.get(pc)
            if insn is None:
                off = pc - region.addr
                try:
                    insn = decode_insn(region.data, off, pc)
                except DecodeError:
                    break  # undecodable: end the block (a gap follows)
                self._insn_cache[pc] = insn
            block.insns.append(insn)
            pc = insn.next_address
            if insn.writes_pc or insn.mnemonic == "ebreak":
                break
            if insn.mnemonic == "ecall":
                # Syscalls fall through (exit is not statically known).
                continue
        return block if block.insns else None

    def _split(self, container: Block, addr: int) -> Block | None:
        """Split *container* at *addr* (must be an instruction boundary)."""
        idx = next((i for i, insn in enumerate(container.insns)
                    if insn.address == addr), None)
        if idx is None:
            return None  # overlapping decode; caller parses fresh
        tail = Block(addr, container.insns[idx:])
        container.insns = container.insns[:idx]
        tail.out_edges = container.out_edges
        for e in tail.out_edges:
            e.src = tail
        container.out_edges = [Edge(container, EdgeType.FALLTHROUGH, addr)]
        self._register_block(tail)
        # Fix function membership for every function holding the container.
        for fn in self.functions.values():
            if container.start in fn.blocks:
                fn.blocks[tail.start] = tail
        return tail

    # -- terminal classification ----------------------------------------------

    def _mem_read(self, addr: int, size: int) -> int | None:
        try:
            blob = self.symtab.read(addr, size)
        except KeyError:
            return None
        if len(blob) < size:
            return None
        return int.from_bytes(blob, "little")

    def _classify_terminal(self, block: Block, fn: Function,
                           known_entries: frozenset[int],
                           window: list[Insn] | None = None) -> None:
        term = block.last
        assert term is not None
        nxt = block.end

        if term.is_conditional_branch:
            target = term.direct_target()
            block.out_edges.append(
                Edge(block, EdgeType.COND_TAKEN, target))
            block.out_edges.append(
                Edge(block, EdgeType.COND_NOT_TAKEN, nxt))
            return
        if term.mnemonic == "ebreak":
            return  # trap: no static successors
        if not (term.is_jal or term.is_jalr):
            # Block ended by running into another block or a region end.
            if not block.out_edges and self.symtab.is_code(nxt):
                block.out_edges.append(
                    Edge(block, EdgeType.FALLTHROUGH, nxt))
            return

        if window is None:
            window = self._function_window(fn, block)
        win, idx = _window_slice(window, block.insns[-1].address,
                                 self.WINDOW_LIMIT)
        ctx = ClassifyContext(
            window=win,
            index=idx,
            current_entry=fn.entry,
            known_entries=known_entries,
            is_code=self.symtab.is_code,
            mem_reader=self._mem_read,
            in_current=lambda a: fn.block_at(a) is not None,
        )
        c = classify(term, ctx)
        rec = telemetry.current()
        if rec.enabled:
            rec.count(f"parse.classify.{'jal' if term.is_jal else 'jalr'}"
                      f".{_classification_outcome(c)}")
        self._edges_from_classification(block, c, nxt)

    def _function_window(self, fn: Function, block: Block) -> list[Insn]:
        """Linear, address-ordered instruction window for slicing: all
        instructions of the function parsed so far plus this block."""
        seen = {}
        for b in fn.blocks.values():
            for insn in b.insns:
                seen[insn.address] = insn
        for insn in block.insns:
            seen[insn.address] = insn
        window = [seen[a] for a in sorted(seen) if a <= block.insns[-1].address]
        return window

    def _edges_from_classification(self, block: Block, c: Classification,
                                   nxt: int) -> None:
        if c.kind is EdgeType.CALL:
            block.out_edges.append(
                Edge(block, EdgeType.CALL, c.target, c.resolved))
            if self.symtab.is_code(nxt):
                block.out_edges.append(Edge(block, EdgeType.CALL_FT, nxt))
        elif c.kind is EdgeType.INDIRECT and c.table_targets:
            for t in c.table_targets:
                block.out_edges.append(Edge(block, EdgeType.INDIRECT, t))
        else:
            block.out_edges.append(
                Edge(block, c.kind, c.target, c.resolved))


def _classification_outcome(c: Classification) -> str:
    """Telemetry bucket for one §3.2.3 jal/jalr disambiguation."""
    if c.kind is EdgeType.INDIRECT:
        return "jump_table" if c.table_targets else "unresolved"
    if not c.resolved:
        return "unresolved"
    return {
        EdgeType.CALL: "call",
        EdgeType.RET: "return",
        EdgeType.TAILCALL: "tail_call",
    }.get(c.kind, "jump")


def _window_insert(window: list[Insn], insns: list[Insn]) -> None:
    """Insert a block's (contiguous, sorted) instructions into the
    address-sorted window."""
    if not insns:
        return
    from bisect import bisect_left

    pos = bisect_left(window, insns[0].address,
                      key=lambda i: i.address)
    if pos < len(window) and window[pos].address == insns[0].address:
        return  # already present (split of a block this parse owns)
    window[pos:pos] = insns


def _window_slice(window: list[Insn], terminal_addr: int,
                  limit: int) -> tuple[list[Insn], int]:
    """The bounded backward window ending at *terminal_addr*, plus the
    terminal's index within it."""
    from bisect import bisect_right

    end = bisect_right(window, terminal_addr, key=lambda i: i.address)
    start = max(0, end - limit)
    return window[start:end], end - start - 1


def parse_binary(symtab: Symtab, *, gap_parsing: bool = True) -> CodeObject:
    """Convenience: parse a binary's full CFG."""
    return CodeObject(symtab).parse(gap_parsing=gap_parsing)
