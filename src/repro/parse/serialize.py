"""CFG snapshots: serialize a parsed :class:`CodeObject`, revive it
without re-parsing.

The traversal parse — gap scanning, jal/jalr classification, jump-table
slicing — is a pure function of the binary's bytes, so its result can be
stored once and revived for every later session against the same image
(the content-addressed artifact store, :mod:`repro.artifacts`).  A
snapshot records the *shape* of the analysis: block extents, typed
edges, function membership, jump tables, discovered names.  Instruction
objects are not serialized; revival re-decodes them from the binary's
own bytes (decoding is deterministic and two orders of magnitude
cheaper than classification), so a snapshot can never disagree with the
image it is applied to about what the instructions *are* — only the
control-flow facts travel.

Snapshots are JSON-serializable dicts under the ``repro.cfg/1`` schema.
Revival validates the schema and raises :class:`CfgSnapshotError` on
anything malformed; callers (the artifact store) treat that as a cache
miss, never an error.
"""

from __future__ import annotations

from ..errors import ReproError
from ..instruction.insn import decode_insn
from ..riscv.decoder import DecodeError
from ..symtab.symtab import Symtab
from .cfg import Block, Edge, EdgeType, Function
from .parser import CodeObject

#: snapshot schema identifier (bump on incompatible change)
CFG_SCHEMA = "repro.cfg/1"


class CfgSnapshotError(ReproError, ValueError):
    """A CFG snapshot is malformed or does not match the binary."""


def cfg_to_snapshot(co: CodeObject) -> dict:
    """Serialize a parsed :class:`CodeObject` (JSON-ready dict).

    Blocks are stored as ``[start, n_insns]`` (instructions are
    contiguous); edges as ``[src, kind, target, resolved]`` with -1 for
    "no target".  Functions reference blocks by start address.
    """
    blocks = [[b.start, len(b.insns)]
              for b in sorted(co.blocks.values(), key=lambda b: b.start)]
    edges = []
    for b in sorted(co.blocks.values(), key=lambda b: b.start):
        for e in b.out_edges:
            edges.append([b.start, e.kind.value,
                          -1 if e.target is None else e.target,
                          1 if e.resolved else 0])
    functions = []
    for fn in sorted(co.functions.values(), key=lambda f: f.entry):
        functions.append({
            "entry": fn.entry,
            "name": fn.name,
            "blocks": sorted(fn.blocks),
            "callees": sorted(fn.callees),
            "tail_callees": sorted(fn.tail_callees),
            "returns": fn.returns,
            "unresolved": list(fn.unresolved),
            "jump_tables": [[site, targets] for site, targets
                            in sorted(fn.jump_tables.items())],
        })
    return {
        "schema": CFG_SCHEMA,
        "blocks": blocks,
        "edges": edges,
        "functions": functions,
        "names": [[a, n] for a, n in sorted(co._names.items())],
    }


def cfg_from_snapshot(symtab: Symtab, data: dict) -> CodeObject:
    """Revive a :class:`CodeObject` from a snapshot against *symtab*.

    No traversal, no classification, no gap scan: blocks are re-decoded
    instruction-by-instruction at their recorded addresses and the
    recorded edges/functions are re-attached.  Raises
    :class:`CfgSnapshotError` when the snapshot is malformed or its
    block extents do not decode against this binary.
    """
    if not isinstance(data, dict) or data.get("schema") != CFG_SCHEMA:
        raise CfgSnapshotError(
            f"not a {CFG_SCHEMA} snapshot: {data.get('schema')!r}"
            if isinstance(data, dict) else "snapshot is not a dict")
    co = CodeObject(symtab)
    try:
        for start, n in data["blocks"]:
            block = Block(start, _decode_insns(symtab, start, n))
            co.blocks[start] = block
        co._block_starts = sorted(co.blocks)
        for src, kind, target, resolved in data["edges"]:
            block = co.blocks[src]
            block.out_edges.append(Edge(
                block, EdgeType(kind),
                None if target == -1 else target, bool(resolved)))
        for f in data["functions"]:
            fn = Function(f["entry"], f["name"])
            for addr in f["blocks"]:
                fn.blocks[addr] = co.blocks[addr]
            fn.callees = set(f["callees"])
            fn.tail_callees = set(f["tail_callees"])
            fn.returns = bool(f["returns"])
            fn.unresolved = list(f["unresolved"])
            fn.jump_tables = {site: list(targets)
                              for site, targets in f["jump_tables"]}
            co.functions[fn.entry] = fn
        co._names = {a: n for a, n in data["names"]}
    except (KeyError, TypeError, ValueError) as exc:
        raise CfgSnapshotError(f"malformed CFG snapshot: {exc}") from exc
    co.finalize_in_edges()
    return co


def _decode_insns(symtab: Symtab, start: int, n: int) -> list:
    """Decode *n* contiguous instructions at *start* from the binary's
    own bytes (the snapshot only records extents)."""
    region = symtab.region_at(start)
    if region is None or not region.executable:
        raise CfgSnapshotError(
            f"block {start:#x} is not in an executable region")
    insns = []
    pc = start
    for _ in range(n):
        try:
            insn = decode_insn(region.data, pc - region.addr, pc)
        except DecodeError as exc:
            raise CfgSnapshotError(
                f"snapshot block at {start:#x} does not decode against "
                f"this binary: {exc}") from exc
        insns.append(insn)
        pc = insn.next_address
    return insns
