"""Classification of RISC-V multi-use control-flow instructions.

RISC-V has only ``jal`` and ``jalr`` for unconditional transfers
(paper §3.1.3); what they *mean* — call, return, jump, tail call, jump
table — must be recovered from context.  This module implements the
paper's §3.2.3 decision procedure:

jal:
  * links (rd is a link register) -> **call**
  * rd = x0, target is another function's entry -> **tail call**
  * rd = x0 otherwise -> **unconditional jump**

jalr — first try to resolve the target register by backward slicing
(constant resolution over the decoded window); then:
  * resolved, in code, same function, rd = x0 -> **jump**
  * resolved, in code, another function, rd = x0 -> **tail call**
  * resolved, in code, rd links -> **call**
  * rd = x0 and rs1 is the link register of the preceding call (or a
    conventional link register with no resolution) -> **return**
  * else run **jump-table analysis**; on success -> indirect jump with
    enumerated targets
  * else -> **unresolvable indirect**
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..dataflow.constprop import resolve_register
from ..instruction.insn import Insn, LINK_REGISTERS
from .cfg import EdgeType
from .jumptable import analyze_jump_table


@dataclass
class Classification:
    """Outcome of classifying one jal/jalr."""

    kind: EdgeType
    target: int | None = None
    resolved: bool = True
    table_targets: list[int] = field(default_factory=list)


@dataclass
class ClassifyContext:
    """What the classifier knows about its surroundings."""

    #: linear decoded window (address order), jalr/jal is window[index]
    window: Sequence[Insn]
    index: int
    #: entry address of the function being parsed
    current_entry: int
    #: entries of other known functions (symbols + discovered)
    known_entries: frozenset[int]
    #: is this address inside a code region?
    is_code: Callable[[int], bool]
    #: read n initialised bytes at vaddr, or None
    mem_reader: Callable[[int, int], int | None]
    #: does this address (so far) belong to the current function?
    in_current: Callable[[int], bool]


def classify_jal(insn: Insn, ctx: ClassifyContext) -> Classification:
    target = insn.direct_target()
    assert target is not None
    if insn.links:
        return Classification(EdgeType.CALL, target)
    if target != ctx.current_entry and target in ctx.known_entries \
            and not ctx.in_current(target):
        return Classification(EdgeType.TAILCALL, target)
    return Classification(EdgeType.DIRECT, target)


def classify_jalr(insn: Insn, ctx: ClassifyContext) -> Classification:
    rs1 = insn.indirect_base
    assert rs1 is not None
    links = insn.links

    # Paper bullet 4, generalised: if the reaching definition of the
    # target register in the window is a *call's link write*, this jalr
    # consumes a return address — classify as a return rather than
    # letting constant resolution treat the linear window as an
    # execution path (the call's callee runs in between).
    if not links and _reaching_def_is_call_link(ctx, rs1):
        return Classification(EdgeType.RET, None)

    resolved = resolve_register(
        ctx.window, ctx.index, rs1, mem_reader=ctx.mem_reader)
    if resolved is not None:
        # jalr target = (rs1 + imm) with bit 0 cleared
        resolved = (resolved + insn.raw.fields.get("imm", 0)) & ~1
        resolved &= (1 << 64) - 1
    if resolved is not None and ctx.is_code(resolved):
        if links:
            return Classification(EdgeType.CALL, resolved)
        if resolved == ctx.current_entry or ctx.in_current(resolved):
            return Classification(EdgeType.DIRECT, resolved)
        if resolved in ctx.known_entries:
            return Classification(EdgeType.TAILCALL, resolved)
        # Constant target outside current parse and not a known entry:
        # treat as a tail call discovering a new function.
        return Classification(EdgeType.TAILCALL, resolved)

    if not links:
        # Return detection.  Case 1 (paper bullet 4): the immediately
        # preceding instruction is a call whose link register matches.
        prev = ctx.window[ctx.index - 1] if ctx.index > 0 else None
        if prev is not None and prev.links and prev.link_register == rs1:
            return Classification(EdgeType.RET, None)
        # Case 2: conventional link register with unresolvable value —
        # the ubiquitous `ret` (jalr x0, 0(ra)).
        if rs1 in LINK_REGISTERS and insn.raw.fields.get("imm", 0) == 0:
            return Classification(EdgeType.RET, None)

    # Jump-table analysis (paper: "ParseAPI performs jump table
    # analysis on the current jalr instruction").
    table = analyze_jump_table(
        ctx.window, ctx.index, rs1, ctx.is_code, ctx.mem_reader)
    if table:
        return Classification(EdgeType.INDIRECT, None, resolved=True,
                              table_targets=table)

    # Unresolvable: the target cannot be determined symbolically.
    kind = EdgeType.CALL if links else EdgeType.INDIRECT
    return Classification(kind, None, resolved=False)


def _reaching_def_is_call_link(ctx: ClassifyContext, rs1) -> bool:
    """Does the nearest preceding definition of *rs1* in the window come
    from a call's link-register write?"""
    from ..semantics import register_defs

    for i in range(ctx.index - 1, -1, -1):
        prev = ctx.window[i]
        if ("x", rs1.number) not in register_defs(prev.raw):
            continue
        return bool(prev.links and prev.link_register == rs1)
    return False


def classify(insn: Insn, ctx: ClassifyContext) -> Classification:
    """Classify any jal/jalr; conditional branches and non-CF
    instructions are not accepted here."""
    if insn.is_jal:
        return classify_jal(insn, ctx)
    if insn.is_jalr:
        return classify_jalr(insn, ctx)
    raise ValueError(f"not an unconditional control transfer: {insn!r}")
