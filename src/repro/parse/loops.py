"""Natural-loop detection on function CFGs (ParseAPI loop analysis).

Classic dominator-based algorithm: a back edge t -> h (where h dominates
t) defines a natural loop with header h whose body is everything that
reaches t without passing through h.  Loop nesting follows from body
containment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .cfg import Block, Function


@dataclass
class Loop:
    """One natural loop."""

    header: int
    body: frozenset[int]                 # block start addresses, incl. header
    back_edges: list[tuple[int, int]]    # (tail, header)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, p = 1, self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    def contains(self, other: "Loop") -> bool:
        return other.body < self.body or (
            other.body == self.body and other is not self and False)


def function_digraph(fn: Function) -> "nx.DiGraph":
    """Intraprocedural CFG as a networkx digraph over block addresses."""
    g = nx.DiGraph()
    for addr, block in fn.blocks.items():
        g.add_node(addr)
        for succ in fn.intraproc_successors(block):
            g.add_edge(addr, succ)
    return g


def dominators(fn: Function) -> dict[int, int]:
    """Immediate dominators of every reachable block (entry maps to
    itself)."""
    g = function_digraph(fn)
    if fn.entry not in g:
        return {}
    return nx.immediate_dominators(g, fn.entry)


def _dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True if a dominates b."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return a == node
        node = parent


def natural_loops(fn: Function) -> list[Loop]:
    """All natural loops, with nesting links, innermost-last by size."""
    g = function_digraph(fn)
    if fn.entry not in g:
        return []
    idom = nx.immediate_dominators(g, fn.entry)

    # Group back edges by header (merging loops sharing a header).
    by_header: dict[int, list[tuple[int, int]]] = {}
    for t, h in g.edges():
        if h in idom and t in idom and _dominates(idom, h, t):
            by_header.setdefault(h, []).append((t, h))

    loops: list[Loop] = []
    for header, backs in sorted(by_header.items()):
        body = {header}
        work = [t for t, _ in backs if t != header]
        while work:
            n = work.pop()
            if n in body:
                continue
            body.add(n)
            work.extend(p for p in g.predecessors(n) if p not in body)
        loops.append(Loop(header, frozenset(body), sorted(backs)))

    # Establish nesting: the parent is the smallest strictly-containing
    # loop.
    loops.sort(key=lambda l: len(l.body))
    for i, inner in enumerate(loops):
        candidates = [
            outer for outer in loops[i + 1:]
            if inner.body < outer.body or (
                inner.body <= outer.body and inner.header != outer.header)
        ]
        if candidates:
            parent = min(candidates, key=lambda l: len(l.body))
            inner.parent = parent
            parent.children.append(inner)
    return loops


def loop_back_edge_blocks(fn: Function) -> list[Block]:
    """Blocks that are tails of loop back edges (the paper's
    'loop back edges' instrumentation points)."""
    tails = {t for loop in natural_loops(fn) for t, _ in loop.back_edges}
    return [fn.blocks[t] for t in sorted(tails) if t in fn.blocks]
