"""Static call-graph extraction: an analysis-only toolkit consumer.

Builds the call multigraph from ParseAPI's CALL/TAILCALL edges, flags
unresolved indirect calls (honesty about pointer-based flow, §3.2.3),
and renders DOT for visualisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..parse.parser import CodeObject


@dataclass
class CallGraph:
    #: caller name -> set of callee names (direct calls)
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: caller name -> set of tail-callee names
    tail_calls: dict[str, set[str]] = field(default_factory=dict)
    #: functions containing unresolvable indirect jumps/calls
    has_unresolved: set[str] = field(default_factory=set)

    def callees(self, name: str) -> set[str]:
        return self.calls.get(name, set()) | self.tail_calls.get(name, set())

    def callers(self, name: str) -> set[str]:
        return {
            caller for caller, cs in self.calls.items() if name in cs
        } | {
            caller for caller, cs in self.tail_calls.items() if name in cs
        }

    def reachable_from(self, root: str) -> set[str]:
        seen: set[str] = set()
        work = [root]
        while work:
            n = work.pop()
            if n in seen:
                continue
            seen.add(n)
            work.extend(self.callees(n))
        return seen

    def to_dot(self) -> str:
        lines = ["digraph callgraph {"]
        names = sorted(set(self.calls) | set(self.tail_calls)
                       | {c for s in self.calls.values() for c in s}
                       | {c for s in self.tail_calls.values() for c in s})
        for n in names:
            attrs = ' color="red"' if n in self.has_unresolved else ""
            lines.append(f'  "{n}"[{attrs.strip()}];' if attrs
                         else f'  "{n}";')
        for caller in sorted(self.calls):
            for callee in sorted(self.calls[caller]):
                lines.append(f'  "{caller}" -> "{callee}";')
        for caller in sorted(self.tail_calls):
            for callee in sorted(self.tail_calls[caller]):
                lines.append(
                    f'  "{caller}" -> "{callee}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines)


def build_callgraph(co: CodeObject) -> CallGraph:
    graph = CallGraph()
    by_entry = {fn.entry: fn.name for fn in co.functions.values()}
    for fn in co.functions.values():
        graph.calls[fn.name] = {
            by_entry.get(a, f"func_{a:x}") for a in fn.callees}
        graph.tail_calls[fn.name] = {
            by_entry.get(a, f"func_{a:x}") for a in fn.tail_callees}
        if fn.unresolved:
            graph.has_unresolved.add(fn.name)
    return graph
