"""Example tool layer: the kinds of tools the paper motivates (§1) built
on the public API — counters, a call tracer, coverage, call graphs."""

from .callgraph import CallGraph, build_callgraph
from .counter import (
    CounterHandle, count_basic_blocks, count_function_entries,
    count_loop_iterations,
)
from .coverage import CoverageHandle, cover_functions
from .latency import LatencyHandle, measure_latency
from .memtrace import MemEvent, MemTraceHandle, trace_memory
from .profiler import Profile, profile_process
from .tracer import TraceEvent, TraceHandle, trace_calls, trace_functions
from .watchpoint import WatchHandle, WatchHit, watch_writes

__all__ = [
    "CallGraph", "build_callgraph",
    "CounterHandle", "count_basic_blocks", "count_function_entries",
    "count_loop_iterations",
    "CoverageHandle", "cover_functions",
    "LatencyHandle", "measure_latency",
    "MemEvent", "MemTraceHandle", "trace_memory",
    "Profile", "profile_process",
    "TraceEvent", "TraceHandle", "trace_calls", "trace_functions",
    "WatchHandle", "WatchHit", "watch_writes",
]
