"""Function latency measurement — the TAU/Omnitrace scenario (§2 lists
both as Dyninst consumers): instrumentation that *self-times* the
mutatee by reading the cycle CSR at entry and exit.

Per function, the tool accumulates inclusive cycles across outermost
invocations (a depth counter makes recursion count once per outermost
call), giving a per-function inclusive-time profile with exact
(deterministic) cycle attribution::

    entry:  if depth == 0 { start = cycle }
            depth = depth + 1
    exit:   depth = depth - 1
            if depth == 0 { total  = total + (cycle - start)
                            calls  = calls + 1 }
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import (
    BinExpr, Const, CSR_CYCLE, CsrExpr, If, IncrementVar, Sequence,
    SetVar, VarExpr, Variable,
)
from ..parse.cfg import Function
from ..patch.points import PointType


@dataclass
class LatencyHandle:
    #: function name -> (depth, start, total, calls) variables
    vars: dict[str, tuple[Variable, Variable, Variable, Variable]]

    def report(self, machine) -> dict[str, tuple[int, int]]:
        """function -> (outermost calls, total inclusive cycles)."""
        out = {}
        for name, (_d, _s, total, calls) in self.vars.items():
            out[name] = (machine.mem.read_int(calls.address, 8),
                         machine.mem.read_int(total.address, 8))
        return out

    def mean_cycles(self, machine, name: str) -> float:
        c, t = self.report(machine)[name]
        return t / c if c else 0.0


def measure_latency(binary: BinaryEdit,
                    functions: list[Function | str]) -> LatencyHandle:
    """Instrument entry/exits of *functions* with cycle-CSR timing."""
    handles: dict[str, tuple[Variable, Variable, Variable, Variable]] = {}
    for fn in functions:
        if isinstance(fn, str):
            fn = binary.function(fn)
        depth = binary.allocate_variable(f"lat$d${fn.name}")
        start = binary.allocate_variable(f"lat$s${fn.name}")
        total = binary.allocate_variable(f"lat$t${fn.name}")
        calls = binary.allocate_variable(f"lat$c${fn.name}")

        entry = Sequence([
            If(BinExpr("eq", VarExpr(depth), Const(0)),
               SetVar(start, CsrExpr(CSR_CYCLE))),
            IncrementVar(depth),
        ])
        exit_ = Sequence([
            IncrementVar(depth, step=-1),
            If(BinExpr("eq", VarExpr(depth), Const(0)),
               Sequence([
                   SetVar(total,
                          BinExpr("add", VarExpr(total),
                                  BinExpr("sub", CsrExpr(CSR_CYCLE),
                                          VarExpr(start)))),
                   IncrementVar(calls),
               ])),
        ])
        binary.insert(binary.points(fn, PointType.FUNC_ENTRY), entry)
        for pt in binary.points(fn, PointType.FUNC_EXIT):
            binary.insert(pt, exit_)
        handles[fn.name] = (depth, start, total, calls)
    return LatencyHandle(handles)
