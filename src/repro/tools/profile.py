"""Mutatee execution profiler: trace a workload, export the evidence.

Where ``tools/stats.py`` reports on the *pipeline* (what the toolkit
did), this tool reports on the *mutatee* (what the instrumented program
did): it compiles a workload, runs it under a simulator event stream,
reconstructs the call stacks, and exports any combination of

* a Chrome trace-event / Perfetto JSON timeline (``--perfetto``),
* a folded-stack flamegraph text file (``--flame``),
* heat-annotated hot-path disassembly (``--annotate``; raw counts with
  ``--heat-json``),
* a per-function summary with p50/p90/p99 per-call durations estimated
  from power-of-two histograms (always printed).

Run from a checkout::

    PYTHONPATH=src python -m repro.tools.profile --perfetto out.json \\
        --flame out.folded --annotate

or via the repository shim ``tools/profile.py``.  ``--validate``
structurally checks the Perfetto document (required keys, B/E balance,
monotonic timestamps) and fails the run on problems — the CI smoke step
uses it.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import telemetry
from ..api import open_binary
from ..minicc import compile_source
from ..minicc.workloads import fib_source, matmul_source, qsort_source
from ..telemetry.report import percentiles
from ..tracing import format_folded, validate_perfetto
from .objdump import format_annotated

WORKLOADS = {
    "matmul": lambda args: matmul_source(args.n, args.reps),
    "fib": lambda args: fib_source(args.n),
    "qsort": lambda args: qsort_source(max(args.n, 8)),
}


def _per_call_hists(spans) -> dict[str, dict]:
    """Per-function pow2 histograms of per-call weight (snapshot-shaped,
    so :func:`repro.telemetry.report.percentiles` reads them)."""
    hists: dict[str, dict] = {}
    for sp in spans:
        v = sp.ucycles
        h = hists.get(sp.name)
        if h is None:
            hists[sp.name] = {"count": 1, "sum": v, "min": v, "max": v,
                              "buckets": {max(0, int(v).bit_length()): 1}}
        else:
            h["count"] += 1
            h["sum"] += v
            h["min"] = min(h["min"], v)
            h["max"] = max(h["max"], v)
            b = max(0, int(v).bit_length())
            h["buckets"][b] = h["buckets"].get(b, 0) + 1
    return hists


def format_summary(session, top: int = 10) -> str:
    """Per-function self-weight and per-call percentile table."""
    spans = session.spans
    stream = session.stream
    lines = [
        f"events: {len(stream)} retained"
        + (f" ({stream.dropped} dropped)" if stream.dropped else "")
        + f", {len(spans)} call spans",
    ]
    hot = session.hot_functions()
    total = sum(w for _, w in hot) or 1
    hists = _per_call_hists(spans)
    lines.append(f"{'self%':>7} {'self ucycles':>14} {'calls':>7}  "
                 f"{'p50':>10} {'p90':>10} {'p99':>10}  function")
    for name, weight in hot[:top]:
        h = hists.get(name)
        if h:
            pct = percentiles(h)
            p50, p90, p99 = (f"{pct['p50']:.0f}", f"{pct['p90']:.0f}",
                             f"{pct['p99']:.0f}")
            calls = h["count"]
        else:
            p50 = p90 = p99 = "-"
            calls = 0
        lines.append(
            f"{100 * weight / total:>6.1f}% {weight:>14,} {calls:>7}  "
            f"{p50:>10} {p90:>10} {p99:>10}  {name}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="profile", description=__doc__.splitlines()[0])
    ap.add_argument("--workload", choices=sorted(WORKLOADS),
                    default="matmul")
    ap.add_argument("--n", type=int, default=12,
                    help="workload size (matrix dim / fib n)")
    ap.add_argument("--reps", type=int, default=3,
                    help="workload repetitions (matmul)")
    ap.add_argument("--granularity", choices=("instruction", "block"),
                    default="instruction",
                    help="event granularity; 'block' keeps the trace "
                         "compiler engaged but drops call/return events "
                         "(heat only — see docs/INTERNALS.md)")
    ap.add_argument("--weight", choices=("ucycles", "instructions"),
                    default="ucycles", help="flamegraph weight unit")
    ap.add_argument("--perfetto", metavar="FILE",
                    help="write Chrome trace-event / Perfetto JSON")
    ap.add_argument("--flame", metavar="FILE",
                    help="write folded stacks (flamegraph.pl format)")
    ap.add_argument("--annotate", action="store_true",
                    help="print heat-annotated hot-path disassembly")
    ap.add_argument("--heat-json", metavar="FILE",
                    help="write per-block heat counts as JSON")
    ap.add_argument("--validate", action="store_true",
                    help="structurally validate the Perfetto document "
                         "and the event stream; non-zero exit on "
                         "problems")
    ap.add_argument("--top", type=int, default=10,
                    help="functions shown in the summary")
    args = ap.parse_args(argv)

    program = compile_source(WORKLOADS[args.workload](args))
    # timeline-enabled recorder: the Perfetto export gains the pipeline
    # track (parse/liveness/patch spans) next to the mutatee track
    with telemetry.enabled(telemetry.Recorder(timeline=True)):
        with open_binary(program) as edit:
            session = edit.trace(granularity=args.granularity)

    print(f"workload: {args.workload} (n={args.n}, reps={args.reps}) "
          f"exit={session.stop.exit_code}")
    print(format_summary(session, top=args.top))

    problems: list[str] = []
    doc = None
    if args.perfetto or args.validate:
        doc = session.perfetto()
    if args.perfetto:
        with open(args.perfetto, "w") as f:
            json.dump(doc, f)
        print(f"wrote {args.perfetto} "
              f"({len(doc['traceEvents'])} trace events)")
    if args.flame:
        folded = session.folded(weight=args.weight)
        with open(args.flame, "w") as f:
            f.write(format_folded(folded))
        print(f"wrote {args.flame} ({len(folded)} stacks)")
    if args.heat_json:
        with open(args.heat_json, "w") as f:
            json.dump({hex(pc): n for pc, n in
                       sorted(session.heat().items())}, f, indent=0)
        print(f"wrote {args.heat_json}")
    if args.annotate:
        print(format_annotated(edit.symtab, session.heat()))
    if args.validate:
        problems = validate_perfetto(doc)
        ts = [e[3] for e in session.events]
        if any(a > b for a, b in zip(ts, ts[1:])):
            problems.append("event instret timestamps not monotonic")
        if problems:
            for p in problems:
                print(f"VALIDATION: {p}", file=sys.stderr)
            return 1
        print(f"validation OK ({len(doc['traceEvents'])} trace events, "
              f"{len(session.events)} stream events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
