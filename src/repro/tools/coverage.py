"""Basic-block coverage tool: one executed-flag per block.

A pure-analysis + instrumentation consumer of the toolkit: after the
run, coverage is reported per function as executed/total blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import Const, SetVar, Variable
from ..parse.cfg import Function
from ..patch.points import PointType


@dataclass
class CoverageHandle:
    #: function name -> {block start -> flag variable}
    flags: dict[str, dict[int, Variable]]

    def report(self, machine) -> dict[str, tuple[int, int]]:
        """function -> (covered blocks, total blocks)."""
        out: dict[str, tuple[int, int]] = {}
        for name, blocks in self.flags.items():
            hit = sum(
                1 for var in blocks.values()
                if machine.mem.read_int(var.address, 8))
            out[name] = (hit, len(blocks))
        return out

    def uncovered(self, machine, fn_name: str) -> list[int]:
        return sorted(
            addr for addr, var in self.flags.get(fn_name, {}).items()
            if not machine.mem.read_int(var.address, 8))


def cover_functions(binary: BinaryEdit,
                    functions: list[Function | str]) -> CoverageHandle:
    """Instrument every block of the given functions with an
    executed-flag store."""
    flags: dict[str, dict[int, Variable]] = {}
    for fn in functions:
        if isinstance(fn, str):
            fn = binary.function(fn)
        per_block: dict[int, Variable] = {}
        for pt in binary.points(fn, PointType.BLOCK_ENTRY):
            var = binary.allocate_variable(
                f"cov${fn.name}${pt.address:x}")
            binary.insert(pt, SetVar(var, Const(1)))
            per_block[pt.address] = var
        flags[fn.name] = per_block
    return CoverageHandle(flags)
