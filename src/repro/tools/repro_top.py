"""``top`` for the session service.

A refresh-loop console over ``ServiceClient.metrics()``: per-op
p50/p90/p99 latency out of the fleet-merged ``service.op.<op>.us``
histograms, requests/sec from counter deltas between refreshes, cache
hit rates, per-worker session load, and the slow-request ring tail::

    python tools/repro_top.py --socket /tmp/repro.sock [--interval 2]
    python tools/repro_top.py --socket /tmp/repro.sock --once
    python tools/repro_top.py --socket /tmp/repro.sock --once --json

The server must have its observability plane armed (``--metrics-dir``
/ ``REPRO_SERVICE_METRICS``) for fleet-wide numbers; without it the
console shows the accepting worker only.  ``--once`` prints a single
frame (what CI scrapes); ``--json`` dumps the raw ``metrics`` response
instead of rendering.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..service import ServiceClient
from ..telemetry.report import percentiles

#: histogram-name shape produced by the request tracer
_OP_HIST_PREFIX = "service.op."
_OP_HIST_SUFFIX = ".us"


def _op_rows(merged: dict, prev_counters: dict | None,
             dt: float | None) -> list[tuple]:
    """(op, count, req/s, p50, p90, p99) per op, busiest first."""
    counters = merged.get("counters", {})
    hists = merged.get("histograms", {})
    rows = []
    for name, hist in sorted(hists.items()):
        if not (name.startswith(_OP_HIST_PREFIX)
                and name.endswith(_OP_HIST_SUFFIX)):
            continue
        op = name[len(_OP_HIST_PREFIX):-len(_OP_HIST_SUFFIX)]
        count = counters.get(f"service.op.{op}", hist.get("count", 0))
        rate = None
        if prev_counters is not None and dt and dt > 0:
            rate = (count - prev_counters.get(f"service.op.{op}", 0)) / dt
        pct = percentiles(hist)
        rows.append((op, count, rate,
                     pct["p50"], pct["p90"], pct["p99"]))
    rows.sort(key=lambda r: r[1], reverse=True)
    return rows


def _hit_rate(hits: int, misses: int) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.1f}%" if total else "n/a"


def render(resp: dict, prev: dict | None = None,
           dt: float | None = None) -> str:
    """One console frame from a ``metrics`` op response."""
    merged = resp.get("merged", {})
    counters = merged.get("counters", {})
    gauges = merged.get("gauges", {})
    workers = resp.get("workers", [])
    prev_counters = (prev or {}).get("merged", {}).get("counters") \
        if prev else None

    out: list[str] = []
    live = sum(w.get("sessions", 0) for w in workers)
    requests = counters.get("service.requests", 0)
    errors = counters.get("service.errors", 0)
    total_rate = ""
    if prev_counters is not None and dt and dt > 0:
        total_rate = (f"  {((requests - prev_counters.get('service.requests', 0)) / dt):6.1f} req/s")
    out.append(
        f"repro_top — {len(workers)} worker(s), {live} live "
        f"session(s), {requests:,} requests ({errors} errors)"
        f"{total_rate}")
    out.append("")

    rows = _op_rows(merged, prev_counters, dt)
    if rows:
        out.append(f"{'op':<12}{'count':>10}{'req/s':>9}"
                   f"{'p50(us)':>11}{'p90(us)':>11}{'p99(us)':>11}")
        for op, count, rate, p50, p90, p99 in rows:
            rate_s = f"{rate:9.1f}" if rate is not None else f"{'—':>9}"
            out.append(f"{op:<12}{count:>10,}{rate_s}"
                       f"{p50:>11.1f}{p90:>11.1f}{p99:>11.1f}")
    else:
        out.append("no per-op latency histograms yet "
                   "(is the server's metrics plane armed?)")
    out.append("")

    art_hits = counters.get("artifacts.hits", 0)
    art_miss = counters.get("artifacts.misses", 0)
    out.append(
        "caches: artifacts "
        f"{art_hits} hits / {art_miss} misses / "
        f"{counters.get('artifacts.stale', 0)} stale "
        f"({_hit_rate(art_hits, art_miss)} hit)   "
        f"analyses materialized: {counters.get('service.analyses', 0)}"
        f"   trace persist: {counters.get('sim.trace.persist.loads', 0)}"
        f" loads / {counters.get('sim.trace.persist.stale', 0)} stale")
    if "service.sessions.live" in gauges:
        out.append(f"fleet gauge service.sessions.live = "
                   f"{gauges['service.sessions.live']:.0f}   flushes: "
                   f"{counters.get('service.flushes', 0)}")
    out.append("")

    if workers:
        out.append(f"{'worker':<8}{'pid':>8}{'sessions':>10}"
                   f"{'requests':>10}{'age(s)':>8}")
        now = time.time()
        for w in workers:
            snap_counters = w.get("snapshot", {}).get("counters", {})
            age = now - w["ts"] if w.get("ts") else 0.0
            out.append(
                f"w{w.get('worker', '?'):<7}{w.get('pid', 0):>8}"
                f"{w.get('sessions', 0):>10}"
                f"{snap_counters.get('service.requests', 0):>10,}"
                f"{age:>8.1f}")
        out.append("")

    slow = resp.get("slow", [])
    if slow:
        out.append("slowest requests:")
        for entry in slow[:8]:
            delta = entry.get("counters_delta") or {}
            hot = ", ".join(f"{k}+{v}" for k, v in sorted(
                delta.items(),
                key=lambda kv: abs(kv[1]), reverse=True)[:3])
            trace = entry.get("trace")
            out.append(
                f"  {entry.get('rid', '?'):<10} "
                f"{entry.get('op', '?'):<10}"
                f"{entry.get('duration_us', 0):>12,.0f} us"
                + (f"  trace={trace}" if trace else "")
                + (f"  err={entry['error']}" if entry.get("error")
                   else "")
                + (f"  [{hot}]" if hot else ""))
        out.append("")
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="live operator console over the session "
                    "service's metrics op")
    ap.add_argument("--socket", required=True,
                    help="the server's AF_UNIX socket path")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="refresh period in seconds")
    ap.add_argument("--once", action="store_true",
                    help="print one frame and exit (CI mode)")
    ap.add_argument("--json", action="store_true",
                    help="dump the raw metrics response as JSON")
    ap.add_argument("--trace", default="repro_top",
                    help="trace context attached to the console's "
                         "own requests")
    args = ap.parse_args(argv)

    with ServiceClient(args.socket, trace=args.trace) as client:
        prev, prev_t = None, None
        while True:
            resp = client.metrics()
            now = time.perf_counter()
            if args.json:
                print(json.dumps(resp, indent=2))
            else:
                dt = (now - prev_t) if prev_t is not None else None
                frame = render(resp, prev, dt)
                if not args.once:
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear screen
                print(frame, flush=True)
            if args.once:
                return 0
            prev, prev_t = resp, now
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


if __name__ == "__main__":
    sys.exit(main())
