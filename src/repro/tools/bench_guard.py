"""Performance regression guard over the benchmark snapshots.

Reads ``BENCH_sim.json`` (written by
``benchmarks/test_sim_throughput.py``) and ``BENCH_service.json``
(written by ``benchmarks/test_service_bench.py``) and fails when
either mechanism has regressed below the floors::

    python tools/bench_guard.py [--json BENCH_sim.json] [--floor 3.0]
        [--service-json BENCH_service.json] [--warm-floor 3.0]

Simulator checks, in order:

* the headline ``speedup`` (megatrace tier over the closure
  interpreter) is at or above ``--floor``;
* the superblock tier is at or above ``--superblock-floor``;
* the warm persistent-cache tier compiled **nothing** — every trace it
  ran was revived from the snapshot (``persist_loads > 0``, both
  compile counters zero).

Artifact-store / service checks:

* a warm ``analyze()`` (artifact-store revival) is at or above
  ``--warm-floor`` times faster than a cold one on the matmul fixture;
* the warm open recomputed nothing: exactly one ``artifacts.hits``
  counter and **no** ``parse.*`` / ``liveness.*`` telemetry;
* the session service actually served its concurrent clients
  (``clients >= 8``, ``sessions_per_sec > 0``).

The sim-tier CI floors sit below the benchmark's own acceptance bars
(4.5x megatrace, 2.0x superblock) on purpose: shared runners are
noisy, and the guard exists to catch regressions of the *mechanism* —
a dropped tier, a warm run that silently recompiles or re-parses — not
to re-litigate the exact multiplier measured on a quiet host.  Exit
status 0 when every check passes, 1 otherwise (2 when a snapshot is
missing/unreadable).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: default CI floors (see module docstring for why they are below the
#: benchmark's local acceptance bars)
MEGATRACE_FLOOR = 3.0
SUPERBLOCK_FLOOR = 1.6

#: warm analyze() must beat cold by this much (ISSUE 7 acceptance bar;
#: the revive path does no parsing, so this holds even on noisy hosts)
WARM_ANALYZE_FLOOR = 3.0

#: the service benchmark must exercise at least this many clients
MIN_CLIENTS = 8


def check(bench: dict, floor: float = MEGATRACE_FLOOR,
          superblock_floor: float = SUPERBLOCK_FLOOR) -> list[str]:
    """Return the list of violated checks (empty = all green)."""
    bad: list[str] = []
    speedup = bench.get("speedup")
    if not isinstance(speedup, (int, float)):
        return [f"no usable 'speedup' key in snapshot: {speedup!r}"]
    if speedup < floor:
        bad.append(f"megatrace speedup {speedup:.2f}x below the "
                   f"{floor:.2f}x floor")
    sb = bench.get("speedup_superblock")
    if isinstance(sb, (int, float)) and sb < superblock_floor:
        bad.append(f"superblock speedup {sb:.2f}x below the "
                   f"{superblock_floor:.2f}x floor")
    warm = bench.get("tiers", {}).get("persist_warm", {})
    if warm:
        if warm.get("superblocks_compiled", 0) or \
                warm.get("megatraces_compiled", 0):
            bad.append(
                "warm persistent-cache tier compiled traces "
                f"({warm.get('superblocks_compiled')} superblocks, "
                f"{warm.get('megatraces_compiled')} megatraces) — "
                "must be zero compile events")
        if not warm.get("persist_loads"):
            bad.append("warm tier revived no traces (persist_loads=0)")
    return bad


def check_service(bench: dict,
                  warm_floor: float = WARM_ANALYZE_FLOOR) -> list[str]:
    """Violated checks for the BENCH_service.json snapshot."""
    bad: list[str] = []
    speedup = bench.get("warm_speedup")
    if not isinstance(speedup, (int, float)):
        return [f"no usable 'warm_speedup' key in snapshot: {speedup!r}"]
    if speedup < warm_floor:
        bad.append(f"warm analyze() only {speedup:.2f}x faster than "
                   f"cold (floor {warm_floor:.2f}x)")
    counters = bench.get("warm_counters", {})
    if counters.get("artifacts.hits") != 1:
        bad.append("warm open did not hit the artifact store "
                   f"(warm_counters={counters!r})")
    recomputed = sorted(n for n in counters
                        if n.startswith(("parse.", "liveness.")))
    if recomputed:
        bad.append("warm open recomputed analysis work: "
                   + ", ".join(recomputed))
    if bench.get("clients", 0) < MIN_CLIENTS:
        bad.append(f"service benchmark ran {bench.get('clients')} "
                   f"concurrent clients (need >= {MIN_CLIENTS})")
    if not bench.get("sessions_per_sec"):
        bad.append("service served no sessions (sessions_per_sec=0)")
    return bad


def main(argv: list[str] | None = None) -> int:
    repo = Path(__file__).resolve().parents[3]
    ap = argparse.ArgumentParser(
        description="fail when BENCH_sim.json shows a JIT regression")
    ap.add_argument("--json", default=str(repo / "BENCH_sim.json"),
                    help="snapshot path (default: repo BENCH_sim.json)")
    ap.add_argument("--floor", type=float, default=MEGATRACE_FLOOR,
                    help="minimum megatrace-over-interpreter speedup")
    ap.add_argument("--superblock-floor", type=float,
                    default=SUPERBLOCK_FLOOR,
                    help="minimum superblock-over-interpreter speedup")
    ap.add_argument("--service-json",
                    default=str(repo / "BENCH_service.json"),
                    help="artifact-store/service snapshot "
                         "(default: repo BENCH_service.json)")
    ap.add_argument("--warm-floor", type=float,
                    default=WARM_ANALYZE_FLOOR,
                    help="minimum warm-over-cold analyze() speedup")
    args = ap.parse_args(argv)

    path = Path(args.json)
    try:
        bench = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench_guard: cannot read {path}: {exc}",
              file=sys.stderr)
        return 2
    service_path = Path(args.service_json)
    try:
        service = json.loads(service_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"bench_guard: cannot read {service_path}: {exc}",
              file=sys.stderr)
        return 2

    tiers = bench.get("tiers", {})
    print(f"bench_guard: {bench.get('benchmark', '?')} "
          f"(N={bench.get('matmul_n')}, reps={bench.get('matmul_reps')},"
          f" {bench.get('instructions', 0):,} instructions)")
    for name, t in tiers.items():
        speed = t.get("speedup", 1.0)
        print(f"  {name:<14} {t.get('instr_per_sec', 0) / 1e6:8.2f} "
              f"Minstr/s  {speed:5.2f}x  "
              f"(spread {t.get('run_to_run_spread', 0):.1%})")

    print(f"bench_guard: {service.get('benchmark', '?')} "
          f"(cold {service.get('analyze_cold_s', 0):.4f}s, warm "
          f"{service.get('analyze_warm_s', 0):.4f}s = "
          f"{service.get('warm_speedup', 0):.2f}x; "
          f"{service.get('clients')} clients @ "
          f"{service.get('sessions_per_sec', 0):.1f} sessions/s)")

    bad = check(bench, args.floor, args.superblock_floor)
    bad += check_service(service, args.warm_floor)
    for msg in bad:
        print(f"bench_guard: FAIL: {msg}", file=sys.stderr)
    if not bad:
        print(f"bench_guard: OK (megatrace {bench['speedup']:.2f}x >= "
              f"{args.floor:.2f}x floor; warm analyze "
              f"{service['warm_speedup']:.2f}x >= "
              f"{args.warm_floor:.2f}x floor)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
