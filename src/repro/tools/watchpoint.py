"""Software watchpoints: catch writes to a chosen address via
instrumentation (the "every stack memory reference" §1 capability,
focused into a debugging tool).

RISC-V debug hardware offers few (or no) watchpoint registers;
instrumenting every store with an address-compare snippet is the
portable fallback — exactly the kind of tool the toolkit exists to make
easy.  Each hit records (site pc, value written) into a ring buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import (
    BinExpr, Const, If, IncrementVar, RegExpr, Sequence, StoreSnippet,
    VarExpr, Variable,
)
from ..parse.cfg import Function
from ..patch.points import instruction_point


@dataclass(frozen=True)
class WatchHit:
    pc: int
    value: int


@dataclass
class WatchHandle:
    address: int
    head: Variable
    buffer_base: int
    capacity: int
    #: site id -> pc
    sites: dict[int, int]

    def hits(self, machine) -> list[WatchHit]:
        n = machine.mem.read_int(self.head.address, 8)
        count = min(n, self.capacity)
        out = []
        for i in range(n - count, n):
            slot = i % self.capacity
            base = self.buffer_base + 16 * slot
            sid = machine.mem.read_int(base, 8)
            value = machine.mem.read_int(base + 8, 8)
            out.append(WatchHit(self.sites[sid], value))
        return out

    def hit_count(self, machine) -> int:
        return machine.mem.read_int(self.head.address, 8)


def watch_writes(binary: BinaryEdit, address: int,
                 functions: list[Function | str],
                 capacity: int = 256) -> WatchHandle:
    """Instrument every store in *functions* with a watch check on
    *address* (any store whose byte range covers it records a hit)."""
    if capacity & (capacity - 1):
        raise ValueError("capacity must be a power of two")
    head = binary.allocate_variable(f"watch$h${address:x}")
    buf = binary.allocate_variable(f"watch$b${address:x}",
                                   size=16 * capacity)
    sites: dict[int, int] = {}
    sid = 0
    for fn in functions:
        if isinstance(fn, str):
            fn = binary.function(fn)
        for insn in list(fn.instructions()):
            acc = insn.memory_access()
            if acc is None or not acc.is_write:
                continue
            ea = BinExpr("add", RegExpr(acc.base), Const(acc.displacement))
            # hit iff ea <= address < ea + size
            in_range = BinExpr(
                "and",
                BinExpr("le", ea, Const(address)),
                BinExpr("lt", Const(address),
                        BinExpr("add", ea, Const(acc.size))))
            slot = BinExpr("shl",
                           BinExpr("and", VarExpr(head),
                                   Const(capacity - 1)),
                           Const(4))
            record_base = BinExpr("add", Const(buf.address), slot)
            # stores read rs2 as the value; AMO/sc value is also rs2
            value_reg = insn.raw.fields.get("rs2")
            value_expr = (RegExpr(_reg_of(insn, value_reg))
                          if value_reg is not None else Const(0))
            body = Sequence([
                StoreSnippet(record_base, Const(sid)),
                StoreSnippet(BinExpr("add", record_base, Const(8)),
                             value_expr),
                IncrementVar(head),
            ])
            binary.insert(instruction_point(fn, insn.address),
                          If(in_range, body))
            sites[sid] = insn.address
            sid += 1
    return WatchHandle(address, head, buf.address, capacity, sites)


def _reg_of(insn, n):
    from ..riscv.registers import xreg

    # FP stores carry the value in an FP register, which snippets cannot
    # read; those hits record value 0 (the address is still exact).
    for op in insn.raw.spec.operands:
        if op in ("rs2",):
            return xreg(n)
    return xreg(0)
