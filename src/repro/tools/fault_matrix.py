"""Fault-injection matrix runner: the commit-protocol audit as a tool.

Walks every named injection site the instrument-run-detach pipeline
crosses (see :mod:`repro.faults` and the commit-protocol section of
docs/INTERNALS.md) and checks, per site, that the pipeline either
commits completely or rolls the mutatee back to architectural state
bit-identical to a never-instrumented machine.  Emits a JSON summary
(sites, per-phase outcomes, telemetry counters, violations) suitable
as a CI artifact::

    python tools/fault_matrix.py --json fault-matrix.json

Exit status 0 when every site upholds the contract, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from .. import faults, telemetry
from ..api import open_binary
from ..codegen import IncrementVar
from ..faults import FaultPlan, InjectedFault
from ..minicc import compile_source, fib_source
from ..patch import PointType
from ..sim import Machine, StopReason
from ..symtab import Symtab


def _state(m: Machine) -> dict:
    return {
        "pc": m.pc,
        "x": list(m.x),
        "f": list(m.f),
        "pages": {idx: bytes(pg) for idx, pg in m.mem._pages.items()},
        "traps": dict(m.trap_redirects),
        "exec": list(m.exec_ranges),
    }


def _run(m: Machine):
    ev = m.run(max_steps=10_000_000)
    if ev.reason is not StopReason.EXITED:
        raise RuntimeError(f"mutatee did not exit: {ev}")
    return ev.exit_code, bytes(m.stdout)


def _build(program, plan):
    with faults.active(plan):
        edit = open_binary(program)
        calls = edit.allocate_variable("calls")
        with edit.batch() as b:
            b.insert(b.points("fib", PointType.FUNC_ENTRY),
                     IncrementVar(calls))
        return edit, calls, edit.commit()


def run_matrix(n: int = 8) -> dict:
    """The injection matrix over the fib(*n*) pipeline; returns the
    summary dict (``summary["violations"]`` empty on success)."""
    program = compile_source(fib_source(n))
    base_m = Machine()
    Symtab.from_program(program).load_into(base_m)
    baseline = _run(base_m)

    # recording pass
    plan = FaultPlan()
    edit, calls, result = _build(program, plan)
    m = Machine()
    edit.symtab.load_into(m)
    with faults.active(plan):
        result.apply_to_machine(m)
    _run(m)
    with faults.active(plan):
        result.remove_from_machine(m)
    sites = list(plan.hits)

    outcomes: list[dict] = []
    violations: list[str] = []

    def check(k, name, cond, message):
        if not cond:
            violations.append(f"site {k} ({name}): {message}")

    with telemetry.enabled() as rec:
        for k, name in enumerate(sites):
            plan = FaultPlan(fire_at=k)
            entry = {"index": k, "site": name}
            outcomes.append(entry)
            try:
                edit, calls, result = _build(program, plan)
            except InjectedFault:
                entry["phase"] = "build"
                m = Machine()
                Symtab.from_program(program).load_into(m)
                check(k, name, _run(m) == baseline,
                      "build-phase fault perturbed a fresh run")
                continue
            m = Machine()
            edit.symtab.load_into(m)
            pristine = _state(m)
            try:
                with faults.active(plan):
                    result.apply_to_machine(m)
            except InjectedFault:
                entry["phase"] = "apply"
                check(k, name, _state(m) == pristine,
                      "rollback not bit-identical to pre-apply state")
                check(k, name, _run(m) == baseline,
                      "post-rollback run diverged from baseline")
                continue
            check(k, name, _run(m) == baseline,
                  "committed run diverged from baseline")
            before_remove = _state(m)
            try:
                with faults.active(plan):
                    result.remove_from_machine(m)
            except InjectedFault:
                entry["phase"] = "remove"
                check(k, name, _state(m) == before_remove,
                      "remove rollback lost the instrumented state")
                result.remove_from_machine(m)
            else:
                entry["phase"] = ("degraded" if plan.fired is not None
                                  else "committed")
            check(k, name,
                  m.read_mem(result.text_base, len(result.text))
                  == bytes(result.original_text),
                  "text not restored after removal")
        counters = rec.snapshot()["counters"]

    phases = [e.get("phase") for e in outcomes]
    return {
        "schema": "repro.fault_matrix/1",
        "mutatee": f"fib({n})",
        "n_sites": len(sites),
        "sites": sites,
        "outcomes": outcomes,
        "by_phase": {p: phases.count(p) for p in sorted(set(phases))},
        "counters": {key: counters[key] for key in sorted(counters)
                     if key.startswith(("commit.", "springboard.",
                                        "patch.remove."))},
        "violations": violations,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        description="walk the fault-injection matrix and summarise")
    ap.add_argument("--fib", type=int, default=8,
                    help="mutatee size: fib(N) (default 8)")
    ap.add_argument("--json", metavar="PATH",
                    help="write the JSON summary to PATH")
    args = ap.parse_args(argv)

    summary = run_matrix(args.fib)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(summary, f, indent=2)
    print(f"fault matrix: {summary['n_sites']} sites over "
          f"{summary['mutatee']} — {summary['by_phase']}")
    for v in summary["violations"]:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if summary["violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
