"""Memory-access tracer: §1's motivating example ("trace ... every
memory access, or even every stack memory reference").

For every load/store instruction point in the chosen functions, inserts
a snippet that records the *effective address* into a ring buffer.  The
effective address is reconstructed at instrumentation time from the
instruction's base register + displacement — the base register still
holds its original value at the point, so ``RegExpr(base) + disp`` is
exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import (
    BinExpr, Const, IncrementVar, RegExpr, Sequence, StoreSnippet,
    VarExpr, Variable,
)
from ..parse.cfg import Function
from ..patch.points import instruction_point


@dataclass(frozen=True)
class MemEvent:
    address: int
    size: int
    is_write: bool
    pc: int


@dataclass
class MemTraceHandle:
    head: Variable
    buffer_base: int
    capacity: int
    #: event id -> (pc, size, is_write)
    sites: dict[int, tuple[int, int, bool]]

    def read(self, machine) -> list[MemEvent]:
        n = machine.mem.read_int(self.head.address, 8)
        count = min(n, self.capacity)
        events = []
        for i in range(n - count, n):
            slot = i % self.capacity
            base = self.buffer_base + 16 * slot
            site_id = machine.mem.read_int(base, 8)
            addr = machine.mem.read_int(base + 8, 8)
            pc, size, is_write = self.sites[site_id]
            events.append(MemEvent(addr, size, is_write, pc))
        return events

    def event_count(self, machine) -> int:
        return machine.mem.read_int(self.head.address, 8)


def trace_memory(binary: BinaryEdit,
                 functions: list[Function | str],
                 capacity: int = 4096,
                 loads: bool = True,
                 stores: bool = True) -> MemTraceHandle:
    """Instrument every load/store in *functions* with an
    address-recording snippet."""
    if capacity & (capacity - 1):
        raise ValueError("capacity must be a power of two")
    head = binary.allocate_variable("memtrace$head")
    buf = binary.allocate_variable("memtrace$buffer", size=16 * capacity)
    sites: dict[int, tuple[int, int, bool]] = {}

    site_id = 0
    for fn in functions:
        if isinstance(fn, str):
            fn = binary.function(fn)
        for insn in list(fn.instructions()):
            acc = insn.memory_access()
            if acc is None:
                continue
            if acc.is_write and not stores:
                continue
            if acc.is_read and not acc.is_write and not loads:
                continue
            slot = BinExpr("shl",
                           BinExpr("and", VarExpr(head),
                                   Const(capacity - 1)),
                           Const(4))  # 16 bytes per record
            record_base = BinExpr("add", Const(buf.address), slot)
            ea = BinExpr("add", RegExpr(acc.base),
                         Const(acc.displacement))
            snippet = Sequence([
                StoreSnippet(record_base, Const(site_id)),
                StoreSnippet(BinExpr("add", record_base, Const(8)), ea),
                IncrementVar(head),
            ])
            binary.insert(instruction_point(fn, insn.address), snippet)
            sites[site_id] = (insn.address, acc.size, acc.is_write)
            site_id += 1
    return MemTraceHandle(head, buf.address, capacity, sites)
