"""objdump-style CLI: disassemble and analyze RISC-V ELF binaries.

Usage::

    python -m repro.tools.objdump [-d] [-f] [--cfg] [--symbols] file.elf

* ``-d`` / default : disassembly with symbol annotations
* ``-f``           : file header summary (ISA, entry, e_flags)
* ``--cfg``        : per-function CFG summary (blocks, edges, loops)
* ``--symbols``    : symbol table
"""

from __future__ import annotations

import argparse
import sys

from ..instruction.insn import decode_insn
from ..parse.loops import natural_loops
from ..parse.parser import parse_binary
from ..riscv.decoder import DecodeError
from ..symtab.symtab import Symtab


def format_header(symtab: Symtab) -> str:
    lines = [
        f"architecture : {symtab.isa.arch_string()} "
        f"(from {symtab.isa_source})",
        f"entry point  : {symtab.entry:#x}",
    ]
    for region in symtab.regions:
        kind = "CODE" if region.executable else "DATA"
        lines.append(
            f"  {region.name:20} {region.addr:#10x}..{region.end:#x} "
            f"{kind}")
    return "\n".join(lines)


def format_symbols(symtab: Symtab) -> str:
    lines = []
    for sym in sorted(symtab.symbols.values(), key=lambda s: s.address):
        scope = "g" if sym.is_global else "l"
        lines.append(f"{sym.address:#010x} {scope} {sym.kind:8} "
                     f"{sym.size:6} {sym.name}")
    return "\n".join(lines)


def format_disassembly(symtab: Symtab,
                       heat: dict[int, int] | None = None) -> str:
    """Disassembly with symbol annotations; *heat* (block entry pc ->
    execution count, as :func:`repro.tracing.block_heat` produces it)
    adds a per-line hit-count column and a scaled bar — the annotated
    hot-path view ``tools/profile.py --annotate`` prints."""
    by_addr = {s.address: s.name for s in symtab.symbols.values()}
    max_heat = max(heat.values()) if heat else 0
    current = 0  # hit count of the block containing the current pc
    lines = []
    for region in symtab.code_regions():
        lines.append(f"\nDisassembly of {region.name}:")
        pc = region.addr
        end = region.addr + len(region.data)
        while pc < end - 1:
            if pc in by_addr:
                lines.append(f"\n{pc:#010x} <{by_addr[pc]}>:")
                current = 0
            src = symtab.lines.exact(pc)
            if src is not None:
                lines.append(f"  ; line {src}")
            if heat is not None and pc in heat:
                current = heat[pc]
            try:
                insn = decode_insn(region.data, pc - region.addr, pc)
            except DecodeError:
                hw = int.from_bytes(
                    region.data[pc - region.addr:pc - region.addr + 2],
                    "little")
                lines.append(f"  {pc:#010x}:  {hw:04x}       <unknown>")
                pc += 2
                continue
            raw = region.data[pc - region.addr:pc - region.addr + insn.length]
            hexed = raw.hex()
            text = f"  {pc:#010x}:  {hexed:10} {insn.disasm()}"
            if heat is not None:
                if current:
                    bar = "#" * max(1, round(20 * current / max_heat))
                    text = f"{text:<56}|{current:>10}x {bar}"
                else:
                    text = f"{text:<56}|"
            lines.append(text)
            pc += insn.length
    return "\n".join(lines)


def format_annotated(symtab: Symtab, heat: dict[int, int],
                     top: int = 5) -> str:
    """Hot-path disassembly: the *top* functions by summed block heat,
    each rendered with per-line hit counts."""
    co = parse_binary(symtab)
    per_fn: dict[int, int] = {}
    for pc, count in heat.items():
        fn = co.function_containing(pc)
        if fn is not None:
            per_fn[fn.entry] = per_fn.get(fn.entry, 0) + count
    hot = sorted(per_fn, key=lambda e: -per_fn[e])[:top]
    max_heat = max(heat.values()) if heat else 1
    lines = []
    for entry in hot:
        fn = co.functions[entry]
        lines.append(f"\n{entry:#010x} <{fn.name}>:  "
                     f"({per_fn[entry]:,} block executions)")
        for block in sorted(fn.blocks.values(), key=lambda b: b.start):
            count = heat.get(block.start, 0)
            for insn in block.insns:
                text = f"  {insn.address:#010x}:  {insn.disasm()}"
                if count:
                    bar = "#" * max(1, round(20 * count / max_heat))
                    lines.append(f"{text:<56}|{count:>10}x {bar}")
                else:
                    lines.append(f"{text:<56}|")
    return "\n".join(lines)


def format_frames(symtab: Symtab) -> str:
    """Per-function stack-frame report from stack-height analysis — the
    information the sp-height stepper walks with (§3.2.7)."""
    from ..dataflow.stackheight import analyze_stack_height

    co = parse_binary(symtab)
    lines = [f"{'function':24} {'frame':>7} {'ra slot':>9} {'fp?':>5}"]
    for fn in sorted(co.functions.values(), key=lambda f: f.entry):
        sh = analyze_stack_height(fn)
        ra = f"sp{sh.ra_slot:+d}" if sh.ra_slot is not None else "-"
        fp = "yes" if sh.fp_saved_slot is not None else "no"
        lines.append(
            f"{fn.name:24} {sh.frame_size:>7} {ra:>9} {fp:>5}")
    return "\n".join(lines)


def format_mix(symtab: Symtab) -> str:
    """Static instruction-mix histogram per function."""
    from collections import Counter

    co = parse_binary(symtab)
    lines = []
    for fn in sorted(co.functions.values(), key=lambda f: f.entry):
        mix = Counter(i.category.value for i in fn.instructions())
        total = sum(mix.values())
        if not total:
            continue
        parts = ", ".join(f"{k} {100 * v / total:.0f}%"
                          for k, v in mix.most_common(4))
        compressed = sum(1 for i in fn.instructions() if i.is_compressed)
        lines.append(f"{fn.name:24} {total:>5} insns "
                     f"({100 * compressed / total:.0f}% RVC): {parts}")
    return "\n".join(lines)


def format_cfg(symtab: Symtab) -> str:
    co = parse_binary(symtab)
    lines = []
    for fn in sorted(co.functions.values(), key=lambda f: f.entry):
        loops = natural_loops(fn)
        lines.append(
            f"\n{fn.name} @ {fn.entry:#x}: {len(fn.blocks)} blocks, "
            f"{len(loops)} loops, "
            f"{'returns' if fn.returns else 'noreturn'}")
        for b in sorted(fn.blocks.values(), key=lambda b: b.start):
            edges = ", ".join(
                f"{e.kind.value}->"
                f"{format(e.target, '#x') if e.target is not None else '?'}"
                for e in b.out_edges)
            lines.append(f"  block {b.start:#x}..{b.end:#x}  [{edges}]")
        if fn.jump_tables:
            for site, targets in fn.jump_tables.items():
                lines.append(
                    f"  jump table @ {site:#x}: {len(targets)} targets")
        if fn.unresolved:
            lines.append(
                f"  unresolved indirect: "
                f"{', '.join(format(a, '#x') for a in fn.unresolved)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-objdump",
        description="disassemble/analyze RISC-V ELF binaries")
    ap.add_argument("file", help="ELF file")
    ap.add_argument("-d", "--disassemble", action="store_true")
    ap.add_argument("-f", "--file-header", action="store_true")
    ap.add_argument("--cfg", action="store_true")
    ap.add_argument("--symbols", action="store_true")
    ap.add_argument("--frames", action="store_true",
                    help="stack-frame analysis per function")
    ap.add_argument("--mix", action="store_true",
                    help="static instruction-mix histogram")
    ap.add_argument("--heat", metavar="JSON",
                    help="block-heat JSON ({pc: count}, as written by "
                         "tools/profile.py --heat-json); annotates the "
                         "disassembly with per-block hit counts")
    args = ap.parse_args(argv)

    heat = None
    if args.heat:
        import json

        with open(args.heat) as fh:
            heat = {int(k, 0): v for k, v in json.load(fh).items()}

    with open(args.file, "rb") as fh:
        symtab = Symtab.from_bytes(fh.read())

    none_selected = not (args.disassemble or args.file_header
                         or args.cfg or args.symbols or args.frames
                         or args.mix)
    try:
        if args.file_header or none_selected:
            print(format_header(symtab))
        if args.symbols:
            print(format_symbols(symtab))
        if args.cfg:
            print(format_cfg(symtab))
        if args.frames:
            print(format_frames(symtab))
        if args.mix:
            print(format_mix(symtab))
        if args.disassemble or none_selected:
            print(format_disassembly(symtab, heat=heat))
    except BrokenPipeError:  # e.g. `| head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
