"""Counting tools: the instrumentation the paper benchmarks (§4.1).

"The Dyninst instrumentation program inserted simple instrumentation
into the application program.  This instrumentation simply increments a
counter in memory."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import IncrementVar, Variable
from ..parse.cfg import Function
from ..patch.points import PointType


@dataclass
class CounterHandle:
    """A counter installed at a set of points."""

    variable: Variable
    n_points: int

    def read(self, machine) -> int:
        return machine.mem.read_int(self.variable.address, 8)


def count_function_entries(binary: BinaryEdit, fn: Function | str,
                           name: str | None = None) -> CounterHandle:
    """Experiment 1 of §4.1: one counter increment per function call."""
    if isinstance(fn, str):
        fn = binary.function(fn)
    var = binary.allocate_variable(name or f"entries${fn.name}")
    pts = binary.points(fn, PointType.FUNC_ENTRY)
    binary.insert(pts, IncrementVar(var))
    return CounterHandle(var, len(pts))


def count_basic_blocks(binary: BinaryEdit, fn: Function | str,
                       name: str | None = None) -> CounterHandle:
    """Experiment 2 of §4.1: a counter increment at the start of every
    basic block in the function."""
    if isinstance(fn, str):
        fn = binary.function(fn)
    var = binary.allocate_variable(name or f"blocks${fn.name}")
    pts = binary.points(fn, PointType.BLOCK_ENTRY)
    binary.insert(pts, IncrementVar(var))
    return CounterHandle(var, len(pts))


def count_loop_iterations(binary: BinaryEdit, fn: Function | str,
                          name: str | None = None) -> CounterHandle:
    """Counter on every loop back edge (the paper's CFG-level points)."""
    if isinstance(fn, str):
        fn = binary.function(fn)
    var = binary.allocate_variable(name or f"backedges${fn.name}")
    pts = binary.points(fn, PointType.LOOP_BACKEDGE)
    binary.insert(pts, IncrementVar(var))
    return CounterHandle(var, len(pts))
