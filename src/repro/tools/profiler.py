"""Sampling profiler: the HPCToolkit-style performance tool the paper
opens with (§1/§2 cite HPCToolkit as the flagship Dyninst consumer).

Periodically interrupts the mutatee (the simulator's step quantum plays
the role of a timer signal) and accumulates flat and call-path
profiles.  Call stacks come from the shared execution event stream
(:mod:`repro.telemetry.events` + :mod:`repro.tracing.callstack`): the
machine emits call/return events between samples and the
:class:`~repro.tracing.CallStackBuilder` folds them into the live
stack, falling back to a StackwalkerAPI walk of the stopped hart
whenever the link-register convention cannot explain a return
(longjmp, trampolines, hand-written assembly).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..parse.parser import CodeObject
from ..proccontrol.process import Process
from ..sim.machine import StopReason
from ..stackwalk.walker import StackWalker
from ..telemetry.events import EventStream
from ..tracing.callstack import CallStackBuilder, SymbolIndex


@dataclass
class Profile:
    """Accumulated samples."""

    #: function name -> samples with that function on top (self time)
    flat: Counter = field(default_factory=Counter)
    #: function name -> samples with the function anywhere on the stack
    cumulative: Counter = field(default_factory=Counter)
    #: full call path (tuple of names, outermost first) -> samples
    call_paths: Counter = field(default_factory=Counter)
    #: (function name, source line) -> self samples; populated when the
    #: binary carries debug line info (HPCToolkit's line-level view)
    line_flat: Counter = field(default_factory=Counter)
    total_samples: int = 0

    def report(self, top: int = 10) -> str:
        lines = [f"samples: {self.total_samples}",
                 "", f"{'self%':>7} {'cum%':>7}  function"]
        for name, n in self.flat.most_common(top):
            cum = self.cumulative.get(name, n)
            lines.append(
                f"{100 * n / self.total_samples:>6.1f}% "
                f"{100 * cum / self.total_samples:>6.1f}%  {name}")
        lines.append("")
        lines.append("hottest call paths:")
        for path, n in self.call_paths.most_common(5):
            lines.append(
                f"  {100 * n / self.total_samples:>5.1f}%  "
                f"{' -> '.join(path)}")
        if self.line_flat:
            lines.append("")
            lines.append("hottest source lines:")
            for (fn, line), n in self.line_flat.most_common(5):
                lines.append(
                    f"  {100 * n / self.total_samples:>5.1f}%  "
                    f"{fn}:{line}")
        return "\n".join(lines)


def profile_process(proc: Process, code_object: CodeObject,
                    quantum: int = 2000,
                    max_samples: int = 100_000) -> Profile:
    """Run the process to completion, sampling the stack every *quantum*
    simulated instructions."""
    machine = proc.machine
    walker = StackWalker(proc, code_object)
    symbols = SymbolIndex.from_code_object(code_object)
    builder = CallStackBuilder(
        symbols, walker=lambda: [f.pc for f in walker.walk()])
    # small ring, drained every quantum; the builder carries the state
    stream = EventStream(capacity=max(2 * quantum, 4096))
    machine.attach_observer(stream)
    prof = Profile()
    try:
        while not proc.exited and prof.total_samples < max_samples:
            stop = machine.run(max_steps=quantum)
            if stream.dropped:
                # ring overflow would desync the builder: resync from
                # the stack walker and start a fresh window
                builder.resync([f.pc for f in walker.walk()])
                stream.dropped = 0
                stream.clear()
            else:
                builder.feed(stream.drain())
            if stop.reason is StopReason.EXITED:
                break
            if stop.reason is not StopReason.STEPS_EXHAUSTED:
                raise RuntimeError(
                    f"unexpected stop while profiling: {stop}")
            stack = builder.current_stack()
            if not stack:
                continue
            prof.total_samples += 1
            top = stack[-1]
            prof.flat[top] += 1
            for name in set(stack):
                prof.cumulative[name] += 1
            prof.call_paths[stack] += 1
            # line-level attribution when debug info is available
            hit = code_object.symtab.lines.lookup(machine.pc)
            if hit is not None:
                fn = code_object.function_containing(machine.pc)
                if fn is not None and hit[0] >= fn.entry:
                    prof.line_flat[(top, hit[1])] += 1
    finally:
        machine.detach_observer(stream)
    return prof
