"""Sampling profiler: the HPCToolkit-style performance tool the paper
opens with (§1/§2 cite HPCToolkit as the flagship Dyninst consumer).

Periodically interrupts the mutatee (the simulator's step quantum plays
the role of a timer signal), walks the call stack with StackwalkerAPI,
and accumulates flat and call-path profiles — no instrumentation at
all, pure ProcControl + Stackwalker.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..parse.parser import CodeObject
from ..proccontrol.process import Process
from ..sim.machine import StopReason
from ..stackwalk.walker import StackWalker


@dataclass
class Profile:
    """Accumulated samples."""

    #: function name -> samples with that function on top (self time)
    flat: Counter = field(default_factory=Counter)
    #: function name -> samples with the function anywhere on the stack
    cumulative: Counter = field(default_factory=Counter)
    #: full call path (tuple of names, outermost first) -> samples
    call_paths: Counter = field(default_factory=Counter)
    #: (function name, source line) -> self samples; populated when the
    #: binary carries debug line info (HPCToolkit's line-level view)
    line_flat: Counter = field(default_factory=Counter)
    total_samples: int = 0

    def report(self, top: int = 10) -> str:
        lines = [f"samples: {self.total_samples}",
                 "", f"{'self%':>7} {'cum%':>7}  function"]
        for name, n in self.flat.most_common(top):
            cum = self.cumulative.get(name, n)
            lines.append(
                f"{100 * n / self.total_samples:>6.1f}% "
                f"{100 * cum / self.total_samples:>6.1f}%  {name}")
        lines.append("")
        lines.append("hottest call paths:")
        for path, n in self.call_paths.most_common(5):
            lines.append(
                f"  {100 * n / self.total_samples:>5.1f}%  "
                f"{' -> '.join(path)}")
        if self.line_flat:
            lines.append("")
            lines.append("hottest source lines:")
            for (fn, line), n in self.line_flat.most_common(5):
                lines.append(
                    f"  {100 * n / self.total_samples:>5.1f}%  "
                    f"{fn}:{line}")
        return "\n".join(lines)


def profile_process(proc: Process, code_object: CodeObject,
                    quantum: int = 2000,
                    max_samples: int = 100_000) -> Profile:
    """Run the process to completion, sampling the stack every *quantum*
    simulated instructions."""
    walker = StackWalker(proc, code_object)
    prof = Profile()
    while not proc.exited and prof.total_samples < max_samples:
        stop = proc.machine.run(max_steps=quantum)
        if stop.reason is StopReason.EXITED:
            break
        if stop.reason is not StopReason.STEPS_EXHAUSTED:
            raise RuntimeError(f"unexpected stop while profiling: {stop}")
        frames = walker.walk()
        if not frames:
            continue
        prof.total_samples += 1
        names = [f.function_name or "???" for f in frames]
        prof.flat[names[0]] += 1
        for name in set(names):
            prof.cumulative[name] += 1
        prof.call_paths[tuple(reversed(names))] += 1
        # line-level attribution when debug info is available
        hit = code_object.symtab.lines.lookup(frames[0].pc)
        if hit is not None:
            fn = code_object.function_containing(frames[0].pc)
            if fn is not None and hit[0] >= fn.entry:
                prof.line_flat[(names[0], hit[1])] += 1
    return prof
