"""Pipeline telemetry reporter: instrument a mutatee, run it, report.

The §4.3 evaluation needs the pipeline to measure itself; this tool
drives the whole stack — minicc compile, parse (CFG build + gap scan +
jal/jalr disambiguation), liveness, springboard selection, trampoline
build, traced simulation — with telemetry enabled, then prints the
per-phase tables (or, with ``--json``, the raw snapshot).

Run from a checkout::

    PYTHONPATH=src python -m repro.tools.stats            # table
    PYTHONPATH=src python -m repro.tools.stats --json     # snapshot

or via the repository shim ``tools/stats.py``.
"""

from __future__ import annotations

import argparse
import sys

from .. import telemetry
from ..api import InstrumentOptions, open_binary
from ..codegen.snippets import IncrementVar
from ..minicc import compile_source
from ..minicc.workloads import fib_source, matmul_source, qsort_source
from ..patch.points import PointType

WORKLOADS = {
    "matmul": lambda args: matmul_source(args.n, args.reps),
    "fib": lambda args: fib_source(args.n),
    "qsort": lambda args: qsort_source(max(args.n, 8)),
}


def run_pipeline(args) -> dict:
    """Compile, instrument, and run one workload under telemetry;
    returns ``{"counters_read": ..., "exit_code": ...}``."""
    program = compile_source(WORKLOADS[args.workload](args))
    options = InstrumentOptions(
        use_dead_registers=not args.no_dead_registers,
        patch_base=args.patch_base)
    with open_binary(program, options) as edit:
        handles = []
        with edit.batch() as b:
            for fn in b.functions():
                var = b.allocate_variable(f"entries${fn.name}")
                pts = b.points(fn, PointType.FUNC_ENTRY)
                if pts:
                    b.insert(pts, IncrementVar(var))
                    handles.append((fn.name, var))
        machine, event = edit.run_instrumented()
    counters = {name: machine.mem.read_int(var.address, 8)
                for name, var in handles}
    return {"counters_read": counters, "exit_code": event.exit_code}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="stats", description=__doc__.splitlines()[0])
    ap.add_argument("--json", action="store_true",
                    help="dump the raw telemetry snapshot as JSON")
    ap.add_argument("--workload", choices=sorted(WORKLOADS),
                    default="matmul")
    ap.add_argument("--n", type=int, default=10,
                    help="workload size (matrix dim / fib n)")
    ap.add_argument("--reps", type=int, default=3,
                    help="workload repetitions (matmul)")
    ap.add_argument("--no-dead-registers", action="store_true",
                    help="disable the dead-register scratch optimisation")
    ap.add_argument("--patch-base", type=lambda s: int(s, 0), default=None,
                    help="force a far trampoline base (exercises the "
                         "auipc+jalr / trap springboard tiers)")
    args = ap.parse_args(argv)

    with telemetry.enabled() as rec:
        outcome = run_pipeline(args)
        snapshot = rec.snapshot()

    if args.json:
        import json

        print(json.dumps(snapshot, indent=2))
    else:
        print(f"workload: {args.workload} (n={args.n}, reps={args.reps}) "
              f"exit={outcome['exit_code']}")
        print()
        print(telemetry.format_report(snapshot), end="")
        if outcome["counters_read"]:
            print("== instrumentation counters (mutatee data area)")
            for name, value in sorted(outcome["counters_read"].items()):
                print(f"  {name:<40}{value:>11,}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
