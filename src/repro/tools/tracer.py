"""Function-call tracer: the classic "trace every function entry and
exit" tool from the paper's introduction.

Two implementations of the same tool, one per observation mechanism:

* :func:`trace_functions` — pure snippet instrumentation: events are
  written into a ring buffer in the instrumentation *data area*, one
  8-byte word per event, ``(func_id << 1) | is_exit``, decoded after
  the run (the mutatee records its own trace);
* :func:`trace_calls` — zero instrumentation: the simulator's execution
  event stream (:mod:`repro.telemetry.events`) supplies call/return
  events directly, decoded against the parsed symbols.

Both yield the same :class:`TraceEvent` records, which is itself a
useful cross-check (the instrumented trace must match the observed
one).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.bpatch import BinaryEdit
from ..codegen.snippets import (
    BinExpr, Const, IncrementVar, Sequence, StoreSnippet, VarExpr, Variable,
)
from ..parse.cfg import Function
from ..patch.points import PointType
from ..telemetry.events import CALL, RET
from ..tracing.callstack import SymbolIndex


@dataclass(frozen=True)
class TraceEvent:
    function: str
    kind: str  # 'entry' | 'exit'


@dataclass
class TraceHandle:
    head: Variable
    buffer_base: int
    capacity: int
    id_to_name: dict[int, str]

    def read(self, machine) -> list[TraceEvent]:
        """Decode the ring buffer (oldest lost if it wrapped)."""
        n = machine.mem.read_int(self.head.address, 8)
        count = min(n, self.capacity)
        start = n - count
        events = []
        for i in range(start, n):
            slot = i % self.capacity
            word = machine.mem.read_int(self.buffer_base + 8 * slot, 8)
            fid = word >> 1
            kind = "exit" if word & 1 else "entry"
            events.append(TraceEvent(
                self.id_to_name.get(fid, f"?{fid}"), kind))
        return events

    def event_count(self, machine) -> int:
        return machine.mem.read_int(self.head.address, 8)


def trace_functions(binary: BinaryEdit,
                    functions: list[Function | str],
                    capacity: int = 1024) -> TraceHandle:
    """Instrument entry and every exit of the given functions."""
    if capacity & (capacity - 1):
        raise ValueError("capacity must be a power of two")
    head = binary.allocate_variable("trace$head")
    buf = binary.allocate_variable("trace$buffer", size=8 * capacity)
    id_to_name: dict[int, str] = {}

    def record(word_value: int):
        slot = BinExpr("shl",
                       BinExpr("and", VarExpr(head),
                               Const(capacity - 1)),
                       Const(3))
        return Sequence([
            StoreSnippet(BinExpr("add", Const(buf.address), slot),
                         Const(word_value)),
            IncrementVar(head),
        ])

    for i, fn in enumerate(functions):
        if isinstance(fn, str):
            fn = binary.function(fn)
        id_to_name[i] = fn.name
        binary.insert(binary.points(fn, PointType.FUNC_ENTRY),
                      record(i << 1))
        exits = binary.points(fn, PointType.FUNC_EXIT)
        for pt in exits:
            binary.insert(pt, record((i << 1) | 1))
    return TraceHandle(head, buf.address, capacity, id_to_name)


def trace_calls(binary: BinaryEdit,
                functions: list[Function | str] | None = None,
                max_steps: int | None = None) -> list[TraceEvent]:
    """Observe the mutatee's function entries/exits without inserting a
    single snippet: run under an execution event stream and decode its
    call/return events.

    *functions* optionally restricts the trace (names or parsed
    functions); by default every call crossing a known function entry
    is reported.
    """
    wanted: set[str] | None = None
    if functions is not None:
        wanted = {fn if isinstance(fn, str) else fn.name
                  for fn in functions}
    symbols = SymbolIndex.from_code_object(binary.cfg)
    session = binary.trace(max_steps=max_steps)
    events: list[TraceEvent] = []
    for kind, pc, target, _instret, _ucycles in session.events:
        if kind == CALL:
            name = symbols.entry_name(target) or symbols.name_at(target)
        elif kind == RET:
            name = symbols.name_at(pc)
        else:
            continue
        if wanted is not None and name not in wanted:
            continue
        events.append(TraceEvent(name, "entry" if kind == CALL
                                 else "exit"))
    return events
