"""StackwalkerAPI: collect call stacks from a stopped process
(paper §2.2, §3.2.7).

The walker builds the top frame from the stopped hart's pc/sp/fp, then
repeatedly asks its ordered stepper plugins to produce the caller frame,
annotating each frame with the containing function's name.  Walking
stops at the program entry function, an unwalkable frame form (all
steppers decline), a nonsense return address, or the depth limit.
"""

from __future__ import annotations

from ..parse.parser import CodeObject
from ..proccontrol.process import Process
from .steppers import Frame, FramePointerStepper, FrameStepper, SPHeightStepper


class StackWalker:
    """Walks the call stack of a (stopped) controlled process."""

    def __init__(self, process: Process, code_object: CodeObject,
                 steppers: list[FrameStepper] | None = None,
                 max_depth: int = 256):
        self.process = process
        self.code_object = code_object
        self.steppers = steppers if steppers is not None else [
            SPHeightStepper(code_object),
            FramePointerStepper(),
        ]
        self.max_depth = max_depth

    # stepper callbacks -------------------------------------------------

    def read_memory(self, addr: int, n: int) -> bytes:
        return self.process.read_memory(addr, n)

    def get_register(self, name: str) -> int:
        return self.process.get_register(name)

    # walking -----------------------------------------------------------------

    def _name_of(self, pc: int) -> str | None:
        fn = self.code_object.function_containing(pc)
        return fn.name if fn is not None else None

    def _is_entry_function(self, pc: int) -> bool:
        fn = self.code_object.function_containing(pc)
        return fn is not None and fn.entry == self.code_object.symtab.entry

    def walk(self) -> list[Frame]:
        """Return the stack, innermost frame first."""
        top = Frame(
            pc=self.process.pc,
            sp=self.process.get_register("sp"),
            fp=self.process.get_register("s0"),
            function_name=self._name_of(self.process.pc),
        )
        frames = [top]
        current = top
        for depth in range(self.max_depth):
            if self._is_entry_function(current.pc):
                break
            nxt = self._step_one(current, is_top=depth == 0)
            if nxt is None:
                break
            if not self.code_object.symtab.is_code(nxt.pc):
                break
            nxt = Frame(nxt.pc, nxt.sp, nxt.fp,
                        function_name=self._name_of(nxt.pc),
                        stepper=nxt.stepper)
            frames.append(nxt)
            current = nxt
        return frames

    def _step_one(self, frame: Frame, is_top: bool) -> Frame | None:
        for stepper in self.steppers:
            nxt = stepper.step(self, frame, is_top)
            if nxt is not None:
                return nxt
        return None

    def format(self, frames: list[Frame] | None = None) -> str:
        """Human-readable stack trace (with source lines when the binary
        carries debug info)."""
        frames = frames if frames is not None else self.walk()
        symtab = self.code_object.symtab
        lines = []
        for i, fr in enumerate(frames):
            name = fr.function_name or "???"
            at = ""
            hit = symtab.lines.lookup(fr.pc)
            if hit is not None:
                fn = self.code_object.function_containing(fr.pc)
                # only annotate when the marker is inside this function
                if fn is not None and hit[0] >= fn.entry:
                    at = f":{hit[1]}"
            via = f"  (via {fr.stepper})" if fr.stepper else ""
            lines.append(f"#{i}  {fr.pc:#010x}  {name}{at}{via}")
        return "\n".join(lines)
