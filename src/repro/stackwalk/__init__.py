"""StackwalkerAPI: call-stack collection with pluggable frame steppers."""

from .steppers import Frame, FramePointerStepper, FrameStepper, SPHeightStepper
from .walker import StackWalker

__all__ = ["Frame", "FramePointerStepper", "FrameStepper",
           "SPHeightStepper", "StackWalker"]
