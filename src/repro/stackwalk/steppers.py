"""Frame steppers: the plugin architecture of StackwalkerAPI
(paper §3.2.7).

"Stack frames can appear in a variety of forms or even missing
altogether" — each stepper knows one frame form; the walker tries them
in order for every frame:

* :class:`SPHeightStepper` — the RISC-V-critical one.  Most RISC-V
  compilers use x8 as a general register and address frames purely off
  sp (§3.2.7), so walking requires DataflowAPI's stack-height analysis:
  given pc and sp, reconstruct the entry sp and load ra from its
  analysed save slot (or take it live from the ra register when the
  prologue has not saved it yet).
* :class:`FramePointerStepper` — classic s0-chained frames
  (``ra`` at ``s0-8``, caller's ``s0`` at ``s0-16``), for binaries
  compiled with a frame pointer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dataflow.stackheight import StackHeightResult, analyze_stack_height
from ..parse.parser import CodeObject


@dataclass(frozen=True)
class Frame:
    """One walked stack frame."""

    pc: int
    sp: int
    fp: int
    function_name: str | None = None
    #: which stepper produced the *next* (caller) frame from this one
    stepper: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self.function_name or "?"
        return f"<Frame {name} pc={self.pc:#x} sp={self.sp:#x}>"


class FrameStepper:
    """Base class: produce the caller's frame from the current one."""

    name = "base"

    def step(self, walker, frame: Frame, is_top: bool) -> Frame | None:
        raise NotImplementedError


class SPHeightStepper(FrameStepper):
    """sp-relative walking via stack-height analysis (frame-pointer-less
    code, the RISC-V common case)."""

    name = "sp-height"

    def __init__(self, code_object: CodeObject):
        self.code_object = code_object
        self._cache: dict[int, StackHeightResult] = {}

    def _analysis(self, fn) -> StackHeightResult:
        if fn.entry not in self._cache:
            self._cache[fn.entry] = analyze_stack_height(fn)
        return self._cache[fn.entry]

    def step(self, walker, frame: Frame, is_top: bool) -> Frame | None:
        fn = self.code_object.function_containing(frame.pc)
        if fn is None:
            return None
        sh = self._analysis(fn)
        h = sh.height_before(frame.pc)
        if h is None:
            return None
        entry_sp = frame.sp - h

        ra_value: int | None = None
        if sh.ra_slot is not None and (
                sh.ra_save_addr is None or not is_top
                or frame.pc > sh.ra_save_addr):
            try:
                ra_value = int.from_bytes(
                    walker.read_memory(entry_sp + sh.ra_slot, 8), "little")
            except Exception:
                return None
        elif is_top:
            # prologue not yet run (or leaf function): ra is live
            ra_value = walker.get_register("ra")
        if not ra_value:
            return None
        return Frame(
            pc=ra_value, sp=entry_sp, fp=frame.fp,
            function_name=None, stepper=self.name)


class FramePointerStepper(FrameStepper):
    """Classic frame-pointer chain: ra at fp-8, caller fp at fp-16."""

    name = "frame-pointer"

    def step(self, walker, frame: Frame, is_top: bool) -> Frame | None:
        fp = frame.fp
        if fp == 0 or fp & 7:
            return None
        try:
            ra_value = int.from_bytes(
                walker.read_memory(fp - 8, 8), "little")
            caller_fp = int.from_bytes(
                walker.read_memory(fp - 16, 8), "little")
        except Exception:
            return None
        if not ra_value:
            return None
        return Frame(pc=ra_value, sp=fp, fp=caller_fp,
                     function_name=None, stepper=self.name)
