"""Call-stack reconstruction from mutatee execution event streams.

The simulator's :class:`~repro.telemetry.events.EventStream` carries
flat control-flow events; this module folds them back into nested call
spans using the RISC-V link-register conventions that
:mod:`repro.parse.branch_classify` codifies (§3.2.3): a ``jal``/``jalr``
writing ``ra``/``t0`` opens a frame, a ``jalr x0`` consuming a link
register closes one, and a jump landing on a known function *entry*
closes-and-reopens at the same depth (tail call).

Real control flow is messier than the convention — longjmp,
hand-written assembly, trampolines.  The builder therefore validates
every return against the recorded call site (a return lands 2 or 4
bytes past its call), scans down the stack for the matching frame when
the top does not line up, counts what it could not explain in
:attr:`CallStackBuilder.irregular`, and — when the caller wires one in
— resynchronises from a :mod:`repro.stackwalk` walk of the live machine
(:meth:`CallStackBuilder.resync`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..telemetry.events import BLOCK, CALL, JUMP, RET

#: a return lands this many bytes past its call site (c.jalr / jalr)
_CALL_LENGTHS = (2, 4)


class SymbolIndex:
    """Sorted function map: address -> containing function / entry name.

    Built from ``(address, size, name)`` triples; zero-size functions
    extend to the next function's entry.  Addresses outside every
    function render as hex (the profiler never drops samples on the
    floor just because symbols are missing).
    """

    def __init__(self, functions):
        funcs = sorted({(int(a), int(sz), str(n)) for a, sz, n in functions})
        self._funcs = funcs
        self._addrs = [a for a, _, _ in funcs]
        self._entries = {a: n for a, _, n in funcs}

    @classmethod
    def from_program(cls, program) -> "SymbolIndex":
        """From an assembler/minicc ``Program`` (``function_symbols()``)."""
        return cls((s.address, s.size, s.name)
                   for s in program.function_symbols())

    @classmethod
    def from_code_object(cls, code_object) -> "SymbolIndex":
        """From a parsed :class:`~repro.parse.parser.CodeObject`."""
        return cls((fn.entry, fn.size, fn.name)
                   for fn in code_object.functions.values())

    def is_entry(self, addr: int) -> bool:
        return addr in self._entries

    def entry_name(self, addr: int) -> str | None:
        return self._entries.get(addr)

    def name_at(self, addr: int) -> str:
        """Name of the function containing *addr* (hex when unknown)."""
        i = bisect_right(self._addrs, addr) - 1
        if i >= 0:
            start, size, name = self._funcs[i]
            end = start + size if size else (
                self._addrs[i + 1] if i + 1 < len(self._addrs)
                else addr + 1)
            if addr < end:
                return name
        return f"{addr:#x}"


@dataclass
class CallSpan:
    """One reconstructed mutatee call: a function activation in time.

    Timestamps are the simulator's retired-instruction count and
    micro-cycle clock at frame open/close; *stack* is the full root-to-
    self name path (the folded-stack line the flamegraph exporter
    emits).
    """

    name: str
    entry: int
    depth: int
    call_site: int
    start_instret: int
    start_ucycles: int
    end_instret: int = 0
    end_ucycles: int = 0
    stack: tuple[str, ...] = ()
    #: opened by a tail call (previous frame at this depth was replaced)
    tail: bool = False

    @property
    def instructions(self) -> int:
        return self.end_instret - self.start_instret

    @property
    def ucycles(self) -> int:
        return self.end_ucycles - self.start_ucycles


class _Frame:
    __slots__ = ("name", "entry", "call_site", "start_instret",
                 "start_ucycles", "stack", "tail")

    def __init__(self, name, entry, call_site, instret, ucycles,
                 parent_stack, tail=False):
        self.name = name
        self.entry = entry
        self.call_site = call_site
        self.start_instret = instret
        self.start_ucycles = ucycles
        self.stack = parent_stack + (name,)
        self.tail = tail


class CallStackBuilder:
    """Incremental call-stack reconstruction over an event stream.

    Feed events (oldest first) with :meth:`feed`; closed activations
    accumulate in :attr:`spans` and :meth:`finish` closes whatever is
    still open at the last seen timestamp.  *walker*, when provided, is
    a zero-argument callable returning the live machine's frame pcs
    innermost-first (:meth:`repro.stackwalk.StackWalker.walk` adapted);
    it is consulted to resynchronise when a return cannot be matched to
    any recorded call site.
    """

    def __init__(self, symbols: SymbolIndex, walker=None):
        self.symbols = symbols
        self.spans: list[CallSpan] = []
        #: control transfers the link-register convention could not
        #: explain (mismatched returns, longjmp-style unwinds)
        self.irregular = 0
        #: how many times the stackwalk fallback resynchronised us
        self.resyncs = 0
        self._walker = walker
        self._open: list[_Frame] = []
        self._tick = (0, 0)  # (instret, ucycles) of the last event

    # -- event intake ----------------------------------------------------

    def feed(self, events) -> "CallStackBuilder":
        """Process an iterable of event tuples (oldest first)."""
        for ev in events:
            self.feed_one(ev)
        return self

    def feed_one(self, ev: tuple) -> None:
        kind, pc, target, instret, ucycles = ev
        self._tick = (instret, ucycles)
        if kind == CALL:
            self._push(pc, target, instret, ucycles)
        elif kind == RET:
            self._pop(pc, target, instret, ucycles)
        elif kind == JUMP:
            # a jump landing on a function entry is a tail call: the
            # current activation is replaced at the same depth
            if self._open and self.symbols.is_entry(target) \
                    and target != self._open[-1].entry:
                self._close(self._open.pop(), instret, ucycles)
                self._push(pc, target, instret, ucycles, tail=True)
        elif kind == BLOCK and not self._open:
            # first observed block seeds the root activation
            name = self.symbols.name_at(pc)
            self._open.append(_Frame(name, pc, 0, instret, ucycles, ()))

    # -- stack operations ------------------------------------------------

    def _push(self, call_site, target, instret, ucycles, tail=False):
        name = self.symbols.entry_name(target) or \
            self.symbols.name_at(target)
        parent = self._open[-1].stack if self._open else ()
        self._open.append(
            _Frame(name, target, call_site, instret, ucycles, parent,
                   tail))

    def _pop(self, ret_site, ret_to, instret, ucycles):
        open_ = self._open
        if not open_:
            self.irregular += 1
            return
        # normal case: the return lands just past the top frame's call
        top = open_[-1]
        if top.call_site and ret_to - top.call_site in _CALL_LENGTHS:
            self._close(open_.pop(), instret, ucycles)
            return
        # scan down for the matching frame (longjmp / missed returns):
        # everything above it was abandoned, close it all
        for i in range(len(open_) - 2, -1, -1):
            fr = open_[i]
            if fr.call_site and ret_to - fr.call_site in _CALL_LENGTHS:
                self.irregular += len(open_) - 1 - i
                while len(open_) > i:
                    self._close(open_.pop(), instret, ucycles)
                return
        # no recorded call site matches: irregular control flow
        self.irregular += 1
        if self._walker is not None:
            self.resync(self._walker())
            return
        if len(open_) > 1:  # keep the root activation open
            self._close(open_.pop(), instret, ucycles)

    def _close(self, frame: _Frame, instret, ucycles):
        self.spans.append(CallSpan(
            name=frame.name, entry=frame.entry, depth=len(frame.stack) - 1,
            call_site=frame.call_site,
            start_instret=frame.start_instret,
            start_ucycles=frame.start_ucycles,
            end_instret=instret, end_ucycles=ucycles,
            stack=frame.stack, tail=frame.tail))

    # -- stackwalk fallback ----------------------------------------------

    def resync(self, frame_pcs) -> None:
        """Reset the open stack to *frame_pcs* (innermost-first, as
        :meth:`repro.stackwalk.StackWalker.walk` reports them) at the
        current timestamp.  Frames that survive by name keep their start
        times; the rest are closed/opened here."""
        self.resyncs += 1
        instret, ucycles = self._tick
        want = [self.symbols.name_at(pc) for pc in reversed(list(frame_pcs))]
        keep = 0
        while keep < len(want) and keep < len(self._open) and \
                self._open[keep].name == want[keep]:
            keep += 1
        while len(self._open) > keep:
            self._close(self._open.pop(), instret, ucycles)
        for name in want[keep:]:
            parent = self._open[-1].stack if self._open else ()
            self._open.append(
                _Frame(name, 0, 0, instret, ucycles, parent))

    # -- results ---------------------------------------------------------

    def current_stack(self) -> tuple[str, ...]:
        """Names of the activations open right now, root first."""
        return self._open[-1].stack if self._open else ()

    @property
    def depth(self) -> int:
        return len(self._open)

    def finish(self) -> list[CallSpan]:
        """Close every still-open frame at the last event's timestamp
        and return all spans ordered by (start, depth)."""
        instret, ucycles = self._tick
        while self._open:
            self._close(self._open.pop(), instret, ucycles)
        self.spans.sort(key=lambda s: (s.start_instret, s.depth))
        return self.spans


def call_spans(events, symbols: SymbolIndex,
               walker=None) -> list[CallSpan]:
    """One-shot reconstruction: events -> finished :class:`CallSpan` list."""
    return CallStackBuilder(symbols, walker=walker).feed(events).finish()


def block_heat(events) -> dict[int, int]:
    """Per-block execution counts: ``{block entry pc: times entered}``
    from the stream's block-enter events."""
    heat: dict[int, int] = {}
    for kind, pc, _target, _instret, _ucycles in events:
        if kind == BLOCK:
            heat[pc] = heat.get(pc, 0) + 1
    return heat
