"""Mutatee execution tracing: event-stream consumers.

The simulator emits control-flow events into
:class:`repro.telemetry.events.EventStream` observers; this package
turns those flat streams into artefacts a human can read:

* :mod:`.callstack` — link-register-convention call-stack
  reconstruction (:class:`CallStackBuilder`, :class:`CallSpan`,
  :class:`SymbolIndex`) with a stackwalk fallback for irregular flow;
* :mod:`.perfetto` — Chrome trace-event / Perfetto JSON export
  correlating mutatee spans with the toolkit's own pipeline spans;
* :mod:`.flamegraph` — folded-stack text for ``flamegraph.pl`` /
  inferno / speedscope.

``tools/profile.py`` is the command-line front end; the API v2 entry
points are :meth:`repro.api.BinaryEdit.trace` and
``Machine.run(trace=...)``.
"""

from .callstack import (
    CallSpan, CallStackBuilder, SymbolIndex, block_heat, call_spans,
)
from .flamegraph import (
    folded_stacks, format_folded, hottest, write_flamegraph,
)
from .perfetto import perfetto_trace, validate_perfetto, write_perfetto

__all__ = [
    "CallSpan", "CallStackBuilder", "SymbolIndex", "block_heat",
    "call_spans", "folded_stacks", "format_folded", "hottest",
    "write_flamegraph", "perfetto_trace", "validate_perfetto",
    "write_perfetto",
]
