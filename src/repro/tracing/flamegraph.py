"""Folded-stack flamegraph export.

Produces the classic ``flamegraph.pl`` / inferno / speedscope input
format: one line per unique stack, frames joined by ``;`` root-first,
followed by that stack's **self weight** — simulated micro-cycles (or
retired instructions) spent in the leaf frame itself, children
excluded.  Feed the output straight into any folded-stack renderer::

    flamegraph.pl out.folded > flame.svg

Weights come from the reconstructed :class:`~.callstack.CallSpan` list:
each span's total weight minus the weight of the spans it directly
encloses.
"""

from __future__ import annotations

from .callstack import CallSpan


def folded_stacks(spans: list[CallSpan],
                  weight: str = "ucycles") -> dict[tuple[str, ...], int]:
    """Aggregate spans into ``{stack path: self weight}``.

    *weight* is ``"ucycles"`` (default; simulated time) or
    ``"instructions"`` (retired instruction counts).
    """
    if weight not in ("ucycles", "instructions"):
        raise ValueError(
            f"weight must be 'ucycles' or 'instructions', not {weight!r}")
    totals: dict[tuple[str, ...], int] = {}
    child_weight: dict[tuple[str, ...], int] = {}
    for span in spans:
        w = getattr(span, weight)
        totals[span.stack] = totals.get(span.stack, 0) + w
        if len(span.stack) > 1:
            parent = span.stack[:-1]
            child_weight[parent] = child_weight.get(parent, 0) + w
    folded = {}
    for stack, total in totals.items():
        self_w = total - child_weight.get(stack, 0)
        if self_w > 0:
            folded[stack] = self_w
    return folded


def format_folded(folded: dict[tuple[str, ...], int]) -> str:
    """Render a folded-stack dict as text, heaviest stacks first."""
    lines = [f"{';'.join(stack)} {w}"
             for stack, w in sorted(folded.items(),
                                    key=lambda kv: (-kv[1], kv[0]))]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(path, spans: list[CallSpan],
                     weight: str = "ucycles") -> dict[tuple[str, ...], int]:
    """Write ``path`` in folded-stack format; returns the aggregate."""
    folded = folded_stacks(spans, weight=weight)
    with open(path, "w") as f:
        f.write(format_folded(folded))
    return folded


def hottest(folded: dict[tuple[str, ...], int]) -> tuple[str, ...] | None:
    """The stack with the largest self weight (None when empty)."""
    if not folded:
        return None
    return max(folded.items(), key=lambda kv: kv[1])[0]
