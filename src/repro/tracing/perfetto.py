"""Chrome trace-event / Perfetto JSON export.

Writes the ``traceEvents`` JSON the Perfetto UI (https://ui.perfetto.dev)
and ``chrome://tracing`` load: mutatee call activations as nested
``B``/``E`` duration pairs, faults and patch-site hits as instant
markers, and — when a timeline-enabled telemetry snapshot is supplied —
the toolkit's own pipeline spans (parse/liveness/patch/sim) on a second
process track, so mutatee execution can be eyeballed against the
instrumentation pipeline that produced it.

Clock domains
-------------
The two tracks tick different clocks and the export keeps them apart
rather than pretending otherwise: mutatee spans are placed on the
*simulated* clock (micro-cycles through *to_us*), pipeline spans on the
host ``perf_counter`` clock rebased to zero.  Correlation is therefore
structural (same picture, two pids), not a shared timebase.
"""

from __future__ import annotations

import json

from ..telemetry.events import EVENT_SCHEMA, FAULT, KIND_NAMES, PATCH
from .callstack import CallSpan

#: pid used for the mutatee (simulated clock) track
MUTATEE_PID = 2
#: pid used for the toolkit pipeline (host clock) track
PIPELINE_PID = 1


def _default_to_us(ucycles: int) -> float:
    # micro-cycle granularity is sub-ns; /1000 keeps small runs readable
    return ucycles / 1000.0


def perfetto_trace(spans: list[CallSpan], events=None, snapshot=None,
                   to_us=None) -> dict:
    """Build the trace-event document (a JSON-serialisable dict).

    *spans* are reconstructed mutatee activations; *events* optionally
    supplies the raw stream so fault/patch-site instants appear;
    *snapshot* optionally supplies a telemetry snapshot whose
    ``"timeline"`` entries become the pipeline track; *to_us* maps
    simulated micro-cycles to trace microseconds (defaults to
    ``ucycles / 1000``).
    """
    to_us = to_us or _default_to_us
    out: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": MUTATEE_PID, "tid": 0,
         "args": {"name": "mutatee (simulated clock)"}},
    ]

    # -- mutatee call spans: nested B/E pairs ---------------------------
    # Emission is stack-driven rather than sort-key-driven: spans are
    # visited in (start, longest-first, depth) order and an open span is
    # closed the moment a later span starts at-or-after its end.  This
    # keeps B/E nesting well-formed even for zero-length and
    # back-to-back spans, where timestamp ties defeat any flat sort.
    def _e(sp) -> dict:
        return {"name": sp.name, "cat": "mutatee", "ph": "E",
                "pid": MUTATEE_PID, "tid": 1, "ts": to_us(sp.end_ucycles)}

    open_stack: list = []
    for sp in sorted(spans, key=lambda s: (s.start_ucycles,
                                           -s.end_ucycles, s.depth)):
        b_ts = to_us(sp.start_ucycles)
        while open_stack and to_us(open_stack[-1].end_ucycles) <= b_ts:
            out.append(_e(open_stack.pop()))
        args = {"entry": f"{sp.entry:#x}", "depth": sp.depth,
                "instructions": sp.instructions}
        if sp.call_site:
            args["call_site"] = f"{sp.call_site:#x}"
        if sp.tail:
            args["tail_call"] = True
        out.append({"name": sp.name, "cat": "mutatee", "ph": "B",
                    "pid": MUTATEE_PID, "tid": 1, "ts": b_ts,
                    "args": args})
        open_stack.append(sp)
    while open_stack:
        out.append(_e(open_stack.pop()))

    # -- fault / patch-site instants ------------------------------------
    if events is not None:
        for kind, pc, target, _instret, ucycles in events:
            if kind not in (FAULT, PATCH):
                continue
            args = {"pc": f"{pc:#x}"}
            if kind == PATCH:
                args["target"] = f"{target:#x}"
            out.append({
                "name": KIND_NAMES[kind], "cat": "mutatee", "ph": "i",
                "s": "t", "pid": MUTATEE_PID, "tid": 1,
                "ts": to_us(ucycles), "args": args})

    # -- pipeline track (host clock, rebased to zero) -------------------
    timeline = (snapshot or {}).get("timeline") or []
    if timeline:
        out.append({"name": "process_name", "ph": "M",
                    "pid": PIPELINE_PID, "tid": 0,
                    "args": {"name": "repro pipeline (host clock)"}})
        t0 = min(t["start_s"] for t in timeline)
        for t in sorted(timeline, key=lambda t: t["start_s"]):
            out.append({
                "name": t["name"], "cat": "pipeline", "ph": "X",
                "pid": PIPELINE_PID, "tid": 1,
                "ts": (t["start_s"] - t0) * 1e6,
                "dur": (t["end_s"] - t["start_s"]) * 1e6})

    return {"traceEvents": out, "displayTimeUnit": "ns",
            "otherData": {"schema": EVENT_SCHEMA}}


def write_perfetto(path, spans: list[CallSpan], events=None,
                   snapshot=None, to_us=None) -> dict:
    """Write the trace-event JSON to *path*; returns the document."""
    doc = perfetto_trace(spans, events=events, snapshot=snapshot,
                         to_us=to_us)
    with open(path, "w") as f:
        json.dump(doc, f)
    return doc


def validate_perfetto(doc: dict) -> list[str]:
    """Structural sanity checks; returns a list of problems (empty =
    valid).  Checked: required keys, per-track B/E balance and nesting,
    monotonically non-decreasing duration-event timestamps per track."""
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    stacks: dict[tuple, list] = {}
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid"):
            if key not in ev:
                problems.append(f"event {i} missing {key!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue
        if "ts" not in ev:
            problems.append(f"event {i} missing 'ts'")
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if ph in ("B", "E"):
            if ev["ts"] < last_ts.get(track, float("-inf")):
                problems.append(
                    f"event {i} ts goes backwards on track {track}")
            last_ts[track] = ev["ts"]
            stack = stacks.setdefault(track, [])
            if ph == "B":
                stack.append(ev["name"])
            else:
                if not stack:
                    problems.append(
                        f"event {i}: E with empty stack on {track}")
                elif stack[-1] != ev["name"]:
                    problems.append(
                        f"event {i}: E {ev['name']!r} does not close "
                        f"B {stack[-1]!r} on {track}")
                    stack.pop()
                else:
                    stack.pop()
    for track, stack in stacks.items():
        if stack:
            problems.append(
                f"track {track}: {len(stack)} unclosed B event(s)")
    return problems
