"""Springboards: the jump from original code into a trampoline.

The paper's §3.1.2 efficiency ladder, most to least efficient:

1. ``jal x0``      — 4 bytes, ±1 MiB: the workhorse.
2. ``c.j``         — 2 bytes, ±2 KiB: when only 2 bytes are available
   (e.g. a compressed-only point or a function shorter than 4 bytes)
   and the trampoline is close.
3. ``auipc``+``jalr`` — 8 bytes, ±2 GiB: far trampolines; needs a
   scratch register, so the springboard first spills one below sp
   (16 bytes total).
4. trap (``c.ebreak``/``ebreak``) — 2/4 bytes, any distance: the
   "inefficient 2-byte trap instruction in the worst case".  Traps are
   resolved through the runtime's trap-redirect map.

Unused bytes of the patched slot are filled with (c.)nops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import faults
from ..errors import ReproError
from ..riscv.compressed import CJ_RANGE, encode_c_ebreak, encode_c_nop, encode_cj
from ..riscv.encoder import encode
from ..riscv.encoding import fits_signed
from ..riscv.extensions import ISASubset
from ..riscv.materialize import pcrel_hi_lo


class SpringboardKind(enum.Enum):
    CJ = "c.j"
    JAL = "jal"
    AUIPC_JALR = "auipc+jalr"
    TRAP = "trap"


@dataclass(frozen=True)
class Springboard:
    """A built springboard: bytes to write at the patch site."""

    kind: SpringboardKind
    code: bytes
    #: True when the runtime must map this site in the trap-redirect map
    needs_trap: bool = False
    #: register spilled by the auipc+jalr form (restored by trampoline)
    clobbers: int | None = None

    def patched_range(self, site: int) -> tuple[int, int]:
        """The [lo, hi) code bytes this springboard overwrites at *site*
        — the span a live machine must invalidate (closures and traces)
        when the springboard is installed or removed."""
        return site, site + len(self.code)


class SpringboardError(ReproError, ValueError):
    pass


#: scratch register the far springboard uses (t6: never an argument or
#: return register; the trampoline preamble reloads it from the stack).
FAR_SCRATCH = 31

#: byte size of the far springboard: addi sp + sd + auipc + jalr
FAR_SIZE = 16


def _pad(code: bytes, size: int, compressed_ok: bool) -> bytes:
    """Pad to the slot size with nops."""
    pad = size - len(code)
    out = bytearray(code)
    if pad % 4 == 2:
        if not compressed_ok:
            raise SpringboardError("2-byte padding requires the C extension")
        out += encode_c_nop().to_bytes(2, "little")
        pad -= 2
    for _ in range(pad // 4):
        out += encode("addi", rd=0, rs1=0, imm=0).to_bytes(4, "little")
    return bytes(out)


def build_springboard(site: int, target: int, slot_size: int,
                      isa: ISASubset, *,
                      force_trap: bool = False) -> Springboard:
    """Pick and encode the most efficient springboard for jumping from
    *site* to *target* given *slot_size* overwritable bytes.

    ``force_trap=True`` skips ladder rungs 1–3 and encodes the trap
    tier directly — the :class:`~repro.patch.patcher.Patcher` uses it
    when the efficient rungs are exhausted (graceful degradation
    instead of a failed commit).
    """
    faults.site("patch.springboard.build")
    if slot_size < 2:
        raise SpringboardError(f"slot at {site:#x} smaller than 2 bytes")
    has_c = isa.supports("c")
    if slot_size % 2:
        raise SpringboardError("slot size must be even")
    disp = target - site

    # 1. jal x0: single 4-byte instruction, ±1MiB
    if not force_trap \
            and slot_size >= 4 and fits_signed(disp, 21) and disp % 2 == 0:
        code = encode("jal", rd=0, imm=disp).to_bytes(4, "little")
        return Springboard(SpringboardKind.JAL,
                           _pad(code, slot_size, has_c))

    # 2. c.j: 2 bytes, ±2KiB (the only option for 2-byte slots in range)
    if not force_trap \
            and has_c and CJ_RANGE[0] <= disp <= CJ_RANGE[1] and disp % 2 == 0:
        code = encode_cj(disp).to_bytes(2, "little")
        return Springboard(SpringboardKind.CJ,
                           _pad(code, slot_size, has_c))

    # 3. far form: spill t6 below sp, auipc+jalr (16 bytes)
    if not force_trap and slot_size >= FAR_SIZE:
        hi, lo = pcrel_hi_lo(target, site + 8)  # auipc is the 3rd insn
        code = b"".join(w.to_bytes(4, "little") for w in (
            encode("addi", rd=2, rs1=2, imm=-16),
            encode("sd", rs2=FAR_SCRATCH, rs1=2, imm=8),
            encode("auipc", rd=FAR_SCRATCH, imm=hi),
            encode("jalr", rd=0, rs1=FAR_SCRATCH, imm=lo),
        ))
        return Springboard(SpringboardKind.AUIPC_JALR,
                           _pad(code, slot_size, has_c),
                           clobbers=FAR_SCRATCH)

    # 4. trap: works at any distance from any slot >= 2 bytes
    if slot_size % 4 == 0:
        code = encode("ebreak").to_bytes(4, "little")
    else:
        if not has_c:
            raise SpringboardError(
                "2-byte trap needs the C extension (c.ebreak)")
        code = encode_c_ebreak().to_bytes(2, "little")
    return Springboard(SpringboardKind.TRAP, _pad(code, slot_size, has_c),
                       needs_trap=True)


def far_preamble_restore() -> list[tuple[str, dict[str, int]]]:
    """Instructions a trampoline must run first when entered through an
    AUIPC_JALR springboard: restore the spilled scratch and sp."""
    return [
        ("ld", {"rd": FAR_SCRATCH, "rs1": 2, "imm": 8}),
        ("addi", {"rd": 2, "rs1": 2, "imm": 16}),
    ]
