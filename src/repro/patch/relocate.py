"""Instruction relocation: moving original code into a trampoline.

Code patching overwrites instructions at the point with a springboard;
the displaced instructions execute in the trampoline instead ("creating
a new version of the block ... and relocating this code", paper §1).
Position-dependent instructions must be rewritten:

* ``auipc`` — its result is a constant of the *original* pc: relocated
  as an immediate materialisation of that constant;
* ``jal`` — re-targeted from the new location (or lowered to
  ``auipc``+``jalr`` using the link register as scratch; ``jal x0`` out
  of range becomes an absolute-jump stub);
* conditional branches — redirected to a local stub that jumps to the
  original target (the fall-through path continues in the trampoline);
* compressed instructions — relocated as their 4-byte expansions;
* everything else is position-independent and copies verbatim.

The lowering produces symbolic items; :mod:`repro.patch.trampoline`
lays them out and resolves stub/jump offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..errors import ReproError
from ..instruction.insn import Insn
from ..riscv.materialize import materialize_imm

# Symbolic trampoline items:
#   ("i", mn, fields)                 — ordinary instruction
#   ("branch_stub", mn, fields, sid)  — branch to stub sid (imm patched)
#   ("jump_abs", target)              — jump to absolute addr (jal or trap)
Item = tuple


@dataclass
class RelocatedCode:
    """Lowered relocation of a run of original instructions."""

    items: list[Item] = field(default_factory=list)
    #: stub id -> absolute branch-taken target
    stubs: dict[int, int] = field(default_factory=dict)
    #: True when the run ends in control flow that never falls through
    #: (no back-jump needed after it)
    diverts: bool = False


class RelocationError(ReproError, ValueError):
    pass


_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}


def lower_relocated(insns: list[Insn]) -> RelocatedCode:
    """Lower displaced original instructions to symbolic trampoline
    items."""
    faults.site("patch.relocate.lower")
    out = RelocatedCode()
    next_stub = 0
    for idx, insn in enumerate(insns):
        mn = insn.mnemonic
        f = dict(insn.raw.fields)
        is_last = idx == len(insns) - 1

        if mn == "auipc":
            value = (insn.address + (_sext20(f["imm"]) << 12)) & (
                (1 << 64) - 1)
            for sub_mn, sub_f in materialize_imm(f["rd"], value):
                out.items.append(("i", sub_mn, sub_f))
        elif mn == "jal":
            target = insn.address + f["imm"]
            if f["rd"] == 0:
                out.items.append(("jump_abs", target))
                if is_last:
                    out.diverts = True
            else:
                # call: use the link register itself as scratch
                out.items.append(("call_abs", target, f["rd"]))
        elif mn in _BRANCHES:
            target = insn.address + f["imm"]
            sid = next_stub
            next_stub += 1
            out.stubs[sid] = target
            bf = {"rs1": f["rs1"], "rs2": f["rs2"]}
            out.items.append(("branch_stub", mn, bf, sid))
        elif mn == "jalr":
            out.items.append(("i", mn, f))
            if is_last and f.get("rd") == 0:
                out.diverts = True
        elif mn == "ebreak":
            out.items.append(("i", mn, f))
            if is_last:
                out.diverts = True
        else:
            # Position-independent: copy (compressed forms as their
            # 4-byte expansion).
            out.items.append(("i", mn, f))
    return out


def _sext20(v: int) -> int:
    v &= 0xFFFFF
    return v - (1 << 20) if v & (1 << 19) else v


def consumed_instructions(insns: list[Insn], start: int,
                          min_bytes: int) -> list[Insn]:
    """The complete instructions starting at *start* covering at least
    *min_bytes* (what a springboard of that size displaces)."""
    faults.site("patch.relocate.consume")
    out: list[Insn] = []
    covered = 0
    for insn in insns:
        if insn.address < start:
            continue
        if covered >= min_bytes:
            break
        out.append(insn)
        covered += insn.length
    if covered < min_bytes:
        raise RelocationError(
            f"only {covered} bytes of instructions at {start:#x}; "
            f"springboard needs {min_bytes}")
    return out
