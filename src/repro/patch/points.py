"""Instrumentation points (paper §2: "a point is a location in the
program where instrumentation will be inserted").

Point kinds follow the paper's list:

* low-level: individual instructions;
* function-level: entry, exit, call sites;
* CFG-level: basic-block entries, loop back edges.

A point's ``address`` is the instruction before which the payload
executes; the patcher overwrites whole instructions starting there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ReproError
from ..parse.cfg import Block, Function


class PointType(enum.Enum):
    FUNC_ENTRY = "function-entry"
    FUNC_EXIT = "function-exit"
    CALL_SITE = "call-site"
    BLOCK_ENTRY = "block-entry"
    LOOP_BACKEDGE = "loop-backedge"
    INSTRUCTION = "instruction"
    # CFG-edge points (paper §2: "branch-taken and branch-not-taken
    # edges"): the payload runs only when the branch goes that way.
    EDGE_TAKEN = "edge-taken"
    EDGE_NOT_TAKEN = "edge-not-taken"


@dataclass(frozen=True)
class Point:
    """One instrumentation point."""

    type: PointType
    address: int
    function: Function
    block: Block

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Point {self.type.value} @ {self.address:#x}>"


class PointError(ReproError, ValueError):
    pass


def function_entry(fn: Function) -> Point:
    return Point(PointType.FUNC_ENTRY, fn.entry, fn, fn.entry_block)


def function_exits(fn: Function) -> list[Point]:
    """One point per RET/TAILCALL terminator (payload runs before the
    return executes)."""
    out = []
    for block in sorted(fn.exit_blocks(), key=lambda b: b.start):
        term = block.last
        if term is not None:
            out.append(Point(PointType.FUNC_EXIT, term.address, fn, block))
    return out


def call_sites(fn: Function) -> list[Point]:
    out = []
    for block in sorted(fn.call_sites(), key=lambda b: b.start):
        term = block.last
        if term is not None:
            out.append(Point(PointType.CALL_SITE, term.address, fn, block))
    return out


def block_entries(fn: Function) -> list[Point]:
    return [
        Point(PointType.BLOCK_ENTRY, b.start, fn, b)
        for b in sorted(fn.blocks.values(), key=lambda b: b.start)
        if b.insns
    ]


def loop_backedges(fn: Function) -> list[Point]:
    """Points on each natural loop's back edges.

    Back edges through an unconditional jump get a plain point on the
    jump; back edges that are one direction of a conditional branch get
    the corresponding *edge* point, so the payload runs exactly once per
    traversal (not on the loop-exit pass).
    """
    from ..parse.loops import natural_loops

    out: list[Point] = []
    seen: set[tuple[int, PointType]] = set()
    for loop in natural_loops(fn):
        for tail, head in loop.back_edges:
            block = fn.blocks.get(tail)
            term = block.last if block else None
            if term is None:
                continue
            if term.is_conditional_branch:
                taken = term.direct_target() == head
                ptype = (PointType.EDGE_TAKEN if taken
                         else PointType.EDGE_NOT_TAKEN)
            else:
                ptype = PointType.LOOP_BACKEDGE
            key = (term.address, ptype)
            if key in seen:
                continue
            seen.add(key)
            out.append(Point(ptype, term.address, fn, block))
    return sorted(out, key=lambda p: p.address)


def branch_edges(fn: Function,
                 taken: bool = True) -> list[Point]:
    """One point per conditional branch, on its taken (or not-taken)
    edge."""
    ptype = PointType.EDGE_TAKEN if taken else PointType.EDGE_NOT_TAKEN
    out = []
    for block in sorted(fn.blocks.values(), key=lambda b: b.start):
        term = block.last
        if term is not None and term.is_conditional_branch:
            out.append(Point(ptype, term.address, fn, block))
    return out


def edge_point(fn: Function, block: Block, taken: bool) -> Point:
    """The edge point of one specific branch block."""
    term = block.last
    if term is None or not term.is_conditional_branch:
        raise PointError(
            f"block at {block.start:#x} does not end in a conditional "
            f"branch")
    ptype = PointType.EDGE_TAKEN if taken else PointType.EDGE_NOT_TAKEN
    return Point(ptype, term.address, fn, block)


def instruction_point(fn: Function, addr: int) -> Point:
    block = fn.block_at(addr)
    if block is None or block.instruction_at(addr) is None:
        raise PointError(
            f"{addr:#x} is not an instruction in {fn.name!r}")
    return Point(PointType.INSTRUCTION, addr, fn, block)


def points_for(fn: Function, ptype: PointType) -> list[Point]:
    """All points of one type in a function."""
    if ptype is PointType.FUNC_ENTRY:
        return [function_entry(fn)]
    if ptype is PointType.FUNC_EXIT:
        return function_exits(fn)
    if ptype is PointType.CALL_SITE:
        return call_sites(fn)
    if ptype is PointType.BLOCK_ENTRY:
        return block_entries(fn)
    if ptype is PointType.LOOP_BACKEDGE:
        return loop_backedges(fn)
    if ptype is PointType.EDGE_TAKEN:
        return branch_edges(fn, taken=True)
    if ptype is PointType.EDGE_NOT_TAKEN:
        return branch_edges(fn, taken=False)
    raise PointError(f"points_for cannot enumerate {ptype}")
