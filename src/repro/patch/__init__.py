"""PatchAPI: instrumentation points, springboards, trampolines, snippet
insertion, and static rewriting."""

from .patcher import (
    PatchConflict, PatchError, PatchResult, PatchStats, Patcher,
)
from .points import (
    Point, PointError, PointType, block_entries, branch_edges,
    call_sites, edge_point, function_entry, function_exits,
    instruction_point, loop_backedges, points_for,
)
from .relocate import RelocationError, consumed_instructions, lower_relocated
from .rewriter import load_instrumented, rewrite
from .springboard import (
    FAR_SIZE, Springboard, SpringboardError, SpringboardKind,
    build_springboard,
)
from .trampoline import BuiltTrampoline, TrampolineBuilder
from .transaction import (
    RollbackVerifyError, TransactionError, WriteAheadJournal,
)

__all__ = [
    "PatchConflict", "PatchError", "PatchResult", "PatchStats", "Patcher",
    "Point", "PointError", "PointType", "block_entries", "call_sites",
    "function_entry", "function_exits", "instruction_point",
    "branch_edges", "edge_point", "loop_backedges", "points_for",
    "RelocationError", "consumed_instructions", "lower_relocated",
    "load_instrumented", "rewrite",
    "FAR_SIZE", "Springboard", "SpringboardError", "SpringboardKind",
    "build_springboard",
    "BuiltTrampoline", "TrampolineBuilder",
    "RollbackVerifyError", "TransactionError", "WriteAheadJournal",
]
