"""PatchAPI: snippet insertion (paper §2.2).

The :class:`Patcher` takes (points, snippet) requests — Dyninst's
``(P, AST)`` tuples — and at :meth:`commit` time builds, per patch site:

1. a scratch plan (dead registers first, §4.3's optimisation; spill-
   backed otherwise — disable with ``use_dead_registers=False`` to get
   the legacy x86-engine behaviour);
2. the lowered payload (CodeGenAPI);
3. a trampoline: optional far-springboard restore, spill saves, payload,
   spill restores, the relocated original instruction(s), and the jump
   back;
4. the springboard overwriting the original instruction(s), picked from
   the §3.1.2 efficiency ladder.

The result applies to a live simulator machine (dynamic instrumentation)
or serialises through the static rewriter (:mod:`repro.patch.rewriter`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .. import faults, telemetry
from ..codegen.generator import (
    SnippetGenerator, required_scratch, snippet_calls,
)
from ..errors import ReproError
from ..codegen.regalloc import SpillArea, allocate_scratch
from ..codegen.snippets import DataArea, Snippet
from ..dataflow.liveness import LivenessResult, analyze_liveness
from ..parse.parser import CodeObject, parse_binary
from ..riscv.compressed import CJ_RANGE
from ..riscv.encoding import fits_signed
from ..riscv.registers import ARG_REGS, CALLER_SAVED, RA, Register
from ..symtab.symtab import Symtab
from .points import Point
from .relocate import consumed_instructions, lower_relocated
from .springboard import (
    FAR_SIZE, Springboard, SpringboardError, SpringboardKind,
    build_springboard, far_preamble_restore,
)
from .trampoline import TrampolineBuilder
from .transaction import apply_result, remove_result


class PatchError(ReproError, RuntimeError):
    pass


class PatchConflict(PatchError):
    """Two patch sites overlap (one springboard would corrupt another)."""


@dataclass
class PatchStats:
    """What the instrumentation pass did (reported by the benchmarks)."""

    points: int = 0
    trampolines: int = 0
    springboards: Counter = field(default_factory=Counter)
    dead_regs_used: int = 0
    spilled_regs: int = 0
    trampoline_bytes: int = 0
    trap_sites: int = 0
    #: springboard-ladder exhaustions degraded to the trap tier
    trap_fallbacks: int = 0


@dataclass
class PatchResult:
    """The committed instrumentation, ready to apply or serialise."""

    text_base: int
    text: bytes
    trampoline_base: int
    trampoline_code: bytes
    data_base: int
    data_size: int
    trap_map: dict[int, int]
    stats: PatchStats
    data_area: DataArea
    #: the pre-instrumentation text image (for removal)
    original_text: bytes = b""
    #: [lo, hi) text spans overwritten by springboards.  Mid-run
    #: patching writes (and invalidates) only these spans, so compiled
    #: traces elsewhere in the text survive the install.
    patched_ranges: list[tuple[int, int]] = field(default_factory=list)

    def _text_spans(self) -> list[tuple[int, int]]:
        if self.patched_ranges:
            return self.patched_ranges
        return [(self.text_base, self.text_base + len(self.text))]

    def apply_to_machine(self, machine) -> None:
        """Dynamic instrumentation: patch a loaded simulator machine.

        The application is **transactional** (see
        :mod:`repro.patch.transaction`): every page the commit touches
        is journaled first, and any failure mid-apply rolls the machine
        back to its pre-call architectural state bit-identically before
        the exception propagates.  Only the springboard spans are
        written; each write is followed by an explicit
        ``invalidate_code_range`` so stale compiled code is dropped even
        on machines whose memory write watch is not armed (e.g. images
        loaded without an exec range).
        """
        apply_result(self, machine)

    def remove_from_machine(self, machine) -> tuple[int, int]:
        """Remove the instrumentation from a live machine: restore the
        original code bytes and retire the trap redirects.  Counter
        values in the data area survive (tools read them afterwards).

        Transactional like :meth:`apply_to_machine`; additionally, a
        springboard span that a *later* patch has since overwritten is
        left in place (restoring our pre-patch bytes would orphan the
        survivor), and a trap redirect is only retired while it still
        points at our trampoline.  Returns ``(restored, skipped)`` span
        counts.

        The machine must not be stopped *inside* a trampoline when this
        is called (the trampoline region is left mapped so a caller who
        ignores this degrades gracefully, but the instrumentation no
        longer fires).
        """
        if not self.original_text:
            raise PatchError("original text not recorded; cannot remove")
        return remove_result(self, machine)


class _IntersectedLiveness:
    """Duck-typed LivenessResult over several functions' views: live =
    union of lives, dead = intersection of deads."""

    def __init__(self, primary_fn, results):
        self.function = primary_fn
        self._results = results

    def live_before(self, addr: int):
        live = set()
        for res in self._results:
            try:
                live |= res.live_before(addr)
            except KeyError:
                continue
        return frozenset(live)

    def dead_before(self, addr: int, candidates=None):
        from ..riscv.registers import SCRATCH_CANDIDATES

        pool = candidates if candidates is not None else SCRATCH_CANDIDATES
        live = self.live_before(addr)
        return [r for r in pool if r not in live]


@dataclass
class _Request:
    point: Point
    #: payloads that run unconditionally at the point
    snippets: list[Snippet] = field(default_factory=list)
    #: payloads on the branch-taken edge (EDGE_TAKEN points)
    taken: list[Snippet] = field(default_factory=list)
    #: payloads on the fall-through edge (EDGE_NOT_TAKEN points)
    not_taken: list[Snippet] = field(default_factory=list)
    #: control-flow modification: divert this point to an address
    #: (function replacement / call retargeting)
    redirect: int | None = None
    #: True when the redirect models a *call* (return comes back here)
    redirect_is_call: bool = False
    #: True to delete the instruction at the point (it is displaced but
    #: never re-executed; any payload effectively replaces it)
    delete_original: bool = False

    def all_snippets(self) -> list[Snippet]:
        return self.snippets + self.taken + self.not_taken


class Patcher:
    """Accumulates snippet insertions and commits them in one pass."""

    def __init__(self, symtab: Symtab, code_object: CodeObject | None = None,
                 *, patch_base: int | None = None,
                 data_size: int = 0x2_0000,
                 use_dead_registers: bool = True,
                 interprocedural_liveness: bool = False,
                 liveness=None):
        self.symtab = symtab
        self.code_object = code_object or parse_binary(symtab)
        self.use_dead_registers = use_dead_registers
        self.interprocedural_liveness = interprocedural_liveness
        #: optional precomputed-liveness provider (``result_for(fn) ->
        #: LivenessResult | None``) — a shared, revived-from-store
        #: :class:`repro.api.Analysis` in the session flows.  Functions
        #: it does not know fall back to on-demand analysis.
        self._liveness_provider = liveness
        self._interproc = None
        self.isa = symtab.isa
        if patch_base is None:
            top = max(r.end for r in symtab.regions)
            patch_base = (top + 0xFFF) & ~0xFFF
        self.data_base = patch_base
        self.data_size = data_size
        self.trampoline_base = patch_base + data_size
        self.data_area = DataArea(self.data_base, data_size)
        self._requests: dict[int, _Request] = {}
        self._liveness: dict[int, LivenessResult] = {}

    # -- request accumulation ------------------------------------------------

    def allocate_var(self, name: str, size: int = 8):
        """Allocate an instrumentation variable (counter, flag...)."""
        return self.data_area.allocate(name, size)

    def insert(self, points: Point | list[Point],
               snippet: Snippet) -> None:
        """Queue snippet insertion at one or more points — the Dyninst
        (P, AST) operation."""
        if isinstance(points, Point):
            points = [points]
        from .points import PointType

        for p in points:
            req = self._requests.setdefault(p.address, _Request(p))
            if p.type is PointType.EDGE_TAKEN:
                req.taken.append(snippet)
            elif p.type is PointType.EDGE_NOT_TAKEN:
                req.not_taken.append(snippet)
            else:
                req.snippets.append(snippet)

    def replace_function(self, fn, new_entry: int) -> None:
        """Divert every entry into *fn* to *new_entry* (Dyninst's
        replaceFunction): the original body becomes unreachable through
        its entry point.
        """
        from .points import Point, PointType

        point = Point(PointType.FUNC_ENTRY, fn.entry, fn, fn.entry_block)
        req = self._requests.setdefault(point.address, _Request(point))
        if req.redirect is not None:
            raise PatchError(
                f"point {point.address:#x} already has a redirect")
        req.redirect = new_entry
        req.redirect_is_call = False

    def delete_instruction(self, point: Point) -> None:
        """Delete the instruction at *point* (the "deleting" of §1): it
        is displaced into the trampoline but never executed.  Any
        snippets inserted at the same point run in its place, making
        this the instruction-*modification* primitive too."""
        req = self._requests.setdefault(point.address, _Request(point))
        req.delete_original = True

    def replace_call(self, point: Point, new_target: int) -> None:
        """Retarget the call at a CALL_SITE point to *new_target*
        (Dyninst's call modification): the original callee is never
        entered from this site."""
        from .points import PointType

        if point.type is not PointType.CALL_SITE:
            raise PatchError("replace_call requires a CALL_SITE point")
        req = self._requests.setdefault(point.address, _Request(point))
        if req.redirect is not None:
            raise PatchError(
                f"point {point.address:#x} already has a redirect")
        req.redirect = new_target
        req.redirect_is_call = True

    # -- commit -------------------------------------------------------------------

    def commit(self) -> PatchResult:
        """Build all trampolines and springboards."""
        with telemetry.current().span("patch.commit"):
            result = self._commit()
        rec = telemetry.current()
        if rec.enabled:
            self._record_stats(rec, result.stats)
        return result

    def _record_stats(self, rec, stats: "PatchStats") -> None:
        """Flush one commit's :class:`PatchStats` into the recorder."""
        rec.count("patch.points", stats.points)
        rec.count("patch.trampolines", stats.trampolines)
        rec.count("patch.trampoline_bytes", stats.trampoline_bytes)
        rec.count("patch.trap_sites", stats.trap_sites)
        rec.count("springboard.trap_fallbacks", stats.trap_fallbacks)
        for kind, n in stats.springboards.items():
            rec.count(f"patch.springboard.{kind}", n)
        # §3.5/§4.3: every dead register claimed is one spill avoided
        rec.count("patch.scratch.dead_regs_used", stats.dead_regs_used)
        rec.count("patch.scratch.spills_avoided", stats.dead_regs_used)
        rec.count("patch.scratch.spilled_regs", stats.spilled_regs)

    def _commit(self) -> PatchResult:
        stats = PatchStats(points=len(self._requests))
        text_region = next(r for r in self.symtab.regions
                           if r.executable)
        text = bytearray(text_region.data)
        trampolines = bytearray()
        trap_map: dict[int, int] = {}
        cursor = self.trampoline_base

        ordered = sorted(self._requests.values(),
                         key=lambda r: r.point.address)
        prev_end = 0
        patched_ranges: list[tuple[int, int]] = []

        for req in ordered:
            faults.site("patch.commit.point")
            point = req.point
            fn = point.function
            block = point.block
            site = point.address

            available = block.end - site
            sb, slot, fell_back = self._pick_springboard(
                site, cursor, available)
            stats.springboards[sb.kind.value] += 1
            stats.trap_fallbacks += fell_back
            if sb.needs_trap:
                trap_map[site] = cursor
                stats.trap_sites += 1

            if site < prev_end:
                raise PatchConflict(
                    f"patch site {site:#x} lies inside the previous "
                    f"springboard's displaced instructions "
                    f"(ends at {prev_end:#x})")
            consumed = consumed_instructions(block.insns, site, slot)
            consumed_len = sum(i.length for i in consumed)
            prev_end = site + consumed_len

            # scratch plan at the point.  Blocks can be *shared* between
            # functions (fallthrough overlap, tail-call sharing): the
            # plan must respect every containing function's liveness.
            lv = self._liveness_at(site, fn)
            all_snips = req.all_snippets()
            needs_call_save = any(snippet_calls(s) for s in all_snips)
            n_scratch = max(
                [2] + [required_scratch(s) for s in all_snips])
            plan = allocate_scratch(
                n_scratch, lv, site,
                use_dead_registers=self.use_dead_registers)
            stats.dead_regs_used += plan.n_dead
            stats.spilled_regs += len(plan.spilled)

            extra: tuple[Register, ...] = ()
            if needs_call_save:
                extra = tuple(
                    r for r in sorted(CALLER_SAVED | {RA} | set(ARG_REGS))
                    if r not in plan.spilled)
            spill = SpillArea(plan, extra=extra)

            gen = SnippetGenerator(self.isa, list(plan.regs),
                                   sp_adjustment=spill.frame_bytes)

            def lowered(snips):
                out: list = []
                for snip in snips:
                    out.extend(gen.generate(snip).instructions)
                return out

            builder = TrampolineBuilder(cursor)
            if sb.kind is SpringboardKind.AUIPC_JALR:
                builder.add_instructions(far_preamble_restore())
            if req.redirect is not None:
                if req.taken or req.not_taken:
                    raise PatchError(
                        f"point {site:#x}: redirect cannot combine with "
                        f"edge instrumentation")
                if req.snippets:
                    builder.add_instructions(spill.save_instructions())
                    builder.add_instructions(lowered(req.snippets))
                    builder.add_instructions(spill.restore_instructions())
                if req.redirect_is_call:
                    term = consumed[0]
                    link = term.raw.fields.get("rd", 1)
                    builder.add_call_abs(req.redirect, link)
                    builder.add_jump_abs(site + consumed_len)
                else:
                    builder.add_jump_abs(req.redirect)
            elif req.taken or req.not_taken:
                self._build_edge_trampoline(
                    builder, req, consumed, site, consumed_len,
                    spill, lowered)
            else:
                builder.add_instructions(spill.save_instructions())
                builder.add_instructions(lowered(req.snippets))
                builder.add_instructions(spill.restore_instructions())
                # deletion: the first displaced instruction is dropped;
                # the rest of the slot still executes
                relocate_from = consumed[1:] if req.delete_original \
                    else consumed
                rc = lower_relocated(relocate_from)
                builder.add_relocated(rc)
                if not rc.diverts:
                    builder.add_jump_abs(site + consumed_len)
            built = builder.build()

            trampolines += built.code
            trap_map.update(built.trap_entries)
            stats.trap_sites += len(built.trap_entries)
            stats.trampolines += 1
            cursor += built.size
            cursor = (cursor + 15) & ~15
            pad = cursor - (built.address + built.size)
            trampolines += b"\x00" * pad

            # splice the springboard into the text image
            off = site - text_region.addr
            text[off:off + slot] = sb.code
            patched_ranges.append(sb.patched_range(site))

        stats.trampoline_bytes = len(trampolines)
        return PatchResult(
            text_base=text_region.addr,
            text=bytes(text),
            original_text=bytes(text_region.data),
            trampoline_base=self.trampoline_base,
            trampoline_code=bytes(trampolines),
            data_base=self.data_base,
            data_size=self.data_size,
            trap_map=trap_map,
            stats=stats,
            data_area=self.data_area,
            patched_ranges=patched_ranges,
        )

    # -- helpers ---------------------------------------------------------------------

    def _build_edge_trampoline(self, builder, req, consumed, site,
                               consumed_len, spill, lowered) -> None:
        """Edge instrumentation (paper §2: branch-taken / not-taken
        points).  The displaced conditional branch is recreated inside
        the trampoline as a dispatch; each edge's payload runs only on
        its path::

            [unconditional payload]        ; plain points at the branch
            b<cond> rs1, rs2, Ltaken
            [not-taken payload] ; jump fallthrough
            Ltaken:
            [taken payload]     ; jump branch-target
        """
        term = consumed[0]
        if len(consumed) != 1 or not term.is_conditional_branch:
            raise PatchError(
                f"edge point at {site:#x} must displace exactly the "
                f"conditional branch")
        taken_target = term.direct_target()
        fallthrough = site + consumed_len

        if req.snippets:
            builder.add_instructions(spill.save_instructions())
            builder.add_instructions(lowered(req.snippets))
            builder.add_instructions(spill.restore_instructions())

        label = builder.new_label()
        f = term.raw.fields
        builder.add_branch_local(
            term.mnemonic, {"rs1": f["rs1"], "rs2": f["rs2"]}, label)
        if req.not_taken:
            builder.add_instructions(spill.save_instructions())
            builder.add_instructions(lowered(req.not_taken))
            builder.add_instructions(spill.restore_instructions())
        builder.add_jump_abs(fallthrough)
        builder.place_label(label)
        if req.taken:
            builder.add_instructions(spill.save_instructions())
            builder.add_instructions(lowered(req.taken))
            builder.add_instructions(spill.restore_instructions())
        builder.add_jump_abs(taken_target)

    def _liveness_at(self, site: int, primary_fn) -> "LivenessResult":
        """Liveness view for a patch site: when the address belongs to
        several functions' CFGs, a register is only dead if dead in
        every view (shared-code safety)."""
        owners = [fn for fn in self.code_object.functions.values()
                  if fn.block_at(site) is not None]
        if not owners:
            owners = [primary_fn]
        results = [self._liveness_for(fn) for fn in owners]
        if len(results) == 1:
            return results[0]
        return _IntersectedLiveness(primary_fn, results)

    def _liveness_for(self, fn) -> LivenessResult:
        if fn.entry not in self._liveness:
            if self._liveness_provider is not None:
                res = self._liveness_provider.result_for(fn)
                if res is not None:
                    self._liveness[fn.entry] = res
                    return res
            if self.interprocedural_liveness:
                if self._interproc is None:
                    from ..dataflow.interproc import analyze_interprocedural

                    self._interproc = analyze_interprocedural(
                        self.code_object)
                self._liveness[fn.entry] = self._interproc.result_for(fn)
            else:
                self._liveness[fn.entry] = analyze_liveness(fn)
        return self._liveness[fn.entry]

    def _pick_springboard(
            self, site: int, target: int,
            available: int) -> tuple[Springboard, int, bool]:
        """Choose the slot size per the §3.1.2 ladder, then encode.

        Returns ``(springboard, slot, fell_back)``.  Ladder exhaustion
        — an encoding the plan expected to fit failing at build time, or
        the ``patch.springboard.ladder`` pressure site firing — degrades
        to the trap tier (the paper's any-distance worst case) instead
        of aborting the commit; ``fell_back`` reports it so the
        ``springboard.trap_fallbacks`` counter can account for every
        degradation.  Only a point too small for even a compressed trap
        is a hard error.
        """
        disp = target - site
        if not faults.pressure("patch.springboard.ladder"):
            if available >= 4 and fits_signed(disp, 21):
                slot = 4
            elif available >= 2 and self.isa.supports("c") \
                    and CJ_RANGE[0] <= disp <= CJ_RANGE[1]:
                slot = 2
            elif available >= FAR_SIZE:
                slot = FAR_SIZE
            elif available >= 4:
                slot = 4   # trap
            elif available >= 2:
                slot = 2   # compressed trap — the paper's worst case
            else:
                raise PatchError(
                    f"no room for any springboard at {site:#x}")
            try:
                sb = build_springboard(site, target, slot, self.isa)
                return sb, slot, False
            except SpringboardError:
                pass   # exhausted: degrade to the trap tier below
        if available >= 4:
            slot = 4
        elif available >= 2:
            slot = 2
        else:
            raise PatchError(
                f"no room for any springboard at {site:#x}")
        sb = build_springboard(site, target, slot, self.isa,
                               force_trap=True)
        return sb, slot, True
